//! Integration-test host crate for the recmod workspace; see `tests/`.
#![forbid(unsafe_code)]
