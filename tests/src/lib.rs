//! Integration-test host crate for the recmod workspace; see `tests/`.
//!
//! Besides hosting the integration tests, this crate exposes the seeded
//! fuzzing + differential harness (`fuzz`) used by `tests/fuzz.rs` and
//! by CI's bounded fuzz job.
#![forbid(unsafe_code)]

pub mod fuzz;
