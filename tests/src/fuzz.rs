//! The seeded fuzzing + differential harness.
//!
//! Every case is fully determined by one `u64` seed (SplitMix64), so a
//! failure report is a reproduction recipe. A seed drives one of ten
//! case classes:
//!
//! * **Expression differential** — a random well-typed expression
//!   program is evaluated by a tiny reference interpreter over the
//!   generator's own AST ("direct eval") and by the full pipeline
//!   (parse → elaborate → kernel → phase-split → link → evaluate); the
//!   two values must agree.
//! * **Module differential** — a random operation sequence is run
//!   against the paper's transparent *and* opaque recursive list
//!   modules and against a native `Vec` model; the three checksums must
//!   agree (the paper's §3 observational-equivalence claim).
//! * **Ill-formed input** — a valid program is mutated (deletions,
//!   duplications, keyword splices) and compiled under strict limits;
//!   any structured verdict is fine, a panic is a bug.
//! * **Kernel μ-fuzz** — random μ-constructor pairs (Shao collapses,
//!   unrollings, deep towers) are checked for equivalence under both
//!   `Equi` and `IsoShao` with tight budgets; iso-acceptance must imply
//!   equi-acceptance (§5: Shao's equation is sound for the
//!   equi-recursive theory), and deep towers must produce structured
//!   limit errors, never a stack overflow.
//! * **Interning differential** — random constructor pairs are checked
//!   for agreement between the hash-consed representation's id-based
//!   equality and a deep reference structural-equality walk, and a
//!   bottom-up rebuild through fresh intern calls must converge on the
//!   identical canonical pointers.
//! * **Thread isolation** — a batch of (possibly mutated) programs is
//!   compiled through the parallel driver on two workers (sharing only
//!   the global interner) and again on one; the outcomes must be
//!   byte-identical, no compile may panic, neither the calling thread's
//!   per-thread interner counters nor its telemetry sink may see any
//!   bleed from the workers, and concurrent interning of
//!   structurally-equal nodes from several threads must converge on one
//!   canonical `NodeId` each.
//! * **Profiled differential** — the same (possibly mutated) program is
//!   compiled with no telemetry sink and under a full profiling sink
//!   (`Config::profiled`); the verdicts and rendered diagnostics must
//!   be identical (observation must not perturb the observed), no
//!   compile may panic, and a successful profiled compile must actually
//!   record spans.
//! * **Diagnostics totality** — an arbitrary (often mutated) program is
//!   compiled under strict limits and every diagnostic must carry a
//!   well-formed stable code, non-empty provenance, and a JSON form
//!   that parses back intact, with the judgement frame stack balanced.
//! * **Chaos serve** — a batch of requests is driven through a live
//!   compile server with deterministic fault injection armed (panics,
//!   allocation trips, deadline storms, worker kills); every request
//!   must get exactly one response, every verdict must match the
//!   unfaulted batch driver's byte for byte, and the server must drain
//!   with no leaked workers and a balanced flight recorder.
//! * **NbE differential** — random well- and ill-kinded constructors
//!   are run through weak-head normalization, kind synthesis, and
//!   equivalence under both the NbE engine and the legacy substitution
//!   engine (`RECMOD_EQUIV=subst`), and a whole program is compiled
//!   under each engine on fresh threads; normal forms, verdicts, stable
//!   error codes, and rendered diagnostics must all agree (resource
//!   verdicts are inconclusive — the engines deliberately meter fuel
//!   differently).
//!
//! The driver ([`run_case`]) reports `Err(description)` on any
//! disagreement; panics are caught by the caller (`tests/fuzz.rs`)
//! which runs each case under `catch_unwind` on a big-stack thread.

use recmod::kernel::{Ctx, RecMode, Tc, TypeError};
use recmod::syntax::ast::{Con, Kind};
use recmod::telemetry::Limits;
use recmod_bench::rng::Rng;

// ---------------------------------------------------------------------
// Class 0: expression differential
// ---------------------------------------------------------------------

/// The generator's expression AST: a subset of the surface language
/// with fully parenthesized rendering, so precedence can't diverge
/// between the reference and the real parser.
#[derive(Debug, Clone)]
enum GenExp {
    Int(i64),
    Bool(bool),
    Var(usize),
    Bin(GenOp, Box<GenExp>, Box<GenExp>),
    If(Box<GenExp>, Box<GenExp>, Box<GenExp>),
    Let(Box<GenExp>, Box<GenExp>),
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum GenOp {
    Add,
    Sub,
    Mul,
    Eq,
    Lt,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum GenTy {
    Int,
    Bool,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum GenVal {
    Int(i64),
    Bool(bool),
}

/// Generates a well-typed expression of type `want`. `scope` holds the
/// types of the let-bound variables currently visible (`x0`, `x1`, …).
fn gen_exp(rng: &mut Rng, scope: &mut Vec<GenTy>, want: GenTy, depth: usize) -> GenExp {
    let vars: Vec<usize> = (0..scope.len()).filter(|&i| scope[i] == want).collect();
    if depth == 0 || rng.chance(1, 4) {
        // Leaf: a variable of the right type when one exists, else a
        // literal.
        if !vars.is_empty() && rng.chance(1, 2) {
            return GenExp::Var(vars[rng.below(vars.len() as u64) as usize]);
        }
        return match want {
            GenTy::Int => GenExp::Int(rng.range_i64(0, 99)),
            GenTy::Bool => GenExp::Bool(rng.chance(1, 2)),
        };
    }
    let d = depth - 1;
    match want {
        GenTy::Int => match rng.below(3) {
            0 => {
                let op = [GenOp::Add, GenOp::Sub, GenOp::Mul][rng.below(3) as usize];
                GenExp::Bin(
                    op,
                    Box::new(gen_exp(rng, scope, GenTy::Int, d)),
                    Box::new(gen_exp(rng, scope, GenTy::Int, d)),
                )
            }
            1 => GenExp::If(
                Box::new(gen_exp(rng, scope, GenTy::Bool, d)),
                Box::new(gen_exp(rng, scope, GenTy::Int, d)),
                Box::new(gen_exp(rng, scope, GenTy::Int, d)),
            ),
            _ => {
                let bound_ty = if rng.chance(1, 2) {
                    GenTy::Int
                } else {
                    GenTy::Bool
                };
                let rhs = gen_exp(rng, scope, bound_ty, d);
                scope.push(bound_ty);
                let body = gen_exp(rng, scope, GenTy::Int, d);
                scope.pop();
                GenExp::Let(Box::new(rhs), Box::new(body))
            }
        },
        GenTy::Bool => match rng.below(3) {
            0 => {
                let op = if rng.chance(1, 2) {
                    GenOp::Eq
                } else {
                    GenOp::Lt
                };
                GenExp::Bin(
                    op,
                    Box::new(gen_exp(rng, scope, GenTy::Int, d)),
                    Box::new(gen_exp(rng, scope, GenTy::Int, d)),
                )
            }
            1 => GenExp::If(
                Box::new(gen_exp(rng, scope, GenTy::Bool, d)),
                Box::new(gen_exp(rng, scope, GenTy::Bool, d)),
                Box::new(gen_exp(rng, scope, GenTy::Bool, d)),
            ),
            _ => GenExp::Bool(rng.chance(1, 2)),
        },
    }
}

/// Renders to surface syntax. `depth` is the number of enclosing
/// binders, so `Var(i)` renders as `x{i}` (names are never shadowed).
fn render(e: &GenExp, binders: usize, out: &mut String) {
    match e {
        GenExp::Int(n) => out.push_str(&n.to_string()),
        GenExp::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        GenExp::Var(i) => out.push_str(&format!("x{i}")),
        GenExp::Bin(op, a, b) => {
            let sym = match op {
                GenOp::Add => "+",
                GenOp::Sub => "-",
                GenOp::Mul => "*",
                GenOp::Eq => "=",
                GenOp::Lt => "<",
            };
            out.push('(');
            render(a, binders, out);
            out.push_str(&format!(" {sym} "));
            render(b, binders, out);
            out.push(')');
        }
        GenExp::If(c, t, f) => {
            out.push_str("(if ");
            render(c, binders, out);
            out.push_str(" then ");
            render(t, binders, out);
            out.push_str(" else ");
            render(f, binders, out);
            out.push(')');
        }
        GenExp::Let(rhs, body) => {
            out.push_str(&format!("(let val x{binders} = "));
            render(rhs, binders, out);
            out.push_str(" in ");
            render(body, binders + 1, out);
            out.push_str(" end)");
        }
    }
}

/// The reference interpreter ("direct eval"): evaluates the generator's
/// AST with the same semantics the pipeline implements (wrapping `i64`
/// arithmetic, lazy conditionals).
fn ref_eval(e: &GenExp, env: &mut Vec<GenVal>) -> GenVal {
    match e {
        GenExp::Int(n) => GenVal::Int(*n),
        GenExp::Bool(b) => GenVal::Bool(*b),
        GenExp::Var(i) => env[*i],
        GenExp::Bin(op, a, b) => {
            let GenVal::Int(x) = ref_eval(a, env) else {
                unreachable!("generator is type-correct")
            };
            let GenVal::Int(y) = ref_eval(b, env) else {
                unreachable!("generator is type-correct")
            };
            match op {
                GenOp::Add => GenVal::Int(x.wrapping_add(y)),
                GenOp::Sub => GenVal::Int(x.wrapping_sub(y)),
                GenOp::Mul => GenVal::Int(x.wrapping_mul(y)),
                GenOp::Eq => GenVal::Bool(x == y),
                GenOp::Lt => GenVal::Bool(x < y),
            }
        }
        GenExp::If(c, t, f) => match ref_eval(c, env) {
            GenVal::Bool(true) => ref_eval(t, env),
            GenVal::Bool(false) => ref_eval(f, env),
            GenVal::Int(_) => unreachable!("generator is type-correct"),
        },
        GenExp::Let(rhs, body) => {
            let v = ref_eval(rhs, env);
            env.push(v);
            let out = ref_eval(body, env);
            env.pop();
            out
        }
    }
}

fn case_expression_differential(rng: &mut Rng) -> Result<(), String> {
    let want = if rng.chance(1, 2) {
        GenTy::Int
    } else {
        GenTy::Bool
    };
    let depth = rng.range(1, 6);
    let e = gen_exp(rng, &mut Vec::new(), want, depth);
    let mut src = String::new();
    render(&e, 0, &mut src);
    let expected = ref_eval(&e, &mut Vec::new());
    let outcome = recmod::run(&src).map_err(|err| format!("pipeline rejected {src}: {err}"))?;
    let agree = match expected {
        GenVal::Int(n) => outcome.value_int() == Some(n),
        GenVal::Bool(b) => outcome.value_bool() == Some(b),
    };
    if agree {
        Ok(())
    } else {
        Err(format!(
            "direct eval disagrees with phase-split eval on {src}: expected {expected:?}"
        ))
    }
}

// ---------------------------------------------------------------------
// Class 1: module differential (paper §3 observational equivalence)
// ---------------------------------------------------------------------

#[derive(Debug, Clone)]
enum ListOp {
    Cons(i64),
    Uncons,
    Null,
}

fn gen_list_ops(rng: &mut Rng) -> Vec<ListOp> {
    let len = rng.range(1, 14);
    (0..len)
        .map(|_| match rng.below(3) {
            0 => ListOp::Cons(rng.range_i64(0, 99)),
            1 => ListOp::Uncons,
            _ => ListOp::Null,
        })
        .collect()
}

fn list_model(ops: &[ListOp]) -> i64 {
    let mut stack: Vec<i64> = Vec::new();
    let mut acc: i64 = 0;
    for op in ops {
        match op {
            ListOp::Cons(v) => stack.push(*v),
            ListOp::Uncons => {
                if let Some(h) = stack.pop() {
                    acc = acc * 7 + h;
                }
            }
            ListOp::Null => acc = acc * 7 + if stack.is_empty() { 1 } else { 2 },
        }
    }
    acc
}

fn list_driver(ops: &[ListOp]) -> String {
    let mut body = String::from("val l0 = List.nil\nval acc0 = 0\n");
    let mut li = 0usize;
    let mut ai = 0usize;
    for op in ops {
        match op {
            ListOp::Cons(v) => {
                body.push_str(&format!("val l{} = List.cons ({v}, l{li})\n", li + 1));
                li += 1;
            }
            ListOp::Uncons => {
                body.push_str(&format!(
                    "val s{ai} = if List.null l{li} then (acc{ai}, l{li}) \
                     else (case List.uncons l{li} of (h, r) => (acc{ai} * 7 + h, r))\n"
                ));
                body.push_str(&format!("val acc{} = case s{ai} of (a, r) => a\n", ai + 1));
                body.push_str(&format!("val l{} = case s{ai} of (a, r) => r\n", li + 1));
                ai += 1;
                li += 1;
            }
            ListOp::Null => {
                body.push_str(&format!(
                    "val acc{} = acc{ai} * 7 + (if List.null l{li} then 1 else 2)\n",
                    ai + 1
                ));
                ai += 1;
            }
        }
    }
    format!("{body};\nacc{ai}")
}

fn case_module_differential(rng: &mut Rng) -> Result<(), String> {
    let ops = gen_list_ops(rng);
    let expected = list_model(&ops);
    for (name, base) in [
        ("transparent", recmod::corpus::TRANSPARENT_LIST),
        ("opaque", recmod::corpus::OPAQUE_LIST),
    ] {
        let program = format!("{base}\n{}", list_driver(&ops));
        let got = recmod::run(&program)
            .map_err(|e| format!("{name} list rejected ops {ops:?}: {e}"))?
            .value_int();
        if got != Some(expected) {
            return Err(format!(
                "{name} list disagrees with the Vec model on {ops:?}: got {got:?}, want {expected}"
            ));
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------
// Class 2: ill-formed input under strict limits
// ---------------------------------------------------------------------

const MUTATION_SPLICES: &[&str] = &[
    "structure",
    "sig",
    "end",
    "val",
    "=",
    "(",
    ")",
    ":>",
    "μ",
    "datatype",
    "of",
    "|",
    "let",
    "in",
    "fun",
    "->",
    "*",
    ";",
    "rec",
    "0x",
];

/// Mutates valid source: random deletions, duplications, and keyword
/// splices at character boundaries.
fn mutate(rng: &mut Rng, src: &str) -> String {
    let mut s: Vec<char> = src.chars().collect();
    let edits = rng.range(1, 4);
    for _ in 0..edits {
        if s.is_empty() {
            break;
        }
        match rng.below(3) {
            0 => {
                // Delete a chunk.
                let at = rng.below(s.len() as u64) as usize;
                let len = (rng.range(1, 20)).min(s.len() - at);
                s.drain(at..at + len);
            }
            1 => {
                // Duplicate a chunk.
                let at = rng.below(s.len() as u64) as usize;
                let len = (rng.range(1, 20)).min(s.len() - at);
                let chunk: Vec<char> = s[at..at + len].to_vec();
                let dst = rng.below(s.len() as u64 + 1) as usize;
                for (k, c) in chunk.into_iter().enumerate() {
                    s.insert(dst + k, c);
                }
            }
            _ => {
                // Splice a keyword/operator.
                let word = MUTATION_SPLICES[rng.below(MUTATION_SPLICES.len() as u64) as usize];
                let dst = rng.below(s.len() as u64 + 1) as usize;
                for (k, c) in word.chars().enumerate() {
                    s.insert(dst + k, c);
                }
            }
        }
    }
    s.into_iter().collect()
}

fn case_ill_formed(rng: &mut Rng) -> Result<(), String> {
    let base = match rng.below(4) {
        0 => recmod::corpus::OPAQUE_LIST.to_string(),
        1 => recmod::corpus::TRANSPARENT_LIST.to_string(),
        2 => recmod::corpus::EXPR_DECL_RDS.to_string(),
        _ => {
            let e = gen_exp(rng, &mut Vec::new(), GenTy::Int, 4);
            let mut src = String::new();
            render(&e, 0, &mut src);
            src
        }
    };
    let mutated = mutate(rng, &base);
    let limits = Limits::strict().with_deadline_ms(5_000);
    // Any structured verdict is acceptable; the caller's catch_unwind
    // turns a panic into the failure.
    match recmod::surface::compile_with_limits(&mutated, &limits) {
        Ok(_) => Ok(()),
        Err(errors) if errors.is_empty() => {
            Err("compile_with_limits returned Err with no diagnostics".to_string())
        }
        Err(_) => Ok(()),
    }
}

// ---------------------------------------------------------------------
// Class 3: kernel μ-fuzz
// ---------------------------------------------------------------------

/// Is this verdict a resource bound rather than a semantic answer?
fn limited(e: &TypeError) -> bool {
    e.is_limit()
}

fn case_kernel_mu(rng: &mut Rng) -> Result<(), String> {
    let seed = rng.next_u64();
    let size = rng.range(1, 10);
    let (a, b) = match rng.below(4) {
        0 => recmod_bench::gen_shao_pair(size, seed),
        1 => recmod_bench::gen_unrolled_pair(size, seed),
        2 => recmod_bench::gen_nested_pair(size, seed),
        _ => {
            // A deep μ-tower: μα.μα.…μα.int, depth past the strict
            // bound, compared with itself. Must produce a structured
            // limit error (or a verdict), never a stack overflow.
            let depth = rng.range(300, 3_000);
            let mut c = Con::Int;
            for _ in 0..depth {
                c = Con::Mu(
                    recmod::syntax::intern::hc(Kind::Type),
                    recmod::syntax::intern::hc(c),
                );
            }
            (c.clone(), c)
        }
    };
    let limits = Limits::strict().with_deadline_ms(5_000);
    let equi = Tc::with_mode_and_limits(RecMode::Equi, limits).con_equiv(
        &mut Ctx::new(),
        &a,
        &b,
        &Kind::Type,
    );
    let iso = Tc::with_mode_and_limits(RecMode::IsoShao, limits).con_equiv(
        &mut Ctx::new(),
        &a,
        &b,
        &Kind::Type,
    );
    // §5: IsoShao equality is contained in equi-recursive equality, so
    // an iso acceptance with an equi *semantic* rejection is a bug.
    // Resource verdicts on either side are inconclusive.
    match (&equi, &iso) {
        (Err(e), Ok(())) if !limited(e) => Err(format!(
            "IsoShao accepts but Equi rejects (seed {seed}, size {size}): {e}"
        )),
        _ => Ok(()),
    }
}

// ---------------------------------------------------------------------
// Class 4: interning differential
// ---------------------------------------------------------------------

/// Reference structural equality on kinds: a deep tree walk that never
/// consults interning ids, used to cross-check the id-based fast path.
fn deep_eq_kind(a: &Kind, b: &Kind) -> bool {
    match (a, b) {
        (Kind::Type, Kind::Type) | (Kind::Unit, Kind::Unit) => true,
        (Kind::Singleton(c1), Kind::Singleton(c2)) => deep_eq_con(c1, c2),
        (Kind::Pi(a1, b1), Kind::Pi(a2, b2)) | (Kind::Sigma(a1, b1), Kind::Sigma(a2, b2)) => {
            deep_eq_kind(a1, a2) && deep_eq_kind(b1, b2)
        }
        _ => false,
    }
}

/// Reference structural equality on constructors (deep walk, no ids).
fn deep_eq_con(a: &Con, b: &Con) -> bool {
    match (a, b) {
        (Con::Var(i), Con::Var(j)) | (Con::Fst(i), Con::Fst(j)) => i == j,
        (Con::Star, Con::Star)
        | (Con::Int, Con::Int)
        | (Con::Bool, Con::Bool)
        | (Con::UnitTy, Con::UnitTy) => true,
        (Con::Lam(k1, b1), Con::Lam(k2, b2)) | (Con::Mu(k1, b1), Con::Mu(k2, b2)) => {
            deep_eq_kind(k1, k2) && deep_eq_con(b1, b2)
        }
        (Con::App(x1, y1), Con::App(x2, y2))
        | (Con::Pair(x1, y1), Con::Pair(x2, y2))
        | (Con::Arrow(x1, y1), Con::Arrow(x2, y2))
        | (Con::Prod(x1, y1), Con::Prod(x2, y2)) => deep_eq_con(x1, x2) && deep_eq_con(y1, y2),
        (Con::Proj1(x1), Con::Proj1(x2)) | (Con::Proj2(x1), Con::Proj2(x2)) => deep_eq_con(x1, x2),
        (Con::Sum(cs1), Con::Sum(cs2)) => {
            cs1.len() == cs2.len() && cs1.iter().zip(cs2).all(|(c1, c2)| deep_eq_con(c1, c2))
        }
        _ => false,
    }
}

/// Rebuilds a constructor bottom-up through fresh `hc` calls, so every
/// node takes the interning path again from scratch.
fn deep_rebuild_con(c: &Con) -> Con {
    use recmod::syntax::intern::hc;
    match c {
        Con::Var(_) | Con::Fst(_) | Con::Star | Con::Int | Con::Bool | Con::UnitTy => c.clone(),
        Con::Lam(k, b) => Con::Lam(hc(deep_rebuild_kind(k)), hc(deep_rebuild_con(b))),
        Con::Mu(k, b) => Con::Mu(hc(deep_rebuild_kind(k)), hc(deep_rebuild_con(b))),
        Con::App(a, b) => Con::App(hc(deep_rebuild_con(a)), hc(deep_rebuild_con(b))),
        Con::Pair(a, b) => Con::Pair(hc(deep_rebuild_con(a)), hc(deep_rebuild_con(b))),
        Con::Proj1(a) => Con::Proj1(hc(deep_rebuild_con(a))),
        Con::Proj2(a) => Con::Proj2(hc(deep_rebuild_con(a))),
        Con::Arrow(a, b) => Con::Arrow(hc(deep_rebuild_con(a)), hc(deep_rebuild_con(b))),
        Con::Prod(a, b) => Con::Prod(hc(deep_rebuild_con(a)), hc(deep_rebuild_con(b))),
        Con::Sum(cs) => Con::Sum(cs.iter().map(|c| hc(deep_rebuild_con(c))).collect()),
    }
}

fn deep_rebuild_kind(k: &Kind) -> Kind {
    use recmod::syntax::intern::hc;
    match k {
        Kind::Type => Kind::Type,
        Kind::Unit => Kind::Unit,
        Kind::Singleton(c) => Kind::Singleton(hc(deep_rebuild_con(c))),
        Kind::Pi(a, b) => Kind::Pi(hc(deep_rebuild_kind(a)), hc(deep_rebuild_kind(b))),
        Kind::Sigma(a, b) => Kind::Sigma(hc(deep_rebuild_kind(a)), hc(deep_rebuild_kind(b))),
    }
}

/// Checks that the hash-consed representation's id-based equality is
/// exactly reference structural equality, on random constructor pairs
/// from every generator family.
fn case_intern_differential(rng: &mut Rng) -> Result<(), String> {
    use recmod::syntax::intern::hc;
    let seed = rng.next_u64();
    let size = rng.range(1, 12);
    let (a, b) = match rng.below(3) {
        0 => recmod_bench::gen_shao_pair(size, seed),
        1 => recmod_bench::gen_unrolled_pair(size, seed),
        _ => recmod_bench::gen_nested_pair(size, seed),
    };
    let reference = deep_eq_con(&a, &b);
    // Interned equality (derived `==` is shallow: variant tag + child
    // ids) must coincide with the deep reference walk.
    if (a == b) != reference {
        return Err(format!(
            "shallow == disagrees with deep structural equality \
             (seed {seed}, size {size}): shallow {}, deep {reference}",
            a == b
        ));
    }
    if (hc(a.clone()).id() == hc(b.clone()).id()) != reference {
        return Err(format!(
            "intern ids disagree with deep structural equality \
             (seed {seed}, size {size})"
        ));
    }
    // Rebuilding every node through fresh intern calls must converge on
    // the identical canonical pointers.
    let ra = hc(deep_rebuild_con(&a));
    if ra != hc(a.clone()) || !deep_eq_con(&ra, &a) {
        return Err(format!(
            "deep rebuild lost canonicity (seed {seed}, size {size})"
        ));
    }
    Ok(())
}

// ---------------------------------------------------------------------
// Class 5: thread isolation through the parallel driver
// ---------------------------------------------------------------------

/// Compiles a random batch (valid and mutated corpus programs) through
/// the parallel driver on two workers and on one, then checks:
/// identical outcomes (order, status, diagnostics), no internal-error
/// statuses from worker panics, merged worker counters summing to the
/// batch size, and zero bleed into the calling thread's *per-thread*
/// interner counters or telemetry sink. Workers share the global
/// interner by design (that is the point of the sharded table), so the
/// isolation invariant is about observation — counters, memo caches,
/// sinks — not about structure; a final check spawns N threads
/// interning the same random constructor concurrently and asserts they
/// all converge on one canonical `NodeId` per structurally-equal node.
fn case_thread_isolation(rng: &mut Rng) -> Result<(), String> {
    use recmod::driver::{compile_batch, DriverConfig, FileStatus, Job};

    let n = rng.range(3, 7);
    let jobs: Vec<Job> = (0..n)
        .map(|i| {
            let base = match rng.below(3) {
                0 => recmod::corpus::OPAQUE_LIST,
                1 => recmod::corpus::TRANSPARENT_LIST,
                _ => recmod::corpus::EXPR_DECL_RDS,
            };
            let src = if rng.chance(2, 3) {
                mutate(rng, base)
            } else {
                base.to_string()
            };
            Job::new(format!("iso{i}.rm"), src)
        })
        .collect();

    // Observe the calling thread: its interner counters and its own
    // telemetry sink must be untouched by the workers.
    let intern_before = recmod::syntax::intern::intern_stats();
    recmod::telemetry::install(recmod::telemetry::Config::default());
    recmod::telemetry::count("fuzz.sentinel", 1);

    let cfg = DriverConfig {
        jobs: 2,
        limits: Limits::strict(),
        deadline_ms: Some(5_000),
        telemetry: Some(recmod::telemetry::Config::default()),
        ..DriverConfig::default()
    };
    let par = compile_batch(&jobs, &cfg);
    let seq = compile_batch(
        &jobs,
        &DriverConfig {
            jobs: 1,
            ..cfg.clone()
        },
    );

    let own = recmod::telemetry::uninstall().ok_or("calling thread's sink vanished")?;
    let intern_after = recmod::syntax::intern::intern_stats();

    if intern_after.hits != intern_before.hits || intern_after.misses != intern_before.misses {
        return Err(format!(
            "worker interning bled into the calling thread: {intern_before:?} -> {intern_after:?}"
        ));
    }
    if own.counter("fuzz.sentinel") != 1 || own.counter("driver.files") != 0 {
        return Err(format!(
            "worker telemetry bled into the calling thread's sink: {:?}",
            own.counters
        ));
    }

    for (a, b) in par.outcomes.iter().zip(&seq.outcomes) {
        if a.status == FileStatus::Internal {
            return Err(format!(
                "panic during parallel compile of {}: {:?}",
                a.name, a.diagnostics
            ));
        }
        if a.status != b.status || a.diagnostics != b.diagnostics || a.summaries != b.summaries {
            return Err(format!(
                "jobs=2 and jobs=1 disagree on {}: {:?} vs {:?}",
                a.name, a.status, b.status
            ));
        }
    }
    if par.exit_code() != seq.exit_code() {
        return Err(format!(
            "exit codes disagree: jobs=2 -> {}, jobs=1 -> {}",
            par.exit_code(),
            seq.exit_code()
        ));
    }
    let merged_files = par
        .merged
        .as_ref()
        .map(|r| r.counter("driver.files"))
        .unwrap_or(0);
    let per_worker: u64 = par
        .workers
        .iter()
        .filter_map(|w| w.report.as_ref())
        .map(|r| r.counter("driver.files"))
        .sum();
    if merged_files != n as u64 || per_worker != n as u64 {
        return Err(format!(
            "driver.files mismatch: merged {merged_files}, per-worker sum {per_worker}, want {n}"
        ));
    }

    // Shared-interner canonicity: N threads interning the same random
    // constructor concurrently must agree on one canonical id per node.
    // Each thread keeps its handles alive across the comparison —
    // canonicity is only promised among live holders (entries are weak).
    let seed = rng.next_u64();
    let size = rng.range(1, 10);
    let threads = rng.range(2, 5);
    let per_thread: Vec<Vec<recmod::syntax::intern::HC<Con>>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                s.spawn(move || {
                    use recmod::syntax::intern::hc;
                    let (a, b) = recmod_bench::gen_nested_pair(size, seed);
                    vec![hc(a), hc(b)]
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("interning thread panicked"))
            .collect()
    });
    let first = &per_thread[0];
    for (t, held) in per_thread.iter().enumerate().skip(1) {
        for (i, (x, y)) in first.iter().zip(held).enumerate() {
            if x.id() != y.id() {
                return Err(format!(
                    "concurrent interning disagreed on canonical id: thread 0 node {i} \
                     has id {:?}, thread {t} has {:?} (seed {seed}, size {size})",
                    x.id(),
                    y.id()
                ));
            }
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------
// Class 6: profiled differential (observation must not perturb)
// ---------------------------------------------------------------------

/// One compile on a fresh big-stack thread and — when `profiled` — a
/// full profiling sink. Returns the verdict (ok?), the rendered
/// diagnostics, the stable error codes, and whether any spans were
/// recorded. A fresh thread per compile keeps the verdict a pure
/// function of the source: neither run can warm the other's
/// thread-local memo caches (the global interner is shared, but
/// interning only dedups structure — it never changes a verdict).
#[allow(clippy::type_complexity)]
fn compile_fresh(
    src: &str,
    profiled: bool,
) -> Result<(bool, Vec<String>, Vec<&'static str>, bool), String> {
    let src = src.to_string();
    let run = move || {
        if profiled {
            recmod::telemetry::install(recmod::telemetry::Config::profiled());
        }
        let limits = Limits::strict();
        let (ok, diagnostics, codes) = match recmod::surface::compile_with_limits(&src, &limits) {
            Ok(_) => (true, Vec::new(), Vec::new()),
            Err(errors) => (
                false,
                errors.iter().map(|e| format!("{e}")).collect(),
                errors.iter().map(|e| e.code()).collect(),
            ),
        };
        let spans = recmod::telemetry::uninstall().is_some_and(|r| !r.spans.is_empty());
        (ok, diagnostics, codes, spans)
    };
    std::thread::Builder::new()
        .stack_size(recmod::driver::DEFAULT_STACK_SIZE)
        .spawn(run)
        .map_err(|e| format!("spawn failed: {e}"))?
        .join()
        .map_err(|_| "panic during profiled-differential compile".to_string())
}

/// A base program for the observation-focused classes: a corpus entry
/// or a generated expression, mutated half the time.
fn observed_source(rng: &mut Rng) -> String {
    let base = match rng.below(4) {
        0 => recmod::corpus::OPAQUE_LIST.to_string(),
        1 => recmod::corpus::TRANSPARENT_LIST.to_string(),
        2 => recmod::corpus::EXPR_DECL_RDS.to_string(),
        _ => {
            let e = gen_exp(rng, &mut Vec::new(), GenTy::Int, 4);
            let mut src = String::new();
            render(&e, 0, &mut src);
            src
        }
    };
    if rng.chance(1, 2) {
        mutate(rng, &base)
    } else {
        base
    }
}

/// Compiles the same program with and without a profiling sink: the
/// verdicts must be byte-identical (judgement spans, counter samples,
/// and the raised span cap may observe the pipeline but never steer
/// it) — including the stable error codes — and a successful profiled
/// compile must record spans.
fn case_profiled_differential(rng: &mut Rng) -> Result<(), String> {
    let src = observed_source(rng);
    let (plain_ok, plain_diags, plain_codes, _) = compile_fresh(&src, false)?;
    let (prof_ok, prof_diags, prof_codes, prof_spans) = compile_fresh(&src, true)?;
    if plain_ok != prof_ok || plain_diags != prof_diags || plain_codes != prof_codes {
        return Err(format!(
            "profiling changed the verdict on {src:?}: \
             plain ({plain_ok}, {plain_diags:?}, {plain_codes:?}) \
             vs profiled ({prof_ok}, {prof_diags:?}, {prof_codes:?})"
        ));
    }
    if prof_ok && !prof_spans {
        return Err(format!(
            "successful profiled compile recorded no spans on {src:?}"
        ));
    }
    Ok(())
}

// ---------------------------------------------------------------------
// Class 8: diagnostics serialization totality
// ---------------------------------------------------------------------

/// Is `code` a well-formed stable error code (`K`/`S`/`L`/`I` + three
/// digits)?
fn well_formed_code(code: &str) -> bool {
    code.len() == 4
        && matches!(code.as_bytes()[0], b'K' | b'S' | b'L' | b'I')
        && code.as_bytes()[1..].iter().all(u8::is_ascii_digit)
}

/// Compiles an arbitrary (often mutated) program under strict limits
/// and asserts diagnostics serialization is *total*: every diagnostic
/// carries a well-formed stable code and non-empty provenance, its JSON
/// form parses back with the code intact, and the judgement frame stack
/// is fully unwound when the compile returns (well-nested guards).
fn case_diagnostics_total(rng: &mut Rng) -> Result<(), String> {
    let src = observed_source(rng);
    let run = {
        let src = src.clone();
        move || {
            let limits = Limits::strict();
            let diags = match recmod::surface::compile_with_limits(&src, &limits) {
                Ok(_) => Vec::new(),
                Err(errors) => recmod::surface::diag::from_errors(&src, &errors),
            };
            let depth = recmod::telemetry::diag::frame_depth();
            (diags, depth)
        }
    };
    let (diags, depth) = std::thread::Builder::new()
        .stack_size(recmod::driver::DEFAULT_STACK_SIZE)
        .spawn(run)
        .map_err(|e| format!("spawn failed: {e}"))?
        .join()
        .map_err(|_| format!("panic while building diagnostics for {src:?}"))?;
    if depth != 0 {
        return Err(format!(
            "provenance frames not well-nested: depth {depth} after compile of {src:?}"
        ));
    }
    for d in &diags {
        if !well_formed_code(d.code) {
            return Err(format!("malformed code {:?} on {src:?}", d.code));
        }
        if d.provenance.is_empty() {
            return Err(format!(
                "empty provenance on {} diagnostic for {src:?}",
                d.code
            ));
        }
        let json = d.to_json().to_compact();
        let doc = recmod::telemetry::json::parse(&json)
            .map_err(|e| format!("diagnostic JSON does not parse back ({e}): {json}"))?;
        if doc.get("code").and_then(|c| c.as_str()) != Some(d.code) {
            return Err(format!("code lost in JSON round-trip: {json}"));
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------
// Class 9: chaos serve (the compile service under fault injection)
// ---------------------------------------------------------------------

/// Drives a batch of (possibly mutated) programs through a live compile
/// server with deterministic fault injection armed, then checks the
/// service contract:
///
/// * exactly one well-formed response per request — no hang, no drop,
///   no duplicate;
/// * every verdict (status, rendered diagnostics, summaries) is
///   byte-identical to the unfaulted `jobs=1` batch driver's on the
///   same sources — faults fire on the first attempt only, so retries
///   always converge to the clean verdict;
/// * requests the plan left unfaulted never show retry or injection
///   artifacts (`seq` equals the submission index because submission is
///   single-threaded, so [`FaultPlan::decide`] replays the server's own
///   fault schedule);
/// * the server drains cleanly: nothing shed, every accepted request
///   completed, every spawned worker joined (kills included — that is
///   the respawn path), and the flight recorder's frame stack balanced
///   around every compile;
/// * telemetry holds under chaos: every response carries a unique
///   16-hex trace id, requests that asked for `trace: true` (half of
///   them — which also proves verdicts do not diverge with tracing on)
///   get balanced span events (one `serve.queue` and one
///   `serve.attempt` per attempt, killed attempts included), and
///   untraced requests get no trace at all.
fn case_chaos_serve(rng: &mut Rng) -> Result<(), String> {
    use recmod::driver::serve::{Request, ResponseStatus, ServeConfig, Server};
    use recmod::driver::{compile_batch, DriverConfig, Job};
    use recmod::telemetry::fault::FaultPlan;
    use recmod::telemetry::json::Json;
    use std::sync::mpsc::channel;
    use std::time::Duration;

    let n = rng.range(6, 13);
    let sources: Vec<String> = (0..n).map(|_| observed_source(rng)).collect();
    let plan = FaultPlan {
        seed: rng.next_u64(),
        rate_ppm: 400_000,
        only: None,
    };
    let limits = Limits::strict();

    // The unfaulted reference: the same sources through the batch
    // driver on one warm worker, no deadline (a genuine wall-clock
    // limit here would be schedule-dependent and break the comparison;
    // injected deadline storms do not need a real deadline).
    let jobs: Vec<Job> = sources
        .iter()
        .enumerate()
        .map(|(i, s)| Job::new(format!("chaos{i}.rm"), s.clone()))
        .collect();
    let batch = compile_batch(
        &jobs,
        &DriverConfig {
            jobs: 1,
            limits,
            ..DriverConfig::default()
        },
    );

    let mut server = Server::start(ServeConfig {
        workers: 2,
        queue_depth: n, // roomy: nothing may be shed
        limits,
        default_deadline_ms: None,
        backoff_ms: 1,
        faults: Some(plan),
        crash_dir: None,
        trace_seed: plan.seed,
        ..ServeConfig::default()
    })
    .map_err(|e| format!("server failed to start: {e}"))?;

    // Single-threaded submission: request i is admission seq i. Every
    // other request asks for its trace — the verdict comparison below
    // covers both traced and untraced requests.
    let (tx, rx) = channel();
    for (i, src) in sources.iter().enumerate() {
        let mut req = Request::new(i as u64, format!("chaos{i}.rm"), src.clone());
        req.trace = i % 2 == 0;
        server.submit(req, tx.clone());
    }
    drop(tx);

    let mut responses: Vec<Option<recmod::driver::serve::Response>> =
        (0..n).map(|_| None).collect();
    for _ in 0..n {
        let r = rx
            .recv_timeout(Duration::from_secs(120))
            .map_err(|_| "lost response: server wedged or dropped a request".to_string())?;
        let Some(id) = r.id.as_u64() else {
            return Err(format!("response with non-integer id: {:?}", r.id));
        };
        let slot = responses
            .get_mut(id as usize)
            .ok_or_else(|| format!("response for unknown id {id}"))?;
        if slot.is_some() {
            return Err(format!("duplicate response for id {id}"));
        }
        *slot = Some(r);
    }
    server.shutdown();
    let stats = server.stats();

    for (i, (slot, outcome)) in responses.iter().zip(&batch.outcomes).enumerate() {
        let r = slot
            .as_ref()
            .ok_or_else(|| format!("no response for {i}"))?;
        let faulted = plan.decide(i as u64).is_some();
        if r.status != ResponseStatus::from(outcome.status) {
            return Err(format!(
                "chaos{i}.rm (faulted: {faulted}): serve status {} vs batch {:?}",
                r.status.label(),
                outcome.status
            ));
        }
        if r.rendered != outcome.diagnostics || r.summaries != outcome.summaries {
            return Err(format!(
                "chaos{i}.rm (faulted: {faulted}): serve verdict diverges from batch\n\
                 serve:  {:?}\n batch: {:?}",
                r.rendered, outcome.diagnostics
            ));
        }
        if !faulted && (r.attempts != 1 || !r.injected.is_empty()) {
            return Err(format!(
                "chaos{i}.rm was never faulted but shows attempts {} / injected {:?}",
                r.attempts, r.injected
            ));
        }
    }

    if stats.shed != 0 || stats.accepted != n as u64 || stats.completed != n as u64 {
        return Err(format!(
            "request accounting broken: accepted {}, completed {}, shed {} (want {n}, {n}, 0)",
            stats.accepted, stats.completed, stats.shed
        ));
    }
    if stats.workers_spawned != stats.workers_joined {
        return Err(format!(
            "leaked workers: spawned {} joined {}",
            stats.workers_spawned, stats.workers_joined
        ));
    }
    if stats.frame_imbalance != 0 {
        return Err(format!(
            "flight recorder unbalanced {} times across compiles",
            stats.frame_imbalance
        ));
    }

    let mut trace_ids = std::collections::BTreeSet::new();
    for (i, slot) in responses.iter().enumerate() {
        let Some(r) = slot.as_ref() else { continue };
        let tid = r
            .trace_id
            .as_ref()
            .ok_or_else(|| format!("chaos{i}.rm: admitted response without a trace id"))?;
        if tid.len() != 16 || !tid.bytes().all(|b| b.is_ascii_hexdigit()) {
            return Err(format!("chaos{i}.rm: malformed trace id `{tid}`"));
        }
        if !trace_ids.insert(tid.clone()) {
            return Err(format!("chaos{i}.rm: duplicate trace id `{tid}`"));
        }
        if i % 2 == 0 {
            let events = r
                .trace
                .as_ref()
                .and_then(|t| t.get("events"))
                .and_then(Json::as_arr)
                .ok_or_else(|| format!("chaos{i}.rm asked for a trace but got none"))?;
            let named = |name: &str| {
                events
                    .iter()
                    .filter(|e| e.get("name").and_then(Json::as_str) == Some(name))
                    .count()
            };
            let (queues, attempts) = (named("serve.queue"), named("serve.attempt"));
            if queues != r.attempts as usize || attempts != r.attempts as usize {
                return Err(format!(
                    "chaos{i}.rm: unbalanced span events over {} attempt(s): \
                     {queues} serve.queue, {attempts} serve.attempt",
                    r.attempts
                ));
            }
        } else if r.trace.is_some() {
            return Err(format!(
                "chaos{i}.rm never asked for a trace but one was echoed"
            ));
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------
// Class 10: NbE differential (the two equivalence engines must agree)
// ---------------------------------------------------------------------

/// A kernel outcome as comparable plain data: the result's structural
/// rendering on success, the rendered message plus stable code on a
/// *semantic* failure, and `None` on a resource verdict — the engines
/// deliberately meter fuel differently (per-transition vs
/// per-substitution), so limit verdicts are inconclusive, like class
/// 3's treatment.
fn engine_outcome<T: std::fmt::Debug>(
    r: Result<T, TypeError>,
) -> Option<Result<String, (String, &'static str)>> {
    match r {
        Ok(v) => Some(Ok(format!("{v:?}"))),
        Err(e) if e.is_limit() => None,
        Err(e) => Some(Err((format!("{e}"), e.code()))),
    }
}

/// Random well- and ill-kinded constructors through whnf, kind
/// synthesis, and equivalence under both engines, plus a whole-program
/// compile under each engine on fresh threads: everything observable —
/// normal forms, verdicts, stable codes, rendered diagnostics — must be
/// identical.
fn case_nbe_differential(rng: &mut Rng) -> Result<(), String> {
    use recmod::kernel::EquivEngine;
    use recmod::syntax::intern::hc;

    let seed = rng.next_u64();
    let size = rng.range(1, 10);
    let (a, b) = match rng.below(3) {
        0 => recmod_bench::gen_shao_pair(size, seed),
        1 => recmod_bench::gen_unrolled_pair(size, seed),
        _ => recmod_bench::gen_nested_pair(size, seed),
    };
    // Half the time, break kinding with an ill-kinded elimination so
    // the engines' error paths (stuck-spine rebuilds, NotAPiKind /
    // NotASigmaKind reporting) are compared too, not just the happy
    // path.
    let (a, b) = if rng.chance(1, 2) {
        match rng.below(3) {
            0 => (Con::Proj1(hc(a)), b),
            1 => (Con::App(hc(a), hc(Con::Star)), b),
            _ => (a, Con::Proj2(hc(b))),
        }
    } else {
        (a, b)
    };

    // Fuel-only limits: a wall-clock deadline would make verdicts
    // schedule-dependent and break the differential.
    let limits = Limits::default();
    let run = |engine: EquivEngine| {
        let tc = Tc::with_engine(engine, RecMode::Equi, limits);
        let mut ctx = Ctx::new();
        [
            engine_outcome(tc.whnf(&mut ctx, &a)),
            engine_outcome(tc.whnf(&mut ctx, &b)),
            engine_outcome(tc.synth_con(&mut ctx, &a)),
            engine_outcome(tc.synth_con(&mut ctx, &b)),
            engine_outcome(tc.con_equiv(&mut ctx, &a, &b, &Kind::Type)),
        ]
    };
    let nbe = run(EquivEngine::Nbe);
    let subst = run(EquivEngine::Subst);
    for (what, (x, y)) in ["whnf a", "whnf b", "synth a", "synth b", "equiv"]
        .iter()
        .zip(nbe.iter().zip(&subst))
    {
        if let (Some(x), Some(y)) = (x, y) {
            if x != y {
                return Err(format!(
                    "engines disagree on {what} (seed {seed}, size {size}):\n \
                     nbe:   {x:?}\n subst: {y:?}"
                ));
            }
        }
    }

    // A whole program through the pipeline under each engine, on fresh
    // big-stack threads so neither run warms the other's interner or
    // caches. `set_thread_engine` scopes the override to the spawned
    // thread; verdict, codes, and rendered diagnostics must agree
    // unless either side hit a resource limit (`L…` codes).
    let src = observed_source(rng);
    let compile_under = |engine: EquivEngine| {
        let worker_src = src.clone();
        std::thread::Builder::new()
            .stack_size(recmod::driver::DEFAULT_STACK_SIZE)
            .spawn(move || {
                recmod::kernel::set_thread_engine(Some(engine));
                let out =
                    match recmod::surface::compile_with_limits(&worker_src, &Limits::default()) {
                        Ok(_) => (true, Vec::new(), Vec::new()),
                        Err(errors) => (
                            false,
                            errors.iter().map(|e| format!("{e}")).collect::<Vec<_>>(),
                            errors.iter().map(|e| e.code()).collect::<Vec<_>>(),
                        ),
                    };
                recmod::kernel::set_thread_engine(None);
                out
            })
            .map_err(|e| format!("spawn failed: {e}"))?
            .join()
            .map_err(|_| format!("panic compiling {src:?} under {engine:?}"))
    };
    let nbe_c = compile_under(EquivEngine::Nbe)?;
    let sub_c = compile_under(EquivEngine::Subst)?;
    let hit_limit = |codes: &[&str]| codes.iter().any(|c| c.starts_with('L'));
    if hit_limit(&nbe_c.2) || hit_limit(&sub_c.2) {
        return Ok(()); // resource verdicts are engine-metering-dependent
    }
    if nbe_c != sub_c {
        return Err(format!(
            "pipeline verdicts disagree between engines on {src:?}:\n \
             nbe:   {nbe_c:?}\n subst: {sub_c:?}"
        ));
    }
    Ok(())
}

// ---------------------------------------------------------------------
// Driver
// ---------------------------------------------------------------------

/// Human-readable class name for a seed (for failure reports).
pub fn case_class(seed: u64) -> &'static str {
    match seed % 10 {
        0 => "expression-differential",
        1 => "module-differential",
        2 => "ill-formed-input",
        3 => "kernel-mu",
        4 => "intern-differential",
        5 => "thread-isolation",
        6 => "profiled-differential",
        7 => "diagnostics-total",
        8 => "chaos-serve",
        _ => "nbe-differential",
    }
}

/// Runs the case determined by `seed`. `Err` describes a differential
/// mismatch or a structured-robustness violation; panics are left to
/// the caller to catch (they are always bugs).
pub fn run_case(seed: u64) -> Result<(), String> {
    let mut rng = Rng::new(seed);
    match seed % 10 {
        0 => case_expression_differential(&mut rng),
        1 => case_module_differential(&mut rng),
        2 => case_ill_formed(&mut rng),
        3 => case_kernel_mu(&mut rng),
        4 => case_intern_differential(&mut rng),
        5 => case_thread_isolation(&mut rng),
        6 => case_profiled_differential(&mut rng),
        7 => case_diagnostics_total(&mut rng),
        8 => case_chaos_serve(&mut rng),
        _ => case_nbe_differential(&mut rng),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generator_is_deterministic() {
        let mut a = Rng::new(7);
        let mut b = Rng::new(7);
        let ea = gen_exp(&mut a, &mut Vec::new(), GenTy::Int, 5);
        let eb = gen_exp(&mut b, &mut Vec::new(), GenTy::Int, 5);
        let (mut sa, mut sb) = (String::new(), String::new());
        render(&ea, 0, &mut sa);
        render(&eb, 0, &mut sb);
        assert_eq!(sa, sb);
    }

    #[test]
    fn reference_interpreter_basics() {
        // (1 + 2) * 3 = 9, and 9 < 10.
        let e = GenExp::Bin(
            GenOp::Lt,
            Box::new(GenExp::Bin(
                GenOp::Mul,
                Box::new(GenExp::Bin(
                    GenOp::Add,
                    Box::new(GenExp::Int(1)),
                    Box::new(GenExp::Int(2)),
                )),
                Box::new(GenExp::Int(3)),
            )),
            Box::new(GenExp::Int(10)),
        );
        assert_eq!(ref_eval(&e, &mut Vec::new()), GenVal::Bool(true));
    }

    #[test]
    fn mutation_never_panics_the_mutator() {
        let mut rng = Rng::new(99);
        for _ in 0..50 {
            let _ = mutate(&mut rng, recmod::corpus::OPAQUE_LIST);
        }
    }
}
