//! Resource-limit behaviour: pathologically deep input must produce a
//! structured `LimitExceeded` from every pipeline stage — never a stack
//! overflow, never a hang. Deep cases run on a big-stack thread so the
//! limits layer (not the 2 MB test-thread stack) is what stops them.

use recmod::kernel::{Ctx, Tc};
use recmod::surface::ast::{BinOp, Exp};
use recmod::surface::{Elaborator, Span};
use recmod::syntax::ast::{Con, Kind, Module, Sig, Term, Ty};
use recmod::telemetry::Limits;

const DEPTH: usize = 10_000;

fn deep_parens(depth: usize) -> String {
    let mut s = String::with_capacity(2 * depth + 1);
    for _ in 0..depth {
        s.push('(');
    }
    s.push('1');
    for _ in 0..depth {
        s.push(')');
    }
    s
}

#[test]
fn parser_reports_limit_on_deep_nesting() {
    recmod::eval::run_big_stack(256, || {
        let src = deep_parens(DEPTH);
        let errors = recmod::surface::parse_with(&src, &Limits::default())
            .expect_err("depth-10000 nesting must not parse");
        assert!(
            errors.iter().any(|e| e.is_limit()),
            "expected a limit error, got: {errors:?}"
        );
        let msg = errors
            .iter()
            .find(|e| e.is_limit())
            .map(ToString::to_string)
            .unwrap_or_default();
        assert!(
            msg.contains("parse"),
            "limit not attributed to parse: {msg}"
        );
    });
}

#[test]
fn full_compile_reports_limit_on_deep_nesting() {
    recmod::eval::run_big_stack(256, || {
        let src = deep_parens(DEPTH);
        let errors = recmod::surface::compile_with_limits(&src, &Limits::default())
            .expect_err("depth-10000 nesting must not compile");
        assert!(errors.iter().any(|e| e.is_limit()), "got: {errors:?}");
    });
}

#[test]
fn elaborator_reports_limit_on_deep_ast() {
    recmod::eval::run_big_stack(256, || {
        // Built programmatically: the parser's own guard would otherwise
        // fire first and the elaborator guard would go untested.
        let sp = Span::new(0, 1);
        let mut e = Exp::Int(1, sp);
        for _ in 0..DEPTH {
            e = Exp::Bin(BinOp::Add, Box::new(Exp::Int(1, sp)), Box::new(e), sp);
        }
        let err = Elaborator::with_limits(Limits::default())
            .elab_exp(&e)
            .expect_err("depth-10000 AST must not elaborate");
        assert!(err.is_limit(), "got: {err}");
        assert!(
            err.to_string().contains("elaborate"),
            "limit not attributed to elaborate: {err}"
        );
    });
}

#[test]
fn kernel_reports_limit_on_deep_mu_tower() {
    recmod::eval::run_big_stack(256, || {
        let mut c = Con::Int;
        for _ in 0..DEPTH {
            c = Con::Mu(
                recmod::syntax::intern::hc(Kind::Type),
                recmod::syntax::intern::hc(c),
            );
        }
        let tc = Tc::with_limits(Limits::default());
        let err = tc
            .synth_con(&mut Ctx::new(), &c)
            .expect_err("depth-10000 μ-tower must not kind-check");
        assert!(err.is_limit(), "got: {err}");
    });
}

#[test]
fn phase_split_reports_limit_on_deep_module() {
    recmod::eval::run_big_stack(256, || {
        let sig = Sig::Struct(recmod::syntax::intern::hc(Kind::Type), Box::new(Ty::Unit));
        let mut m = Module::Struct(Con::Int, Term::Star);
        for _ in 0..DEPTH {
            m = Module::Seal(Box::new(m), Box::new(sig.clone()));
        }
        let tc = Tc::with_limits(Limits::default());
        let err = recmod::phase::split_module(&tc, &mut Ctx::new(), &m)
            .expect_err("depth-10000 seal tower must not split");
        assert!(err.is_limit(), "got: {err}");
    });
}

#[test]
fn evaluator_reports_limit_on_deep_recursion() {
    recmod::eval::run_big_stack(256, || {
        let src = "fun f (n : int) : int = if n < 1 then 0 else 1 + f (n - 1)\n;\nf 100000";
        let compiled = recmod::compile(src).expect("the driver itself is well-typed");
        let term = compiled.program();
        let mut interp = recmod::eval::Interp::with_pipeline_limits(&Limits::strict());
        let err = interp
            .run(&term)
            .expect_err("100000-deep recursion must exhaust the strict budget");
        assert!(err.is_limit(), "got: {err}");
    });
}

/// The same deep input must produce the same structured verdict on
/// every run — limit errors are part of the deterministic interface.
#[test]
fn limit_verdicts_are_deterministic() {
    recmod::eval::run_big_stack(256, || {
        let src = deep_parens(DEPTH);
        let render = |errs: Vec<recmod::SurfaceError>| {
            errs.iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join("\n")
        };
        let a = recmod::surface::parse_with(&src, &Limits::default()).expect_err("deep");
        let b = recmod::surface::parse_with(&src, &Limits::default()).expect_err("deep");
        assert_eq!(render(a), render(b));
    });
}
