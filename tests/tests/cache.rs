//! Robustness and equivalence guarantees of the content-addressed
//! artifact cache (ISSUE 9): a cache may only ever change *when* work
//! happens, never *what* the user sees. Corrupt, truncated, or
//! version-skewed entries must read as silent misses (plus a stderr
//! warning where the entry is damaged), a poisoned entry must be
//! rejected by the envelope checksum, and rendered output must be
//! byte-identical with the cache off, cold, and warm.

use std::path::{Path, PathBuf};

use recmod::driver::cache::{self, Cache, CacheConfig};
use recmod::driver::{compile_batch, DriverConfig, FileStatus, Job};
use recmod::telemetry::Limits;

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("recmod-itest-cache-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn corpus_jobs() -> Vec<Job> {
    recmod::corpus::all()
        .iter()
        .map(|e| Job::new(e.name, e.source))
        .collect()
}

/// CLI-shaped rendering of a batch (summaries, ok lines, diagnostics,
/// in input order), so "byte-identical" means the user-visible text.
fn render(outcomes: &[recmod::driver::FileOutcome]) -> String {
    let mut s = String::new();
    for o in outcomes {
        match o.status {
            FileStatus::Ok => {
                for (name, describe) in &o.summaries {
                    s.push_str(&format!("{}: {name} : {describe}\n", o.name));
                }
                s.push_str(&format!("{}: ok\n", o.name));
            }
            _ => {
                for line in &o.diagnostics {
                    s.push_str(line);
                    s.push('\n');
                }
            }
        }
    }
    s
}

fn cached_config(dir: &Path) -> DriverConfig {
    DriverConfig {
        jobs: 2,
        cache: Some(CacheConfig::new(dir.to_path_buf())),
        ..DriverConfig::default()
    }
}

fn statuses(r: &recmod::driver::BatchResult) -> Vec<FileStatus> {
    r.outcomes.iter().map(|o| o.status).collect()
}

#[test]
fn cache_off_cold_and_warm_render_identically() {
    let dir = tmp_dir("identical");
    let jobs = corpus_jobs();
    let uncached = compile_batch(&jobs, &DriverConfig::default());
    let cold = compile_batch(&jobs, &cached_config(&dir));
    let warm = compile_batch(&jobs, &cached_config(&dir));
    assert_eq!(render(&uncached.outcomes), render(&cold.outcomes));
    assert_eq!(render(&uncached.outcomes), render(&warm.outcomes));
    assert_eq!(statuses(&uncached), statuses(&warm));
    assert_eq!(uncached.exit_code(), warm.exit_code());
    assert!(cold.cache_warnings.is_empty(), "{:?}", cold.cache_warnings);
    assert!(warm.cache_warnings.is_empty(), "{:?}", warm.cache_warnings);
    let _ = std::fs::remove_dir_all(&dir);
}

/// The same content under two display names shares one entry, and the
/// replay must re-render under the *requested* name, not the stored one.
#[test]
fn replay_renders_under_the_current_name() {
    let dir = tmp_dir("rename");
    let entry = &recmod::corpus::all()[0];
    let first = vec![Job::new("first.rm", entry.source)];
    let second = vec![Job::new("second.rm", entry.source)];
    let cfg = cached_config(&dir);
    let a = compile_batch(&first, &cfg);
    let b = compile_batch(&second, &cfg);
    assert_eq!(a.outcomes[0].status, b.outcomes[0].status);
    assert_eq!(
        render(&a.outcomes).replace("first.rm", "second.rm"),
        render(&b.outcomes)
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Damaging every entry between runs must not crash, must not change a
/// single verdict, and must surface as C-warnings, not diagnostics.
#[test]
fn truncated_and_corrupt_entries_are_silent_misses() {
    let dir = tmp_dir("damage");
    let jobs = corpus_jobs();
    let cfg = cached_config(&dir);
    let clean = compile_batch(&jobs, &cfg);
    let mut damaged = 0;
    for (i, e) in std::fs::read_dir(&dir).unwrap().flatten().enumerate() {
        let path = e.path();
        if path.extension().is_none_or(|x| x != "json") {
            continue;
        }
        let text = std::fs::read_to_string(&path).unwrap();
        let bad = match i % 3 {
            0 => text[..text.len() / 3].to_string(), // truncated
            1 => "not json at all".to_string(),      // unparseable
            _ => text.replace("\"checksum\":", "\"checksum\":9"), // wrong hash
        };
        std::fs::write(&path, bad).unwrap();
        damaged += 1;
    }
    assert!(damaged > 0, "expected entries to damage");
    let replay = compile_batch(&jobs, &cfg);
    assert_eq!(render(&clean.outcomes), render(&replay.outcomes));
    assert_eq!(statuses(&clean), statuses(&replay));
    assert!(
        replay.cache_warnings.iter().all(|w| w.code == "C002"),
        "damage reads as C002: {:?}",
        replay.cache_warnings
    );
    assert!(!replay.cache_warnings.is_empty());
    // The damaged entries were recompiled and re-stored: a third run is
    // clean again.
    let healed = compile_batch(&jobs, &cfg);
    assert!(
        healed.cache_warnings.is_empty(),
        "{:?}",
        healed.cache_warnings
    );
    assert_eq!(render(&clean.outcomes), render(&healed.outcomes));
    let _ = std::fs::remove_dir_all(&dir);
}

/// A flipped verdict byte (ok -> error shape, valid JSON, stale hash)
/// must be rejected by the envelope checksum — the cache can never be
/// used to smuggle a wrong verdict.
#[test]
fn poisoned_verdict_is_rejected_by_checksum() {
    let dir = tmp_dir("poison");
    let ok_entry = *recmod::corpus::all()
        .iter()
        .find(|e| e.well_typed)
        .expect("corpus has an ok program");
    let jobs = vec![Job::new(ok_entry.name, ok_entry.source)];
    let cfg = cached_config(&dir);
    let clean = compile_batch(&jobs, &cfg);
    assert_eq!(clean.outcomes[0].status, FileStatus::Ok);
    for e in std::fs::read_dir(&dir).unwrap().flatten() {
        let path = e.path();
        if path.extension().is_none_or(|x| x != "json") {
            continue;
        }
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(
            text.contains("\"status\":\"ok\""),
            "fixture changed: {text}"
        );
        std::fs::write(
            &path,
            text.replace("\"status\":\"ok\"", "\"status\":\"error\""),
        )
        .unwrap();
    }
    let replay = compile_batch(&jobs, &cfg);
    assert_eq!(
        replay.outcomes[0].status,
        FileStatus::Ok,
        "poisoned entry replayed as a wrong verdict"
    );
    assert!(
        replay.cache_warnings.iter().any(|w| w.code == "C002"),
        "checksum rejection warns: {:?}",
        replay.cache_warnings
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Entries written under another schema version are silently recompiled
/// (no warning — skew is expected across upgrades, not damage).
#[test]
fn schema_skew_is_a_silent_recompile() {
    let dir = tmp_dir("skew");
    let jobs = corpus_jobs();
    let cfg = cached_config(&dir);
    let clean = compile_batch(&jobs, &cfg);
    for e in std::fs::read_dir(&dir).unwrap().flatten() {
        let path = e.path();
        if path.extension().is_none_or(|x| x != "json") {
            continue;
        }
        // Rewrite under a bogus schema version with a *valid* checksum.
        let text = std::fs::read_to_string(&path).unwrap();
        let doc = recmod::telemetry::json::parse(&text).unwrap();
        let payload = doc.get("payload").unwrap().to_compact().replace(
            &format!("\"schema_version\":{}", recmod::telemetry::SCHEMA_VERSION),
            "\"schema_version\":999999",
        );
        let checksum = recmod::telemetry::bundle::fnv1a(&[payload.as_bytes()]);
        std::fs::write(
            &path,
            format!("{{\"checksum\":{checksum},\"payload\":{payload}}}"),
        )
        .unwrap();
    }
    let replay = compile_batch(&jobs, &cfg);
    assert_eq!(render(&clean.outcomes), render(&replay.outcomes));
    assert!(
        replay.cache_warnings.is_empty(),
        "skew is silent: {:?}",
        replay.cache_warnings
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Limit verdicts must not be cached: a deadline timeout is a fact
/// about the clock, not the program.
#[test]
fn limit_outcomes_are_never_stored() {
    let dir = tmp_dir("limit");
    let deep = recmod_bench::gen_module_chain(64);
    let jobs = vec![Job::new("deep.rm", deep)];
    let cfg = DriverConfig {
        limits: Limits {
            fuel: 10,
            ..Limits::default()
        },
        ..cached_config(&dir)
    };
    let r = compile_batch(&jobs, &cfg);
    if r.outcomes[0].status == FileStatus::Limit {
        let stored = std::fs::read_dir(&dir)
            .unwrap()
            .flatten()
            .filter(|e| e.path().extension().is_some_and(|x| x == "json"))
            .count();
        assert_eq!(stored, 0, "a limit verdict was cached");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// An uncreatable cache directory degrades to uncached compilation with
/// a C003 warning and untouched verdicts.
#[test]
fn uncreatable_cache_dir_degrades_to_uncached() {
    let file_in_the_way = tmp_dir("blocked");
    std::fs::write(&file_in_the_way, "not a directory").unwrap();
    let jobs = corpus_jobs();
    let blocked = compile_batch(
        &jobs,
        &DriverConfig {
            jobs: 2,
            cache: Some(CacheConfig::new(file_in_the_way.join("sub"))),
            ..DriverConfig::default()
        },
    );
    let uncached = compile_batch(&jobs, &DriverConfig::default());
    assert_eq!(render(&uncached.outcomes), render(&blocked.outcomes));
    assert!(
        blocked.cache_warnings.iter().any(|w| w.code == "C003"),
        "C003 surfaced: {:?}",
        blocked.cache_warnings
    );
    let _ = std::fs::remove_file(&file_in_the_way);
}

/// Direct `Cache` API: a key must separate all four inputs, so no two
/// different compiles can ever collide by construction.
#[test]
fn key_depends_on_source_limits_and_engine() {
    let limits = Limits::default();
    let base = cache::key("module M = mod { }", &limits, "nbe");
    assert_ne!(base, cache::key("module N = mod { }", &limits, "nbe"));
    assert_ne!(base, cache::key("module M = mod { }", &limits, "subst"));
    let mut tighter = limits;
    tighter.fuel /= 2;
    assert_ne!(base, cache::key("module M = mod { }", &tighter, "nbe"));
    let deadline = limits.with_deadline_ms(1_000);
    assert_ne!(base, cache::key("module M = mod { }", &deadline, "nbe"));
}

/// The documented telemetry counters actually fire: misses+stores on a
/// cold run, hits on a warm one.
#[test]
fn cache_counters_track_hits_and_misses() {
    let dir = tmp_dir("counters");
    let jobs = corpus_jobs();
    let n = jobs.len() as u64;
    let cfg = DriverConfig {
        telemetry: Some(recmod::telemetry::Config::default()),
        ..cached_config(&dir)
    };
    let cold = compile_batch(&jobs, &cfg);
    let merged = cold.merged.as_ref().expect("telemetry requested");
    assert_eq!(merged.counter("cache.miss"), n);
    assert!(merged.counter("cache.store") > 0);
    assert_eq!(merged.counter("cache.hit"), 0);
    let warm = compile_batch(&jobs, &cfg);
    let merged = warm.merged.as_ref().expect("telemetry requested");
    assert_eq!(merged.counter("cache.hit"), n);
    assert_eq!(merged.counter("cache.miss"), 0);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Concurrent workers sharing one `Cache` handle must not tear entries:
/// replicated jobs race to store the same key, and the next run still
/// hits cleanly on every file.
#[test]
fn racing_stores_of_one_key_leave_a_valid_entry() {
    let dir = tmp_dir("race");
    let entry = &recmod::corpus::all()[0];
    let jobs: Vec<Job> = (0..16)
        .map(|i| Job::new(format!("r{i}.rm"), entry.source))
        .collect();
    let cfg = DriverConfig {
        jobs: 4,
        telemetry: Some(recmod::telemetry::Config::default()),
        cache: Some(CacheConfig::new(dir.clone())),
        ..DriverConfig::default()
    };
    let first = compile_batch(&jobs, &cfg);
    assert!(
        first.cache_warnings.is_empty(),
        "{:?}",
        first.cache_warnings
    );
    let second = compile_batch(&jobs, &cfg);
    let merged = second.merged.as_ref().expect("telemetry requested");
    assert_eq!(merged.counter("cache.hit"), 16);
    assert!(second.cache_warnings.is_empty());
    let _ = std::fs::remove_dir_all(&dir);
}

/// `Cache::open` on a fresh directory, used directly: stores survive a
/// new handle (the "next run"), which is the whole point of persistence.
#[test]
fn entries_survive_reopening_the_cache() {
    let dir = tmp_dir("reopen");
    let k = cache::key("val x = 1\n", &Limits::default(), "nbe");
    {
        let c = Cache::open(&CacheConfig::new(dir.clone())).unwrap();
        c.store(
            k,
            &cache::Entry {
                status: FileStatus::Ok,
                summaries: vec![("x".into(), "int".into())],
                diags: Vec::new(),
                counters: Default::default(),
            },
        );
    }
    let c = Cache::open(&CacheConfig::new(dir.clone())).unwrap();
    let cache::Outcome::Hit(entry) = c.load(k) else {
        panic!("entry did not survive reopening");
    };
    assert_eq!(entry.status, FileStatus::Ok);
    let _ = std::fs::remove_dir_all(&dir);
}
