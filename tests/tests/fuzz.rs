//! Bounded, seeded fuzz run. Every case is reproducible from the
//! printed seed: `run_case(seed)` in `recmod_tests::fuzz` regenerates
//! it exactly.
//!
//! `FUZZ_ITERS` scales the run (CI uses 2000); the default keeps
//! `cargo test` fast. `FUZZ_CLASS=<name>` restricts the run to one case
//! class (e.g. `chaos-serve` for a dedicated chaos campaign — see
//! EXPERIMENTS.md R2); iterations then count only cases of that class.
//! Cases execute on a big-stack thread because
//! debug-build pipeline frames are large and the harness deliberately
//! feeds the pipeline deep input; the limits layer — not the OS stack
//! — must be what stops it.

use std::panic::{catch_unwind, AssertUnwindSafe};

use recmod_tests::fuzz::{case_class, run_case};

/// Base offset so seeds don't start at tiny integers; arbitrary but
/// fixed — changing it changes which cases CI explores.
const SEED_BASE: u64 = 0x5eed_2026_0001;

fn iterations() -> u64 {
    std::env::var("FUZZ_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(300)
}

#[test]
fn seeded_fuzz_no_panics_no_differential_mismatches() {
    let iters = iterations();
    let class = std::env::var("FUZZ_CLASS").ok();
    let failures = recmod::eval::run_big_stack(256, move || {
        let mut failures: Vec<String> = Vec::new();
        let mut ran = 0u64;
        let mut i = 0u64;
        while ran < iters {
            let seed = SEED_BASE.wrapping_add(i);
            i += 1;
            if let Some(want) = &class {
                if case_class(seed) != want {
                    continue;
                }
            }
            ran += 1;
            let outcome = catch_unwind(AssertUnwindSafe(|| run_case(seed)));
            match outcome {
                Ok(Ok(())) => {}
                Ok(Err(msg)) => failures.push(format!("seed {seed} ({}): {msg}", case_class(seed))),
                Err(payload) => {
                    let msg = payload
                        .downcast_ref::<&str>()
                        .map(|s| (*s).to_string())
                        .or_else(|| payload.downcast_ref::<String>().cloned())
                        .unwrap_or_else(|| "opaque panic payload".to_string());
                    failures.push(format!("seed {seed} ({}): PANIC: {msg}", case_class(seed)));
                }
            }
            if failures.len() >= 10 {
                failures.push("... stopping after 10 failures".to_string());
                break;
            }
        }
        failures
    });
    assert!(
        failures.is_empty(),
        "{} fuzz failure(s):\n{}",
        failures.len(),
        failures.join("\n")
    );
}

/// The same seed must produce the same verdict — the reproduction
/// recipe printed on failure has to actually reproduce.
#[test]
fn fuzz_cases_are_deterministic() {
    recmod::eval::run_big_stack(256, || {
        for i in 0..10u64 {
            let seed = SEED_BASE.wrapping_add(i);
            let a = run_case(seed);
            let b = run_case(seed);
            assert_eq!(
                a,
                b,
                "seed {seed} ({}) is nondeterministic",
                case_class(seed)
            );
        }
    });
}
