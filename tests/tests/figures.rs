//! Integration tests regenerating the paper's figures (DESIGN.md §6).
//!
//! The paper's "evaluation" consists of its inference figures and the
//! type-theoretic facts stated around them; each test here checks one of
//! those artifacts through the public API.

use recmod::kernel::{Ctx, Entry, RecMode, Tc};
use recmod::phase::{check_split, split_module, split_sig};
use recmod::syntax::ast::{Con, Kind, Sig, Term, Ty};
use recmod::syntax::dsl::*;
use recmod::syntax::intern::hc;
use recmod::syntax::pretty::{con_to_string, sig_to_string, Names};

// ---------------------------------------------------------------------
// Figure 1: the core calculus — every syntactic form is checkable.
// ---------------------------------------------------------------------

#[test]
fn fig1_kind_formation_covers_grammar() {
    let tc = Tc::new();
    let mut ctx = Ctx::new();
    for k in [
        tkind(),
        unit_kind(),
        q(Con::Int),
        pi(tkind(), q(cvar(0))),
        sigma(tkind(), q(cvar(0))),
    ] {
        tc.wf_kind(&mut ctx, &k).unwrap();
    }
}

#[test]
fn fig1_constructor_grammar_kinds() {
    let tc = Tc::new();
    let mut ctx = Ctx::new();
    // λ, application, pairs, projections, μ, base types, ⇀, ×, sums.
    let cons: Vec<(Con, Kind)> = vec![
        (Con::Star, unit_kind()),
        (clam(tkind(), cvar(0)), pi(tkind(), tkind())),
        (capp(clam(tkind(), cvar(0)), Con::Int), tkind()),
        (cpair(Con::Int, Con::Bool), sigma(tkind(), tkind())),
        (cproj1(cpair(Con::Int, Con::Bool)), tkind()),
        (mu(tkind(), carrow(Con::Int, cvar(0))), tkind()),
        (carrow(Con::Int, Con::Bool), tkind()),
        (cprod(Con::Int, Con::Bool), tkind()),
        (csum([Con::UnitTy, Con::Int]), tkind()),
    ];
    for (c, k) in cons {
        tc.check_con(&mut ctx, &c, &k)
            .unwrap_or_else(|e| panic!("{}: {e}", con_to_string(&c, &mut Names::new())));
    }
}

#[test]
fn fig1_type_grammar_formation() {
    let tc = Tc::new();
    let mut ctx = Ctx::new();
    for t in [
        Ty::Unit,
        tcon(Con::Int),
        total(tcon(Con::Int), tcon(Con::Bool)),
        partial(tcon(Con::Int), tcon(Con::Bool)),
        tprod(Ty::Unit, tcon(Con::Int)),
        forall(tkind(), partial(tcon(cvar(0)), tcon(cvar(0)))),
    ] {
        tc.wf_ty(&mut ctx, &t).unwrap();
    }
}

// ---------------------------------------------------------------------
// Figure 2: higher-order singletons Q(c : κ).
// ---------------------------------------------------------------------

#[test]
fn fig2_higher_order_singleton_deduction() {
    // "if c has kind Πα:T.Q(list(α)), it follows that c = list : T → T."
    let tc = Tc::new();
    let mut ctx = Ctx::new();
    ctx.with_con(pi(tkind(), tkind()), |ctx| {
        // list : T→T is index 0; declare c with kind Πα:T.Q(list α).
        let c_kind = pi(tkind(), q(capp(cvar(1), cvar(0))));
        ctx.with_con(c_kind, |ctx| {
            // c (index 0) = list (index 1) at kind T → T.
            tc.con_equiv(ctx, &cvar(0), &cvar(1), &pi(tkind(), tkind()))
                .unwrap();
        });
    });
}

#[test]
fn fig2_selfification_matches_definition() {
    use recmod::kernel::singleton::selfify;
    // Q(c : T) = Q(c); Q(c : Πα:κ₁.κ₂) = Πα:κ₁.Q(c α : κ₂).
    assert_eq!(selfify(&Con::Int, &tkind()), q(Con::Int));
    assert_eq!(
        selfify(&cvar(0), &pi(tkind(), tkind())),
        pi(tkind(), q(capp(cvar(1), cvar(0))))
    );
}

// ---------------------------------------------------------------------
// Figure 3: the structure calculus.
// ---------------------------------------------------------------------

#[test]
fn fig3_structures_and_projections() {
    let tc = Tc::new();
    let mut ctx = Ctx::new();
    // [int, 42] : [α:Q(int). Con(α)] and Fst/snd typing for variables.
    let m = strct(Con::Int, int(42));
    let mt = tc.synth_module(&mut ctx, &m).unwrap();
    tc.sig_sub(&mut ctx, &mt.sig, &sig(tkind(), tcon(cvar(0))))
        .unwrap();

    ctx.with(Entry::Struct(sig(tkind(), tcon(cvar(0))), true), |ctx| {
        // Fst(s) : T and snd(s) : Con(Fst(s)).
        tc.check_con(ctx, &fst(0), &tkind()).unwrap();
        let typing = tc.synth_term(ctx, &snd(0)).unwrap();
        tc.ty_eq(ctx, &typing.ty, &tcon(fst(0))).unwrap();
    });
}

#[test]
fn fig3_signature_subtyping_forgets_definitions() {
    let tc = Tc::new();
    let mut ctx = Ctx::new();
    let transparent = sig(q(Con::Int), tcon(cvar(0)));
    let opaque = sig(tkind(), tcon(cvar(0)));
    tc.sig_sub(&mut ctx, &transparent, &opaque).unwrap();
    assert!(tc.sig_sub(&mut ctx, &opaque, &transparent).is_err());
}

// ---------------------------------------------------------------------
// Figure 4: phase-splitting recursive modules.
// ---------------------------------------------------------------------

#[test]
fn fig4_split_has_the_equation_shape() {
    // fix(s:[α:κ.σ].[c(Fst s), e(Fst s, snd s)])
    //   = [α = μα:κ.c(α), fix(x:σ.e(α,x))]
    let tc = Tc::new();
    let mut ctx = Ctx::new();
    let ann = sig(tkind(), partial(tcon(Con::Int), tcon(cvar(0))));
    let body = strct(
        carrow(Con::Int, fst(0)),
        lam(tcon(Con::Int), fail(tcon(carrow(Con::Int, fst(1))))),
    );
    let m = mfix(ann, body);
    let s = split_module(&tc, &mut ctx, &m).unwrap();
    assert_eq!(s.con, mu(tkind(), carrow(Con::Int, cvar(0))));
    assert!(matches!(s.term, Term::Fix(_, _)));
}

#[test]
fn fig4_translation_preserves_typing() {
    // The algorithmic content of the Figure-4 equation: original and
    // translation inhabit the same signature.
    let tc = Tc::new();
    let mut ctx = Ctx::new();
    let ann = sig(unit_kind(), partial(tcon(Con::Int), tcon(Con::Int)));
    let body = strct(Con::Star, lam(tcon(Con::Int), app(snd(1), var(0))));
    let v = check_split(&tc, &mut ctx, &mfix(ann, body)).unwrap();
    tc.sig_sub(&mut ctx, &v.translated.sig, &v.original.sig)
        .unwrap();
}

#[test]
fn fig4_split_output_evaluates() {
    // The split factorial module actually runs.
    use recmod::eval::Interp;
    let tc = Tc::new();
    let mut ctx = Ctx::new();
    let ann = sig(unit_kind(), partial(tcon(Con::Int), tcon(Con::Int)));
    let fact = lam(
        tcon(Con::Int),
        ite(
            prim(recmod::syntax::ast::PrimOp::Eq, var(0), int(0)),
            int(1),
            prim(
                recmod::syntax::ast::PrimOp::Mul,
                var(0),
                app(
                    snd(1),
                    prim(recmod::syntax::ast::PrimOp::Sub, var(0), int(1)),
                ),
            ),
        ),
    );
    let m = mfix(ann, strct(Con::Star, fact));
    let s = split_module(&tc, &mut ctx, &m).unwrap();
    let result = Interp::new().run(&app(s.term, int(5))).unwrap();
    assert_eq!(result.as_int().unwrap(), 120);
}

// ---------------------------------------------------------------------
// Figure 5: phase-splitting recursively-dependent signatures.
// ---------------------------------------------------------------------

#[test]
fn fig5_rds_resolution_shape() {
    // ρs.[α:Q(c(Fst s):κ).σ] = [α:Q(μβ:κ.c(β):κ). σ[α/Fst s]]
    let tc = Tc::new();
    let mut ctx = Ctx::new();
    let s = rds(Sig::Struct(
        hc(q(carrow(Con::Int, fst(0)))),
        Box::new(tcon(fst(1))),
    ));
    let (k, t) = split_sig(&tc, &mut ctx, &s).unwrap();
    assert_eq!(k, q(mu(tkind(), carrow(Con::Int, cvar(0)))));
    assert_eq!(t, tcon(cvar(0)));
}

#[test]
fn fig5_rds_definitionally_equal_to_resolution() {
    let tc = Tc::new();
    let mut ctx = Ctx::new();
    let s = rds(Sig::Struct(
        hc(q(carrow(Con::Int, fst(0)))),
        Box::new(Ty::Unit),
    ));
    let r = tc.resolve_sig(&mut ctx, &s).unwrap();
    tc.sig_eq(&mut ctx, &s, &r).unwrap();
    println!(
        "ρ-sig {} = {}",
        sig_to_string(&s, &mut Names::new()),
        sig_to_string(&r, &mut Names::new())
    );
}

#[test]
fn fig5_formation_requires_full_transparency() {
    let tc = Tc::new();
    let mut ctx = Ctx::new();
    let s = rds(sig(tkind(), Ty::Unit));
    assert!(matches!(
        tc.resolve_sig(&mut ctx, &s),
        Err(recmod::kernel::TypeError::RdsNotTransparent(_))
    ));
}

// ---------------------------------------------------------------------
// E6: abstract-type extrusion.
// ---------------------------------------------------------------------

#[test]
fn e6_extrusion_of_the_papers_example() {
    // rec S : sig type t; type u = S.u -> t end
    //   ⇒ sig type t'; structure rec S : sig type t = t'; … end end
    use recmod::surface::extrude::extrude;
    let tc = Tc::new();
    let mut ctx = Ctx::new();
    let s = rds(Sig::Struct(
        hc(sigma(tkind(), q(carrow(cproj2(fst(1)), cvar(0))))),
        Box::new(Ty::Unit),
    ));
    let out = extrude(&tc, &mut ctx, &s).unwrap();
    assert_eq!(out.hoisted, 1);
    let Sig::Struct(k, _) = &out.sig else {
        panic!()
    };
    let Kind::Sigma(hoisted, inner) = &**k else {
        panic!()
    };
    assert_eq!(**hoisted, Kind::Type);
    assert!(recmod::kernel::singleton::fully_transparent(inner));
    tc.wf_sig(&mut ctx, &out.sig).unwrap();
}

// ---------------------------------------------------------------------
// E7: the singleton-μ interaction of §2.1.
// ---------------------------------------------------------------------

#[test]
fn e7_mu_at_singleton_kind_equals_its_definition() {
    let tc = Tc::new();
    let mut ctx = Ctx::new();
    // "the deceptively similar type μα:Q(int).α is equal to int."
    let c = mu(q(Con::Int), cvar(0));
    tc.con_equiv(&mut ctx, &c, &Con::Int, &tkind()).unwrap();
    // "...although μα:T.α is a vacuous, uninhabited type (as usual)."
    let vacuous = mu(tkind(), cvar(0));
    tc.check_con(&mut ctx, &vacuous, &tkind()).unwrap();
    assert!(tc
        .con_equiv(&mut ctx, &vacuous, &Con::Int, &tkind())
        .is_err());
}

// ---------------------------------------------------------------------
// E8: §5 — Shao's equation and the elimination of equi-recursion.
// ---------------------------------------------------------------------

#[test]
fn e8_shao_equation_by_mode() {
    let m = mu(tkind(), carrow(Con::Int, cvar(0)));
    let m_shao = mu(
        tkind(),
        carrow(Con::Int, recmod::syntax::subst::shift_con(&m, 1, 0)),
    );
    let mut ctx = Ctx::new();
    // Holds in equi and iso+Shao; fails in plain iso.
    Tc::with_mode(RecMode::Equi)
        .con_equiv(&mut ctx, &m, &m_shao, &tkind())
        .unwrap();
    Tc::with_mode(RecMode::IsoShao)
        .con_equiv(&mut ctx, &m, &m_shao, &tkind())
        .unwrap();
    assert!(Tc::with_mode(RecMode::Iso)
        .con_equiv(&mut ctx, &m, &m_shao, &tkind())
        .is_err());
}

#[test]
fn e8_nested_mu_collapse() {
    // μα.μβ.c(α,β) ≃ μβ.c(β,β): proved by bisimilarity (equi mode), and
    // the collapse output is purely iso-recursive (no nested towers).
    use recmod::phase::iso::{collapse_mu, eliminate_nested_mu, nested_mu_count};
    let tc = Tc::new();
    let mut ctx = Ctx::new();
    let nested = mu(
        tkind(),
        mu(tkind(), csum([Con::UnitTy, cprod(cvar(1), cvar(0))])),
    );
    let flat = collapse_mu(&nested).unwrap();
    tc.con_equiv(&mut ctx, &nested, &flat, &tkind()).unwrap();
    assert_eq!(nested_mu_count(&eliminate_nested_mu(&nested)), 0);
}

#[test]
fn e8_transparent_list_static_part_is_a_nested_mu_that_collapses() {
    // The §5 observation arises *in practice*: phase-splitting the
    // transparent List module produces μ(module) ∘ μ(datatype) nesting,
    // equal to its collapsed purely-iso form.
    use recmod::phase::iso::{collapse_mu, nested_mu_count};
    let compiled = recmod::compile(recmod::corpus::TRANSPARENT_LIST).unwrap();
    let mut elab = compiled.elab;
    // The one top-level binding is the hidden rec structure; recover its
    // static part from the context entry's signature kind.
    let (sig, _) = elab.ctx.lookup_struct(0).unwrap();
    let Sig::Struct(k, _) = sig else { panic!() };
    // The kind is fully transparent; its definition contains the module-
    // level μ wrapped around the datatype μ.
    let def = recmod::kernel::singleton::kind_definition(&k).unwrap();
    let tc = Tc::new();
    let w = tc.whnf(&mut elab.ctx, &def).unwrap();
    let Con::Mu(_, _) = &w else {
        panic!("expected a μ, got {w:?}")
    };
    if nested_mu_count(&w) > 0 {
        let flat = collapse_mu(&w).expect("nested towers collapse");
        tc.con_equiv(&mut elab.ctx, &w, &flat, &tkind()).unwrap();
    }
}

// ---------------------------------------------------------------------
// Figures 4/5 as *equations* (appendix A.3): module equality.
// ---------------------------------------------------------------------

#[test]
fn fig4_is_a_module_equality() {
    // Γ ⊢ fix(s:S.M) = [α = μα:κ.c(α), fix(x:σ.e(α,x))] : S — checked by
    // the module-equality judgement (which builds the non-standard
    // equations in by comparing phase-split parts).
    let tc = Tc::new();
    let mut ctx = Ctx::new();
    let ann = sig(unit_kind(), partial(tcon(Con::Int), tcon(Con::Int)));
    let body = strct(Con::Star, lam(tcon(Con::Int), app(snd(1), var(0))));
    let m = mfix(ann, body);
    let interpretation = split_module(&tc, &mut ctx, &m).unwrap().into_module();
    recmod::phase::verify::module_eq(&tc, &mut ctx, &m, &interpretation).unwrap();
    // And equality is not trivial: a different module is rejected.
    let other = strct(Con::Star, lam(tcon(Con::Int), int(0)));
    assert!(recmod::phase::verify::module_eq(&tc, &mut ctx, &m, &other).is_err());
}

#[test]
fn sealing_is_equationally_transparent() {
    // M :> S = M as modules (sealing has no dynamic content) — the
    // erasure reading of opacity used by the phase interpretation.
    let tc = Tc::new();
    let mut ctx = Ctx::new();
    let m = strct(Con::Int, int(7));
    let sealed = seal(m.clone(), sig(tkind(), tcon(cvar(0))));
    recmod::phase::verify::module_eq(&tc, &mut ctx, &m, &sealed).unwrap();
}
