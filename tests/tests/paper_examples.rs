//! Integration tests: every worked example of the paper, end to end.
//! See `DESIGN.md` §6 and `EXPERIMENTS.md` for the mapping to the
//! paper's claims.

use recmod::corpus;
use recmod::surface::ErrorKind;

#[test]
fn e1_opaque_list_typechecks_and_runs() {
    // §3.1: "This implementation typechecks properly, and it is
    // observationally equivalent to a conventional implementation."
    let program = corpus::list_program(true, 10);
    let out = recmod::run(&program).unwrap();
    assert_eq!(out.value_int(), Some(55));
}

#[test]
fn e4_transparent_list_typechecks_and_runs() {
    let program = corpus::list_program(false, 10);
    let out = recmod::run(&program).unwrap();
    assert_eq!(out.value_int(), Some(55));
}

#[test]
fn e1_opaque_list_is_asymptotically_slower() {
    // §3.1: "each use of cons and uncons must traverse the entire list,
    // leading to poor behavior in practice." Building and consuming an
    // n-list costs Θ(n²) steps opaquely vs Θ(n) transparently.
    fn steps(opaque: bool, n: usize) -> u64 {
        // Deep object-level recursion needs a deep host stack.
        recmod::eval::run_big_stack(256, move || {
            let program = corpus::list_program(opaque, n);
            recmod::run(&program).unwrap().steps
        })
    }
    let (t40, t80) = (steps(false, 40), steps(false, 80));
    let (o40, o80) = (steps(true, 40), steps(true, 80));
    // Transparent: linear — doubling n roughly doubles the steps.
    let t_ratio = t80 as f64 / t40 as f64;
    assert!(t_ratio < 3.0, "transparent ratio {t_ratio} should be ~2");
    // Opaque: quadratic — doubling n roughly quadruples the steps.
    let o_ratio = o80 as f64 / o40 as f64;
    assert!(o_ratio > 3.0, "opaque ratio {o_ratio} should be ~4");
    // And the opaque version is much slower at the same size.
    assert!(o80 > 5 * t80, "opaque {o80} vs transparent {t80}");
}

#[test]
fn e2_expr_decl_opaque_fails_with_the_papers_error() {
    // §3.1: "the call to make_val within make_let_val expects an argument
    // with type Decl.exp, which, because of the opacity of Decl, is not
    // known to be the same type as exp".
    let err = recmod::compile(corpus::EXPR_DECL_OPAQUE).unwrap_err();
    match &err.kind {
        ErrorKind::Type(te) => {
            let msg = te.to_string();
            assert!(
                msg.contains("not a subtype") || msg.contains("not equivalent"),
                "unexpected type error: {msg}"
            );
        }
        other => panic!("expected a type error, got {other:?}"),
    }
}

#[test]
fn e3_expr_decl_rds_typechecks_and_runs() {
    // §4: with `where type` the equations Expr.dec = Decl.dec and
    // Decl.exp = Expr.exp are propagated into the bindings.
    let program = format!("{}{}", corpus::EXPR_DECL_RDS, corpus::EXPR_DECL_DRIVER);
    let out = recmod::run(&program).unwrap();
    // size(let val 1 = VAR 7 in (let val 2 = VAR 7 in VAR 9)) =
    //   (1 + size(VAR 7)) + ((1 + size(VAR 7)) + size(VAR 9)) = 2 + 2 + 1 = 5...
    // computed: make_let_val(1, VAR 7, inner): LET(VAL(1, VAR 7), inner)
    // size = dec_size(VAL(1,VAR 7)) + size(inner) = (1+1) + ((1+1)+1) = 5.
    assert_eq!(out.value_int(), Some(5));
}

#[test]
fn e5_buildlist_plain_parameter_fails() {
    // §4: "the efficient implementation of lists no longer typechecks
    // since the assumption governing the parameter List of BuildList
    // does not propagate the critical recursive type equation".
    let err = recmod::compile(corpus::BUILD_LIST_PLAIN).unwrap_err();
    assert!(matches!(err.kind, ErrorKind::Type(_)), "got {err:?}");
}

#[test]
fn e5_buildlist_rds_parameter_succeeds() {
    let program = format!(
        "{}\n{}",
        corpus::BUILD_LIST_RDS,
        corpus::LIST_DRIVER_TEMPLATE.replace("{N}", "10")
    );
    let out = recmod::run(&program).unwrap();
    assert_eq!(out.value_int(), Some(55));
}

#[test]
fn e9_value_restriction_on_recursive_modules() {
    let err = recmod::compile(corpus::VALUE_RESTRICTION_MODULE).unwrap_err();
    match &err.kind {
        ErrorKind::Type(te) => {
            assert!(te.to_string().contains("value restriction"), "{te}");
        }
        other => panic!("expected a value-restriction error, got {other:?}"),
    }
}
