//! E1 (observational half): the paper says the opaque recursive List
//! "is observationally equivalent to a conventional implementation" —
//! only its *cost* differs. This differential test runs random operation
//! sequences against a native Rust `Vec` model and against both module
//! implementations, checking all three agree.

use recmod_bench::rng::Rng;

/// One abstract list operation.
#[derive(Debug, Clone)]
enum Op {
    /// Push a value with `cons`.
    Cons(i8),
    /// Pop with `uncons` (skipped by the model when empty; the driver
    /// guards with `null`).
    Uncons,
    /// Observe emptiness with `null`.
    Null,
}

/// A random operation sequence of length 1..12.
fn gen_ops(rng: &mut Rng) -> Vec<Op> {
    let len = rng.range(1, 12);
    (0..len)
        .map(|_| match rng.below(3) {
            0 => Op::Cons(rng.range_i64(0, 99) as i8),
            1 => Op::Uncons,
            _ => Op::Null,
        })
        .collect()
}

/// The model: a Rust Vec, producing the same checksum the driver does.
fn model(ops: &[Op]) -> i64 {
    let mut stack: Vec<i64> = Vec::new();
    let mut acc: i64 = 0;
    for op in ops {
        match op {
            Op::Cons(v) => stack.push(*v as i64),
            Op::Uncons => {
                if let Some(h) = stack.pop() {
                    acc = acc * 7 + h;
                }
            }
            Op::Null => {
                acc = acc * 7 + if stack.is_empty() { 1 } else { 2 };
            }
        }
    }
    acc
}

/// Builds a driver expression performing the same sequence against the
/// module, accumulating the same checksum.
fn driver(ops: &[Op]) -> String {
    let mut body = String::from("val l0 = List.nil\nval acc0 = 0\n");
    let mut li = 0usize;
    let mut ai = 0usize;
    for op in ops {
        match op {
            Op::Cons(v) => {
                body.push_str(&format!("val l{} = List.cons ({v}, l{li})\n", li + 1));
                li += 1;
            }
            Op::Uncons => {
                // Guarded pop: if null, keep both; else take head into acc.
                body.push_str(&format!(
                    "val s{ai} = if List.null l{li} then (acc{ai}, l{li}) \
                     else (case List.uncons l{li} of (h, r) => (acc{ai} * 7 + h, r))\n"
                ));
                body.push_str(&format!("val acc{} = case s{ai} of (a, r) => a\n", ai + 1));
                body.push_str(&format!("val l{} = case s{ai} of (a, r) => r\n", li + 1));
                ai += 1;
                li += 1;
            }
            Op::Null => {
                body.push_str(&format!(
                    "val acc{} = acc{ai} * 7 + (if List.null l{li} then 1 else 2)\n",
                    ai + 1
                ));
                ai += 1;
            }
        }
    }
    format!("{body};\nacc{ai}")
}

fn run_module(opaque: bool, ops: &[Op]) -> i64 {
    let base = if opaque {
        recmod::corpus::OPAQUE_LIST
    } else {
        recmod::corpus::TRANSPARENT_LIST
    };
    let program = format!("{base}\n{}", driver(ops));
    recmod::run(&program)
        .map_err(|e| format!("{e}\n{}", driver(ops)))
        .unwrap()
        .value_int()
        .expect("checksum is an integer")
}

/// All three implementations compute the same observable checksum.
#[test]
fn opaque_and_transparent_agree_with_the_model() {
    let mut rng = Rng::new(0xE1);
    for case in 0..16 {
        let ops = gen_ops(&mut rng);
        let expected = model(&ops);
        assert_eq!(
            run_module(false, &ops),
            expected,
            "case={case} ops={ops:?} (transparent)"
        );
        assert_eq!(
            run_module(true, &ops),
            expected,
            "case={case} ops={ops:?} (opaque)"
        );
    }
}

#[test]
fn fixed_sequence_sanity() {
    let ops = vec![
        Op::Cons(3),
        Op::Null,
        Op::Cons(5),
        Op::Uncons,
        Op::Uncons,
        Op::Uncons,
        Op::Null,
    ];
    let expected = model(&ops);
    assert_eq!(run_module(false, &ops), expected);
    assert_eq!(run_module(true, &ops), expected);
}
