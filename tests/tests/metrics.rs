//! Schema and determinism guarantees of the serve telemetry layer
//! (ISSUE 10): the `stats` and `metrics` documents are schema golden
//! (key sets and value types pinned here — changing them must be a
//! deliberate `METRICS_SCHEMA_VERSION` bump), histogram percentiles
//! are exact on synthetic distributions, the deterministic metrics
//! subset is byte-stable across two identical seeded fault replays,
//! and request traces round-trip with replay-stable trace ids.

use std::sync::mpsc::{channel, Receiver, Sender};
use std::time::Duration;

use recmod::driver::serve::{Request, Response, ServeConfig, Server, METRICS_SCHEMA_VERSION};
use recmod::telemetry::fault::FaultPlan;
use recmod::telemetry::json::Json;
use recmod::telemetry::metrics::Histogram;
use recmod::telemetry::{Limits, SCHEMA_VERSION};

/// A few sources exercising ok, type-error, and unbound-name verdicts.
const SOURCES: [&str; 5] = [
    "val x = 1",
    "val p = (1, true)",
    "val bad = nosuch",
    "val f = fn (b : bool) => if b then 1 else 2\nval y = f true",
    "val mismatch = if 1 then 2 else 3",
];

fn quiet_server(faults: Option<FaultPlan>) -> Server {
    let trace_seed = faults.as_ref().map(|p| p.seed).unwrap_or(0);
    Server::start(ServeConfig {
        workers: 2,
        limits: Limits::strict(),
        default_deadline_ms: None,
        backoff_ms: 1,
        crash_dir: None,
        faults,
        trace_seed,
        ..ServeConfig::default()
    })
    .expect("server must start")
}

/// Submits sequentially — each response awaited before the next
/// submission, so admission seqs and counters are schedule-independent.
fn drive(server: &Server, trace: bool) -> Vec<Response> {
    let (tx, rx): (Sender<Response>, Receiver<Response>) = channel();
    let mut responses = Vec::new();
    for (i, src) in SOURCES.iter().enumerate() {
        let mut req = Request::new(i as u64, format!("m{i}.rm"), *src);
        req.trace = trace;
        server.submit(req, tx.clone());
        responses.push(
            rx.recv_timeout(Duration::from_secs(120))
                .expect("response must arrive"),
        );
    }
    responses
}

fn obj_keys(doc: &Json) -> Vec<String> {
    match doc {
        Json::Obj(map) => map.keys().cloned().collect(),
        other => panic!("expected an object, got {other:?}"),
    }
}

fn get<'a>(doc: &'a Json, key: &str) -> &'a Json {
    doc.get(key)
        .unwrap_or_else(|| panic!("missing key `{key}`"))
}

fn as_u64(doc: &Json, key: &str) -> u64 {
    get(doc, key)
        .as_u64()
        .unwrap_or_else(|| panic!("`{key}` must be an unsigned integer"))
}

/// Pins a histogram document: key set, coherent count, sorted quantiles.
fn assert_histogram_doc(doc: &Json, what: &str) {
    assert_eq!(
        obj_keys(doc),
        ["buckets", "count", "max", "p50", "p90", "p99", "sum"],
        "{what}: histogram key set changed"
    );
    let bucket_total: u64 = get(doc, "buckets")
        .as_arr()
        .expect("buckets must be an array")
        .iter()
        .map(|b| as_u64(b, "count"))
        .sum();
    assert_eq!(
        as_u64(doc, "count"),
        bucket_total,
        "{what}: count must equal the bucket sum"
    );
    let (p50, p90, p99, max) = (
        as_u64(doc, "p50"),
        as_u64(doc, "p90"),
        as_u64(doc, "p99"),
        as_u64(doc, "max"),
    );
    assert!(
        p50 <= p90 && p90 <= p99 && p99 <= max,
        "{what}: quantiles must be sorted"
    );
}

#[test]
fn stats_document_schema_is_golden() {
    let server = quiet_server(None);
    drive(&server, false);
    let doc = server.stats_json();
    assert_eq!(
        obj_keys(&doc),
        [
            "accepted",
            "cache",
            "completed",
            "frame_imbalance",
            "injected_alloc",
            "injected_deadline",
            "injected_kill",
            "injected_panic",
            "invalid",
            "rejected_draining",
            "respawns",
            "retries",
            "shed",
            "spawn_failures",
            "watchdog_late",
            "workers",
            "workers_joined",
            "workers_spawned",
        ],
        "stats key set changed — update the protocol docs and this golden"
    );
    assert_eq!(as_u64(&doc, "accepted"), SOURCES.len() as u64);
    assert_eq!(as_u64(&doc, "completed"), SOURCES.len() as u64);
    let cache = get(&doc, "cache");
    assert_eq!(cache.get("enabled"), Some(&Json::Bool(false)));
    assert_eq!(cache.get("open_failed"), Some(&Json::Bool(false)));
    let workers = get(&doc, "workers")
        .as_arr()
        .expect("workers must be an array");
    assert_eq!(workers.len(), 2);
    for w in workers {
        assert_eq!(
            obj_keys(w),
            [
                "con_entries",
                "intern_hits",
                "intern_misses",
                "intern_sweeps",
                "kind_entries",
                "requests",
                "swept_entries",
                "worker",
            ]
        );
    }
}

#[test]
fn metrics_document_schema_is_golden() {
    let server = quiet_server(None);
    drive(&server, false);
    let doc = server.metrics_json(false);
    assert_eq!(
        obj_keys(&doc),
        [
            "cache",
            "compile_nanos",
            "deterministic",
            "intern",
            "kind",
            "latency_nanos",
            "metrics_schema_version",
            "queue",
            "queue_wait_nanos",
            "requests",
            "schema_version",
            "status",
            "uptime_nanos",
            "work_units",
            "workers",
        ],
        "metrics key set changed — bump METRICS_SCHEMA_VERSION deliberately"
    );
    assert_eq!(as_u64(&doc, "schema_version"), SCHEMA_VERSION);
    assert_eq!(
        as_u64(&doc, "metrics_schema_version"),
        METRICS_SCHEMA_VERSION
    );
    assert_eq!(get(&doc, "kind"), &Json::str("metrics"));
    assert_eq!(get(&doc, "deterministic"), &Json::Bool(false));
    for h in [
        "latency_nanos",
        "queue_wait_nanos",
        "compile_nanos",
        "work_units",
    ] {
        assert_histogram_doc(get(&doc, h), h);
        assert_eq!(
            as_u64(get(&doc, h), "count"),
            SOURCES.len() as u64,
            "{h}: one sample per attempt expected (no faults, no retries)"
        );
    }
    let queue = get(&doc, "queue");
    assert_eq!(
        obj_keys(queue),
        [
            "capacity",
            "depth",
            "inflight",
            "workers_alive",
            "workers_configured"
        ]
    );
    assert_eq!(as_u64(queue, "workers_configured"), 2);
    let status = get(&doc, "status");
    assert_eq!(
        obj_keys(status),
        [
            "draining",
            "error",
            "internal",
            "invalid",
            "limit",
            "ok",
            "overloaded"
        ]
    );
    // 2 ok + 1 unbound + 2 from the remaining sources; exact split is
    // pinned by the sources above.
    let answered: u64 = ["ok", "error"].iter().map(|k| as_u64(status, k)).sum();
    assert_eq!(answered, SOURCES.len() as u64);
    let intern = get(&doc, "intern");
    assert_eq!(obj_keys(intern), ["contended", "entries", "shards"]);
    assert_eq!(
        get(intern, "shards")
            .as_arr()
            .expect("shards must be an array")
            .len(),
        recmod::syntax::intern::SHARD_COUNT
    );
    let workers = get(&doc, "workers")
        .as_arr()
        .expect("workers must be an array");
    assert_eq!(workers.len(), 2);
    for w in workers {
        assert_eq!(obj_keys(w), ["busy_nanos", "utilization", "worker"]);
        assert!(matches!(get(w, "utilization"), Json::Float(f) if (0.0..=1.0).contains(f)));
    }
}

#[test]
fn deterministic_metrics_document_has_no_wall_clock_keys() {
    let server = quiet_server(None);
    drive(&server, false);
    let doc = server.metrics_json(true);
    assert_eq!(
        obj_keys(&doc),
        [
            "deterministic",
            "kind",
            "metrics_schema_version",
            "requests",
            "schema_version",
            "status",
            "work_units",
        ]
    );
    assert_eq!(
        obj_keys(get(&doc, "requests")),
        [
            "accepted",
            "completed",
            "frame_imbalance",
            "injected_alloc",
            "injected_deadline",
            "injected_kill",
            "injected_panic",
            "invalid",
            "rejected_draining",
            "respawns",
            "retries",
            "shed",
        ],
        "deterministic request subset changed"
    );
}

#[test]
fn deterministic_metrics_are_byte_stable_across_seeded_replays() {
    let plan = FaultPlan {
        seed: 0xfeed_beef,
        rate_ppm: 400_000,
        only: None,
    };
    let run = || {
        let server = quiet_server(Some(plan));
        let responses = drive(&server, false);
        let doc = server.metrics_json(true).to_compact();
        let ids: Vec<String> = responses
            .into_iter()
            .map(|r| r.trace_id.expect("admitted responses carry a trace id"))
            .collect();
        (doc, ids)
    };
    let (doc_a, ids_a) = run();
    let (doc_b, ids_b) = run();
    assert_eq!(
        doc_a, doc_b,
        "deterministic metrics must be replay byte-stable"
    );
    assert_eq!(ids_a, ids_b, "trace ids must be replay-stable");
    let unique: std::collections::BTreeSet<&String> = ids_a.iter().collect();
    assert_eq!(
        unique.len(),
        ids_a.len(),
        "trace ids must be unique per admission"
    );
}

#[test]
fn traced_requests_echo_balanced_span_events() {
    let server = quiet_server(None);
    let responses = drive(&server, true);
    for (i, r) in responses.iter().enumerate() {
        let events = r
            .trace
            .as_ref()
            .and_then(|t| t.get("events"))
            .and_then(Json::as_arr)
            .unwrap_or_else(|| panic!("m{i}.rm asked for a trace but got none"));
        let named = |name: &str| {
            events
                .iter()
                .filter(|e| e.get("name").and_then(Json::as_str) == Some(name))
                .count()
        };
        assert_eq!(
            named("serve.queue"),
            1,
            "m{i}.rm: one queue event per attempt"
        );
        assert_eq!(
            named("serve.attempt"),
            1,
            "m{i}.rm: one attempt event per attempt"
        );
        // Unfaulted compiles always record pipeline stage spans.
        assert!(
            events
                .iter()
                .any(|e| e.get("name").and_then(Json::as_str) == Some("stage.elab")),
            "m{i}.rm: expected a stage.elab span, got {events:?}"
        );
        for e in events {
            assert!(e.get("start_nanos").is_some() && e.get("dur_nanos").is_some());
        }
    }
}

#[test]
fn histogram_percentiles_are_exact_on_a_synthetic_distribution() {
    use recmod::telemetry::metrics::bucket_bounds;
    // Values sitting exactly on bucket bounds are recovered exactly:
    // 100 samples at `lo`, 899 at `mid`, 1 at `hi`.
    let bounds = bucket_bounds();
    let lo = *bounds.iter().find(|&&b| b >= 50).unwrap();
    let mid = *bounds.iter().find(|&&b| b >= 5_000).unwrap();
    let hi = *bounds.iter().find(|&&b| b >= 2_000_000).unwrap();
    let h = Histogram::new();
    for _ in 0..100 {
        h.record(lo);
    }
    for _ in 0..899 {
        h.record(mid);
    }
    h.record(hi);
    let snap = h.snapshot();
    assert_eq!(snap.count, 1000);
    assert_eq!(snap.quantile(0.05), lo);
    assert_eq!(snap.quantile(0.10), lo);
    assert_eq!(snap.quantile(0.50), mid);
    assert_eq!(snap.quantile(0.90), mid);
    assert_eq!(snap.quantile(0.999), mid);
    assert_eq!(snap.quantile(1.0), hi);
    assert_eq!(snap.max, hi);
}

#[test]
fn prometheus_text_renders_the_driven_workload() {
    let server = quiet_server(None);
    drive(&server, false);
    let text = server.metrics_text();
    let n = SOURCES.len();
    assert!(text.contains(&format!(
        "recmod_serve_requests_total{{event=\"accepted\"}} {n}"
    )));
    assert!(text.contains(&format!(
        "recmod_serve_requests_total{{event=\"completed\"}} {n}"
    )));
    assert!(text.contains("# TYPE recmod_serve_latency_seconds histogram"));
    assert!(text.contains(&format!("recmod_serve_latency_seconds_count {n}")));
    assert!(text.contains("recmod_serve_latency_seconds_bucket{le=\"+Inf\"}"));
    // Every line is either a comment or `name{labels} value`.
    for line in text.lines() {
        assert!(
            line.starts_with("# ") || line.split(' ').count() == 2,
            "malformed exposition line: {line}"
        );
    }
}
