//! Determinism and aggregation guarantees of the parallel batch driver
//! (ISSUE 4): scheduling must never show through in the output.

use recmod::driver::{compile_batch, DriverConfig, FileStatus, Job};
use recmod::telemetry::Config;

/// The full corpus as a batch, replicated so eight workers have
/// meaningful contention and stealing actually happens.
fn corpus_jobs(replicas: usize) -> Vec<Job> {
    let entries = recmod::corpus::all();
    (0..replicas)
        .flat_map(|r| {
            entries
                .iter()
                .map(move |e| Job::new(format!("{}#{r}", e.name), e.source))
        })
        .collect()
}

/// Renders a batch result the way the CLI does — summaries, ok-lines,
/// and diagnostics, in input order — so "byte-identical output" is
/// checked on the actual user-visible text.
fn render(outcomes: &[recmod::driver::FileOutcome]) -> String {
    let mut s = String::new();
    for o in outcomes {
        match o.status {
            FileStatus::Ok => {
                for (name, describe) in &o.summaries {
                    s.push_str(&format!("{}: {name} : {describe}\n", o.name));
                }
                s.push_str(&format!("{}: ok\n", o.name));
            }
            _ => {
                for line in &o.diagnostics {
                    s.push_str(line);
                    s.push('\n');
                }
            }
        }
    }
    s
}

#[test]
fn corpus_jobs1_vs_jobs8_byte_identical() {
    let jobs = corpus_jobs(3);
    let base = DriverConfig {
        telemetry: Some(Config::default()),
        ..DriverConfig::default()
    };
    let one = compile_batch(
        &jobs,
        &DriverConfig {
            jobs: 1,
            ..base.clone()
        },
    );
    let eight = compile_batch(&jobs, &DriverConfig { jobs: 8, ..base });

    assert_eq!(one.exit_code(), eight.exit_code());
    assert_eq!(render(&one.outcomes), render(&eight.outcomes));

    // Every corpus entry's verdict must match its paper expectation,
    // under both schedules.
    let entries = recmod::corpus::all();
    for (i, o) in eight.outcomes.iter().enumerate() {
        let expect = entries[i % entries.len()].well_typed;
        assert_eq!(
            o.status == FileStatus::Ok,
            expect,
            "{} has unexpected status {:?}",
            o.name,
            o.status
        );
    }
}

#[test]
fn merged_counters_are_the_sum_of_per_worker_counters() {
    let jobs = corpus_jobs(2);
    let res = compile_batch(
        &jobs,
        &DriverConfig {
            jobs: 4,
            telemetry: Some(Config::default()),
            ..DriverConfig::default()
        },
    );
    let merged = res.merged.as_ref().expect("telemetry was requested");
    // For every counter in the merged report, the per-worker values must
    // sum to it exactly (merge is additive, never lossy).
    for (key, total) in &merged.counters {
        if key.ends_with(".hwm") {
            continue; // high-water marks merge by max, not sum
        }
        let sum: u64 = res
            .workers
            .iter()
            .filter_map(|w| w.report.as_ref())
            .map(|r| r.counter(key))
            .sum();
        assert_eq!(sum, *total, "counter {key} is not additive across workers");
    }
    assert_eq!(merged.counter("driver.files"), jobs.len() as u64);
}

#[test]
fn surviving_workers_drain_failed_spawns_deques() {
    // Three workers requested, first two spawns fail: the one survivor
    // must steal both dead deques and drain every file with the same
    // verdicts and aggregate exit code as a clean run.
    let jobs = corpus_jobs(2);
    let clean = compile_batch(
        &jobs,
        &DriverConfig {
            jobs: 3,
            ..DriverConfig::default()
        },
    );
    let degraded = compile_batch(
        &jobs,
        &DriverConfig {
            jobs: 3,
            fail_spawns: 2,
            ..DriverConfig::default()
        },
    );
    assert_eq!(degraded.exit_code(), clean.exit_code());
    assert_eq!(render(&degraded.outcomes), render(&clean.outcomes));
    for o in &degraded.outcomes {
        assert_ne!(
            o.status,
            FileStatus::Internal,
            "{} was dropped instead of drained",
            o.name
        );
    }
}

#[test]
fn all_spawns_failing_reports_internal_not_hang() {
    // Nothing spawned: every file must still get an outcome — the I003
    // "worker thread died" internal error — and the batch exits 4.
    let jobs = corpus_jobs(1);
    let res = compile_batch(
        &jobs,
        &DriverConfig {
            jobs: 2,
            fail_spawns: 2,
            ..DriverConfig::default()
        },
    );
    assert_eq!(res.outcomes.len(), jobs.len());
    for o in &res.outcomes {
        assert_eq!(o.status, FileStatus::Internal);
        assert!(
            o.diags.iter().any(|d| d.code == "I003"),
            "{} missing the worker-death diagnostic",
            o.name
        );
    }
    assert_eq!(res.exit_code(), 4);
}

#[test]
fn warm_worker_rearms_deadline_between_files() {
    // File 1 carries an impossible per-job deadline and must hit the
    // limit; file 2 follows on the same warm worker with no deadline
    // and must compile clean — the stale absolute deadline from file 1
    // must not leak into file 2's limits.
    let entries = recmod::corpus::all();
    let entry = entries
        .iter()
        .find(|e| e.well_typed)
        .expect("corpus has a well-typed entry");
    let jobs = vec![
        Job::new("doomed.rm", entry.source).with_deadline_ms(0),
        Job::new("fine.rm", entry.source),
    ];
    let res = compile_batch(
        &jobs,
        &DriverConfig {
            jobs: 1,
            ..DriverConfig::default()
        },
    );
    assert_eq!(res.outcomes[0].status, FileStatus::Limit);
    assert!(
        res.outcomes[0].diags.iter().any(|d| d.code == "L004"),
        "deadline limit should carry L004, got {:?}",
        res.outcomes[0].diags
    );
    assert_eq!(
        res.outcomes[1].status,
        FileStatus::Ok,
        "stale deadline poisoned the next file on the warm worker"
    );
}

#[test]
fn warm_worker_does_not_leak_type_equivalences_between_files() {
    // File 1 makes `A.t` transparently equal to `int` and uses it at
    // `int`. File 2, on the same warm worker, redefines `A.t` as `bool`
    // and makes the same use — which must now be rejected. Any kernel
    // memo entry from file 1 that survived `Tc::renew` in a form file 2
    // could hit (for instance, keyed without a fresh context stamp, or
    // an NbE environment left in the arena) would wrongly equate the
    // new `t` with `int` and accept it. File 3 repeats file 1 to show
    // the warm path still accepts what it should.
    let with_int = "structure A = struct\n  type t = int\n  val x : t = 1\nend\n";
    let with_bool = "structure A = struct\n  type t = bool\n  val x : t = 1\nend\n";
    let jobs = vec![
        Job::new("int.rm", with_int),
        Job::new("bool.rm", with_bool),
        Job::new("int_again.rm", with_int),
    ];
    let res = compile_batch(
        &jobs,
        &DriverConfig {
            jobs: 1,
            ..DriverConfig::default()
        },
    );
    assert_eq!(res.outcomes[0].status, FileStatus::Ok);
    assert_eq!(
        res.outcomes[1].status,
        FileStatus::Error,
        "a stale `t = int` equivalence leaked across Tc::renew"
    );
    assert_eq!(res.outcomes[2].status, FileStatus::Ok);
}

#[test]
fn worker_attribution_covers_every_file() {
    let jobs = corpus_jobs(2);
    let res = compile_batch(
        &jobs,
        &DriverConfig {
            jobs: 3,
            ..DriverConfig::default()
        },
    );
    let by_worker: usize = res.workers.iter().map(|w| w.files).sum();
    assert_eq!(by_worker, jobs.len());
    for o in &res.outcomes {
        assert!(o.worker < res.workers.len());
        assert!(o.nanos > 0, "{} has no time attributed", o.name);
    }
}
