//! Determinism and aggregation guarantees of the parallel batch driver
//! (ISSUE 4): scheduling must never show through in the output.

use recmod::driver::{compile_batch, DriverConfig, FileStatus, Job};
use recmod::telemetry::Config;

/// The full corpus as a batch, replicated so eight workers have
/// meaningful contention and stealing actually happens.
fn corpus_jobs(replicas: usize) -> Vec<Job> {
    let entries = recmod::corpus::all();
    (0..replicas)
        .flat_map(|r| {
            entries
                .iter()
                .map(move |e| Job::new(format!("{}#{r}", e.name), e.source))
        })
        .collect()
}

/// Renders a batch result the way the CLI does — summaries, ok-lines,
/// and diagnostics, in input order — so "byte-identical output" is
/// checked on the actual user-visible text.
fn render(outcomes: &[recmod::driver::FileOutcome]) -> String {
    let mut s = String::new();
    for o in outcomes {
        match o.status {
            FileStatus::Ok => {
                for (name, describe) in &o.summaries {
                    s.push_str(&format!("{}: {name} : {describe}\n", o.name));
                }
                s.push_str(&format!("{}: ok\n", o.name));
            }
            _ => {
                for line in &o.diagnostics {
                    s.push_str(line);
                    s.push('\n');
                }
            }
        }
    }
    s
}

#[test]
fn corpus_jobs1_vs_jobs8_byte_identical() {
    let jobs = corpus_jobs(3);
    let base = DriverConfig {
        telemetry: Some(Config::default()),
        ..DriverConfig::default()
    };
    let one = compile_batch(
        &jobs,
        &DriverConfig {
            jobs: 1,
            ..base.clone()
        },
    );
    let eight = compile_batch(&jobs, &DriverConfig { jobs: 8, ..base });

    assert_eq!(one.exit_code(), eight.exit_code());
    assert_eq!(render(&one.outcomes), render(&eight.outcomes));

    // Every corpus entry's verdict must match its paper expectation,
    // under both schedules.
    let entries = recmod::corpus::all();
    for (i, o) in eight.outcomes.iter().enumerate() {
        let expect = entries[i % entries.len()].well_typed;
        assert_eq!(
            o.status == FileStatus::Ok,
            expect,
            "{} has unexpected status {:?}",
            o.name,
            o.status
        );
    }
}

#[test]
fn merged_counters_are_the_sum_of_per_worker_counters() {
    let jobs = corpus_jobs(2);
    let res = compile_batch(
        &jobs,
        &DriverConfig {
            jobs: 4,
            telemetry: Some(Config::default()),
            ..DriverConfig::default()
        },
    );
    let merged = res.merged.as_ref().expect("telemetry was requested");
    // For every counter in the merged report, the per-worker values must
    // sum to it exactly (merge is additive, never lossy).
    for (key, total) in &merged.counters {
        if key.ends_with(".hwm") {
            continue; // high-water marks merge by max, not sum
        }
        let sum: u64 = res
            .workers
            .iter()
            .filter_map(|w| w.report.as_ref())
            .map(|r| r.counter(key))
            .sum();
        assert_eq!(sum, *total, "counter {key} is not additive across workers");
    }
    assert_eq!(merged.counter("driver.files"), jobs.len() as u64);
}

#[test]
fn worker_attribution_covers_every_file() {
    let jobs = corpus_jobs(2);
    let res = compile_batch(
        &jobs,
        &DriverConfig {
            jobs: 3,
            ..DriverConfig::default()
        },
    );
    let by_worker: usize = res.workers.iter().map(|w| w.files).sum();
    assert_eq!(by_worker, jobs.len());
    for o in &res.outcomes {
        assert!(o.worker < res.workers.len());
        assert!(o.nanos > 0, "{} has no time attributed", o.name);
    }
}
