//! Telemetry-layer integration tests: per-declaration counter
//! attribution, span-tree well-formedness, the `--stats=json` schema,
//! the disabled-sink overhead bound, and the E1 asymptotic gap captured
//! in recorded counters (referenced from EXPERIMENTS.md).

use recmod::stats::StatsReport;
use recmod::telemetry;
use recmod::telemetry::json::{self, Json};

/// A small program exercising every pipeline stage: an opaquely sealed
/// structure (signature matching, phase splitting) plus a value binding.
const TWO_DECLS: &str = "
    structure S :> sig type t val mk : int -> t val get : t -> int end =
      struct
        type t = int
        val mk = fn (x : int) => x
        val get = fn (x : t) => x
      end
    val y : int = 40 + 2
";

/// Compiles `src` with a fresh telemetry sink installed and returns the
/// compiled program plus what the sink recorded.
fn compile_observed(src: &str) -> (recmod::Compiled, telemetry::Report) {
    telemetry::install(telemetry::Config::default());
    let compiled = recmod::compile(src);
    let report = telemetry::uninstall().expect("sink was installed");
    (compiled.expect("program compiles"), report)
}

// ---------------------------------------------------------------------
// Counter attribution resets between top-level declarations
// ---------------------------------------------------------------------

#[test]
fn per_binding_counters_reset_between_declarations() {
    let compiled = recmod::compile(TWO_DECLS).unwrap();
    let report = StatsReport::collect(&compiled, None, None);
    assert_eq!(report.bindings.len(), 2, "S and y");

    // Each declaration gets its own delta, not a running total.
    let s = &report.bindings[0];
    let y = &report.bindings[1];
    assert!(s.kernel.fuel_used() > 0, "structure elaboration burns fuel");
    assert!(y.kernel.fuel_used() > 0, "value elaboration burns fuel");

    // The structure involves signature matching and phase splitting; the
    // trivial value binding must not inherit its counts. If the counters
    // failed to reset, y's delta would include all of S's work.
    assert!(
        y.kernel.fuel_used() < s.kernel.fuel_used(),
        "trivial binding {} >= structure {}",
        y.kernel.fuel_used(),
        s.kernel.fuel_used()
    );

    // Deltas partition (a subset of) the aggregate: their sum can never
    // exceed the total fuel the checker burned.
    assert!(s.kernel.fuel_used() + y.kernel.fuel_used() <= report.kernel.fuel_used());
}

#[test]
fn reinstalling_the_sink_resets_its_counters() {
    telemetry::install(telemetry::Config::default());
    telemetry::count("t.probe", 7);
    // A second install replaces the sink wholesale; nothing leaks over.
    telemetry::install(telemetry::Config::default());
    telemetry::count("t.probe", 1);
    let report = telemetry::uninstall().unwrap();
    assert_eq!(report.counter("t.probe"), 1);
    assert!(telemetry::uninstall().is_none());
}

// ---------------------------------------------------------------------
// Span nesting well-formedness
// ---------------------------------------------------------------------

/// Checks one span subtree: children's time is contained in the
/// parent's, and the tree has no pathological shapes.
fn check_span(span: &telemetry::Span) {
    assert!(!span.name.is_empty());
    let child_total: u64 = span.children.iter().map(|c| c.nanos).sum();
    assert!(
        child_total <= span.nanos,
        "children of {} total {} ns > parent {} ns",
        span.name,
        child_total,
        span.nanos
    );
    for child in &span.children {
        check_span(child);
    }
}

#[test]
fn spans_recorded_during_compilation_form_a_well_formed_tree() {
    let (_, report) = compile_observed(TWO_DECLS);
    assert!(!report.spans.is_empty(), "compilation records spans");
    assert_eq!(report.spans_dropped, 0);
    for span in &report.spans {
        check_span(span);
    }
    // The pipeline's known stages all show up somewhere in the tree.
    let mut names = Vec::new();
    fn collect<'s>(spans: &'s [telemetry::Span], out: &mut Vec<&'s str>) {
        for s in spans {
            out.push(s.name);
            collect(&s.children, out);
        }
    }
    collect(&report.spans, &mut names);
    for expected in ["surface.elab_topdec", "phase.split"] {
        assert!(names.contains(&expected), "missing span {expected}");
    }
}

// ---------------------------------------------------------------------
// --stats=json schema (golden)
// ---------------------------------------------------------------------

#[test]
fn stats_json_matches_the_documented_schema() {
    let (compiled, report) = compile_observed(TWO_DECLS);
    let stats = StatsReport::collect(&compiled, None, Some(report));
    let emitted = stats.to_json().to_pretty();

    // Round-trips through the bundled parser.
    let doc = json::parse(&emitted).expect("emitter produces valid JSON");

    // Every JSON surface carries the telemetry schema version.
    assert_eq!(
        doc.get("schema_version").and_then(|v| v.as_u64()),
        Some(telemetry::SCHEMA_VERSION),
        "stats json must declare schema_version"
    );

    // Top-level sections.
    for key in ["kernel", "bindings", "phase", "surface", "eval", "spans"] {
        assert!(doc.get(key).is_some(), "missing top-level key {key}");
    }

    // Kernel counters: nonzero fuel, and fuel_by_op covers every FuelOp.
    let kernel = doc.get("kernel").unwrap();
    assert!(kernel.get("fuel_used").unwrap().as_u64().unwrap() > 0);
    assert!(kernel.get("fuel_budget").unwrap().as_u64().unwrap() > 0);
    let Some(Json::Obj(by_op)) = kernel.get("fuel_by_op") else {
        panic!("fuel_by_op must be an object");
    };
    assert_eq!(by_op.len(), recmod::kernel::FuelOp::ALL.len());
    for op in recmod::kernel::FuelOp::ALL {
        assert!(
            by_op.contains_key(op.key()),
            "missing fuel_by_op.{}",
            op.key()
        );
    }

    // Per-binding elaboration timings are present and nonzero.
    let bindings = doc.get("bindings").unwrap().as_arr().unwrap();
    assert_eq!(bindings.len(), 2);
    for b in bindings {
        assert!(b.get("name").unwrap().as_str().is_some());
        assert!(b.get("elab_nanos").unwrap().as_u64().unwrap() > 0);
        assert!(b.get("kernel").unwrap().get("fuel_used").is_some());
    }

    // Phase section: the structure was split, so node counts are live.
    let phase = doc.get("phase").unwrap();
    assert!(phase.get("split_calls").unwrap().as_u64().unwrap() >= 1);
    assert!(phase.get("nodes_in").unwrap().as_u64().unwrap() > 0);

    // Surface section saw both declarations.
    let surface = doc.get("surface").unwrap();
    assert_eq!(surface.get("topdecs").unwrap().as_u64(), Some(2));
    assert_eq!(surface.get("bindings").unwrap().as_u64(), Some(2));

    // No program was run, so eval is null.
    assert!(matches!(doc.get("eval"), Some(Json::Null)));
}

// ---------------------------------------------------------------------
// Disabled-sink overhead
// ---------------------------------------------------------------------

#[test]
fn disabled_sink_path_is_near_zero_cost() {
    assert!(!telemetry::enabled());
    const ITERS: u64 = 200_000;
    let t0 = std::time::Instant::now();
    for i in 0..ITERS {
        telemetry::count("overhead.probe", i);
        let _g = telemetry::span("overhead.span");
        let _t = telemetry::trace_span(|| unreachable!("sink disabled"));
    }
    let elapsed = t0.elapsed();
    // Each disabled call is a thread-local flag check; even in a debug
    // build 600k calls finish orders of magnitude under this bound. The
    // bound is deliberately generous (CI noise) while still catching a
    // regression to "always allocate/format/read the clock".
    assert!(
        elapsed < std::time::Duration::from_millis(500),
        "3×{ITERS} disabled telemetry calls took {elapsed:?}"
    );
}

// ---------------------------------------------------------------------
// E1: the §3.1 asymptotic gap, in recorded counters
// ---------------------------------------------------------------------

/// EXPERIMENTS.md E1 cites this test: the opaque recursive-module list
/// has superlinear (Θ(n²)) per-run cost while the §4 transparent version
/// is Θ(n), and both typecheck in constant fuel regardless of n.
#[test]
fn e1_asymptotic_gap_in_counters() {
    let (o20, ok20) = recmod_bench::list_run_stats(true, 20);
    let (o80, ok80) = recmod_bench::list_run_stats(true, 80);
    let (t20, tk20) = recmod_bench::list_run_stats(false, 20);
    let (t80, tk80) = recmod_bench::list_run_stats(false, 80);

    // Opaque: per-element cost grows with n (superlinear total).
    let opaque_per_20 = o20.steps as f64 / 20.0;
    let opaque_per_80 = o80.steps as f64 / 80.0;
    assert!(
        opaque_per_80 > 2.0 * opaque_per_20,
        "opaque per-element cost must grow: {opaque_per_20} -> {opaque_per_80}"
    );

    // Transparent: per-element cost is O(1) — bounded as n quadruples.
    let transp_per_20 = t20.steps as f64 / 20.0;
    let transp_per_80 = t80.steps as f64 / 80.0;
    assert!(
        transp_per_80 < 1.5 * transp_per_20,
        "transparent per-element cost must stay flat: {transp_per_20} -> {transp_per_80}"
    );

    // Compile-time cost is independent of n: the driver only changes a
    // literal, so checker fuel and μ-unroll counts are identical.
    assert_eq!(ok20.fuel_used(), ok80.fuel_used());
    assert_eq!(tk20.fuel_used(), tk80.fuel_used());
    assert_eq!(ok20.mu_unrolls, ok80.mu_unrolls);
    assert_eq!(tk20.mu_unrolls, tk80.mu_unrolls);

    // And the μ-unroll counts recorded in EXPERIMENTS.md: the opaque
    // module's μ stays opaque (nothing to unroll); the transparent rds
    // resolution unrolls during datatype-equation discharge.
    assert_eq!(ok20.mu_unrolls, 0);
    assert!(tk20.mu_unrolls > 0);
}
