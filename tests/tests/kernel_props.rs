//! Property tests for the kernel, using the bench crate's deterministic
//! generators: equivalence is an equivalence relation and a congruence,
//! normalization is idempotent and equivalence-preserving, and the
//! phase-splitting translation always verifies.

use proptest::prelude::*;
use recmod::kernel::{Ctx, RecMode, Tc};
use recmod::syntax::ast::Kind;
use recmod::syntax::ast::Con;
use recmod_bench::{gen_internal_fix, gen_nested_pair, gen_regular_mu, gen_unrolled_pair};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Reflexivity at kind T for generated recursive monotypes.
    #[test]
    fn equiv_reflexive(seed in 0u64..500, size in 2usize..24) {
        let c = gen_regular_mu(size, seed);
        let tc = Tc::new();
        let mut ctx = Ctx::new();
        tc.con_equiv(&mut ctx, &c, &c, &Kind::Type).unwrap();
    }

    /// Symmetry on μ-vs-unrolling pairs.
    #[test]
    fn equiv_symmetric(seed in 0u64..500, size in 2usize..24) {
        let (a, b) = gen_unrolled_pair(size, seed);
        let tc = Tc::new();
        let mut ctx = Ctx::new();
        tc.con_equiv(&mut ctx, &a, &b, &Kind::Type).unwrap();
        tc.con_equiv(&mut ctx, &b, &a, &Kind::Type).unwrap();
    }

    /// Transitivity through the nested-collapse chain:
    /// nested = flat and flat = unroll(flat) imply nested = unroll(flat).
    #[test]
    fn equiv_transitive_chain(seed in 0u64..200, size in 2usize..16) {
        let (nested, flat) = gen_nested_pair(size, seed);
        let tc = Tc::new();
        let mut ctx = Ctx::new();
        tc.con_equiv(&mut ctx, &nested, &flat, &Kind::Type).unwrap();
        let unrolled = recmod::kernel::whnf::unroll_mu(&flat);
        tc.con_equiv(&mut ctx, &flat, &unrolled, &Kind::Type).unwrap();
        tc.con_equiv(&mut ctx, &nested, &unrolled, &Kind::Type).unwrap();
    }

    /// Congruence: equal components make equal arrows/products/sums.
    #[test]
    fn equiv_congruence(seed in 0u64..200, size in 2usize..16) {
        let (a, b) = gen_unrolled_pair(size, seed);
        let tc = Tc::new();
        let mut ctx = Ctx::new();
        let arrow_a = Con::Arrow(Box::new(a.clone()), Box::new(b.clone()));
        let arrow_b = Con::Arrow(Box::new(b.clone()), Box::new(a.clone()));
        tc.con_equiv(&mut ctx, &arrow_a, &arrow_b, &Kind::Type).unwrap();
        let sum_a = Con::Sum(vec![a.clone(), b.clone()]);
        let sum_b = Con::Sum(vec![b, a]);
        tc.con_equiv(&mut ctx, &sum_a, &sum_b, &Kind::Type).unwrap();
    }

    /// Weak-head normalization is idempotent.
    #[test]
    fn whnf_idempotent(seed in 0u64..500, size in 2usize..24) {
        let c = gen_regular_mu(size, seed);
        let tc = Tc::new();
        let mut ctx = Ctx::new();
        let w1 = tc.whnf(&mut ctx, &c).unwrap();
        let w2 = tc.whnf(&mut ctx, &w1).unwrap();
        prop_assert_eq!(w1, w2);
    }

    /// Normalization preserves definitional equality.
    #[test]
    fn whnf_preserves_equiv(seed in 0u64..500, size in 2usize..24) {
        let (_, b) = gen_unrolled_pair(size, seed);
        let tc = Tc::new();
        let mut ctx = Ctx::new();
        let w = tc.whnf(&mut ctx, &b).unwrap();
        tc.con_equiv(&mut ctx, &b, &w, &Kind::Type).unwrap();
    }

    /// Plain iso mode refuses μ-vs-unrolling (unless syntactically equal).
    #[test]
    fn iso_mode_is_strictly_weaker(seed in 0u64..200, size in 2usize..16) {
        let (a, b) = gen_unrolled_pair(size, seed);
        prop_assume!(a != b);
        let tc = Tc::with_mode(RecMode::Iso);
        let mut ctx = Ctx::new();
        // The unrolling of a contractive μ is never itself the same μ,
        // so plain iso mode cannot identify them…
        let equal = tc.con_equiv(&mut ctx, &a, &b, &Kind::Type).is_ok();
        // …except when whnf already collapses both to the same head
        // (possible when the μ is vacuous in its variable).
        if equal {
            let e = Tc::new();
            let wa = e.whnf(&mut ctx, &a).unwrap();
            let wb = e.whnf(&mut ctx, &b).unwrap();
            prop_assert!(wa == wb || !matches!(wa, Con::Mu(_, _)));
        }
    }

    /// The §5 elimination pass clears every kind-homogeneous tower and
    /// preserves equi-equality.
    #[test]
    fn elimination_sound(seed in 0u64..200, size in 2usize..16) {
        let (nested, _) = gen_nested_pair(size, seed);
        let out = recmod::phase::iso::eliminate_nested_mu(&nested);
        prop_assert_eq!(recmod::phase::iso::nested_mu_count(&out), 0);
        let tc = Tc::new();
        let mut ctx = Ctx::new();
        tc.con_equiv(&mut ctx, &nested, &out, &Kind::Type).unwrap();
    }

    /// Figure-4 splitting verifies for arbitrary static widths.
    #[test]
    fn split_always_verifies(width in 1usize..12) {
        let tc = Tc::new();
        let mut ctx = Ctx::new();
        let m = gen_internal_fix(width);
        recmod::phase::check_split(&tc, &mut ctx, &m).unwrap();
    }

    /// Generated kinds: selfification yields a subkind of the original.
    #[test]
    fn selfification_is_a_subkind(seed in 0u64..500, size in 2usize..24) {
        let c = gen_regular_mu(size, seed);
        let tc = Tc::new();
        let mut ctx = Ctx::new();
        let k = tc.synth_con(&mut ctx, &c).unwrap();
        tc.subkind(&mut ctx, &k, &Kind::Type).unwrap();
    }
}
