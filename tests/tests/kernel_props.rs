//! Property tests for the kernel, using the bench crate's deterministic
//! generators: equivalence is an equivalence relation and a congruence,
//! normalization is idempotent and equivalence-preserving, and the
//! phase-splitting translation always verifies.
//!
//! Each property runs over a seeded sweep (the bench crate's SplitMix64
//! drives case generation), so failures are reproducible by seed.

use recmod::kernel::{Ctx, RecMode, Tc};
use recmod::syntax::ast::Con;
use recmod::syntax::ast::Kind;
use recmod::syntax::intern::hc;
use recmod_bench::rng::Rng;
use recmod_bench::{gen_internal_fix, gen_nested_pair, gen_regular_mu, gen_unrolled_pair};

const CASES: usize = 64;

/// Per-case seeds and sizes for one property, derived from a master
/// seed so properties don't share streams.
fn sweep(master: u64, max_size: usize) -> impl Iterator<Item = (u64, usize)> {
    let mut rng = Rng::new(master);
    (0..CASES).map(move |_| (rng.below(500), rng.range(2, max_size)))
}

/// Reflexivity at kind T for generated recursive monotypes.
#[test]
fn equiv_reflexive() {
    for (seed, size) in sweep(0xA1, 24) {
        let c = gen_regular_mu(size, seed);
        let tc = Tc::new();
        let mut ctx = Ctx::new();
        tc.con_equiv(&mut ctx, &c, &c, &Kind::Type)
            .unwrap_or_else(|e| panic!("seed={seed} size={size}: {e}"));
    }
}

/// Symmetry on μ-vs-unrolling pairs.
#[test]
fn equiv_symmetric() {
    for (seed, size) in sweep(0xA2, 24) {
        let (a, b) = gen_unrolled_pair(size, seed);
        let tc = Tc::new();
        let mut ctx = Ctx::new();
        tc.con_equiv(&mut ctx, &a, &b, &Kind::Type)
            .unwrap_or_else(|e| panic!("seed={seed} size={size}: {e}"));
        tc.con_equiv(&mut ctx, &b, &a, &Kind::Type)
            .unwrap_or_else(|e| panic!("seed={seed} size={size} (sym): {e}"));
    }
}

/// Transitivity through the nested-collapse chain:
/// nested = flat and flat = unroll(flat) imply nested = unroll(flat).
#[test]
fn equiv_transitive_chain() {
    for (seed, size) in sweep(0xA3, 16) {
        let (nested, flat) = gen_nested_pair(size, seed);
        let tc = Tc::new();
        let mut ctx = Ctx::new();
        tc.con_equiv(&mut ctx, &nested, &flat, &Kind::Type)
            .unwrap_or_else(|e| panic!("seed={seed} size={size}: {e}"));
        let unrolled = recmod::kernel::whnf::unroll_mu(&flat).expect("flat is a μ");
        tc.con_equiv(&mut ctx, &flat, &unrolled, &Kind::Type)
            .unwrap_or_else(|e| panic!("seed={seed} size={size}: {e}"));
        tc.con_equiv(&mut ctx, &nested, &unrolled, &Kind::Type)
            .unwrap_or_else(|e| panic!("seed={seed} size={size} (trans): {e}"));
    }
}

/// Congruence: equal components make equal arrows/products/sums.
#[test]
fn equiv_congruence() {
    for (seed, size) in sweep(0xA4, 16) {
        let (a, b) = gen_unrolled_pair(size, seed);
        let tc = Tc::new();
        let mut ctx = Ctx::new();
        let arrow_a = Con::Arrow(hc(a.clone()), hc(b.clone()));
        let arrow_b = Con::Arrow(hc(b.clone()), hc(a.clone()));
        tc.con_equiv(&mut ctx, &arrow_a, &arrow_b, &Kind::Type)
            .unwrap_or_else(|e| panic!("seed={seed} size={size}: {e}"));
        let sum_a = Con::Sum(vec![hc(a.clone()), hc(b.clone())]);
        let sum_b = Con::Sum(vec![hc(b), hc(a)]);
        tc.con_equiv(&mut ctx, &sum_a, &sum_b, &Kind::Type)
            .unwrap_or_else(|e| panic!("seed={seed} size={size} (sum): {e}"));
    }
}

/// Weak-head normalization is idempotent.
#[test]
fn whnf_idempotent() {
    for (seed, size) in sweep(0xA5, 24) {
        let c = gen_regular_mu(size, seed);
        let tc = Tc::new();
        let mut ctx = Ctx::new();
        let w1 = tc.whnf(&mut ctx, &c).unwrap();
        let w2 = tc.whnf(&mut ctx, &w1).unwrap();
        assert_eq!(w1, w2, "seed={seed} size={size}");
    }
}

/// Normalization preserves definitional equality.
#[test]
fn whnf_preserves_equiv() {
    for (seed, size) in sweep(0xA6, 24) {
        let (_, b) = gen_unrolled_pair(size, seed);
        let tc = Tc::new();
        let mut ctx = Ctx::new();
        let w = tc.whnf(&mut ctx, &b).unwrap();
        tc.con_equiv(&mut ctx, &b, &w, &Kind::Type)
            .unwrap_or_else(|e| panic!("seed={seed} size={size}: {e}"));
    }
}

/// Plain iso mode refuses μ-vs-unrolling (unless syntactically equal).
#[test]
fn iso_mode_is_strictly_weaker() {
    for (seed, size) in sweep(0xA7, 16) {
        let (a, b) = gen_unrolled_pair(size, seed);
        if a == b {
            continue;
        }
        let tc = Tc::with_mode(RecMode::Iso);
        let mut ctx = Ctx::new();
        // The unrolling of a contractive μ is never itself the same μ,
        // so plain iso mode cannot identify them…
        let equal = tc.con_equiv(&mut ctx, &a, &b, &Kind::Type).is_ok();
        // …except when whnf already collapses both to the same head
        // (possible when the μ is vacuous in its variable).
        if equal {
            let e = Tc::new();
            let wa = e.whnf(&mut ctx, &a).unwrap();
            let wb = e.whnf(&mut ctx, &b).unwrap();
            assert!(
                wa == wb || !matches!(wa, Con::Mu(_, _)),
                "seed={seed} size={size}: iso mode equated a μ with its unrolling"
            );
        }
    }
}

/// The §5 elimination pass clears every kind-homogeneous tower and
/// preserves equi-equality.
#[test]
fn elimination_sound() {
    for (seed, size) in sweep(0xA8, 16) {
        let (nested, _) = gen_nested_pair(size, seed);
        let out = recmod::phase::iso::eliminate_nested_mu(&nested);
        assert_eq!(
            recmod::phase::iso::nested_mu_count(&out),
            0,
            "seed={seed} size={size}"
        );
        let tc = Tc::new();
        let mut ctx = Ctx::new();
        tc.con_equiv(&mut ctx, &nested, &out, &Kind::Type)
            .unwrap_or_else(|e| panic!("seed={seed} size={size}: {e}"));
    }
}

/// Figure-4 splitting verifies for arbitrary static widths.
#[test]
fn split_always_verifies() {
    let mut rng = Rng::new(0xA9);
    for _ in 0..CASES {
        let width = rng.range(1, 12);
        let tc = Tc::new();
        let mut ctx = Ctx::new();
        let m = gen_internal_fix(width);
        recmod::phase::check_split(&tc, &mut ctx, &m)
            .unwrap_or_else(|e| panic!("width={width}: {e}"));
    }
}

/// Generated kinds: selfification yields a subkind of the original.
#[test]
fn selfification_is_a_subkind() {
    for (seed, size) in sweep(0xAA, 24) {
        let c = gen_regular_mu(size, seed);
        let tc = Tc::new();
        let mut ctx = Ctx::new();
        let k = tc.synth_con(&mut ctx, &c).unwrap();
        tc.subkind(&mut ctx, &k, &Kind::Type)
            .unwrap_or_else(|e| panic!("seed={seed} size={size}: {e}"));
    }
}
