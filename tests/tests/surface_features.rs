//! Feature coverage for the surface language and elaborator, beyond the
//! paper corpus: sealing semantics, nested structures, functor plumbing,
//! scoping, and error reporting.

use recmod::surface::ErrorKind;

fn run_int(src: &str) -> i64 {
    recmod::run(src)
        .map_err(|e| format!("{e}"))
        .unwrap()
        .value_int()
        .expect("integer result")
}

fn compile_err(src: &str) -> ErrorKind {
    recmod::compile(src).unwrap_err().kind
}

#[test]
fn transparent_ascription_keeps_type_equalities() {
    let src = "
        structure S : sig type t val x : t end =
          struct type t = int val x = 3 end
        ;
        S.x + 1";
    assert_eq!(run_int(src), 4);
}

#[test]
fn opaque_sealing_hides_type_identities() {
    // Same program with `:>` — S.t is abstract, so S.x + 1 is ill-typed.
    let src = "
        structure S :> sig type t val x : t end =
          struct type t = int val x = 3 end
        ;
        S.x + 1";
    assert!(matches!(compile_err(src), ErrorKind::Type(_)));
}

#[test]
fn sealing_hides_extra_components() {
    let src = "
        structure S :> sig val x : int end =
          struct val hidden = 10 val x = hidden + 1 end
        ;
        S.hidden";
    assert!(matches!(compile_err(src), ErrorKind::Unbound(_)));
}

#[test]
fn nested_structures_and_deep_paths() {
    let src = "
        structure Outer = struct
          structure Inner = struct
            type t = int
            val v = 21
            fun double (x : t) : t = x * 2
          end
          val w = Inner.double Inner.v
        end
        ;
        Outer.Inner.double Outer.w";
    assert_eq!(run_int(src), 84);
}

#[test]
fn signature_ascription_reorders_components() {
    // The structure declares components in a different order than the
    // signature; coercion re-tuples them.
    let src = "
        structure S : sig val a : int val b : int end =
          struct val b = 2 val a = 1 end
        ;
        S.a * 10 + S.b";
    assert_eq!(run_int(src), 12);
}

#[test]
fn functor_applied_twice_generatively() {
    let src = "
        signature CELL = sig type t val init : t end
        functor MkPair (structure C : CELL) = struct
          val fstv = C.init
          val pair = (C.init, C.init)
        end
        structure IntCell = struct type t = int val init = 7 end
        structure BoolCell = struct type t = bool val init = true end
        structure P1 = MkPair (IntCell)
        structure P2 = MkPair (BoolCell)
        ;
        if P2.fstv then P1.fstv else 0";
    assert_eq!(run_int(src), 7);
}

#[test]
fn functor_of_functor_result() {
    let src = "
        functor Inc (structure X : sig val n : int end) =
          struct val n = X.n + 1 end
        structure A = struct val n = 0 end
        structure B = Inc (Inc (Inc (A)))
        ;
        B.n";
    assert_eq!(run_int(src), 3);
}

#[test]
fn shadowing_resolves_innermost() {
    let src = "
        val x = 1
        val x = x + 10
        structure S = struct val x = 100 end
        ;
        x + S.x";
    assert_eq!(run_int(src), 111);
}

#[test]
fn let_bindings_including_datatypes() {
    let src = "
        let datatype opt = NONE | SOME of int
            fun get (o : opt) : int = case o of NONE => 0 | SOME n => n
            val a = get (SOME 40)
            val b = get NONE
        in a + b + 2 end";
    assert_eq!(run_int(src), 42);
}

#[test]
fn case_with_catch_all() {
    let src = "
        structure D = struct
          datatype t = A | B | C of int
          fun classify (x : t) : int =
            case x of C n => n | other => 0 - 1
        end
        ;
        D.classify (D.C 9) + D.classify D.A";
    assert_eq!(run_int(src), 8);
}

#[test]
fn nonexhaustive_case_rejected() {
    let src = "
        structure D = struct
          datatype t = A | B
          fun f (x : t) : int = case x of A => 1
        end";
    match compile_err(src) {
        ErrorKind::Other(msg) => assert!(msg.contains("nonexhaustive"), "{msg}"),
        other => panic!("expected nonexhaustive error, got {other:?}"),
    }
}

#[test]
fn where_type_on_named_signature() {
    let src = "
        signature S = sig type t val x : t end
        structure M : S where type t = int =
          struct type t = int val x = 5 end
        ;
        M.x + 1";
    assert_eq!(run_int(src), 6);
}

#[test]
fn and_group_of_plain_structures() {
    let src = "
        structure A = struct val x = 1 end
        and B = struct val y = 2 end
        ;
        A.x + B.y";
    assert_eq!(run_int(src), 3);
}

#[test]
fn missing_component_reported() {
    let src = "
        structure S : sig val x : int val y : int end =
          struct val x = 1 end";
    assert!(matches!(
        compile_err(src),
        ErrorKind::MissingComponent { .. }
    ));
}

#[test]
fn duplicate_binding_in_signature_rejected() {
    let src = "signature S = sig type t type t end";
    assert!(matches!(compile_err(src), ErrorKind::Duplicate(_)));
}

#[test]
fn wrong_entity_reported() {
    assert!(matches!(
        compile_err("val x = 1 structure T = x"),
        ErrorKind::WrongEntity { .. }
    ));
}

#[test]
fn annotations_check() {
    assert_eq!(run_int("val x : int = 2; (x : int) + 1"), 3);
    assert!(matches!(
        compile_err("val x : bool = 2"),
        ErrorKind::Type(_)
    ));
}

#[test]
fn higher_order_functions() {
    let src = "
        val twice = fn (f : int -> int) => fn (x : int) => f (f x)
        fun inc (n : int) : int = n + 1
        ;
        twice inc 40";
    assert_eq!(run_int(src), 42);
}

#[test]
fn recursive_function_through_two_structures() {
    // Mutual recursion across two members of a rec group, at the value
    // level (through the module fix), with transparent types.
    let src = "
        structure rec Even : sig
          val test : int -> bool
        end = struct
          fun test (n : int) : bool = if n = 0 then true else Odd.test (n - 1)
        end
        and Odd : sig
          val test : int -> bool
        end = struct
          fun test (n : int) : bool = if n = 0 then false else Even.test (n - 1)
        end
        ;
        if Even.test 10 then 1 else 0";
    assert_eq!(run_int(src), 1);
}

#[test]
fn datatype_constructors_are_first_class() {
    let src = "
        structure L = struct
          datatype t = N | C of int * t
          fun fold (f : int * t -> t) : t = f (1, f (2, N))
        end
        ;
        case L.fold L.C of L.N => 0 | L.C p => (case p of (h, r) => h)";
    assert_eq!(run_int(src), 1);
}

#[test]
fn comments_are_ignored() {
    assert_eq!(run_int("(* a (* nested *) comment *) 1 + 1"), 2);
}

#[test]
fn rec_structure_value_components_see_each_other() {
    // A recursive structure whose functions call each other through the
    // recursive variable *and* directly.
    let src = "
        structure rec M : sig
          datatype t = Z | S of M.t
          val fromInt : int -> t
          val toInt : t -> int
        end = struct
          datatype t = Z | S of M.t
          fun fromInt (n : int) : t = if n = 0 then Z else S (fromInt (n - 1))
          fun toInt (x : t) : int = case x of Z => 0 | S y => 1 + M.toInt y
        end
        ;
        M.toInt (M.fromInt 9)";
    assert_eq!(run_int(src), 9);
}
