//! Negative tests: every kernel error category is reachable through the
//! public API, with the expected variant (ill-typed programs must fail
//! for the *right* reason).

use recmod::kernel::{Ctx, Tc, TypeError};
use recmod::syntax::ast::{Con, Kind, Term, Ty};
use recmod::syntax::dsl::*;

fn tc() -> Tc {
    Tc::new()
}

#[test]
fn unbound_variables() {
    let mut ctx = Ctx::new();
    assert!(matches!(
        tc().synth_con(&mut ctx, &cvar(0)),
        Err(TypeError::Unbound { .. })
    ));
    assert!(matches!(
        tc().synth_term(&mut ctx, &var(3)),
        Err(TypeError::Unbound { .. })
    ));
    assert!(matches!(
        tc().synth_module(&mut ctx, &mvar(0)),
        Err(TypeError::Unbound { .. })
    ));
}

#[test]
fn wrong_sort_lookups() {
    let mut ctx = Ctx::new();
    ctx.with_con(tkind(), |ctx| {
        // A constructor binder used as a term/structure.
        assert!(tc().synth_term(ctx, &var(0)).is_err());
        assert!(tc().synth_term(ctx, &snd(0)).is_err());
    });
}

#[test]
fn applying_a_non_function() {
    let mut ctx = Ctx::new();
    assert!(matches!(
        tc().synth_term(&mut ctx, &app(int(1), int(2))),
        Err(TypeError::NotAFunction(_))
    ));
}

#[test]
fn projecting_a_non_product() {
    let mut ctx = Ctx::new();
    assert!(matches!(
        tc().synth_term(&mut ctx, &proj1(int(1))),
        Err(TypeError::NotAProduct(_))
    ));
}

#[test]
fn instantiating_a_non_polymorphic_term() {
    let mut ctx = Ctx::new();
    assert!(matches!(
        tc().synth_term(&mut ctx, &tapp(int(1), Con::Int)),
        Err(TypeError::NotPolymorphic(_))
    ));
}

#[test]
fn case_on_a_non_sum() {
    let mut ctx = Ctx::new();
    assert!(matches!(
        tc().synth_term(&mut ctx, &case(int(1), [var(0)])),
        Err(TypeError::NotASum(_))
    ));
}

#[test]
fn unrolling_a_non_mu() {
    let mut ctx = Ctx::new();
    assert!(matches!(
        tc().synth_term(&mut ctx, &unroll(int(1))),
        Err(TypeError::NotAMu(_))
    ));
}

#[test]
fn inj_index_out_of_range() {
    let mut ctx = Ctx::new();
    let sum = csum([Con::Int]);
    assert!(matches!(
        tc().synth_term(&mut ctx, &inj(3, sum, int(1))),
        Err(TypeError::InjIndex {
            index: 3,
            summands: 1
        })
    ));
}

#[test]
fn branch_count_mismatch() {
    let mut ctx = Ctx::new();
    let sum = csum([Con::Int, Con::Bool, Con::UnitTy]);
    assert!(matches!(
        tc().synth_term(&mut ctx, &case(inj(0, sum, int(1)), [var(0)])),
        Err(TypeError::BranchCount {
            summands: 3,
            branches: 1
        })
    ));
}

#[test]
fn prim_arity_mismatch() {
    let mut ctx = Ctx::new();
    let bad = Term::Prim(recmod::syntax::ast::PrimOp::Add, vec![int(1)]);
    assert!(matches!(
        tc().synth_term(&mut ctx, &bad),
        Err(TypeError::PrimArity {
            expected: 2,
            found: 1,
            ..
        })
    ));
}

#[test]
fn kind_level_failures() {
    let mut ctx = Ctx::new();
    // Applying a monotype as a constructor function.
    assert!(matches!(
        tc().synth_con(&mut ctx, &capp(Con::Int, Con::Bool)),
        Err(TypeError::NotAPiKind(_))
    ));
    // Projecting a non-pair constructor.
    assert!(matches!(
        tc().synth_con(&mut ctx, &cproj1(Con::Int)),
        Err(TypeError::NotASigmaKind(_))
    ));
    // Singleton of a non-monotype is ill-formed.
    assert!(tc().wf_kind(&mut ctx, &q(clam(tkind(), cvar(0)))).is_err());
}

#[test]
fn subkinding_failures_have_the_right_variant() {
    let mut ctx = Ctx::new();
    assert!(matches!(
        tc().subkind(&mut ctx, &tkind(), &q(Con::Int)),
        Err(TypeError::NotASubkind { .. })
    ));
    assert!(matches!(
        tc().subkind(&mut ctx, &tkind(), &unit_kind()),
        Err(TypeError::NotASubkind { .. })
    ));
}

#[test]
fn type_mismatches_have_the_right_variant() {
    let mut ctx = Ctx::new();
    assert!(matches!(
        tc().ty_eq(&mut ctx, &Ty::Unit, &tcon(Con::Int)),
        Err(TypeError::TyMismatch { .. })
    ));
    assert!(matches!(
        tc().ty_sub(
            &mut ctx,
            &partial(tcon(Con::Int), tcon(Con::Int)),
            &total(tcon(Con::Int), tcon(Con::Int))
        ),
        Err(TypeError::NotASubtype { .. })
    ));
}

#[test]
fn fuel_exhaustion_is_reported_not_hung() {
    let t = Tc::new();
    t.set_fuel(5);
    let mut ctx = Ctx::new();
    // A large equivalence problem under a tiny budget.
    let (a, b) = recmod_bench::gen_nested_pair(64, 1);
    assert!(matches!(
        t.con_equiv(&mut ctx, &a, &b, &Kind::Type),
        Err(TypeError::FuelExhausted { .. })
    ));
}

#[test]
fn rds_over_non_flat_signature_rejected() {
    let mut ctx = Ctx::new();
    // ρs.ρs'.S — nested rds is not part of the calculus.
    let s = rds(rds(sig(q(Con::Int), Ty::Unit)));
    assert!(matches!(
        tc().resolve_sig(&mut ctx, &s),
        Err(TypeError::RdsNotTransparent(_))
    ));
}

#[test]
fn fix_annotation_must_be_wellformed() {
    let mut ctx = Ctx::new();
    // Annotation uses an unbound constructor variable.
    let bad_sig = sig(q(cvar(7)), Ty::Unit);
    let m = mfix(bad_sig, strct(Con::Int, Term::Star));
    assert!(tc().synth_module(&mut ctx, &m).is_err());
}

#[test]
fn sealing_with_ill_formed_signature_rejected() {
    let mut ctx = Ctx::new();
    let bad_sig = sig(q(cvar(0)), Ty::Unit);
    let m = seal(strct(Con::Int, Term::Star), bad_sig);
    assert!(tc().synth_module(&mut ctx, &m).is_err());
}

#[test]
fn error_messages_render() {
    // Every variant used above has a non-empty, lowercase-ish rendering.
    let mut ctx = Ctx::new();
    let e = tc().synth_term(&mut ctx, &app(int(1), int(2))).unwrap_err();
    let msg = e.to_string();
    assert!(!msg.is_empty());
    assert!(msg.starts_with(char::is_lowercase));
}

#[test]
fn surface_spans_point_into_the_source() {
    let src = "val x = 1\nval y = unknown_name";
    let err = recmod::compile(src).unwrap_err();
    let rendered = err.render(src);
    assert!(
        rendered.starts_with("2:"),
        "span should be on line 2: {rendered}"
    );
}
