//! Edge cases of `structure rec` elaboration: mixed group shapes,
//! rds substructure references, where-type into group members, and the
//! interaction of recursion with sealing and functors.

fn run_int(src: &str) -> i64 {
    recmod::eval::run_big_stack(512, {
        let src = src.to_string();
        move || {
            recmod::run(&src)
                .map_err(|e| e.render(&src))
                .unwrap()
                .value_int()
                .expect("integer result")
        }
    })
}

#[test]
fn three_way_mutual_recursion() {
    let src = "
        structure rec A : sig
          datatype t = BASE | WRAP of B.t
          val size : t -> int
        end = struct
          datatype t = BASE | WRAP of B.t
          fun size (x : t) : int = case x of BASE => 1 | WRAP b => 1 + B.size b
        end
        and B : sig
          datatype t = BASE | WRAP of C.t
          val size : t -> int
        end = struct
          datatype t = BASE | WRAP of C.t
          fun size (x : t) : int = case x of BASE => 1 | WRAP c => 1 + C.size c
        end
        and C : sig
          datatype t = BASE | WRAP of A.t
          val size : t -> int
        end = struct
          datatype t = BASE | WRAP of A.t
          fun size (x : t) : int = case x of BASE => 1 | WRAP a => 1 + A.size a
        end
        ;
        A.size (A.WRAP (B.WRAP (C.WRAP A.BASE)))";
    assert_eq!(run_int(src), 4);
}

#[test]
fn rec_member_defined_by_functor_application_of_other_member_types() {
    // The rds BuildList pattern, but checking the *result* is usable
    // from the other member of the same group.
    let src = "
        functor Wrap (structure rec L : sig
          datatype t = N | C of int * L.t
          val cons : int * t -> t
          val nil : t
        end) = struct
          datatype t = N | C of int * L.t
          val nil = N
          fun cons (p : int * t) : t = C p
          fun head (l : t) : int = case l of N => 0 - 1 | C p => (case p of (h, r) => h)
        end
        structure rec L : sig
          datatype t = N | C of int * L.t
          val cons : int * t -> t
          val nil : t
          val head : t -> int
        end = Wrap (structure L = L)
        ;
        L.head (L.cons (42, L.nil))";
    assert_eq!(run_int(src), 42);
}

#[test]
fn where_type_across_group_members_both_directions() {
    // Mirror of the paper's Expr/Decl with the ascription flavours
    // swapped (`:` on the first member, `:>` on the second).
    let src = "
        signature LEFT = sig
          type a
          type b
          val mk : b -> a
          val un : a -> b
        end
        signature RIGHT = sig
          type b
          type a
          val mk : a -> b
          val un : b -> a
        end
        structure rec Lft : LEFT where type b = Rgt.b = struct
          datatype a = A of Rgt.b
          type b = Rgt.b
          fun mk (x : b) : a = A x
          fun un (x : a) : b = case x of A y => y
        end
        and Rgt :> RIGHT where type a = Lft.a = struct
          datatype b = B of int
          type a = Lft.a
          fun mk (x : a) : b = B (0 - 1)
          fun un (x : b) : a = Lft.mk x
        end
        ;
        case Rgt.un (B?) of _ => 0";
    // The driver can't name Rgt's hidden constructor; just check the
    // bindings typecheck (compile only).
    let src = src.replace(";\n        case Rgt.un (B?) of _ => 0", "");
    recmod::compile(&src).map_err(|e| e.render(&src)).unwrap();
}

#[test]
fn rec_group_with_plain_value_recursion_and_datatypes_mixed() {
    let src = "
        structure rec T : sig
          datatype t = LEAF of int | FORK of T.t * T.t
          val sum : t -> int
          val mirror : t -> t
        end = struct
          datatype t = LEAF of int | FORK of T.t * T.t
          fun sum (x : t) : int =
            case x of LEAF n => n | FORK p => (case p of (l, r) => sum l + sum r)
          fun mirror (x : t) : t =
            case x of LEAF n => LEAF n | FORK p => (case p of (l, r) => FORK (mirror r, mirror l))
        end
        val tree = T.FORK (T.LEAF 1, T.FORK (T.LEAF 2, T.LEAF 3))
        ;
        T.sum tree + T.sum (T.mirror tree)";
    assert_eq!(run_int(src), 12);
}

#[test]
fn deep_recursion_through_the_module_fixpoint() {
    // 5 000 recursive calls through the backpatched module closure.
    let src = "
        structure rec M : sig
          val count : int -> int
        end = struct
          fun count (n : int) : int = if n = 0 then 0 else 1 + M.count (n - 1)
        end
        ;
        M.count 5000";
    assert_eq!(run_int(src), 5000);
}

#[test]
fn rec_structure_with_extra_components_coerced_away() {
    // The body declares more than the signature exports; coercion thins.
    let src = "
        structure rec S : sig
          datatype t = Z | P of S.t
          val depth : t -> int
        end = struct
          datatype t = Z | P of S.t
          val unused_helper = 99
          fun helper (x : int) : int = x + 1
          fun depth (x : t) : int = case x of Z => 0 | P y => helper (depth y)
        end
        ;
        S.depth (S.P (S.P S.Z))";
    assert_eq!(run_int(src), 2);
}

#[test]
fn opaque_rec_group_forbids_cross_member_type_flow() {
    // Without where-type, the opaque interpretation (paper §3) keeps the
    // two members' types separate even when textually identical.
    let src = "
        structure rec X :> sig type t val mk : int -> t end = struct
          datatype t = T of int
          fun mk (n : int) : t = T n
        end
        and Y :> sig type t val use : X.t -> int end = struct
          type t = int
          fun use (v : t) : int = v
        end";
    // Y's signature mentions X — so this group is NOT fully opaque; the
    // transparent interpretation kicks in and `use : X.t -> int` with
    // body `use : int -> int` must fail (X.t is a datatype, not int).
    assert!(recmod::compile(src).is_err());
}
