//! Profiling-layer integration tests (ISSUE 5): the Chrome-trace
//! exporter's schema and lane structure under the parallel driver, the
//! judgement-span coverage bound behind `--profile-text`, and the
//! checked-in deterministic cost model.

use recmod::driver::{compile_batch, DriverConfig, Job};
use recmod::telemetry::chrome_trace::{export, FileEvent, Lane};
use recmod::telemetry::json::{self, Json};
use recmod::telemetry::{self, profile, Config, Span, SCHEMA_VERSION};

/// The corpus replicated until the batch has at least `min` jobs, so a
/// `--jobs 4` run actually spawns four workers (the driver clamps the
/// worker count to the job count).
fn batch_jobs(min: usize) -> Vec<Job> {
    let entries = recmod::corpus::all();
    let replicas = min.div_ceil(entries.len());
    (0..replicas)
        .flat_map(|r| {
            entries
                .iter()
                .map(move |e| Job::new(format!("{}#{r}", e.name), e.source))
        })
        .collect()
}

/// Small sealed-structure programs: enough to reach every pipeline
/// stage (and hence record kernel judgement spans), small enough that
/// the exported trace stays parseable in milliseconds under a debug
/// build. The full corpus is exercised trace-free in
/// [`spans_nest_properly_within_each_lane`].
fn small_jobs(n: usize) -> Vec<Job> {
    (0..n)
        .map(|i| {
            let src = format!(
                "structure S{i} :> sig type t val mk : int -> t end = \
                 struct type t = int val mk = fn (x : int) => x end\n\
                 val y{i} : int = {i}"
            );
            Job::new(format!("ok{i}.rm"), src)
        })
        .collect()
}

/// Runs a profiled 4-worker batch and exports it the way
/// `recmodc check --jobs 4 --profile=trace.json` does.
fn profiled_batch_trace() -> (recmod::driver::BatchResult, Json) {
    let jobs = small_jobs(8);
    let res = compile_batch(
        &jobs,
        &DriverConfig {
            jobs: 4,
            telemetry: Some(Config::profiled()),
            ..DriverConfig::default()
        },
    );
    let lanes: Vec<Lane<'_>> = res
        .workers
        .iter()
        .filter_map(|w| {
            w.report.as_ref().map(|r| Lane {
                tid: w.worker as u64,
                name: format!("worker {}", w.worker),
                report: r,
            })
        })
        .collect();
    let files: Vec<FileEvent> = res
        .outcomes
        .iter()
        .map(|o| FileEvent {
            name: o.name.clone(),
            tid: o.worker as u64,
            start_nanos: o.start_nanos,
            dur_nanos: o.nanos,
            instant: None,
        })
        .collect();
    let doc = export("recmodc", &lanes, &files);
    // Everything below inspects the parsed round-trip, not the builder's
    // in-memory value, so the emitted bytes are what's being tested.
    let parsed = json::parse(&doc.to_compact()).expect("exporter emits valid JSON");
    (res, parsed)
}

fn num(j: &Json) -> f64 {
    match j {
        Json::Float(f) => *f,
        Json::UInt(u) => *u as f64,
        other => panic!("expected a number, got {other:?}"),
    }
}

// ---------------------------------------------------------------------
// Chrome trace schema (golden)
// ---------------------------------------------------------------------

#[test]
fn chrome_trace_matches_the_trace_event_schema() {
    let (_, parsed) = profiled_batch_trace();

    assert_eq!(
        parsed.get("schema_version").and_then(Json::as_u64),
        Some(SCHEMA_VERSION)
    );
    assert_eq!(
        parsed.get("displayTimeUnit").and_then(|j| j.as_str()),
        Some("ms")
    );
    let events = parsed.get("traceEvents").unwrap().as_arr().unwrap();
    assert!(!events.is_empty());

    let ph = |e: &Json| e.get("ph").unwrap().as_str().unwrap().to_string();
    for e in events {
        // Every event carries the mandatory identification fields.
        assert!(e.get("name").is_some(), "event without name: {e:?}");
        assert_eq!(e.get("pid").and_then(Json::as_u64), Some(1));
        match ph(e).as_str() {
            "X" => {
                assert!(num(e.get("ts").unwrap()) >= 0.0);
                assert!(num(e.get("dur").unwrap()) >= 0.0);
                assert!(e.get("tid").and_then(Json::as_u64).is_some());
            }
            "C" => {
                assert!(e.get("ts").is_some());
                assert!(e.get("args").unwrap().get("value").is_some());
            }
            "M" | "i" => {}
            other => panic!("unexpected event phase {other:?}"),
        }
    }
    // Profiled workers contribute span events, file events, and counter
    // samples (one per file boundary), including a derived hit-rate
    // track.
    assert!(events.iter().any(|e| ph(e) == "X"));
    let counters: Vec<&str> = events
        .iter()
        .filter(|e| ph(e) == "C")
        .map(|e| e.get("name").unwrap().as_str().unwrap())
        .collect();
    assert!(!counters.is_empty(), "no counter-track samples");
    assert!(
        counters.iter().any(|n| n.contains("intern_occupancy")),
        "missing interner occupancy track in {counters:?}"
    );
}

// ---------------------------------------------------------------------
// Worker lanes under `--jobs 4`
// ---------------------------------------------------------------------

#[test]
fn jobs_4_batch_produces_four_distinct_worker_lanes() {
    let (res, parsed) = profiled_batch_trace();
    assert_eq!(res.workers.len(), 4, "four workers must have spawned");

    let events = parsed.get("traceEvents").unwrap().as_arr().unwrap();
    fn ph(e: &Json) -> &str {
        e.get("ph").unwrap().as_str().unwrap()
    }

    // One thread_name metadata event per worker, with distinct tids.
    let mut lane_tids: Vec<u64> = events
        .iter()
        .filter(|e| ph(e) == "M" && e.get("name").unwrap().as_str() == Some("thread_name"))
        .map(|e| e.get("tid").unwrap().as_u64().unwrap())
        .collect();
    lane_tids.sort_unstable();
    lane_tids.dedup();
    assert_eq!(lane_tids, vec![0, 1, 2, 3], "expected lanes 0..4");

    // Every job shows up as a file event on exactly one lane. (A lane
    // may be empty: on a loaded machine a fast worker can steal a slow
    // worker's whole deque before it runs.)
    let mut files_seen = 0usize;

    // Within one lane, per-file events never overlap: a worker compiles
    // its files sequentially, and start/duration share one clock read.
    for tid in lane_tids {
        let mut files: Vec<(f64, f64)> = events
            .iter()
            .filter(|e| {
                ph(e) == "X"
                    && e.get("cat").unwrap().as_str() == Some("file")
                    && e.get("tid").unwrap().as_u64() == Some(tid)
            })
            .map(|e| (num(e.get("ts").unwrap()), num(e.get("dur").unwrap())))
            .collect();
        files_seen += files.len();
        files.sort_by(|a, b| a.0.total_cmp(&b.0));
        for pair in files.windows(2) {
            let (ts0, dur0) = pair[0];
            let (ts1, _) = pair[1];
            assert!(
                ts0 + dur0 <= ts1,
                "lane {tid}: file events overlap ({ts0} + {dur0} > {ts1})"
            );
        }
    }
    assert_eq!(
        files_seen,
        res.outcomes.len(),
        "every job gets a file event"
    );
}

#[test]
fn spans_nest_properly_within_each_lane() {
    let jobs = batch_jobs(8);
    let res = compile_batch(
        &jobs,
        &DriverConfig {
            jobs: 4,
            telemetry: Some(Config::profiled()),
            ..DriverConfig::default()
        },
    );
    // Child spans lie inside their parent's [start, start+dur] interval
    // on the shared epoch timeline — what makes the exported X events
    // render as a properly nested flame graph per lane.
    fn check(span: &Span) {
        let end = span.start_nanos + span.nanos;
        for c in &span.children {
            assert!(
                c.start_nanos >= span.start_nanos && c.start_nanos + c.nanos <= end,
                "child {} [{}, {}] escapes parent {} [{}, {}]",
                c.name,
                c.start_nanos,
                c.start_nanos + c.nanos,
                span.name,
                span.start_nanos,
                end
            );
            check(c);
        }
    }
    let mut spans_seen = 0usize;
    for w in &res.workers {
        let report = w.report.as_ref().expect("telemetry was requested");
        for s in &report.spans {
            check(s);
            spans_seen += 1;
        }
    }
    assert!(spans_seen > 0, "profiled batch recorded no spans");
}

// ---------------------------------------------------------------------
// Judgement-span coverage of the kernel stage
// ---------------------------------------------------------------------

/// EXPERIMENTS.md P4 cites this bound: the per-judgement spans inserted
/// at every kernel entry point must account for at least 95% of the
/// kernel stage's wall time, so `--profile-text` self times are a
/// faithful breakdown rather than one opaque "kernel" bucket.
#[test]
fn judgement_spans_cover_the_kernel_stage() {
    telemetry::install(Config::profiled());
    let program = recmod::corpus::list_program(true, 8);
    let compiled = recmod::compile(&program);
    let report = telemetry::uninstall().expect("sink was installed");
    compiled.expect("E1 program compiles");

    assert_eq!(report.spans_dropped, 0, "profiled cap must not drop spans");
    let rows = profile::flat(&report.spans);
    let kernel = rows
        .iter()
        .find(|r| r.name == "stage.kernel")
        .expect("kernel stage spans recorded");
    assert!(kernel.total_nanos > 0);
    let coverage = 1.0 - kernel.self_nanos as f64 / kernel.total_nanos as f64;
    assert!(
        coverage >= 0.95,
        "judgement spans cover only {:.1}% of the kernel stage \
         (self {} ns of {} ns total)",
        coverage * 100.0,
        kernel.self_nanos,
        kernel.total_nanos
    );

    // And the profile actually resolves into judgement forms.
    assert!(rows.iter().any(|r| r.name.starts_with("kernel.")));
    assert!(rows.iter().any(|r| r.name.starts_with("surface.")));
}

// ---------------------------------------------------------------------
// Deterministic cost model vs the checked-in golden file
// ---------------------------------------------------------------------

/// The same gate CI runs: re-measure the corpus and compare against
/// `tests/golden_costs.json`. Regenerate after an intentional change:
/// `cargo run --release -p recmod-bench --bin bench_json -- --costs \
///  > tests/golden_costs.json`.
#[test]
fn checked_in_golden_costs_match_the_current_tree() {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/golden_costs.json");
    let text = std::fs::read_to_string(path).expect("tests/golden_costs.json is checked in");
    let baseline = recmod_bench::costs::parse_baseline(&text).expect("golden file parses");
    let current = recmod_bench::costs::measure_corpus();
    let violations = recmod_bench::costs::compare(&current, &baseline);
    assert!(
        violations.is_empty(),
        "cost model drifted from tests/golden_costs.json \
         (regenerate with bench_json --costs if intentional):\n{}",
        violations.join("\n")
    );
}
