//! Parallel batch compilation: a work-stealing driver with warm
//! per-worker caches over a shared global interner.
//!
//! The pipeline's *mutable* hot state — the kernel's whnf memo and
//! equivalence cache, the telemetry sink — is thread-local by design,
//! so workers never contend on it and reports merge after the fact.
//! The *immutable* hot state, the hash-consed syntax spine, is the
//! opposite: since S18 the interner is process-global and sharded
//! (`recmod_syntax::intern`), so `HC<T>` is `Send + Sync` and N
//! workers share one canonical node per distinct subtree instead of
//! re-interning N copies. Per-worker memo tables stay sound because
//! `NodeId`s are now canonical process-wide — a memo key means the
//! same structure on every thread, it is merely *private* warmth.
//! This crate supplies the scheduler, a zero-dependency work-stealer:
//!
//! * jobs are pre-seeded round-robin into one deque per worker;
//! * a worker pops from the **front** of its own deque and, when that
//!   runs dry, steals from the **back** of a victim's — owner and
//!   thief touch opposite ends, so contention on the per-deque mutex
//!   is brief and the stolen work is the coldest;
//! * each worker keeps its elaborator (and hence whnf memo and
//!   equivalence cache) **warm across files** via
//!   [`Elaborator::renew`], which resets per-program state but keeps
//!   the memo tables — sound because context stamps are never reused
//!   within a thread and the empty context is stamp 0 everywhere;
//! * results carry their input index and are re-sequenced before
//!   return, so output order is deterministic regardless of
//!   scheduling; per-worker telemetry reports are merged with
//!   [`Report::merge`].
//!
//! Batches can additionally consult a content-addressed on-disk
//! artifact cache ([`cache`]) before compiling: verdicts for
//! previously-seen (source, limits, schema, engine) tuples are replayed
//! without touching the pipeline.
//!
//! A panic inside one file's compilation is caught at the file
//! boundary: the file reports [`FileStatus::Internal`], the worker
//! drops its (possibly poisoned) elaborator and rebuilds a fresh one,
//! and every other file is unaffected.

pub mod cache;
pub mod serve;

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::Mutex;
use std::time::Instant;

use recmod_surface::diag::{self as sdiag, Diagnostic};
use recmod_surface::elab::Elaborator;
use recmod_surface::error::SurfaceError;
use recmod_surface::pipeline::compile_with_limits_in;
use recmod_telemetry::diag::CrashData;
use recmod_telemetry::{Config, Limits, Report};

/// Process exit code for a clean batch.
pub const EXIT_OK: u8 = 0;
/// Exit code when at least one file has ordinary diagnostics.
pub const EXIT_USER: u8 = 1;
/// Exit code when at least one file hit a resource limit.
pub const EXIT_LIMIT: u8 = 3;
/// Exit code when at least one file hit an internal error or panic.
pub const EXIT_INTERNAL: u8 = 4;

/// Default per-worker stack: elaboration is deeply recursive, so match
/// the single-file CLI's 512 MB compile thread.
pub const DEFAULT_STACK_SIZE: usize = 512 * 1024 * 1024;

/// One unit of work: a display name (usually a path) plus source text.
#[derive(Debug, Clone)]
pub struct Job {
    /// Name used to prefix diagnostics, e.g. `examples/list.rm`.
    pub name: String,
    /// The program source.
    pub source: String,
    /// Per-job wall-clock deadline override in milliseconds. `None`
    /// falls back to [`DriverConfig::deadline_ms`]. The compile service
    /// uses this for per-request deadlines; deadlines are re-armed as
    /// absolute instants when the job *starts*, never earlier.
    pub deadline_ms: Option<u64>,
}

impl Job {
    /// A job from a name and source.
    pub fn new(name: impl Into<String>, source: impl Into<String>) -> Self {
        Job {
            name: name.into(),
            source: source.into(),
            deadline_ms: None,
        }
    }

    /// Overrides the per-job deadline (milliseconds from job start).
    pub fn with_deadline_ms(mut self, ms: u64) -> Self {
        self.deadline_ms = Some(ms);
        self
    }
}

/// How one file's compilation ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileStatus {
    /// Compiled cleanly.
    Ok,
    /// Ordinary (lex/parse/scope/type) diagnostics.
    Error,
    /// Aborted on a resource limit.
    Limit,
    /// Internal kernel error, or a panic caught at the file boundary.
    Internal,
}

impl FileStatus {
    /// The exit code this status maps to.
    pub fn exit_code(self) -> u8 {
        match self {
            FileStatus::Ok => EXIT_OK,
            FileStatus::Error => EXIT_USER,
            FileStatus::Limit => EXIT_LIMIT,
            FileStatus::Internal => EXIT_INTERNAL,
        }
    }
}

/// The result of compiling one job.
#[derive(Debug, Clone)]
pub struct FileOutcome {
    /// The job's display name.
    pub name: String,
    /// How compilation ended.
    pub status: FileStatus,
    /// `(name, description)` pairs for the file's top-level bindings
    /// (empty unless [`FileStatus::Ok`]).
    pub summaries: Vec<(String, String)>,
    /// Fully rendered diagnostic lines (`name:line:col: error: …`),
    /// capped by `max_errors` with a trailing `… and N more` line.
    pub diagnostics: Vec<String>,
    /// Structured diagnostics for the file, **never truncated** by
    /// `max_errors` (the machine-readable stream must be complete).
    pub diags: Vec<Diagnostic>,
    /// Flight-recorder tail + counter snapshot captured on the worker
    /// that compiled this file, present only for limit/internal
    /// outcomes (the inputs a crash bundle is written for).
    pub crash: Option<CrashData>,
    /// Index of the worker that compiled this file.
    pub worker: usize,
    /// Whether this file was stolen from another worker's deque.
    pub stolen: bool,
    /// Start offset in nanoseconds since the batch telemetry epoch
    /// (0 when telemetry was not requested).
    pub start_nanos: u64,
    /// Wall-clock nanoseconds spent compiling this file.
    pub nanos: u64,
    /// Per-file counter deltas (two [`snapshot_counters`] snapshots
    /// subtracted), recorded when [`DriverConfig::file_counters`] is
    /// set and telemetry is installed.
    ///
    /// [`snapshot_counters`]: recmod_telemetry::snapshot_counters
    pub counters: Option<std::collections::BTreeMap<&'static str, u64>>,
}

/// Per-worker accounting returned alongside the outcomes.
#[derive(Debug)]
pub struct WorkerSummary {
    /// Worker index.
    pub worker: usize,
    /// Files this worker compiled.
    pub files: usize,
    /// How many of those were stolen from another worker's deque.
    pub steals: usize,
    /// The worker's telemetry report, when telemetry was requested.
    pub report: Option<Report>,
}

/// The result of a whole batch.
#[derive(Debug)]
pub struct BatchResult {
    /// One outcome per job, **in input order** regardless of which
    /// worker ran what when.
    pub outcomes: Vec<FileOutcome>,
    /// Per-worker accounting, indexed by worker.
    pub workers: Vec<WorkerSummary>,
    /// All workers' telemetry reports merged ([`Report::merge`]);
    /// `None` when telemetry was not requested.
    pub merged: Option<Report>,
    /// Wall-clock nanoseconds for the whole batch.
    pub wall_nanos: u64,
    /// Deduplicated cache-health warnings (`C001`–`C003`), empty when
    /// no cache was configured or the cache behaved. Callers print
    /// these to stderr; they never affect verdicts or exit codes.
    pub cache_warnings: Vec<cache::CacheWarning>,
}

impl BatchResult {
    /// Aggregate exit code: internal(4) > limit(3) > user(1) > ok(0).
    pub fn exit_code(&self) -> u8 {
        let mut code = EXIT_OK;
        for o in &self.outcomes {
            code = match (code, o.status.exit_code()) {
                (EXIT_INTERNAL, _) | (_, EXIT_INTERNAL) => EXIT_INTERNAL,
                (EXIT_LIMIT, c) | (c, EXIT_LIMIT) if c != EXIT_INTERNAL => EXIT_LIMIT,
                (a, b) => a.max(b),
            };
        }
        code
    }

    /// Files with [`FileStatus::Ok`].
    pub fn ok_count(&self) -> usize {
        self.outcomes
            .iter()
            .filter(|o| o.status == FileStatus::Ok)
            .count()
    }
}

/// Batch-compilation settings.
#[derive(Debug, Clone)]
pub struct DriverConfig {
    /// Worker threads. Clamped to `1..=jobs.len()`.
    pub jobs: usize,
    /// Base resource limits for every file.
    pub limits: Limits,
    /// Optional *per-file* wall-clock deadline; each file gets a fresh
    /// deadline (a batch-wide deadline would make diagnostics depend on
    /// scheduling order, breaking determinism).
    pub deadline_ms: Option<u64>,
    /// Diagnostics rendered per file before eliding the rest.
    pub max_errors: usize,
    /// Keep each worker's elaborator (interner, whnf memo, equivalence
    /// cache) warm across files. `false` rebuilds the pipeline per file
    /// — the pre-driver behavior, kept for benchmarking the difference.
    pub warm: bool,
    /// Per-worker thread stack size.
    pub stack_size: usize,
    /// Install a telemetry sink in each worker and merge the reports.
    /// [`compile_batch`] pins every worker's sink to one shared epoch
    /// (the batch start) so the workers' spans, samples, and file
    /// events share a timeline.
    pub telemetry: Option<Config>,
    /// Attribute counter deltas to individual files (requires
    /// `telemetry`): each worker snapshots its counters around every
    /// file and stores the difference in [`FileOutcome::counters`].
    pub file_counters: bool,
    /// Test-only fault hook: treat the first N worker spawns as if
    /// [`std::thread::Builder::spawn_scoped`] had failed, exercising
    /// the degraded path where surviving workers drain the missing
    /// workers' deques. Leave at 0 outside regression tests.
    pub fail_spawns: usize,
    /// Consult (and populate) an on-disk artifact cache before
    /// compiling each file. `None` disables caching. The cache is
    /// advisory: any cache-layer failure degrades to compiling and is
    /// reported in [`BatchResult::cache_warnings`], never in the
    /// verdicts.
    pub cache: Option<cache::CacheConfig>,
}

impl Default for DriverConfig {
    fn default() -> Self {
        DriverConfig {
            jobs: 1,
            limits: Limits::default(),
            deadline_ms: None,
            max_errors: 20,
            warm: true,
            stack_size: DEFAULT_STACK_SIZE,
            telemetry: None,
            file_counters: false,
            fail_spawns: 0,
            cache: None,
        }
    }
}

/// Recursively collects jobs from files and directories. A file is
/// read as-is; a directory contributes every `*.rm` file beneath it,
/// sorted by path for determinism.
///
/// # Errors
///
/// Any I/O error reading a path, tagged with the offending path.
pub fn jobs_from_paths(paths: &[PathBuf]) -> Result<Vec<Job>, String> {
    let mut jobs = Vec::new();
    for p in paths {
        if p.is_dir() {
            let mut files = Vec::new();
            collect_rm_files(p, &mut files)?;
            files.sort();
            for f in files {
                jobs.push(read_job(&f)?);
            }
        } else {
            jobs.push(read_job(p)?);
        }
    }
    Ok(jobs)
}

fn collect_rm_files(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let entries = std::fs::read_dir(dir).map_err(|e| format!("{}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("{}: {e}", dir.display()))?;
        let path = entry.path();
        if path.is_dir() {
            collect_rm_files(&path, out)?;
        } else if path.extension().is_some_and(|ext| ext == "rm") {
            out.push(path);
        }
    }
    Ok(())
}

fn read_job(path: &Path) -> Result<Job, String> {
    let source = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    Ok(Job {
        name: path.display().to_string(),
        source,
        deadline_ms: None,
    })
}

/// Compiles every job and returns the outcomes in input order.
///
/// Spawns `config.jobs` workers (clamped to the job count), each with
/// its own stack, kernel caches, and telemetry sink over the shared
/// global interner; idle workers steal from the back of busy workers'
/// deques. See the crate docs for the determinism and warm-cache
/// arguments. When [`DriverConfig::cache`] is set, each file consults
/// the artifact cache before compiling and stores its verdict after.
pub fn compile_batch(jobs: &[Job], config: &DriverConfig) -> BatchResult {
    let t0 = Instant::now();
    let (opened_cache, mut cache_warnings) = match &config.cache {
        None => (None, Vec::new()),
        Some(cfg) => match cache::Cache::open(cfg) {
            Ok(c) => (Some(c), Vec::new()),
            Err(w) => (None, vec![w]),
        },
    };
    let artifact_cache = opened_cache.as_ref();
    // Pin every worker's sink to the batch start so spans, samples, and
    // per-file events from different workers share one timeline.
    let config = &DriverConfig {
        telemetry: config.telemetry.clone().map(|mut c| {
            c.epoch.get_or_insert(t0);
            c
        }),
        ..config.clone()
    };
    let n = jobs.len();
    let workers = config.jobs.clamp(1, n.max(1));

    // Round-robin pre-seed: job i goes to deque i % workers, so every
    // worker starts with an even share and file order within a worker
    // follows input order (good for cache warmth on related inputs).
    let queues: Vec<Mutex<VecDeque<usize>>> = (0..workers)
        .map(|w| Mutex::new((w..n).step_by(workers.max(1)).collect()))
        .collect();
    let queues = &queues;

    let mut slots: Vec<Option<FileOutcome>> = (0..n).map(|_| None).collect();
    let mut summaries = Vec::with_capacity(workers);

    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(workers);
        for wid in 0..workers {
            if wid < config.fail_spawns {
                // Injected spawn failure (regression tests): behave
                // exactly like the Err arm below.
                continue;
            }
            let builder = std::thread::Builder::new()
                .name(format!("recmod-worker-{wid}"))
                .stack_size(config.stack_size);
            match builder.spawn_scoped(scope, move || {
                worker_loop(wid, jobs, queues, config, artifact_cache)
            }) {
                Ok(handle) => handles.push(handle),
                Err(_) => {
                    // Out of threads/memory: the workers that did spawn
                    // will steal this worker's whole deque; if none
                    // spawned, the un-run files are reported as internal
                    // errors below.
                }
            }
        }
        for handle in handles {
            match handle.join() {
                Ok((outs, summary)) => {
                    for (idx, out) in outs {
                        slots[idx] = Some(out);
                    }
                    summaries.push(summary);
                }
                Err(_) => {
                    // The per-file catch_unwind makes this unreachable
                    // in practice; missing slots are filled below.
                }
            }
        }
    });

    let outcomes: Vec<FileOutcome> = slots
        .into_iter()
        .enumerate()
        .map(|(i, slot)| {
            slot.unwrap_or_else(|| FileOutcome {
                name: jobs[i].name.clone(),
                status: FileStatus::Internal,
                summaries: Vec::new(),
                diagnostics: vec![format!(
                    "{}: internal error: worker thread died before compiling this file",
                    jobs[i].name
                )],
                diags: vec![Diagnostic::internal(
                    "I003",
                    "worker thread died before compiling this file",
                )],
                crash: Some(CrashData::default()),
                worker: 0,
                stolen: false,
                start_nanos: 0,
                nanos: 0,
                counters: None,
            })
        })
        .collect();

    summaries.sort_by_key(|s| s.worker);
    let merged = if config.telemetry.is_some() {
        Some(Report::merge(
            summaries.iter_mut().filter_map(|s| s.report.clone()),
        ))
    } else {
        None
    };

    if let Some(c) = artifact_cache {
        cache_warnings.extend(c.take_warnings());
    }

    BatchResult {
        outcomes,
        workers: summaries,
        merged,
        wall_nanos: t0.elapsed().as_nanos() as u64,
        cache_warnings,
    }
}

type WorkerOut = (Vec<(usize, FileOutcome)>, WorkerSummary);

fn worker_loop(
    wid: usize,
    jobs: &[Job],
    queues: &[Mutex<VecDeque<usize>>],
    config: &DriverConfig,
    artifact_cache: Option<&cache::Cache>,
) -> WorkerOut {
    if let Some(cfg) = &config.telemetry {
        recmod_telemetry::install(cfg.clone());
    }
    let mut elab: Option<Elaborator> = None;
    let mut outs = Vec::new();
    let mut steals = 0usize;
    while let Some((idx, stolen)) = next_job(wid, queues) {
        if stolen {
            steals += 1;
        }
        let out = compile_one(wid, stolen, &jobs[idx], &mut elab, config, artifact_cache);
        outs.push((idx, out));
    }
    recmod_telemetry::count("driver.files", outs.len() as u64);
    recmod_telemetry::count("driver.steals", steals as u64);
    let report = if config.telemetry.is_some() {
        recmod_telemetry::uninstall()
    } else {
        None
    };
    let summary = WorkerSummary {
        worker: wid,
        files: outs.len(),
        steals,
        report,
    };
    (outs, summary)
}

/// Locks a deque, recovering from poisoning: no user code runs under
/// the lock and `VecDeque` push/pop cannot leave the queue half-mutated,
/// so a poisoned deque is still structurally sound.
fn lock_deque(m: &Mutex<VecDeque<usize>>) -> std::sync::MutexGuard<'_, VecDeque<usize>> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Pops the next job index: front of our own deque, else the back of
/// the first non-empty victim's (scanning from `wid + 1`, wrapping).
/// Jobs never enqueue jobs, so "every deque empty" is terminal.
fn next_job(wid: usize, queues: &[Mutex<VecDeque<usize>>]) -> Option<(usize, bool)> {
    if let Some(idx) = lock_deque(&queues[wid]).pop_front() {
        return Some((idx, false));
    }
    let w = queues.len();
    for off in 1..w {
        let victim = (wid + off) % w;
        if let Some(idx) = lock_deque(&queues[victim]).pop_back() {
            return Some((idx, true));
        }
    }
    None
}

/// Counters sampled into the trace's counter tracks after every file.
const TRACK_COUNTERS: &[&str] = &[
    "kernel.whnf_cache_hit",
    "kernel.whnf_cache_miss",
    "syntax.intern_hit",
    "syntax.intern_miss",
];

fn compile_one(
    wid: usize,
    stolen: bool,
    job: &Job,
    slot: &mut Option<Elaborator>,
    config: &DriverConfig,
    artifact_cache: Option<&cache::Cache>,
) -> FileOutcome {
    let t0 = Instant::now();
    // Per-file flight recorder: a crash bundle should describe the file
    // that crashed, not the worker's whole history.
    recmod_telemetry::diag::reset_recorder();
    let start_nanos = recmod_telemetry::epoch_offset_nanos(t0).unwrap_or(0);
    let before = if config.file_counters {
        recmod_telemetry::snapshot_counters()
    } else {
        None
    };
    // Deadlines are absolute instants, so they must be re-armed here,
    // per file, not when the batch was configured.
    let limits = match job.deadline_ms.or(config.deadline_ms) {
        Some(ms) => config.limits.with_deadline_ms(ms),
        None => config.limits,
    };
    // Content-address of this compile, computed once: consulted before
    // the pipeline, reused to store the verdict after it. Rendered
    // lines are rebuilt from the structured diagnostics on a hit, so
    // hits are byte-identical to compiles even under a different
    // display name or --max-errors.
    let ckey = artifact_cache.map(|c| {
        (
            c,
            cache::key(&job.source, &limits, recmod_kernel::resolve_engine().name()),
        )
    });
    if let Some((c, k)) = ckey {
        if let cache::Outcome::Hit(entry) = c.load(k) {
            let entry = *entry;
            let diagnostics = render_diagnostics(&job.name, &entry.diags, config.max_errors);
            return FileOutcome {
                name: job.name.clone(),
                status: entry.status,
                summaries: entry.summaries,
                diagnostics,
                diags: entry.diags,
                crash: None,
                worker: wid,
                stolen,
                start_nanos,
                nanos: t0.elapsed().as_nanos() as u64,
                counters: counter_delta(before),
            };
        }
    }
    let elab = match slot.take() {
        Some(mut e) if config.warm => {
            e.renew(limits);
            e
        }
        _ => Elaborator::with_limits(limits),
    };

    #[allow(clippy::result_large_err)] // one call per file; never propagated
    let compile = || compile_with_limits_in(elab, &job.source);
    let result = catch_unwind(AssertUnwindSafe(compile));

    let (status, summaries, diagnostics, diags, returned) = match result {
        Ok(Ok(compiled)) => {
            let summaries = compiled.summaries();
            (
                FileStatus::Ok,
                summaries,
                Vec::new(),
                Vec::new(),
                Some(compiled.elab),
            )
        }
        Ok(Err((errors, elab))) => {
            let status = classify(&errors);
            let diags = sdiag::from_errors(&job.source, &errors);
            let diagnostics = render_diagnostics(&job.name, &diags, config.max_errors);
            (status, Vec::new(), diagnostics, diags, Some(elab))
        }
        Err(panic) => {
            // The elaborator was consumed by the panicking call and its
            // caches may be mid-mutation; rebuild from scratch.
            recmod_telemetry::count("internal.panics", 1);
            let msg = format!("panic during compilation: {}", panic_message(&panic));
            let diag = format!("{}: internal error: {msg}", job.name);
            (
                FileStatus::Internal,
                Vec::new(),
                vec![diag],
                vec![Diagnostic::internal("I002", msg)],
                None,
            )
        }
    };
    // Capture the flight-recorder tail on this worker thread for the
    // exit classes a crash bundle is written for.
    let crash = match status {
        FileStatus::Limit | FileStatus::Internal => Some(recmod_telemetry::diag::crash_data()),
        FileStatus::Ok | FileStatus::Error => None,
    };
    *slot = match returned {
        Some(e) if config.warm => Some(e),
        _ => None,
    };

    let counters = counter_delta(before);
    if let (Some((c, k)), FileStatus::Ok | FileStatus::Error) = (ckey, status) {
        c.store(
            k,
            &cache::Entry {
                status,
                summaries: summaries.clone(),
                diags: diags.clone(),
                counters: counters
                    .as_ref()
                    .map(|m| m.iter().map(|(&n, &v)| (n.to_string(), v)).collect())
                    .unwrap_or_default(),
            },
        );
    }
    if recmod_telemetry::profiling_enabled() {
        // One counter-track sample per file boundary: cumulative cache
        // hit/miss counters plus gauges the sink cannot see (interner
        // occupancy, cumulative kernel fuel for this worker).
        let intern = recmod_syntax::intern::intern_stats();
        let fuel = slot.as_ref().map(|e| e.tc.stats().fuel_used()).unwrap_or(0);
        recmod_telemetry::sample(
            TRACK_COUNTERS,
            &[
                (
                    "syntax.intern_occupancy",
                    intern.con_entries + intern.kind_entries,
                ),
                ("kernel.fuel_used", fuel),
            ],
        );
    }

    FileOutcome {
        name: job.name.clone(),
        status,
        summaries,
        diagnostics,
        diags,
        crash,
        worker: wid,
        stolen,
        start_nanos,
        nanos: t0.elapsed().as_nanos() as u64,
        counters,
    }
}

/// Subtracts a `file_counters` snapshot from the current counters,
/// keeping only the counters that moved.
fn counter_delta(
    before: Option<std::collections::BTreeMap<&'static str, u64>>,
) -> Option<std::collections::BTreeMap<&'static str, u64>> {
    let before = before?;
    recmod_telemetry::snapshot_counters().map(|after| {
        after
            .into_iter()
            .map(|(name, v)| {
                (
                    name,
                    v.saturating_sub(before.get(name).copied().unwrap_or(0)),
                )
            })
            .filter(|&(_, v)| v > 0)
            .collect()
    })
}

fn classify(errors: &[SurfaceError]) -> FileStatus {
    if errors.iter().any(|e| e.is_internal()) {
        FileStatus::Internal
    } else if errors.iter().any(|e| e.is_limit()) {
        FileStatus::Limit
    } else {
        FileStatus::Error
    }
}

/// Renders diagnostics exactly like the single-file CLI
/// (`name:line:col: error: … [CODE]`, via the shared
/// [`recmod_surface::diag`] renderer), capped at `max_errors` with an
/// elision line, so batch output diffs cleanly against sequential
/// output. The structured `diags` themselves are never truncated.
fn render_diagnostics(name: &str, diags: &[Diagnostic], max_errors: usize) -> Vec<String> {
    let mut lines = Vec::with_capacity(diags.len().min(max_errors) + 1);
    for d in diags.iter().take(max_errors) {
        lines.push(sdiag::render_line(name, d));
    }
    if diags.len() > max_errors {
        lines.push(sdiag::render_elided(name, diags.len() - max_errors));
    }
    lines
}

fn panic_message(panic: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = panic.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = panic.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const OK_SRC: &str = "val x = 1\nval y = x\n";
    const BAD_SRC: &str = "val x = nope\n";

    fn jobs(n: usize) -> Vec<Job> {
        (0..n)
            .map(|i| {
                if i % 3 == 2 {
                    Job::new(format!("bad{i}.rm"), BAD_SRC)
                } else {
                    Job::new(format!("ok{i}.rm"), OK_SRC)
                }
            })
            .collect()
    }

    #[test]
    fn outcomes_follow_input_order() {
        let js = jobs(10);
        let cfg = DriverConfig {
            jobs: 4,
            ..DriverConfig::default()
        };
        let res = compile_batch(&js, &cfg);
        assert_eq!(res.outcomes.len(), 10);
        for (i, o) in res.outcomes.iter().enumerate() {
            assert_eq!(o.name, js[i].name);
        }
        assert_eq!(res.exit_code(), EXIT_USER);
        assert_eq!(res.ok_count(), 7);
    }

    #[test]
    fn jobs_one_and_many_agree() {
        let js = jobs(12);
        let one = compile_batch(
            &js,
            &DriverConfig {
                jobs: 1,
                ..DriverConfig::default()
            },
        );
        let eight = compile_batch(
            &js,
            &DriverConfig {
                jobs: 8,
                ..DriverConfig::default()
            },
        );
        assert_eq!(one.exit_code(), eight.exit_code());
        for (a, b) in one.outcomes.iter().zip(&eight.outcomes) {
            assert_eq!(a.name, b.name);
            assert_eq!(a.status, b.status);
            assert_eq!(a.diagnostics, b.diagnostics);
            assert_eq!(a.summaries, b.summaries);
        }
    }

    #[test]
    fn every_job_runs_exactly_once() {
        let js = jobs(23);
        let cfg = DriverConfig {
            jobs: 5,
            ..DriverConfig::default()
        };
        let res = compile_batch(&js, &cfg);
        let total: usize = res.workers.iter().map(|w| w.files).sum();
        assert_eq!(total, 23);
        assert_eq!(res.outcomes.len(), 23);
    }

    #[test]
    fn warm_and_cold_agree() {
        let js = jobs(8);
        let warm = compile_batch(
            &js,
            &DriverConfig {
                jobs: 2,
                warm: true,
                ..DriverConfig::default()
            },
        );
        let cold = compile_batch(
            &js,
            &DriverConfig {
                jobs: 2,
                warm: false,
                ..DriverConfig::default()
            },
        );
        for (a, b) in warm.outcomes.iter().zip(&cold.outcomes) {
            assert_eq!(a.status, b.status);
            assert_eq!(a.diagnostics, b.diagnostics);
            assert_eq!(a.summaries, b.summaries);
        }
    }

    #[test]
    fn merged_counters_sum_per_worker() {
        let js = jobs(9);
        let cfg = DriverConfig {
            jobs: 3,
            telemetry: Some(Config::default()),
            ..DriverConfig::default()
        };
        let res = compile_batch(&js, &cfg);
        let merged = res.merged.as_ref().expect("telemetry requested");
        let files: u64 = merged.counters.get("driver.files").copied().unwrap_or(0);
        assert_eq!(files, 9);
        let per_worker: u64 = res
            .workers
            .iter()
            .filter_map(|w| w.report.as_ref())
            .filter_map(|r| r.counters.get("driver.files"))
            .sum();
        assert_eq!(per_worker, 9);
    }

    #[test]
    fn deadline_zero_reports_limit() {
        let js = vec![Job::new("slow.rm", OK_SRC)];
        let cfg = DriverConfig {
            deadline_ms: Some(0),
            ..DriverConfig::default()
        };
        let res = compile_batch(&js, &cfg);
        assert_eq!(res.outcomes[0].status, FileStatus::Limit);
        assert_eq!(res.exit_code(), EXIT_LIMIT);
    }
}
