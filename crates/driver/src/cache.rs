//! Content-addressed on-disk artifact cache: verdicts keyed by what
//! they are a function of.
//!
//! The kernel's judgements are pure: a file's verdict (ok/error), its
//! binding summaries, and its structured diagnostics are a function of
//! exactly four inputs — the source bytes, the resource [`Limits`], the
//! output schema ([`SCHEMA_VERSION`]), and the equivalence engine. So a
//! cache entry is addressed by `fnv1a` over precisely that tuple
//! ([`key`]) and stores the verdict plus everything needed to replay
//! the file's output without touching the pipeline. `NodeId`s are
//! deliberately **never** persisted: they are process-stable (the
//! global interner mints them in first-intern order), not run-stable.
//!
//! Robustness is the design center, not an afterthought:
//!
//! * **Writes are atomic** — temp file in the cache directory, then
//!   `rename`, so a concurrent reader sees either the old entry, the
//!   new entry, or nothing; never a torn file.
//! * **Entries are checksummed** — the payload's compact JSON rendering
//!   is FNV-hashed into the envelope; truncated, bit-flipped, or
//!   hand-edited entries fail verification and read as *misses*
//!   ([`Outcome::Corrupt`]), never as stale verdicts or crashes.
//! * **Version skew is a silent miss** — the payload repeats the schema
//!   version (also part of the key, belt and braces); a mismatch reads
//!   as [`Outcome::Skew`].
//! * **The cache is advisory** — every failure (unreadable directory,
//!   I/O error, corruption) degrades to recompiling, reported as a
//!   `C00x` *warning* on stderr, never as a diagnostic or a nonzero
//!   exit. Verdicts and rendered output are byte-identical with the
//!   cache on, off, or warm.
//!
//! Size is bounded by an LRU-ish garbage collector: hits bump an
//! entry's mtime, and when the directory's total entry size exceeds the
//! configured cap, the oldest-mtime entries are evicted down to 3/4 of
//! the cap.

use std::collections::BTreeMap;
use std::io::ErrorKind;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::SystemTime;

use recmod_surface::diag::Diagnostic;
use recmod_telemetry::bundle::fnv1a;
use recmod_telemetry::json::{self, Json};
use recmod_telemetry::{Limits, SCHEMA_VERSION};

use crate::FileStatus;

/// Default size cap for the cache directory (sum of entry file sizes).
pub const DEFAULT_MAX_BYTES: u64 = 64 * 1024 * 1024;

/// Cache settings as carried in driver/serve configs.
#[derive(Debug, Clone)]
pub struct CacheConfig {
    /// Directory holding the entries (created if absent).
    pub dir: PathBuf,
    /// Entry-size cap that triggers the LRU-ish GC.
    pub max_bytes: u64,
}

impl CacheConfig {
    /// A config with the default size cap.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        CacheConfig {
            dir: dir.into(),
            max_bytes: DEFAULT_MAX_BYTES,
        }
    }
}

/// A cache-layer health warning (`C001`–`C003`). Warnings describe the
/// cache, never the compiled program: they go to stderr and do not
/// affect verdicts or exit codes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheWarning {
    /// Registry code: `C001` I/O error, `C002` corrupt entry skipped,
    /// `C003` cache directory uncreatable.
    pub code: &'static str,
    /// Human-readable description of what happened.
    pub message: String,
}

impl CacheWarning {
    /// The canonical stderr rendering.
    pub fn render(&self) -> String {
        format!("warning: cache: {} [{}]", self.message, self.code)
    }
}

/// What a cached verdict stores: enough to replay a file's rendered
/// output without recompiling. Rendered diagnostic *lines* are not
/// stored — they embed the display name, which is not part of the key
/// (the same content under two paths shares one entry) — so hits
/// re-render from the structured diagnostics.
#[derive(Debug, Clone)]
pub struct Entry {
    /// The verdict. Only [`FileStatus::Ok`] and [`FileStatus::Error`]
    /// are cacheable: limit and internal outcomes depend on wall clocks
    /// and bugs, not on the key.
    pub status: FileStatus,
    /// `(name, description)` binding summaries (ok outcomes).
    pub summaries: Vec<(String, String)>,
    /// Structured diagnostics (error outcomes).
    pub diags: Vec<Diagnostic>,
    /// Cost counters attributed to the file when it was compiled, if
    /// per-file counter attribution was on. Informational: replayed
    /// entries report the cost of the *original* compile.
    pub counters: BTreeMap<String, u64>,
}

/// How a lookup resolved (telemetry mirrors these as `cache.*`).
#[derive(Debug)]
pub enum Outcome {
    /// A verified entry.
    Hit(Box<Entry>),
    /// No entry for this key.
    Miss,
    /// An entry existed but failed parsing or checksum verification.
    Corrupt,
    /// An entry existed but was written under another schema version.
    Skew,
    /// The entry could not be read (permissions, transient I/O).
    IoError,
}

/// An open cache directory, shared by all workers of a batch or
/// service. Interior mutability is limited to the warning log; entry
/// I/O goes straight to the filesystem, whose rename atomicity is the
/// real synchronization point.
#[derive(Debug)]
pub struct Cache {
    dir: PathBuf,
    max_bytes: u64,
    warnings: Mutex<Vec<CacheWarning>>,
    counters: CacheCounters,
}

/// Process-wide cache activity counters, shared by every worker using
/// this [`Cache`]. These mirror the per-thread `cache.*` telemetry
/// counters: the serve daemon's workers run without a telemetry sink
/// installed (the S14 counters are batch-scoped), so the service's
/// `stats`/`metrics` surfaces read these relaxed atomics instead.
#[derive(Debug, Default)]
struct CacheCounters {
    hits: AtomicU64,
    misses: AtomicU64,
    stores: AtomicU64,
    corrupt_skipped: AtomicU64,
    io_errors: AtomicU64,
    gc_evicted: AtomicU64,
}

/// A plain-data snapshot of a [`Cache`]'s activity since it was
/// opened. `io_errors` counts `C001` degradations and
/// `corrupt_skipped` counts `C002`s; a `C003` (directory uncreatable)
/// means no `Cache` exists at all, which the serve layer reports as
/// `open_failed`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from a verified entry.
    pub hits: u64,
    /// Lookups that found nothing (or a schema-skewed entry).
    pub misses: u64,
    /// Verdicts written (atomic temp + rename completed).
    pub stores: u64,
    /// Entries skipped for failed parse/checksum (`C002`).
    pub corrupt_skipped: u64,
    /// Reads/writes lost to I/O trouble (`C001`).
    pub io_errors: u64,
    /// Entries evicted by the size-capped GC.
    pub gc_evicted: u64,
}

impl CacheStats {
    /// Hit ratio in `[0, 1]` over completed lookups; `0` before any.
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// The counter object embedded in `stats`/`metrics` documents
    /// (`io_errors` = `C001` events, `corrupt_skipped` = `C002`).
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("hits", Json::UInt(self.hits)),
            ("misses", Json::UInt(self.misses)),
            ("stores", Json::UInt(self.stores)),
            ("corrupt_skipped", Json::UInt(self.corrupt_skipped)),
            ("io_errors", Json::UInt(self.io_errors)),
            ("gc_evicted", Json::UInt(self.gc_evicted)),
            ("hit_ratio", Json::Float(self.hit_ratio())),
        ])
    }
}

/// Computes the content address of a compile: the verdict is a pure
/// function of these four inputs and nothing else. `deadline_ms`
/// participates (a deadline is part of the requested limits) but
/// wall-clock *outcomes* are never cached, so a generous deadline can
/// only ever replay honest ok/error verdicts.
pub fn key(source: &str, limits: &Limits, engine: &str) -> u64 {
    fnv1a(&[
        source.as_bytes(),
        &(limits.max_depth as u64).to_le_bytes(),
        &limits.max_nodes.to_le_bytes(),
        &limits.fuel.to_le_bytes(),
        &limits.eval_fuel.to_le_bytes(),
        &limits.eval_depth.to_le_bytes(),
        &limits.deadline_ms.to_le_bytes(),
        &SCHEMA_VERSION.to_le_bytes(),
        engine.as_bytes(),
    ])
}

/// Tiebreaker for temp-file names when two threads store the same key
/// simultaneously (both renames then target the same final path; either
/// order leaves a valid entry, since both wrote the same payload).
static TMP_SEQ: AtomicU64 = AtomicU64::new(0);

impl Cache {
    /// Opens (creating if necessary) a cache directory.
    ///
    /// # Errors
    ///
    /// A `C003` warning when the directory cannot be created; callers
    /// run uncached and surface the warning once.
    pub fn open(config: &CacheConfig) -> Result<Cache, CacheWarning> {
        match std::fs::create_dir_all(&config.dir) {
            Ok(()) => Ok(Cache {
                dir: config.dir.clone(),
                max_bytes: config.max_bytes,
                warnings: Mutex::new(Vec::new()),
                counters: CacheCounters::default(),
            }),
            Err(e) => Err(CacheWarning {
                code: "C003",
                message: format!(
                    "cannot create cache directory {}: {e}; caching disabled",
                    config.dir.display()
                ),
            }),
        }
    }

    /// The directory entries live in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn entry_path(&self, key: u64) -> PathBuf {
        self.dir.join(format!("{key:016x}.json"))
    }

    fn warn(&self, code: &'static str, message: String) {
        let w = CacheWarning { code, message };
        let mut log = self
            .warnings
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if !log.contains(&w) {
            log.push(w);
        }
    }

    /// Snapshots the process-wide activity counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.counters.hits.load(Ordering::Relaxed),
            misses: self.counters.misses.load(Ordering::Relaxed),
            stores: self.counters.stores.load(Ordering::Relaxed),
            corrupt_skipped: self.counters.corrupt_skipped.load(Ordering::Relaxed),
            io_errors: self.counters.io_errors.load(Ordering::Relaxed),
            gc_evicted: self.counters.gc_evicted.load(Ordering::Relaxed),
        }
    }

    /// Drains the deduplicated warning log (call once per batch).
    pub fn take_warnings(&self) -> Vec<CacheWarning> {
        std::mem::take(
            &mut self
                .warnings
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner),
        )
    }

    /// Looks up a key, verifying the envelope checksum and schema
    /// version. Every non-hit degrades to "compile it"; corruption and
    /// I/O trouble additionally log a warning and bump their counters.
    pub fn load(&self, key: u64) -> Outcome {
        let path = self.entry_path(key);
        let text = match std::fs::read_to_string(&path) {
            Ok(text) => text,
            Err(e) if e.kind() == ErrorKind::NotFound => {
                recmod_telemetry::count("cache.miss", 1);
                self.counters.misses.fetch_add(1, Ordering::Relaxed);
                return Outcome::Miss;
            }
            Err(e) => {
                recmod_telemetry::count("cache.io_error", 1);
                self.counters.io_errors.fetch_add(1, Ordering::Relaxed);
                self.warn("C001", format!("cannot read {}: {e}", path.display()));
                return Outcome::IoError;
            }
        };
        match verify(&text) {
            Verified::Entry(entry) => {
                // LRU bookkeeping: a hit makes the entry "recently
                // used". Touches are throttled to once a minute per
                // entry (GC ordering doesn't need finer grain) and
                // failure to touch is harmless (GC just sees an older
                // entry), so every result here is ignored.
                let now = SystemTime::now();
                let stale = std::fs::metadata(&path)
                    .and_then(|m| m.modified())
                    .ok()
                    .and_then(|mtime| now.duration_since(mtime).ok())
                    .is_none_or(|age| age.as_secs() >= 60);
                if stale {
                    if let Ok(f) = std::fs::File::options().write(true).open(&path) {
                        let _ = f.set_modified(now);
                    }
                }
                recmod_telemetry::count("cache.hit", 1);
                self.counters.hits.fetch_add(1, Ordering::Relaxed);
                Outcome::Hit(entry)
            }
            Verified::Skew => {
                recmod_telemetry::count("cache.miss", 1);
                self.counters.misses.fetch_add(1, Ordering::Relaxed);
                Outcome::Skew
            }
            Verified::Corrupt(why) => {
                recmod_telemetry::count("cache.corrupt_skipped", 1);
                self.counters
                    .corrupt_skipped
                    .fetch_add(1, Ordering::Relaxed);
                self.warn(
                    "C002",
                    format!("corrupt entry {} skipped ({why})", path.display()),
                );
                Outcome::Corrupt
            }
        }
    }

    /// Stores a verdict under `key` (atomic: temp file + rename), then
    /// runs the size-capped GC. Only ok/error verdicts may be stored.
    pub fn store(&self, key: u64, entry: &Entry) {
        debug_assert!(
            matches!(entry.status, FileStatus::Ok | FileStatus::Error),
            "only deterministic verdicts are cacheable"
        );
        let payload = payload_json(entry).to_compact();
        let doc = format!(
            "{{\"checksum\":{},\"payload\":{payload}}}",
            fnv1a(&[payload.as_bytes()])
        );
        let tmp = self.dir.join(format!(
            "tmp-{key:016x}-{}-{}",
            std::process::id(),
            TMP_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let result =
            std::fs::write(&tmp, doc).and_then(|()| std::fs::rename(&tmp, self.entry_path(key)));
        match result {
            Ok(()) => {
                recmod_telemetry::count("cache.store", 1);
                self.counters.stores.fetch_add(1, Ordering::Relaxed);
                self.gc();
            }
            Err(e) => {
                recmod_telemetry::count("cache.io_error", 1);
                self.counters.io_errors.fetch_add(1, Ordering::Relaxed);
                let _ = std::fs::remove_file(&tmp);
                self.warn("C001", format!("cannot write entry for {key:016x}: {e}"));
            }
        }
    }

    /// Evicts oldest-mtime entries until the directory's entry bytes
    /// fit in 3/4 of the cap (hysteresis so back-to-back stores don't
    /// each rescan). Failures are ignored: GC is best-effort hygiene.
    fn gc(&self) {
        let Ok(read) = std::fs::read_dir(&self.dir) else {
            return;
        };
        let mut entries: Vec<(SystemTime, u64, PathBuf)> = Vec::new();
        let mut total = 0u64;
        for e in read.flatten() {
            let path = e.path();
            if path.extension().is_none_or(|ext| ext != "json") {
                continue;
            }
            let Ok(meta) = e.metadata() else { continue };
            let mtime = meta.modified().unwrap_or(SystemTime::UNIX_EPOCH);
            total += meta.len();
            entries.push((mtime, meta.len(), path));
        }
        if total <= self.max_bytes {
            return;
        }
        entries.sort();
        let floor = self.max_bytes / 4 * 3;
        for (_, len, path) in entries {
            if total <= floor {
                break;
            }
            if std::fs::remove_file(&path).is_ok() {
                recmod_telemetry::count("cache.gc_evicted", 1);
                self.counters.gc_evicted.fetch_add(1, Ordering::Relaxed);
                total = total.saturating_sub(len);
            }
        }
    }
}

fn payload_json(entry: &Entry) -> Json {
    Json::obj([
        ("schema_version", Json::UInt(SCHEMA_VERSION)),
        (
            "status",
            Json::str(match entry.status {
                FileStatus::Ok => "ok",
                _ => "error",
            }),
        ),
        (
            "summaries",
            Json::Arr(
                entry
                    .summaries
                    .iter()
                    .map(|(n, d)| Json::Arr(vec![Json::str(n.clone()), Json::str(d.clone())]))
                    .collect(),
            ),
        ),
        (
            "diags",
            Json::Arr(entry.diags.iter().map(Diagnostic::to_json).collect()),
        ),
        (
            "counters",
            Json::Obj(
                entry
                    .counters
                    .iter()
                    .map(|(k, &v)| (k.clone(), Json::UInt(v)))
                    .collect(),
            ),
        ),
    ])
}

enum Verified {
    Entry(Box<Entry>),
    Skew,
    Corrupt(&'static str),
}

/// Parses and verifies one entry document. Checksum first: nothing in
/// the payload is trusted until the envelope hash over its canonical
/// (compact, key-ordered) rendering matches.
fn verify(text: &str) -> Verified {
    let Ok(doc) = json::parse(text) else {
        return Verified::Corrupt("unparseable");
    };
    let Some(checksum) = doc.get("checksum").and_then(Json::as_u64) else {
        return Verified::Corrupt("missing checksum");
    };
    let Some(payload) = doc.get("payload") else {
        return Verified::Corrupt("missing payload");
    };
    if fnv1a(&[payload.to_compact().as_bytes()]) != checksum {
        return Verified::Corrupt("checksum mismatch");
    }
    if payload.get("schema_version").and_then(Json::as_u64) != Some(SCHEMA_VERSION) {
        return Verified::Skew;
    }
    let status = match payload.get("status").and_then(Json::as_str) {
        Some("ok") => FileStatus::Ok,
        Some("error") => FileStatus::Error,
        _ => return Verified::Corrupt("bad status"),
    };
    let mut summaries = Vec::new();
    match payload.get("summaries").and_then(Json::as_arr) {
        Some(pairs) => {
            for p in pairs {
                match p.as_arr() {
                    Some([n, d]) => match (n.as_str(), d.as_str()) {
                        (Some(n), Some(d)) => summaries.push((n.to_string(), d.to_string())),
                        _ => return Verified::Corrupt("bad summary pair"),
                    },
                    _ => return Verified::Corrupt("bad summary shape"),
                }
            }
        }
        None => return Verified::Corrupt("missing summaries"),
    }
    let mut diags = Vec::new();
    match payload.get("diags").and_then(Json::as_arr) {
        Some(ds) => {
            for d in ds {
                match Diagnostic::from_json(d) {
                    Some(d) => diags.push(d),
                    None => return Verified::Corrupt("bad diagnostic"),
                }
            }
        }
        None => return Verified::Corrupt("missing diags"),
    }
    let mut counters = BTreeMap::new();
    if let Some(Json::Obj(map)) = payload.get("counters") {
        for (k, v) in map {
            match v.as_u64() {
                Some(v) => {
                    counters.insert(k.clone(), v);
                }
                None => return Verified::Corrupt("bad counter"),
            }
        }
    }
    Verified::Entry(Box::new(Entry {
        status,
        summaries,
        diags,
        counters,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("recmod-cache-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn sample_entry() -> Entry {
        Entry {
            status: FileStatus::Ok,
            summaries: vec![("x".into(), "int".into())],
            diags: Vec::new(),
            counters: BTreeMap::from([("kernel.fuel.whnf".to_string(), 7u64)]),
        }
    }

    #[test]
    fn round_trips_a_verdict() {
        let cache = Cache::open(&CacheConfig::new(tmp_dir("roundtrip"))).unwrap();
        let k = key("val x = 1\n", &Limits::default(), "nbe");
        assert!(matches!(cache.load(k), Outcome::Miss));
        cache.store(k, &sample_entry());
        let Outcome::Hit(entry) = cache.load(k) else {
            panic!("expected hit after store");
        };
        assert_eq!(entry.status, FileStatus::Ok);
        assert_eq!(entry.summaries, vec![("x".to_string(), "int".to_string())]);
        assert_eq!(entry.counters.get("kernel.fuel.whnf"), Some(&7));
        let _ = std::fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn key_separates_every_input() {
        let limits = Limits::default();
        let base = key("src", &limits, "nbe");
        assert_ne!(base, key("src2", &limits, "nbe"));
        assert_ne!(base, key("src", &limits, "subst"));
        let mut bigger = limits;
        bigger.fuel += 1;
        assert_ne!(base, key("src", &bigger, "nbe"));
    }

    #[test]
    fn flipped_byte_is_rejected_by_checksum() {
        let cache = Cache::open(&CacheConfig::new(tmp_dir("poison"))).unwrap();
        let k = key("val x = 1\n", &Limits::default(), "nbe");
        cache.store(k, &sample_entry());
        let path = cache.entry_path(k);
        // Flip the verdict from "ok" to "error"-shaped junk ("qk"): the
        // checksum over the payload must reject the edit.
        let poisoned = std::fs::read_to_string(&path)
            .unwrap()
            .replace("\"ok\"", "\"qk\"");
        std::fs::write(&path, poisoned).unwrap();
        assert!(matches!(cache.load(k), Outcome::Corrupt));
        let ws = cache.take_warnings();
        assert!(ws.iter().any(|w| w.code == "C002"), "C002 logged: {ws:?}");
        let _ = std::fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn truncated_entry_is_a_silent_miss_not_a_crash() {
        let cache = Cache::open(&CacheConfig::new(tmp_dir("trunc"))).unwrap();
        let k = key("val x = 1\n", &Limits::default(), "nbe");
        cache.store(k, &sample_entry());
        let path = cache.entry_path(k);
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, &text[..text.len() / 2]).unwrap();
        assert!(matches!(cache.load(k), Outcome::Corrupt));
        let _ = std::fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn schema_skew_is_a_silent_miss() {
        let cache = Cache::open(&CacheConfig::new(tmp_dir("skew"))).unwrap();
        let k = key("val x = 1\n", &Limits::default(), "nbe");
        cache.store(k, &sample_entry());
        let path = cache.entry_path(k);
        // Rewrite the payload under a bogus schema version *with a
        // valid checksum*: skew detection must not depend on the entry
        // being corrupt.
        let text = std::fs::read_to_string(&path).unwrap();
        let payload = json::parse(&text)
            .unwrap()
            .get("payload")
            .cloned()
            .map(|p| {
                let Json::Obj(mut m) = p else { unreachable!() };
                m.insert("schema_version".into(), Json::UInt(9999));
                Json::Obj(m).to_compact()
            })
            .unwrap();
        std::fs::write(
            &path,
            format!(
                "{{\"checksum\":{},\"payload\":{payload}}}",
                fnv1a(&[payload.as_bytes()])
            ),
        )
        .unwrap();
        assert!(matches!(cache.load(k), Outcome::Skew));
        assert!(cache.take_warnings().is_empty(), "skew is silent");
        let _ = std::fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn gc_evicts_down_to_the_floor() {
        let dir = tmp_dir("gc");
        let cache = Cache::open(&CacheConfig {
            dir: dir.clone(),
            max_bytes: 2048,
        })
        .unwrap();
        for i in 0..64u64 {
            cache.store(
                key(&format!("src{i}"), &Limits::default(), "nbe"),
                &sample_entry(),
            );
        }
        let total: u64 = std::fs::read_dir(&dir)
            .unwrap()
            .flatten()
            .filter(|e| e.path().extension().is_some_and(|x| x == "json"))
            .map(|e| e.metadata().map(|m| m.len()).unwrap_or(0))
            .sum();
        assert!(total <= 2048, "GC keeps the dir under the cap: {total}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
