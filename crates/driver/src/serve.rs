//! The supervised compile service behind `recmodc serve`.
//!
//! A long-lived typechecking daemon: line-delimited JSON requests come
//! in over stdin or a unix socket, each carrying a source text plus
//! optional per-request [`Limits`] and deadline, and every request gets
//! **exactly one** line-delimited JSON response reusing the S15
//! diagnostics document, the exit-class taxonomy, and
//! [`SCHEMA_VERSION`]. The service is built from three pieces:
//!
//! * **Admission control** — a bounded queue ([`ServeConfig::queue_depth`]).
//!   A full queue sheds the request with an explicit
//!   [`ResponseStatus::Overloaded`] response (exit class
//!   [`EXIT_OVERLOADED`]), never a silent drop; a draining server
//!   rejects new work with [`ResponseStatus::Draining`]
//!   ([`EXIT_DRAINING`]).
//! * **Supervision** — requests compile on dedicated 512 MB worker
//!   threads behind a per-request `catch_unwind`. A supervisor thread
//!   reaps workers that die anyway (e.g. an injected
//!   [`FaultKind::Kill`]), writes a crash bundle attributed to the
//!   request id, retries or answers the orphaned request, and respawns
//!   the worker. A watchdog flags requests that blow their deadline
//!   past a grace period — cancellation itself is structural: the
//!   kernel's own amortized [`Limits`] deadline checks unwind the
//!   derivation with a normal `L004` limit error.
//! * **Retry with backoff** — attempts that failed *transiently* (an
//!   injected fault, a caught panic, a dead worker) are requeued with
//!   exponential backoff up to [`ServeConfig::max_attempts`]; user
//!   errors and genuine resource verdicts are never retried, so
//!   verdicts stay deterministic and unfaulted requests answer
//!   byte-identically to batch mode.
//!
//! Fault injection ([`recmod_telemetry::fault`]) is armed per request
//! from a seeded [`FaultPlan`]: the plan decides a request's fate from
//! `(seed, admission seq)` alone, so chaos runs are replayable and
//! unperturbed requests never touch the fault layer at all.
//!
//! **Live telemetry.** Every request is measured: end-to-end latency,
//! queue wait, compile time, and deterministic work units (flight
//! recorder events) feed lock-free log-bucketed
//! [`Histogram`]s, and every admitted request carries a trace id —
//! derived bijectively from its admission seq, so ids are unique and
//! identical across seeded `--faults` replays. A request with
//! `trace: true` gets its span events (queue → cache → pipeline stages
//! → attempts) echoed in the response; the `metrics` op serves the
//! [`METRICS_SCHEMA_VERSION`]-stamped distribution document (or a
//! deterministic, wall-clock-free subset for replay comparison); and a
//! profiled session ([`ServeConfig::profile`]) accumulates per-worker
//! lanes plus shed/fault/respawn/drain instants for Chrome-trace
//! export. None of this touches the S14 cost counters: metrics are
//! side atomics, so the tolerance-0 golden-cost gate is unaffected.

use std::collections::VecDeque;
use std::io::{BufRead, Write};
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::Sender;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use recmod_surface::diag::{self as sdiag, Diagnostic};
use recmod_surface::elab::Elaborator;
use recmod_surface::pipeline::compile_with_limits_in;
use recmod_syntax::intern::{self, InternStats};
use recmod_telemetry::chrome_trace::{self, FileEvent, Lane, Mark};
use recmod_telemetry::diag as tdiag;
use recmod_telemetry::fault::{self, FaultKind, FaultPlan, Injection};
use recmod_telemetry::json::Json;
use recmod_telemetry::metrics::{Histogram, PromText};
use recmod_telemetry::{bundle, Config, Limits, Report, SCHEMA_VERSION};

use crate::{FileStatus, DEFAULT_STACK_SIZE};

/// Version of the `metrics` op document. Independent of the global
/// [`SCHEMA_VERSION`] (which the document also carries): bump this
/// when the metrics key set or semantics change.
pub const METRICS_SCHEMA_VERSION: u64 = 1;

/// Exit class for a request shed by admission control.
pub const EXIT_OVERLOADED: u8 = 5;
/// Exit class for a request rejected because the server is draining.
pub const EXIT_DRAINING: u8 = 6;
/// Exit class for a malformed request (same class as CLI usage errors).
pub const EXIT_INVALID: u8 = 2;

/// How a response classifies its request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResponseStatus {
    /// Compiled cleanly.
    Ok,
    /// Ordinary (lex/parse/scope/type) diagnostics.
    Error,
    /// A genuine resource-limit verdict.
    Limit,
    /// An internal error that survived all retry attempts.
    Internal,
    /// Shed by admission control (queue full). Retry later.
    Overloaded,
    /// Rejected because the server is draining for shutdown.
    Draining,
    /// The request itself was malformed.
    Invalid,
}

impl ResponseStatus {
    /// Stable status label, matching the batch driver's file statuses
    /// where the classes coincide.
    pub fn label(self) -> &'static str {
        match self {
            ResponseStatus::Ok => "ok",
            ResponseStatus::Error => "error",
            ResponseStatus::Limit => "limit",
            ResponseStatus::Internal => "internal",
            ResponseStatus::Overloaded => "overloaded",
            ResponseStatus::Draining => "draining",
            ResponseStatus::Invalid => "invalid",
        }
    }

    /// The exit class this status maps to (extends the CLI taxonomy
    /// with [`EXIT_OVERLOADED`] and [`EXIT_DRAINING`]).
    pub fn exit(self) -> u8 {
        match self {
            ResponseStatus::Ok => crate::EXIT_OK,
            ResponseStatus::Error => crate::EXIT_USER,
            ResponseStatus::Limit => crate::EXIT_LIMIT,
            ResponseStatus::Internal => crate::EXIT_INTERNAL,
            ResponseStatus::Overloaded => EXIT_OVERLOADED,
            ResponseStatus::Draining => EXIT_DRAINING,
            ResponseStatus::Invalid => EXIT_INVALID,
        }
    }
}

impl From<FileStatus> for ResponseStatus {
    fn from(s: FileStatus) -> Self {
        match s {
            FileStatus::Ok => ResponseStatus::Ok,
            FileStatus::Error => ResponseStatus::Error,
            FileStatus::Limit => ResponseStatus::Limit,
            FileStatus::Internal => ResponseStatus::Internal,
        }
    }
}

/// Derives a request's trace id from its admission sequence number:
/// the SplitMix64 finalizer (the same mixer [`FaultPlan::decide`]
/// uses) over `seed ^ seq·φ`. Every step is bijective, so ids are
/// unique per admission seq, and `(seed, seq)` alone determines the
/// id — a seeded `--faults` replay reproduces the exact ids.
fn derive_trace_id(seed: u64, seq: u64) -> u64 {
    let mut z = seed ^ seq.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// One structured span event of a request's trace: what happened
/// (`serve.queue`, `serve.cache`, a pipeline `stage.*`,
/// `serve.attempt`), when (nanoseconds since the server epoch), and
/// for how long.
fn trace_event(name: &str, detail: Option<String>, start_nanos: u64, dur_nanos: u64) -> Json {
    let mut pairs = vec![
        ("name", Json::str(name)),
        ("start_nanos", Json::UInt(start_nanos)),
        ("dur_nanos", Json::UInt(dur_nanos)),
    ];
    if let Some(d) = detail {
        pairs.push(("detail", Json::Str(d)));
    }
    Json::obj(pairs)
}

/// Nanoseconds from `epoch` to `at` (0 if `at` precedes it).
fn nanos_since(epoch: Instant, at: Instant) -> u64 {
    at.saturating_duration_since(epoch).as_nanos() as u64
}

/// One parsed `check` request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Client-chosen correlation id, echoed verbatim in the response
    /// (`Json::Null` when the request carried none).
    pub id: Json,
    /// Display name used to prefix rendered diagnostics.
    pub name: String,
    /// The program source.
    pub source: String,
    /// Per-request deadline override in milliseconds (falls back to
    /// [`ServeConfig::default_deadline_ms`]).
    pub deadline_ms: Option<u64>,
    /// Per-request limits override (falls back to [`ServeConfig::limits`]).
    pub limits: Option<Limits>,
    /// Echo the request's span events (queue wait, cache lookup,
    /// pipeline stages, attempts) in the response's `trace` field.
    pub trace: bool,
}

impl Request {
    /// A minimal check request for `source` with correlation id `id`.
    pub fn new(id: u64, name: impl Into<String>, source: impl Into<String>) -> Self {
        Request {
            id: Json::UInt(id),
            name: name.into(),
            source: source.into(),
            deadline_ms: None,
            limits: None,
            trace: false,
        }
    }
}

/// A parsed protocol operation.
#[derive(Debug, Clone)]
pub enum Op {
    /// Compile a source text.
    Check(Request),
    /// Report server statistics.
    Stats(Json),
    /// Report the live metrics document (histograms, gauges, cache and
    /// interner health).
    Metrics {
        /// Correlation id to echo.
        id: Json,
        /// Restrict the document to its replay-deterministic subset
        /// (no wall clocks or scheduling-dependent gauges).
        deterministic: bool,
        /// Render Prometheus text (in the `metrics` field as a string)
        /// instead of the JSON document.
        text: bool,
    },
    /// Drain in-flight work and shut the server down.
    Shutdown(Json),
}

/// Parses one request line. `base_limits` seeds any per-request
/// `limits` override.
///
/// # Errors
///
/// Returns `(id, message)` for malformed lines — the id is whatever
/// could be salvaged (else `Json::Null`), so even an invalid request
/// gets a correlatable [`ResponseStatus::Invalid`] response.
pub fn parse_op(line: &str, base_limits: Limits) -> Result<Op, (Json, String)> {
    let doc = recmod_telemetry::json::parse(line)
        .map_err(|e| (Json::Null, format!("malformed JSON: {e}")))?;
    let id = doc.get("id").cloned().unwrap_or(Json::Null);
    if !matches!(doc, Json::Obj(_)) {
        return Err((id, "request must be a JSON object".to_string()));
    }
    let op = doc.get("op").and_then(Json::as_str).unwrap_or("check");
    match op {
        "stats" => Ok(Op::Stats(id)),
        "metrics" => Ok(Op::Metrics {
            id,
            deterministic: matches!(doc.get("deterministic"), Some(Json::Bool(true))),
            text: matches!(doc.get("format").and_then(Json::as_str), Some("text")),
        }),
        "shutdown" => Ok(Op::Shutdown(id)),
        "check" => {
            let source = doc
                .get("source")
                .and_then(Json::as_str)
                .ok_or_else(|| {
                    (
                        id.clone(),
                        "check request needs a string `source`".to_string(),
                    )
                })?
                .to_string();
            let name = doc
                .get("name")
                .and_then(Json::as_str)
                .unwrap_or("<request>")
                .to_string();
            let deadline_ms = doc.get("deadline_ms").and_then(Json::as_u64);
            let limits = match doc.get("limits") {
                None => None,
                Some(spec) => {
                    Some(parse_limits_obj(spec, base_limits).map_err(|m| (id.clone(), m))?)
                }
            };
            Ok(Op::Check(Request {
                id,
                name,
                source,
                deadline_ms,
                limits,
                trace: matches!(doc.get("trace"), Some(Json::Bool(true))),
            }))
        }
        other => Err((
            id,
            format!("unknown op `{other}` (known: check, metrics, stats, shutdown)"),
        )),
    }
}

/// Applies a request's `limits` object (same keys as `--limits`:
/// `depth`, `nodes`, `fuel`, `eval-fuel`, `eval-depth`) over `base`.
fn parse_limits_obj(spec: &Json, base: Limits) -> Result<Limits, String> {
    let Json::Obj(map) = spec else {
        return Err("`limits` must be an object".to_string());
    };
    let mut limits = base;
    for (key, value) in map {
        let n = value
            .as_u64()
            .ok_or_else(|| format!("bad value for limit `{key}`"))?;
        match key.as_str() {
            "depth" => limits.max_depth = n as usize,
            "nodes" => limits.max_nodes = n,
            "fuel" => limits.fuel = n,
            "eval-fuel" => limits.eval_fuel = n,
            "eval-depth" => limits.eval_depth = n,
            _ => {
                return Err(format!(
                    "unknown limit `{key}` (known: depth, nodes, fuel, eval-fuel, eval-depth)"
                ))
            }
        }
    }
    Ok(limits)
}

/// One response. Every submitted request — including shed, rejected,
/// and malformed ones — produces exactly one of these.
#[derive(Debug, Clone)]
pub struct Response {
    /// The request's correlation id, echoed.
    pub id: Json,
    /// Outcome classification.
    pub status: ResponseStatus,
    /// Compile attempts consumed (0 for requests never admitted).
    pub attempts: u32,
    /// Labels of injected faults that fired across the attempts
    /// (empty for unperturbed requests).
    pub injected: Vec<&'static str>,
    /// `(name, description)` pairs for top-level bindings (ok only).
    pub summaries: Vec<(String, String)>,
    /// Structured diagnostics (S15 schema, never truncated).
    pub diags: Vec<Diagnostic>,
    /// Rendered diagnostic lines, capped by [`ServeConfig::max_errors`].
    pub rendered: Vec<String>,
    /// Human-readable note for overloaded/draining/invalid/internal
    /// responses.
    pub message: Option<String>,
    /// Server statistics (stats op only).
    pub stats: Option<Json>,
    /// The request's trace id, `{:016x}`-rendered (admitted requests
    /// only; deterministic under seeded `--faults` replay).
    pub trace_id: Option<String>,
    /// Span events for the request (`trace: true` requests only).
    pub trace: Option<Json>,
    /// The metrics document (metrics op only; a JSON object, or a
    /// string of Prometheus text when the op asked for `format: text`).
    pub metrics: Option<Json>,
}

impl Response {
    fn plain(id: Json, status: ResponseStatus, message: impl Into<String>) -> Self {
        Response {
            id,
            status,
            attempts: 0,
            injected: Vec::new(),
            summaries: Vec::new(),
            diags: Vec::new(),
            rendered: Vec::new(),
            message: Some(message.into()),
            stats: None,
            trace_id: None,
            trace: None,
            metrics: None,
        }
    }

    /// The schema-versioned JSON document for this response (emit with
    /// `to_compact()` — the protocol is one response per line).
    pub fn to_json(&self) -> Json {
        let mut pairs: Vec<(&'static str, Json)> = vec![
            ("schema_version", Json::UInt(SCHEMA_VERSION)),
            ("kind", Json::str("response")),
            ("id", self.id.clone()),
            ("status", Json::str(self.status.label())),
            ("exit", Json::UInt(u64::from(self.status.exit()))),
            ("attempts", Json::UInt(u64::from(self.attempts))),
        ];
        if !self.injected.is_empty() {
            pairs.push((
                "injected",
                Json::Arr(self.injected.iter().map(|l| Json::str(*l)).collect()),
            ));
        }
        if !self.summaries.is_empty() {
            pairs.push((
                "summaries",
                Json::Arr(
                    self.summaries
                        .iter()
                        .map(|(n, d)| {
                            Json::obj([
                                ("name", Json::str(n.clone())),
                                ("desc", Json::str(d.clone())),
                            ])
                        })
                        .collect(),
                ),
            ));
        }
        if !self.diags.is_empty() {
            pairs.push((
                "diagnostics",
                Json::Arr(self.diags.iter().map(Diagnostic::to_json).collect()),
            ));
        }
        if !self.rendered.is_empty() {
            pairs.push((
                "rendered",
                Json::Arr(self.rendered.iter().map(|l| Json::str(l.clone())).collect()),
            ));
        }
        if let Some(m) = &self.message {
            pairs.push(("message", Json::str(m.clone())));
        }
        if let Some(s) = &self.stats {
            pairs.push(("stats", s.clone()));
        }
        if let Some(t) = &self.trace_id {
            pairs.push(("trace_id", Json::str(t.clone())));
        }
        if let Some(t) = &self.trace {
            pairs.push(("trace", t.clone()));
        }
        if let Some(m) = &self.metrics {
            pairs.push(("metrics", m.clone()));
        }
        Json::obj(pairs)
    }
}

/// Compile-service settings.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads (each with its own stack, interner, and warm
    /// kernel caches).
    pub workers: usize,
    /// Admission-queue bound; requests beyond it are shed with
    /// [`ResponseStatus::Overloaded`]. `0` sheds everything (useful to
    /// smoke-test the shedding path).
    pub queue_depth: usize,
    /// Base resource limits for every request.
    pub limits: Limits,
    /// Default per-request wall-clock deadline. Deadlines are the
    /// service's *cancellation* mechanism — the kernel's amortized
    /// checks unwind structurally — so leaving this `None` means a
    /// pathological request can only be flagged by the watchdog, never
    /// cancelled.
    pub default_deadline_ms: Option<u64>,
    /// Rendered diagnostics per response before eliding the rest.
    pub max_errors: usize,
    /// Total compile attempts per request (1 = never retry).
    pub max_attempts: u32,
    /// Base retry backoff in milliseconds (doubles per attempt).
    pub backoff_ms: u64,
    /// Deterministic fault plan; `None` disables injection entirely.
    pub faults: Option<FaultPlan>,
    /// Per-worker thread stack size.
    pub stack_size: usize,
    /// Directory for crash bundles on limit/internal outcomes and
    /// worker deaths; `None` disables bundle writing.
    pub crash_dir: Option<PathBuf>,
    /// Watchdog grace period: a request this far past its deadline is
    /// flagged as overdue in the supervisor log and stats.
    pub grace_ms: u64,
    /// Emit supervisor events (worker death, respawn, overdue
    /// requests) as JSON lines on stderr.
    pub log_events: bool,
    /// Consult (and populate) the on-disk artifact cache before
    /// compiling each request. Advisory: cache-layer failures degrade
    /// to compiling and surface as `C00x` warnings, never in verdicts.
    pub cache: Option<crate::cache::CacheConfig>,
    /// Seed for per-request trace ids. The CLI uses the `--faults`
    /// plan seed when one is given (so a chaos replay reproduces the
    /// ids), else 0 — ids are unique per admission seq either way.
    pub trace_seed: u64,
    /// Profile the whole session: accumulate per-worker span lanes and
    /// supervision instants for Chrome-trace export via
    /// [`Server::session_trace_json`].
    pub profile: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 1,
            queue_depth: 256,
            limits: Limits::default(),
            default_deadline_ms: Some(30_000),
            max_errors: 20,
            max_attempts: 3,
            backoff_ms: 5,
            faults: None,
            stack_size: DEFAULT_STACK_SIZE,
            crash_dir: None,
            grace_ms: 1_000,
            log_events: false,
            cache: None,
            trace_seed: 0,
            profile: false,
        }
    }
}

/// A snapshot of the service's counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Requests admitted to the queue.
    pub accepted: u64,
    /// Requests answered (one response each).
    pub completed: u64,
    /// Requests shed by admission control.
    pub shed: u64,
    /// Requests rejected while draining.
    pub rejected_draining: u64,
    /// Malformed request lines answered with `invalid`.
    pub invalid: u64,
    /// Attempts requeued after a transient failure.
    pub retries: u64,
    /// Dead workers replaced by the supervisor.
    pub respawns: u64,
    /// Worker spawn attempts that failed outright.
    pub spawn_failures: u64,
    /// Requests flagged by the watchdog as past deadline + grace.
    pub watchdog_late: u64,
    /// Injected faults that fired, by kind.
    pub injected_panic: u64,
    /// Injected allocation-budget trips that fired.
    pub injected_alloc: u64,
    /// Injected deadline storms that fired.
    pub injected_deadline: u64,
    /// Injected worker kills that fired.
    pub injected_kill: u64,
    /// Worker threads ever spawned.
    pub workers_spawned: u64,
    /// Worker threads reaped (joined) — equals `workers_spawned` after
    /// a clean shutdown, which is the "no leaked workers" invariant.
    pub workers_joined: u64,
    /// Requests whose worker finished with a non-empty diag frame
    /// stack (flight-recorder imbalance; must stay 0).
    pub frame_imbalance: u64,
}

impl ServerStats {
    /// The stats document embedded in `stats` responses.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("accepted", Json::UInt(self.accepted)),
            ("completed", Json::UInt(self.completed)),
            ("shed", Json::UInt(self.shed)),
            ("rejected_draining", Json::UInt(self.rejected_draining)),
            ("invalid", Json::UInt(self.invalid)),
            ("retries", Json::UInt(self.retries)),
            ("respawns", Json::UInt(self.respawns)),
            ("spawn_failures", Json::UInt(self.spawn_failures)),
            ("watchdog_late", Json::UInt(self.watchdog_late)),
            ("injected_panic", Json::UInt(self.injected_panic)),
            ("injected_alloc", Json::UInt(self.injected_alloc)),
            ("injected_deadline", Json::UInt(self.injected_deadline)),
            ("injected_kill", Json::UInt(self.injected_kill)),
            ("workers_spawned", Json::UInt(self.workers_spawned)),
            ("workers_joined", Json::UInt(self.workers_joined)),
            ("frame_imbalance", Json::UInt(self.frame_imbalance)),
        ])
    }
}

#[derive(Default)]
struct Counters {
    accepted: AtomicU64,
    completed: AtomicU64,
    shed: AtomicU64,
    rejected_draining: AtomicU64,
    invalid: AtomicU64,
    retries: AtomicU64,
    respawns: AtomicU64,
    spawn_failures: AtomicU64,
    watchdog_late: AtomicU64,
    injected_panic: AtomicU64,
    injected_alloc: AtomicU64,
    injected_deadline: AtomicU64,
    injected_kill: AtomicU64,
    workers_spawned: AtomicU64,
    workers_joined: AtomicU64,
    frame_imbalance: AtomicU64,
}

impl Counters {
    fn bump(c: &AtomicU64) {
        c.fetch_add(1, Ordering::Relaxed);
    }

    fn fired(&self, kind: FaultKind) {
        Counters::bump(match kind {
            FaultKind::Panic => &self.injected_panic,
            FaultKind::Alloc => &self.injected_alloc,
            FaultKind::Deadline => &self.injected_deadline,
            FaultKind::Kill => &self.injected_kill,
        });
    }

    fn snapshot(&self) -> ServerStats {
        let get = |c: &AtomicU64| c.load(Ordering::Relaxed);
        ServerStats {
            accepted: get(&self.accepted),
            completed: get(&self.completed),
            shed: get(&self.shed),
            rejected_draining: get(&self.rejected_draining),
            invalid: get(&self.invalid),
            retries: get(&self.retries),
            respawns: get(&self.respawns),
            spawn_failures: get(&self.spawn_failures),
            watchdog_late: get(&self.watchdog_late),
            injected_panic: get(&self.injected_panic),
            injected_alloc: get(&self.injected_alloc),
            injected_deadline: get(&self.injected_deadline),
            injected_kill: get(&self.injected_kill),
            workers_spawned: get(&self.workers_spawned),
            workers_joined: get(&self.workers_joined),
            frame_imbalance: get(&self.frame_imbalance),
        }
    }
}

/// A worker thread's interner health, snapshotted between requests.
///
/// The interning tables are thread-local, so only the worker itself can
/// observe them; it publishes a plain-data snapshot here right after
/// the between-requests [`intern::sweep_now`], and the `stats` op reads
/// the slots from the connection thread. `swept_entries` accumulates
/// the entries those sweeps reclaimed — occupancy (`con_entries` +
/// `kind_entries`) measures the *live* working set, this measures the
/// per-request garbage the sweeps are catching.
#[derive(Default, Clone, Copy)]
struct WorkerIntern {
    stats: InternStats,
    swept_entries: u64,
    requests: u64,
}

impl WorkerIntern {
    fn to_json(self, wid: usize) -> Json {
        Json::obj([
            ("worker", Json::UInt(wid as u64)),
            ("requests", Json::UInt(self.requests)),
            ("intern_hits", Json::UInt(self.stats.hits)),
            ("intern_misses", Json::UInt(self.stats.misses)),
            ("intern_sweeps", Json::UInt(self.stats.sweeps)),
            ("con_entries", Json::UInt(self.stats.con_entries)),
            ("kind_entries", Json::UInt(self.stats.kind_entries)),
            ("swept_entries", Json::UInt(self.swept_entries)),
        ])
    }
}

/// An admitted request waiting in, or taken from, the queue.
struct Pending {
    req: Request,
    reply: Sender<Response>,
    seq: u64,
    attempts: u32,
    injection: Option<Injection>,
    not_before: Option<Instant>,
    injected: Vec<&'static str>,
    /// Derived at admission (see [`derive_trace_id`]); rendered into
    /// every response for an admitted request.
    trace_id: u64,
    /// Admission instant: end-to-end latency is measured from here.
    queued_at: Instant,
    /// Last (re)enqueue instant: per-attempt queue wait is measured
    /// from here (equals `queued_at` until a retry requeues).
    last_enqueued: Instant,
    /// Accumulated span events across attempts (see [`trace_event`]);
    /// echoed in the response when the request asked for `trace`.
    events: Vec<Json>,
}

/// Queue state behind the admission mutex.
struct State {
    queue: VecDeque<Pending>,
    draining: bool,
    /// Requests currently being compiled (taken from the queue, not
    /// yet answered or requeued).
    inflight_count: usize,
    next_seq: u64,
    workers_alive: usize,
}

/// Per-worker slot the supervisor can inspect: the request being
/// compiled (moved here for the compile's duration, so a dead worker's
/// request is recoverable) plus forensics captured on the way down.
#[derive(Default)]
struct InFlight {
    pending: Option<Pending>,
    crash: Option<tdiag::CrashData>,
    deadline: Option<Instant>,
    flagged: bool,
    /// When the worker started this attempt; the supervisor uses it to
    /// close the attempt's span event if the worker dies.
    started: Option<Instant>,
}

/// The service's latency/work distributions. All [`Histogram`]s, so
/// recording on the hot path is a few relaxed atomics — no locks, no
/// sink traffic, no S14 counter perturbation.
#[derive(Default)]
struct ServeMetrics {
    /// End-to-end per-request latency (admission to response), nanos.
    latency: Histogram,
    /// Queue wait per attempt (admission/requeue to dispatch), nanos.
    queue_wait: Histogram,
    /// Compile wall time per attempt, nanos.
    compile: Histogram,
    /// Deterministic work units per attempt: flight-recorder events
    /// across the dispatch (pure function of source and limits for
    /// completed attempts, so this distribution is byte-stable across
    /// seeded replays).
    work: Histogram,
}

/// Accumulated state of a profiled serve session ([`ServeConfig::profile`]):
/// per-worker span lanes, one file event per attempt, and supervision
/// instants, exported as one Chrome trace by
/// [`Server::session_trace_json`].
struct SessionProfile {
    /// Per-worker merged reports (lane index = worker id).
    lanes: Vec<Report>,
    /// The supervisor's (empty) lane, so its tid gets a name.
    supervisor: Report,
    /// One complete event per compile attempt.
    files: Vec<FileEvent>,
    /// Instants: sheds, fired faults, worker deaths, respawns, drain.
    marks: Vec<Mark>,
}

struct Core {
    cfg: ServeConfig,
    state: Mutex<State>,
    work: Condvar,
    stats: Counters,
    inflight: Vec<Mutex<InFlight>>,
    worker_intern: Vec<Mutex<WorkerIntern>>,
    artifact_cache: Option<crate::cache::Cache>,
    /// `cfg.cache` was given but the directory was unusable (`C003`);
    /// the service runs uncached and the metrics document says so.
    cache_open_failed: bool,
    /// The service clock origin: uptime, span offsets, and session
    /// marks are all measured from here.
    epoch: Instant,
    metrics: ServeMetrics,
    /// Final response statuses, indexed by [`status_index`].
    status_counts: [AtomicU64; 7],
    /// Per-worker busy nanoseconds (time spent serving attempts).
    worker_busy: Vec<AtomicU64>,
    session: Option<Mutex<SessionProfile>>,
}

/// Index of a status in [`Core::status_counts`].
fn status_index(status: ResponseStatus) -> usize {
    match status {
        ResponseStatus::Ok => 0,
        ResponseStatus::Error => 1,
        ResponseStatus::Limit => 2,
        ResponseStatus::Internal => 3,
        ResponseStatus::Overloaded => 4,
        ResponseStatus::Draining => 5,
        ResponseStatus::Invalid => 6,
    }
}

/// The status labels, in [`status_index`] order.
const STATUS_LABELS: [&str; 7] = [
    "ok",
    "error",
    "limit",
    "internal",
    "overloaded",
    "draining",
    "invalid",
];

/// Locks a service mutex, recovering from poisoning: all guarded state
/// is plain data (queues, options, counters) that is never left
/// half-mutated across a panic point.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

impl Core {
    /// Nanoseconds since the service epoch.
    fn now_nanos(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    /// The supervisor's lane id (one past the worker lanes).
    fn supervisor_tid(&self) -> u64 {
        self.inflight.len() as u64
    }

    fn status_bump(&self, status: ResponseStatus) {
        self.status_counts[status_index(status)].fetch_add(1, Ordering::Relaxed);
    }

    /// Records a session-profile instant (no-op unless profiling).
    fn mark(&self, name: impl Into<String>, tid: u64) {
        if let Some(sess) = &self.session {
            let at_nanos = self.now_nanos();
            lock(sess).marks.push(Mark {
                name: name.into(),
                tid,
                at_nanos,
            });
        }
    }

    /// Records a completed attempt on the session profile: the file
    /// event for the timeline, plus the attempt's merged span report
    /// when the worker captured one. No-op unless profiling.
    fn session_attempt(&self, wid: usize, file: FileEvent, report: Option<Report>) {
        if let Some(sess) = &self.session {
            let mut s = lock(sess);
            s.files.push(file);
            if let (Some(lane), Some(r)) = (s.lanes.get_mut(wid), report) {
                lane.absorb(r);
            }
        }
    }

    fn log_event(&self, event: &str, fields: &[(&'static str, Json)]) {
        if !self.cfg.log_events {
            return;
        }
        let mut pairs: Vec<(&'static str, Json)> = vec![
            ("kind", Json::str("supervisor")),
            ("event", Json::str(event)),
        ];
        pairs.extend(fields.iter().cloned());
        eprintln!("{}", Json::obj(pairs).to_compact());
    }

    /// Admission control: answers immediately when draining or full,
    /// otherwise enqueues. Every path produces exactly one response.
    fn submit(&self, req: Request, reply: Sender<Response>) {
        let pending = {
            let mut st = lock(&self.state);
            if st.draining {
                Counters::bump(&self.stats.rejected_draining);
                self.status_bump(ResponseStatus::Draining);
                drop(st);
                self.mark("rejected-draining", self.supervisor_tid());
                let _ = reply.send(Response::plain(
                    req.id,
                    ResponseStatus::Draining,
                    "server is draining; request rejected",
                ));
                return;
            }
            if st.queue.len() >= self.cfg.queue_depth {
                Counters::bump(&self.stats.shed);
                self.status_bump(ResponseStatus::Overloaded);
                let depth = self.cfg.queue_depth;
                drop(st);
                self.mark("shed", self.supervisor_tid());
                let _ = reply.send(Response::plain(
                    req.id,
                    ResponseStatus::Overloaded,
                    format!("admission queue full (depth {depth}); request shed"),
                ));
                return;
            }
            let seq = st.next_seq;
            st.next_seq += 1;
            Counters::bump(&self.stats.accepted);
            let injection = self.cfg.faults.as_ref().and_then(|p| p.decide(seq));
            st.queue.push_back(Pending {
                req,
                reply,
                seq,
                attempts: 0,
                injection,
                not_before: None,
                injected: Vec::new(),
                trace_id: derive_trace_id(self.cfg.trace_seed, seq),
                queued_at: Instant::now(),
                last_enqueued: Instant::now(),
                events: Vec::new(),
            });
            true
        };
        if pending {
            self.work.notify_one();
        }
    }

    /// Takes the next ready request, waiting as needed; `None` once
    /// the server has fully drained (worker should exit).
    fn next_work(&self) -> Option<Pending> {
        let mut st = lock(&self.state);
        loop {
            let now = Instant::now();
            if let Some(pos) = st
                .queue
                .iter()
                .position(|p| p.not_before.is_none_or(|t| t <= now))
            {
                let p = st.queue.remove(pos)?;
                st.inflight_count += 1;
                return Some(p);
            }
            if st.draining && st.queue.is_empty() && st.inflight_count == 0 {
                return None;
            }
            let wait = st
                .queue
                .iter()
                .filter_map(|p| p.not_before)
                .min()
                .map(|t| t.saturating_duration_since(now))
                .unwrap_or(Duration::from_millis(50))
                .max(Duration::from_millis(1));
            let (guard, _) = self
                .work
                .wait_timeout(st, wait)
                .unwrap_or_else(|poisoned| poisoned.into_inner());
            st = guard;
        }
    }

    /// Requeues a transiently-failed attempt with exponential backoff.
    fn retry(&self, mut p: Pending) {
        Counters::bump(&self.stats.retries);
        let shift = p.attempts.saturating_sub(1).min(6);
        p.last_enqueued = Instant::now();
        p.not_before = Some(Instant::now() + Duration::from_millis(self.cfg.backoff_ms << shift));
        {
            let mut st = lock(&self.state);
            st.inflight_count = st.inflight_count.saturating_sub(1);
            st.queue.push_back(p);
        }
        self.work.notify_all();
    }

    /// Sends the final response for an in-flight request, recording
    /// its end-to-end latency, status count, and trace document.
    fn finish(&self, p: Pending, mut resp: Response) {
        resp.id = p.req.id;
        resp.attempts = p.attempts;
        resp.injected = p.injected;
        resp.trace_id = Some(format!("{:016x}", p.trace_id));
        if p.req.trace {
            resp.trace = Some(Json::obj([("events", Json::Arr(p.events))]));
        }
        self.metrics
            .latency
            .record(p.queued_at.elapsed().as_nanos() as u64);
        self.status_bump(resp.status);
        {
            let mut st = lock(&self.state);
            st.inflight_count = st.inflight_count.saturating_sub(1);
        }
        Counters::bump(&self.stats.completed);
        self.work.notify_all();
        let _ = p.reply.send(resp);
    }

    fn write_bundle(
        &self,
        name: &str,
        source: &str,
        status: ResponseStatus,
        limits: &Limits,
        crash: &tdiag::CrashData,
    ) -> Option<PathBuf> {
        let dir = self.cfg.crash_dir.as_ref()?;
        match bundle::write_bundle(
            dir,
            name,
            source,
            status.label(),
            status.exit(),
            limits,
            crash,
        ) {
            Ok(path) => Some(path),
            Err(e) => {
                self.log_event("bundle-error", &[("message", Json::str(e))]);
                None
            }
        }
    }

    /// Recovers the request a dead worker was compiling: crash bundle,
    /// then retry (a worker death is transient by definition) or a
    /// final internal response once attempts are exhausted.
    fn handle_worker_death(&self, wid: usize) {
        let (pending, crash, started) = {
            let mut slot = lock(&self.inflight[wid]);
            slot.deadline = None;
            (slot.pending.take(), slot.crash.take(), slot.started.take())
        };
        let Some(mut p) = pending else { return };
        // Close the dead attempt's span: the worker can't anymore.
        // Keeping the queue/attempt event pairing balanced even across
        // kills is what makes trace balance a checkable invariant.
        let started = started.unwrap_or_else(Instant::now);
        let busy = started.elapsed().as_nanos() as u64;
        self.worker_busy[wid].fetch_add(busy, Ordering::Relaxed);
        p.events.push(trace_event(
            "serve.attempt",
            Some(format!("worker={wid} worker-died")),
            nanos_since(self.epoch, started),
            busy,
        ));
        self.session_attempt(
            wid,
            FileEvent {
                name: p.req.name.clone(),
                tid: wid as u64,
                start_nanos: nanos_since(self.epoch, started),
                dur_nanos: busy,
                instant: Some("worker-died".to_string()),
            },
            None,
        );
        self.log_event(
            "request-orphaned",
            &[
                ("worker", Json::UInt(wid as u64)),
                ("id", p.req.id.clone()),
                ("seq", Json::UInt(p.seq)),
                ("attempts", Json::UInt(u64::from(p.attempts))),
            ],
        );
        let crash = crash.unwrap_or_default();
        let limits = p.req.limits.unwrap_or(self.cfg.limits);
        if let Some(path) = self.write_bundle(
            &p.req.name,
            &p.req.source,
            ResponseStatus::Internal,
            &limits,
            &crash,
        ) {
            self.log_event(
                "crash-bundle",
                &[
                    ("id", p.req.id.clone()),
                    ("path", Json::str(path.display().to_string())),
                ],
            );
        }
        if p.attempts < self.cfg.max_attempts {
            self.retry(p);
        } else {
            let resp = Response {
                diags: vec![Diagnostic::internal(
                    "I003",
                    "worker thread died while compiling this request",
                )],
                rendered: vec![format!(
                    "{}: internal error: worker thread died while compiling this request",
                    p.req.name
                )],
                ..Response::plain(
                    Json::Null,
                    ResponseStatus::Internal,
                    "worker thread died while compiling this request",
                )
            };
            self.finish(p, resp);
        }
    }

    /// Flags in-flight requests past deadline + grace (once each).
    /// Cancellation itself is the kernel's structural deadline unwind;
    /// the watchdog is the observer that proves liveness is monitored.
    fn watchdog_scan(&self) {
        let grace = Duration::from_millis(self.cfg.grace_ms);
        for (wid, slot) in self.inflight.iter().enumerate() {
            let mut s = lock(slot);
            if s.pending.is_none() || s.flagged {
                continue;
            }
            let Some(deadline) = s.deadline else { continue };
            if Instant::now() > deadline + grace {
                s.flagged = true;
                let id = s
                    .pending
                    .as_ref()
                    .map(|p| p.req.id.clone())
                    .unwrap_or(Json::Null);
                Counters::bump(&self.stats.watchdog_late);
                self.mark("deadline-overrun", wid as u64);
                self.log_event(
                    "deadline-overrun",
                    &[("worker", Json::UInt(wid as u64)), ("id", id)],
                );
            }
        }
    }

    fn drained(&self) -> bool {
        let st = lock(&self.state);
        st.draining && st.queue.is_empty() && st.inflight_count == 0
    }

    /// Answers everything still queued with an internal error; the
    /// last-resort path when no worker thread can be spawned at all.
    fn fail_all_queued(&self, why: &str) {
        let orphans: Vec<Pending> = {
            let mut st = lock(&self.state);
            st.queue.drain(..).collect()
        };
        for mut p in orphans {
            p.attempts = p.attempts.max(1);
            let resp = Response {
                diags: vec![Diagnostic::internal("I003", why)],
                rendered: vec![format!("{}: internal error: {why}", p.req.name)],
                ..Response::plain(Json::Null, ResponseStatus::Internal, why)
            };
            self.finish(p, resp);
        }
    }
}

fn spawn_worker(core: &Arc<Core>, wid: usize) -> Option<JoinHandle<()>> {
    let c = Arc::clone(core);
    let res = std::thread::Builder::new()
        .name(format!("recmod-serve-{wid}"))
        .stack_size(core.cfg.stack_size)
        .spawn(move || worker_loop(&c, wid));
    match res {
        Ok(handle) => {
            Counters::bump(&core.stats.workers_spawned);
            lock(&core.state).workers_alive += 1;
            Some(handle)
        }
        Err(_) => {
            Counters::bump(&core.stats.spawn_failures);
            core.mark("spawn-failed", wid as u64);
            core.log_event("spawn-failed", &[("worker", Json::UInt(wid as u64))]);
            None
        }
    }
}

fn worker_loop(core: &Arc<Core>, wid: usize) {
    let mut elab: Option<Elaborator> = None;
    while let Some(pending) = core.next_work() {
        serve_one(core, wid, pending, &mut elab);
        // Between requests, sweep the interner: the request's syntax
        // just dropped its strong pointers, so the weak tables are
        // mostly tombstones. Sweeping here (instead of waiting for the
        // doubling high-water mark) bounds a long-lived worker's table
        // occupancy by its live working set — the warm elaborator's
        // prelude plus whatever the caches still pin — so repeated
        // identical requests hold occupancy flat instead of ratcheting
        // the high-water mark upward.
        let swept = intern::sweep_now();
        let mut slot = lock(&core.worker_intern[wid]);
        slot.stats = intern::intern_stats();
        slot.swept_entries += swept;
        slot.requests += 1;
    }
}

fn serve_one(
    core: &Arc<Core>,
    wid: usize,
    mut pending: Pending,
    slot_elab: &mut Option<Elaborator>,
) {
    // Per-request flight recorder, like the batch driver's per-file one.
    tdiag::reset_recorder();
    pending.attempts += 1;
    // A balanced enter/exit pair marking the dispatch in the recorder.
    // The guard drops immediately: a frame held across the compile
    // would be snapshotted into diagnostic provenance and break the
    // batch/serve verdict byte-equality the chaos fuzzer checks.
    drop(tdiag::enter("serve.dispatch"));
    let first_attempt = pending.attempts == 1;
    let attempts = pending.attempts;
    let max_attempts = core.cfg.max_attempts;
    let injection = pending.injection;
    let name = pending.req.name.clone();
    let source = pending.req.source.clone();
    let mut limits = pending.req.limits.unwrap_or(core.cfg.limits);
    if let Some(ms) = pending.req.deadline_ms.or(core.cfg.default_deadline_ms) {
        limits = limits.with_deadline_ms(ms);
    }
    let dispatched = Instant::now();
    let queue_wait = dispatched.saturating_duration_since(pending.last_enqueued);
    core.metrics.queue_wait.record(queue_wait.as_nanos() as u64);
    pending.events.push(trace_event(
        "serve.queue",
        None,
        nanos_since(core.epoch, pending.last_enqueued),
        queue_wait.as_nanos() as u64,
    ));
    // A per-request profiled sink captures pipeline stage spans for
    // traced requests and session profiling. Untraced, unprofiled
    // requests never install one: their hot path stays sink-free, and
    // either way the deterministic S14 cost counters are untouched.
    let sink = pending.req.trace || core.session.is_some();
    if sink {
        recmod_telemetry::install(Config {
            epoch: Some(core.epoch),
            ..Config::profiled()
        });
    }
    // Consult the artifact cache before paying for the pipeline — but
    // never when a fault is armed for this request: injected faults
    // must reach the compile they were aimed at.
    if injection.is_none() {
        if let Some(c) = core.artifact_cache.as_ref() {
            let k = crate::cache::key(&source, &limits, recmod_kernel::resolve_engine().name());
            let looked_up = Instant::now();
            let outcome = {
                // A recorder frame held across the lookup only: the
                // cache layer constructs no diagnostics, so no
                // provenance snapshot can observe this frame.
                let _frame = tdiag::enter("serve.cache");
                c.load(k)
            };
            let hit = matches!(outcome, crate::cache::Outcome::Hit(_));
            pending.events.push(trace_event(
                "serve.cache",
                Some(if hit { "hit" } else { "miss" }.to_string()),
                nanos_since(core.epoch, looked_up),
                looked_up.elapsed().as_nanos() as u64,
            ));
            if let crate::cache::Outcome::Hit(entry) = outcome {
                let report = if sink {
                    recmod_telemetry::uninstall()
                } else {
                    None
                };
                let entry = *entry;
                let rendered = crate::render_diagnostics(&name, &entry.diags, core.cfg.max_errors);
                let resp = Response {
                    id: Json::Null, // filled by finish()
                    status: entry.status.into(),
                    attempts,
                    injected: Vec::new(), // filled by finish()
                    summaries: entry.summaries,
                    diags: entry.diags,
                    rendered,
                    message: None,
                    stats: None,
                    trace_id: None, // filled by finish()
                    trace: None,
                    metrics: None,
                };
                core.metrics.work.record(tdiag::recorder_seq());
                let busy = dispatched.elapsed().as_nanos() as u64;
                core.worker_busy[wid].fetch_add(busy, Ordering::Relaxed);
                pending.events.push(trace_event(
                    "serve.attempt",
                    Some(format!("worker={wid} cache-hit")),
                    nanos_since(core.epoch, dispatched),
                    busy,
                ));
                core.session_attempt(
                    wid,
                    FileEvent {
                        name: name.clone(),
                        tid: wid as u64,
                        start_nanos: nanos_since(core.epoch, dispatched),
                        dur_nanos: busy,
                        instant: None,
                    },
                    report,
                );
                core.finish(pending, resp);
                return;
            }
        }
    }
    // Park the request where the supervisor can recover it if this
    // thread dies mid-compile.
    {
        let mut slot = lock(&core.inflight[wid]);
        slot.deadline = limits.deadline;
        slot.flagged = false;
        slot.crash = None;
        slot.started = Some(dispatched);
        slot.pending = Some(pending);
    }
    // Arm the injected fault on the first attempt only: retries run
    // unperturbed, which is what makes injected faults *transient* —
    // the retried verdict converges to the unfaulted one.
    if first_attempt {
        if let Some(inj) = injection {
            fault::arm(inj);
        }
    }

    let elab = match slot_elab.take() {
        Some(mut e) => {
            e.renew(limits);
            e
        }
        None => Elaborator::with_limits(limits),
    };
    #[allow(clippy::result_large_err)] // one call per request; never propagated
    let compile = || compile_with_limits_in(elab, &source);
    let compile_started = Instant::now();
    let result = catch_unwind(AssertUnwindSafe(compile));
    core.metrics
        .compile
        .record(compile_started.elapsed().as_nanos() as u64);

    // Always disarm, even after a caught unwind: no fault state (or
    // deadline storm) may leak into the next request on this worker.
    let fired = fault::disarm();
    if let Some(kind) = fired {
        core.stats.fired(kind);
        core.mark(format!("fault-{}", kind.label()), wid as u64);
    }
    if tdiag::frame_depth() != 0 {
        Counters::bump(&core.stats.frame_imbalance);
    }

    // An injected kill must genuinely take the worker down so the
    // supervisor's reap-and-respawn path is exercised: capture the
    // forensics, leave the request parked for the supervisor, re-raise.
    if let Err(payload) = &result {
        if fault::injected_kind(payload.as_ref()) == Some(FaultKind::Kill) {
            {
                let mut slot = lock(&core.inflight[wid]);
                slot.crash = Some(tdiag::crash_data());
                if let Some(parked) = slot.pending.as_mut() {
                    parked.injected.push(FaultKind::Kill.label());
                }
            }
            // The thread is about to die; retire its sink first so the
            // attempt's partial report doesn't dangle in thread-local
            // destruction order.
            if sink {
                let _ = recmod_telemetry::uninstall();
            }
            if let Err(payload) = result {
                resume_unwind(payload);
            }
            return; // unreachable; keeps the checker happy
        }
    }

    let Some(mut pending) = lock(&core.inflight[wid]).pending.take() else {
        if sink {
            let _ = recmod_telemetry::uninstall();
        }
        return;
    };
    let report = if sink {
        recmod_telemetry::uninstall()
    } else {
        None
    };
    // Deterministic work units: flight-recorder events across the
    // attempt. A pure function of (source, limits, injection) — wall
    // clocks never enter the recorder — so this histogram is
    // byte-stable across seeded replays.
    core.metrics.work.record(tdiag::recorder_seq());
    if let Some(kind) = fired {
        pending.injected.push(kind.label());
    }
    if pending.req.trace {
        if let Some(r) = &report {
            for span in &r.spans {
                pending
                    .events
                    .push(trace_event(span.name, None, span.start_nanos, span.nanos));
            }
        }
    }

    let (status, summaries, diags, rendered, returned, panicked) = match result {
        Ok(Ok(compiled)) => (
            FileStatus::Ok,
            compiled.summaries(),
            Vec::new(),
            Vec::new(),
            Some(compiled.elab),
            false,
        ),
        Ok(Err((errors, elab))) => {
            let status = crate::classify(&errors);
            let diags = sdiag::from_errors(&source, &errors);
            let rendered = crate::render_diagnostics(&name, &diags, core.cfg.max_errors);
            (status, Vec::new(), diags, rendered, Some(elab), false)
        }
        Err(panic) => {
            let msg = format!("panic during compilation: {}", crate::panic_message(&panic));
            let rendered = vec![format!("{name}: internal error: {msg}")];
            (
                FileStatus::Internal,
                Vec::new(),
                vec![Diagnostic::internal("I002", msg)],
                rendered,
                None,
                true,
            )
        }
    };
    *slot_elab = returned;

    let busy = dispatched.elapsed().as_nanos() as u64;
    core.worker_busy[wid].fetch_add(busy, Ordering::Relaxed);
    pending.events.push(trace_event(
        "serve.attempt",
        Some(format!(
            "worker={wid} status={}",
            ResponseStatus::from(status).label()
        )),
        nanos_since(core.epoch, dispatched),
        busy,
    ));
    core.session_attempt(
        wid,
        FileEvent {
            name: name.clone(),
            tid: wid as u64,
            start_nanos: nanos_since(core.epoch, dispatched),
            dur_nanos: busy,
            instant: match status {
                FileStatus::Limit => Some("limit".to_string()),
                FileStatus::Internal => Some("internal".to_string()),
                FileStatus::Ok | FileStatus::Error => None,
            },
        },
        report,
    );

    // Transient failures retry with backoff; definitive verdicts (ok,
    // user error, genuine limit, structured internal) never do.
    let transient = match status {
        FileStatus::Ok | FileStatus::Error => false,
        FileStatus::Limit => fired.is_some(),
        FileStatus::Internal => panicked,
    };
    if transient && attempts < max_attempts {
        core.retry(pending);
        return;
    }

    // Store deterministic verdicts that no fault touched: a fired
    // injection may have perturbed the run even when the verdict class
    // looks cacheable.
    if matches!(status, FileStatus::Ok | FileStatus::Error) && fired.is_none() {
        if let Some(c) = core.artifact_cache.as_ref() {
            c.store(
                crate::cache::key(&source, &limits, recmod_kernel::resolve_engine().name()),
                &crate::cache::Entry {
                    status,
                    summaries: summaries.clone(),
                    diags: diags.clone(),
                    counters: std::collections::BTreeMap::new(),
                },
            );
        }
    }

    if matches!(status, FileStatus::Limit | FileStatus::Internal) {
        let crash = tdiag::crash_data();
        if let Some(path) = self_bundle(core, &name, &source, status, &limits, &crash) {
            core.log_event(
                "crash-bundle",
                &[
                    ("id", pending.req.id.clone()),
                    ("path", Json::str(path.display().to_string())),
                ],
            );
        }
    }

    let resp = Response {
        id: Json::Null, // filled by finish()
        status: status.into(),
        attempts,
        injected: Vec::new(), // filled by finish()
        summaries,
        diags,
        rendered,
        message: None,
        stats: None,
        trace_id: None, // filled by finish()
        trace: None,
        metrics: None,
    };
    core.finish(pending, resp);
}

fn self_bundle(
    core: &Core,
    name: &str,
    source: &str,
    status: FileStatus,
    limits: &Limits,
    crash: &tdiag::CrashData,
) -> Option<PathBuf> {
    core.write_bundle(name, source, status.into(), limits, crash)
}

fn supervisor_loop(core: &Arc<Core>) {
    let workers = core.cfg.workers.max(1);
    let mut handles: Vec<Option<JoinHandle<()>>> =
        (0..workers).map(|wid| spawn_worker(core, wid)).collect();
    loop {
        for (wid, slot) in handles.iter_mut().enumerate() {
            let finished = slot.as_ref().is_some_and(JoinHandle::is_finished);
            if finished {
                let died = slot.take().and_then(|h| h.join().err()).is_some();
                Counters::bump(&core.stats.workers_joined);
                {
                    let mut st = lock(&core.state);
                    st.workers_alive = st.workers_alive.saturating_sub(1);
                }
                core.work.notify_all();
                if died {
                    core.mark("worker-died", wid as u64);
                    core.log_event("worker-died", &[("worker", Json::UInt(wid as u64))]);
                    core.handle_worker_death(wid);
                    if !core.drained() {
                        Counters::bump(&core.stats.respawns);
                        *slot = spawn_worker(core, wid);
                        core.mark("respawn", wid as u64);
                        core.log_event("respawn", &[("worker", Json::UInt(wid as u64))]);
                    }
                }
            } else if slot.is_none() && !core.drained() {
                // A previous spawn attempt failed; keep trying while
                // there is (or may be) work to do.
                let has_work = {
                    let st = lock(&core.state);
                    !st.queue.is_empty() || st.inflight_count > 0 || !st.draining
                };
                if has_work {
                    *slot = spawn_worker(core, wid);
                }
            }
        }
        if handles.iter().all(Option::is_none) {
            if core.drained() {
                break;
            }
            let stuck = {
                let st = lock(&core.state);
                !st.queue.is_empty()
            };
            if stuck {
                // No worker could be (re)spawned and requests are
                // waiting: answer them rather than wedge.
                core.fail_all_queued("no worker threads available");
            }
            if lock(&core.state).draining {
                break;
            }
        }
        core.watchdog_scan();
        std::thread::sleep(Duration::from_millis(2));
    }
    core.work.notify_all();
}

/// A running compile service. Dropping it (or calling
/// [`Server::shutdown`]) drains in-flight work, joins every worker,
/// and joins the supervisor — no leaked threads.
pub struct Server {
    core: Arc<Core>,
    supervisor: Option<JoinHandle<()>>,
}

impl Server {
    /// Starts the service: spawns the supervisor, which spawns the
    /// workers.
    ///
    /// # Errors
    ///
    /// Returns a message when the supervisor thread cannot be spawned
    /// (workers failing to spawn is survivable — the supervisor keeps
    /// retrying — but no supervisor means no service).
    pub fn start(cfg: ServeConfig) -> Result<Server, String> {
        let workers = cfg.workers.max(1);
        // An unusable cache directory degrades to serving uncached: the
        // C003 warning goes to stderr once, the service still starts.
        let artifact_cache = cfg.cache.as_ref().and_then(|c| {
            crate::cache::Cache::open(c)
                .map_err(|w| eprintln!("{}", w.render()))
                .ok()
        });
        let cache_open_failed = cfg.cache.is_some() && artifact_cache.is_none();
        let session = cfg.profile.then(|| {
            Mutex::new(SessionProfile {
                lanes: vec![Report::default(); workers],
                supervisor: Report::default(),
                files: Vec::new(),
                marks: Vec::new(),
            })
        });
        let core = Arc::new(Core {
            cfg,
            artifact_cache,
            cache_open_failed,
            state: Mutex::new(State {
                queue: VecDeque::new(),
                draining: false,
                inflight_count: 0,
                next_seq: 0,
                workers_alive: 0,
            }),
            work: Condvar::new(),
            stats: Counters::default(),
            inflight: (0..workers)
                .map(|_| Mutex::new(InFlight::default()))
                .collect(),
            worker_intern: (0..workers)
                .map(|_| Mutex::new(WorkerIntern::default()))
                .collect(),
            epoch: Instant::now(),
            metrics: ServeMetrics::default(),
            status_counts: std::array::from_fn(|_| AtomicU64::new(0)),
            worker_busy: (0..workers).map(|_| AtomicU64::new(0)).collect(),
            session,
        });
        let c = Arc::clone(&core);
        let supervisor = std::thread::Builder::new()
            .name("recmod-supervise".to_string())
            .spawn(move || supervisor_loop(&c))
            .map_err(|e| format!("cannot spawn supervisor thread: {e}"))?;
        Ok(Server {
            core,
            supervisor: Some(supervisor),
        })
    }

    /// Submits a check request; its single response arrives on `reply`.
    pub fn submit(&self, req: Request, reply: Sender<Response>) {
        self.core.submit(req, reply);
    }

    /// A point-in-time snapshot of the service counters.
    pub fn stats(&self) -> ServerStats {
        self.core.stats.snapshot()
    }

    /// The full stats document served by the `stats` op: the counter
    /// snapshot plus a `workers` array reporting each worker's interner
    /// health (table occupancy, sweep counts, entries reclaimed by the
    /// between-requests sweeps) as last published by that worker.
    pub fn stats_json(&self) -> Json {
        let mut doc = self.stats().to_json();
        let workers: Vec<Json> = self
            .core
            .worker_intern
            .iter()
            .enumerate()
            .map(|(wid, m)| lock(m).to_json(wid))
            .collect();
        if let Json::Obj(map) = &mut doc {
            map.insert("workers".to_owned(), Json::Arr(workers));
            map.insert("cache".to_owned(), self.cache_json());
        }
        doc
    }

    /// The cache-health object shared by the `stats` and `metrics`
    /// documents: the `cache.*` counters (hits/misses/stores, `C001`
    /// I/O errors, `C002` corrupt entries, GC evictions) plus whether
    /// the cache is enabled and whether opening it failed (`C003`).
    fn cache_json(&self) -> Json {
        let mut pairs = vec![
            ("enabled", Json::Bool(self.core.artifact_cache.is_some())),
            ("open_failed", Json::Bool(self.core.cache_open_failed)),
        ];
        if let Some(cache) = &self.core.artifact_cache {
            pairs.push(("counters", cache.stats().to_json()));
        }
        Json::obj(pairs)
    }

    /// Response statuses counted so far, keyed by label.
    fn status_json(&self) -> Json {
        let pairs: Vec<(&'static str, Json)> = STATUS_LABELS
            .iter()
            .zip(self.core.status_counts.iter())
            .map(|(label, c)| (*label, Json::UInt(c.load(Ordering::Relaxed))))
            .collect();
        Json::obj(pairs)
    }

    /// The live metrics document served by the `metrics` op:
    /// [`METRICS_SCHEMA_VERSION`]-stamped, carrying the request
    /// counters, response-status counts, queue gauges, the four
    /// latency/work [`Histogram`]s, cache health, and interner
    /// occupancy.
    ///
    /// With `deterministic`, the document is restricted to the subset
    /// that is a pure function of the request sequence and the fault
    /// plan — no wall clocks, no scheduling-dependent gauges — so two
    /// seeded `--faults` replays of the same requests render
    /// byte-identical documents.
    pub fn metrics_json(&self, deterministic: bool) -> Json {
        let core = &self.core;
        let stats = self.stats();
        let requests = if deterministic {
            // Excludes watchdog_late, spawn_failures, and the
            // workers_spawned/joined pair: all scheduling-dependent.
            Json::obj([
                ("accepted", Json::UInt(stats.accepted)),
                ("completed", Json::UInt(stats.completed)),
                ("shed", Json::UInt(stats.shed)),
                ("rejected_draining", Json::UInt(stats.rejected_draining)),
                ("invalid", Json::UInt(stats.invalid)),
                ("retries", Json::UInt(stats.retries)),
                ("respawns", Json::UInt(stats.respawns)),
                ("injected_panic", Json::UInt(stats.injected_panic)),
                ("injected_alloc", Json::UInt(stats.injected_alloc)),
                ("injected_deadline", Json::UInt(stats.injected_deadline)),
                ("injected_kill", Json::UInt(stats.injected_kill)),
                ("frame_imbalance", Json::UInt(stats.frame_imbalance)),
            ])
        } else {
            stats.to_json()
        };
        let mut pairs: Vec<(&'static str, Json)> = vec![
            ("schema_version", Json::UInt(SCHEMA_VERSION)),
            ("kind", Json::str("metrics")),
            ("metrics_schema_version", Json::UInt(METRICS_SCHEMA_VERSION)),
            ("deterministic", Json::Bool(deterministic)),
            ("requests", requests),
            ("status", self.status_json()),
            ("work_units", core.metrics.work.snapshot().to_json()),
        ];
        if deterministic {
            return Json::obj(pairs);
        }
        let uptime = core.now_nanos();
        let (depth, inflight, alive) = {
            let st = lock(&core.state);
            (st.queue.len(), st.inflight_count, st.workers_alive)
        };
        pairs.push(("uptime_nanos", Json::UInt(uptime)));
        pairs.push((
            "queue",
            Json::obj([
                ("depth", Json::UInt(depth as u64)),
                ("capacity", Json::UInt(core.cfg.queue_depth as u64)),
                ("inflight", Json::UInt(inflight as u64)),
                ("workers_alive", Json::UInt(alive as u64)),
                ("workers_configured", Json::UInt(core.inflight.len() as u64)),
            ]),
        ));
        pairs.push(("latency_nanos", core.metrics.latency.snapshot().to_json()));
        pairs.push((
            "queue_wait_nanos",
            core.metrics.queue_wait.snapshot().to_json(),
        ));
        pairs.push(("compile_nanos", core.metrics.compile.snapshot().to_json()));
        pairs.push(("cache", self.cache_json()));
        let contended: u64 = core
            .worker_intern
            .iter()
            .map(|m| lock(m).stats.contended)
            .sum();
        let shards = intern::shard_occupancy();
        pairs.push((
            "intern",
            Json::obj([
                ("contended", Json::UInt(contended)),
                ("entries", Json::UInt(shards.iter().sum())),
                (
                    "shards",
                    Json::Arr(shards.iter().map(|&n| Json::UInt(n)).collect()),
                ),
            ]),
        ));
        let workers: Vec<Json> = core
            .worker_busy
            .iter()
            .enumerate()
            .map(|(wid, busy)| {
                let busy = busy.load(Ordering::Relaxed);
                let utilization = if uptime == 0 {
                    0.0
                } else {
                    busy as f64 / uptime as f64
                };
                Json::obj([
                    ("worker", Json::UInt(wid as u64)),
                    ("busy_nanos", Json::UInt(busy)),
                    ("utilization", Json::Float(utilization)),
                ])
            })
            .collect();
        pairs.push(("workers", Json::Arr(workers)));
        Json::obj(pairs)
    }

    /// The metrics document rendered as Prometheus exposition text
    /// (time histograms in seconds, ratios as gauges), for scraping
    /// without a JSON-aware collector.
    pub fn metrics_text(&self) -> String {
        let core = &self.core;
        let stats = self.stats();
        let mut out = PromText::new();
        for (event, n) in [
            ("accepted", stats.accepted),
            ("completed", stats.completed),
            ("shed", stats.shed),
            ("rejected_draining", stats.rejected_draining),
            ("invalid", stats.invalid),
            ("retries", stats.retries),
            ("respawns", stats.respawns),
            ("spawn_failures", stats.spawn_failures),
            ("watchdog_late", stats.watchdog_late),
            ("injected_panic", stats.injected_panic),
            ("injected_alloc", stats.injected_alloc),
            ("injected_deadline", stats.injected_deadline),
            ("injected_kill", stats.injected_kill),
            ("frame_imbalance", stats.frame_imbalance),
        ] {
            out.counter("recmod_serve_requests_total", &[("event", event)], n);
        }
        for (label, c) in STATUS_LABELS.iter().zip(core.status_counts.iter()) {
            out.counter(
                "recmod_serve_responses_total",
                &[("status", label)],
                c.load(Ordering::Relaxed),
            );
        }
        let uptime = core.now_nanos();
        let (depth, inflight, alive) = {
            let st = lock(&core.state);
            (st.queue.len(), st.inflight_count, st.workers_alive)
        };
        out.gauge("recmod_serve_uptime_seconds", &[], uptime as f64 / 1e9);
        out.gauge("recmod_serve_queue_depth", &[], depth as f64);
        out.gauge(
            "recmod_serve_queue_capacity",
            &[],
            core.cfg.queue_depth as f64,
        );
        out.gauge("recmod_serve_inflight", &[], inflight as f64);
        out.gauge("recmod_serve_workers_alive", &[], alive as f64);
        out.histogram(
            "recmod_serve_latency_seconds",
            &core.metrics.latency.snapshot(),
            1e9,
        );
        out.histogram(
            "recmod_serve_queue_wait_seconds",
            &core.metrics.queue_wait.snapshot(),
            1e9,
        );
        out.histogram(
            "recmod_serve_compile_seconds",
            &core.metrics.compile.snapshot(),
            1e9,
        );
        out.histogram(
            "recmod_serve_work_units",
            &core.metrics.work.snapshot(),
            1.0,
        );
        if let Some(cache) = &core.artifact_cache {
            let c = cache.stats();
            for (event, n) in [
                ("hit", c.hits),
                ("miss", c.misses),
                ("store", c.stores),
                ("corrupt_skipped", c.corrupt_skipped),
                ("io_error", c.io_errors),
                ("gc_evicted", c.gc_evicted),
            ] {
                out.counter("recmod_cache_events_total", &[("event", event)], n);
            }
            out.gauge("recmod_cache_hit_ratio", &[], c.hit_ratio());
        }
        let contended: u64 = core
            .worker_intern
            .iter()
            .map(|m| lock(m).stats.contended)
            .sum();
        out.counter("recmod_intern_shard_contended_total", &[], contended);
        let mut shard_label = String::new();
        for (i, &n) in intern::shard_occupancy().iter().enumerate() {
            shard_label.clear();
            shard_label.push_str(&i.to_string());
            out.gauge(
                "recmod_intern_shard_entries",
                &[("shard", &shard_label)],
                n as f64,
            );
        }
        for (wid, busy) in core.worker_busy.iter().enumerate() {
            out.gauge(
                "recmod_worker_busy_seconds",
                &[("worker", &wid.to_string())],
                busy.load(Ordering::Relaxed) as f64 / 1e9,
            );
        }
        out.finish()
    }

    /// Exports the profiled session ([`ServeConfig::profile`]) as one
    /// Chrome-trace document: per-worker span lanes, one complete
    /// event per compile attempt, and supervision instants (sheds,
    /// fired faults, deaths, respawns, drain) on a supervisor lane.
    /// `None` when the session is not being profiled.
    pub fn session_trace_json(&self) -> Option<Json> {
        let sess = self.core.session.as_ref()?;
        let s = lock(sess);
        let mut lanes: Vec<Lane<'_>> = s
            .lanes
            .iter()
            .enumerate()
            .map(|(wid, report)| Lane {
                tid: wid as u64,
                name: format!("worker {wid}"),
                report,
            })
            .collect();
        lanes.push(Lane {
            tid: self.core.supervisor_tid(),
            name: "supervisor".to_string(),
            report: &s.supervisor,
        });
        Some(chrome_trace::export_session(
            "recmodc serve",
            &lanes,
            &s.files,
            &s.marks,
        ))
    }

    /// Is the server draining (new requests are being rejected)?
    pub fn is_draining(&self) -> bool {
        lock(&self.core.state).draining
    }

    /// Drains the artifact cache's accumulated health warnings
    /// (`C001`/`C002`). The CLI prints them to stderr when a connection
    /// closes; they never affect responses.
    pub fn cache_warnings(&self) -> Vec<crate::cache::CacheWarning> {
        self.core
            .artifact_cache
            .as_ref()
            .map(crate::cache::Cache::take_warnings)
            .unwrap_or_default()
    }

    /// Handles one protocol line: parse, dispatch, and answer on
    /// `reply`. Returns `false` once a `shutdown` op has been served
    /// (the connection loop should stop reading).
    pub fn handle_line(&self, line: &str, reply: &Sender<Response>) -> bool {
        match parse_op(line, self.core.cfg.limits) {
            Err((id, message)) => {
                Counters::bump(&self.core.stats.invalid);
                self.core.status_bump(ResponseStatus::Invalid);
                let _ = reply.send(Response::plain(id, ResponseStatus::Invalid, message));
                true
            }
            Ok(Op::Check(req)) => {
                self.core.submit(req, reply.clone());
                true
            }
            Ok(Op::Stats(id)) => {
                let mut resp = Response::plain(id, ResponseStatus::Ok, "stats");
                resp.stats = Some(self.stats_json());
                let _ = reply.send(resp);
                true
            }
            Ok(Op::Metrics {
                id,
                deterministic,
                text,
            }) => {
                let mut resp = Response::plain(id, ResponseStatus::Ok, "metrics");
                resp.metrics = Some(if text {
                    Json::Str(self.metrics_text())
                } else {
                    self.metrics_json(deterministic)
                });
                let _ = reply.send(resp);
                true
            }
            Ok(Op::Shutdown(id)) => {
                self.drain();
                let _ = reply.send(Response::plain(
                    id,
                    ResponseStatus::Ok,
                    "drained; shutting down",
                ));
                false
            }
        }
    }

    /// Starts draining and blocks until every queued and in-flight
    /// request has been answered and all workers have exited.
    pub fn drain(&self) {
        let newly_draining = {
            let mut st = lock(&self.core.state);
            let newly = !st.draining;
            st.draining = true;
            newly
        };
        if newly_draining {
            self.core.mark("drain", self.core.supervisor_tid());
        }
        self.core.work.notify_all();
        let mut st = lock(&self.core.state);
        while !(st.queue.is_empty() && st.inflight_count == 0 && st.workers_alive == 0) {
            let (guard, _) = self
                .core
                .work
                .wait_timeout(st, Duration::from_millis(20))
                .unwrap_or_else(|poisoned| poisoned.into_inner());
            st = guard;
        }
    }

    /// Drains and joins the supervisor. Idempotent.
    pub fn shutdown(&mut self) {
        self.drain();
        if let Some(handle) = self.supervisor.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Serves one protocol connection: reads request lines from `reader`,
/// writes one compact-JSON response line per request to `writer`
/// (responses may arrive out of request order — correlate by id).
/// Returns when the peer closes the stream or a `shutdown` op has been
/// served; all responses for requests read from this connection are
/// flushed before returning.
pub fn serve_connection<R: BufRead, W: Write + Send>(server: &Server, reader: R, mut writer: W) {
    let (tx, rx) = std::sync::mpsc::channel::<Response>();
    std::thread::scope(|scope| {
        let writer_handle = scope.spawn(move || {
            let mut wedged = false;
            for resp in rx {
                if wedged {
                    continue; // drain remaining responses; peer is gone
                }
                let line = resp.to_json().to_compact();
                if writeln!(writer, "{line}")
                    .and_then(|()| writer.flush())
                    .is_err()
                {
                    wedged = true;
                }
            }
        });
        for line in reader.lines() {
            let Ok(line) = line else { break };
            if line.trim().is_empty() {
                continue;
            }
            if !server.handle_line(&line, &tx) {
                break;
            }
        }
        // Closing our sender lets the writer exit once every pending
        // request (each holding a sender clone) has answered.
        drop(tx);
        let _ = writer_handle.join();
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc::channel;

    fn quiet_cfg() -> ServeConfig {
        ServeConfig {
            default_deadline_ms: Some(10_000),
            ..ServeConfig::default()
        }
    }

    /// A source with enough declarations that any injected fault
    /// (trigger ≤ 64 judgement boundaries) is guaranteed to fire.
    fn busy_source() -> String {
        (0..80).map(|i| format!("val x{i} = {i} + {i}\n")).collect()
    }

    #[test]
    fn ok_and_error_round_trip() {
        let mut server = Server::start(quiet_cfg()).unwrap();
        let (tx, rx) = channel();
        server.submit(Request::new(1, "ok.rm", "val x = 1 + 2"), tx.clone());
        server.submit(Request::new(2, "bad.rm", "val y = zz"), tx);
        let mut got = [None, None];
        for _ in 0..2 {
            let r = rx.recv_timeout(Duration::from_secs(30)).unwrap();
            let idx = r.id.as_u64().unwrap() as usize - 1;
            got[idx] = Some(r);
        }
        let ok = got[0].take().unwrap();
        assert_eq!(ok.status, ResponseStatus::Ok);
        assert_eq!(ok.attempts, 1);
        assert!(!ok.summaries.is_empty());
        let bad = got[1].take().unwrap();
        assert_eq!(bad.status, ResponseStatus::Error);
        assert!(!bad.diags.is_empty());
        assert!(bad.rendered.iter().any(|l| l.contains("bad.rm:")));
        server.shutdown();
        let stats = server.stats();
        assert_eq!(stats.accepted, 2);
        assert_eq!(stats.completed, 2);
        assert_eq!(stats.workers_spawned, stats.workers_joined);
    }

    /// Polls the stats document until the (single) worker has published
    /// a between-requests interner snapshot covering `want_requests`
    /// completed requests, then returns that worker's entry. Polling is
    /// needed because the worker publishes *after* sending the
    /// response, so the caller's receive can race the snapshot.
    fn worker_snapshot(server: &Server, want_requests: u64) -> Json {
        let deadline = Instant::now() + Duration::from_secs(30);
        loop {
            let doc = server.stats_json();
            if let Some(Json::Arr(ws)) = doc.get("workers") {
                if let Some(w) = ws.iter().find(|w| {
                    w.get("requests").and_then(Json::as_u64).unwrap_or(0) >= want_requests
                }) {
                    return w.clone();
                }
            }
            assert!(
                Instant::now() < deadline,
                "worker never published an interner snapshot for {want_requests} requests"
            );
            std::thread::sleep(Duration::from_millis(10));
        }
    }

    #[test]
    fn worker_intern_occupancy_stabilizes_across_identical_requests() {
        let mut server = Server::start(quiet_cfg()).unwrap();
        let src = busy_source();
        let run_one = |id: u64| {
            let (tx, rx) = channel();
            server.submit(Request::new(id, "same.rm", src.clone()), tx);
            let r = rx.recv_timeout(Duration::from_secs(30)).unwrap();
            assert_eq!(r.status, ResponseStatus::Ok);
        };
        for id in 1..=4 {
            run_one(id);
        }
        let early = worker_snapshot(&server, 4);
        for id in 5..=10 {
            run_one(id);
        }
        let late = worker_snapshot(&server, 10);
        let occupancy = |w: &Json| {
            w.get("con_entries").and_then(Json::as_u64).unwrap()
                + w.get("kind_entries").and_then(Json::as_u64).unwrap()
        };
        // The between-requests sweep plus `Tc::renew`'s dead-stamp
        // pruning bound the warm worker's tables by its live working
        // set: six more copies of the same request must not grow them.
        assert!(
            occupancy(&late) <= occupancy(&early),
            "interner occupancy grew on identical requests: {} then {}",
            occupancy(&early),
            occupancy(&late),
        );
        assert!(
            late.get("intern_sweeps").and_then(Json::as_u64).unwrap() >= 10,
            "every request boundary should sweep"
        );
        assert!(
            late.get("swept_entries").and_then(Json::as_u64).unwrap() > 0,
            "sweeps should reclaim the per-request garbage"
        );
        server.shutdown();
    }

    #[test]
    fn queue_depth_zero_sheds_with_overloaded() {
        let mut server = Server::start(ServeConfig {
            queue_depth: 0,
            ..quiet_cfg()
        })
        .unwrap();
        let (tx, rx) = channel();
        server.submit(Request::new(7, "x.rm", "val x = 1"), tx);
        let r = rx.recv_timeout(Duration::from_secs(10)).unwrap();
        assert_eq!(r.status, ResponseStatus::Overloaded);
        assert_eq!(r.status.exit(), EXIT_OVERLOADED);
        assert_eq!(r.id.as_u64(), Some(7));
        server.shutdown();
        assert_eq!(server.stats().shed, 1);
    }

    #[test]
    fn draining_server_rejects_new_requests() {
        let mut server = Server::start(quiet_cfg()).unwrap();
        server.drain();
        let (tx, rx) = channel();
        server.submit(Request::new(1, "x.rm", "val x = 1"), tx);
        let r = rx.recv_timeout(Duration::from_secs(10)).unwrap();
        assert_eq!(r.status, ResponseStatus::Draining);
        assert_eq!(r.status.exit(), EXIT_DRAINING);
        server.shutdown();
    }

    #[test]
    fn injected_kill_respawns_worker_and_answers() {
        let mut server = Server::start(ServeConfig {
            faults: Some(FaultPlan::always(11, Some(FaultKind::Kill))),
            backoff_ms: 1,
            ..quiet_cfg()
        })
        .unwrap();
        let (tx, rx) = channel();
        server.submit(Request::new(1, "k.rm", busy_source()), tx);
        let r = rx.recv_timeout(Duration::from_secs(60)).unwrap();
        // First attempt dies with the worker; the retry (unfaulted by
        // construction) answers with the true verdict.
        assert_eq!(r.status, ResponseStatus::Ok);
        assert_eq!(r.attempts, 2);
        assert_eq!(r.injected, vec!["kill"]);
        server.shutdown();
        let stats = server.stats();
        assert!(stats.respawns >= 1, "worker death must respawn");
        assert_eq!(stats.injected_kill, 1);
        assert_eq!(stats.workers_spawned, stats.workers_joined);
    }

    #[test]
    fn injected_panic_retries_to_the_unfaulted_verdict() {
        let mut server = Server::start(ServeConfig {
            faults: Some(FaultPlan::always(5, Some(FaultKind::Panic))),
            backoff_ms: 1,
            ..quiet_cfg()
        })
        .unwrap();
        let (tx, rx) = channel();
        server.submit(Request::new(1, "p.rm", busy_source()), tx);
        let r = rx.recv_timeout(Duration::from_secs(60)).unwrap();
        assert_eq!(r.status, ResponseStatus::Ok);
        assert_eq!(r.attempts, 2);
        assert_eq!(r.injected, vec!["panic"]);
        server.shutdown();
        assert_eq!(server.stats().injected_panic, 1);
        assert_eq!(server.stats().retries, 1);
    }

    #[test]
    fn genuine_deadline_limit_is_not_retried() {
        let mut server = Server::start(quiet_cfg()).unwrap();
        let (tx, rx) = channel();
        let mut req = Request::new(1, "slow.rm", "val x = 1 + 2");
        req.deadline_ms = Some(0);
        server.submit(req, tx);
        let r = rx.recv_timeout(Duration::from_secs(30)).unwrap();
        assert_eq!(r.status, ResponseStatus::Limit);
        assert_eq!(
            r.attempts, 1,
            "genuine limits are definitive, never retried"
        );
        assert!(r.diags.iter().any(|d| d.code == "L004"), "{:?}", r.diags);
        server.shutdown();
    }

    #[test]
    fn malformed_lines_get_invalid_responses() {
        let mut server = Server::start(quiet_cfg()).unwrap();
        let (tx, rx) = channel();
        assert!(server.handle_line("{not json", &tx));
        let r = rx.recv_timeout(Duration::from_secs(10)).unwrap();
        assert_eq!(r.status, ResponseStatus::Invalid);
        assert_eq!(r.status.exit(), EXIT_INVALID);
        assert!(server.handle_line("{\"id\": 9, \"op\": \"bogus\"}", &tx));
        let r = rx.recv_timeout(Duration::from_secs(10)).unwrap();
        assert_eq!(r.status, ResponseStatus::Invalid);
        assert_eq!(r.id.as_u64(), Some(9));
        assert!(server.handle_line("{\"id\": 3}", &tx));
        let r = rx.recv_timeout(Duration::from_secs(10)).unwrap();
        assert_eq!(r.status, ResponseStatus::Invalid);
        server.shutdown();
        assert_eq!(server.stats().invalid, 3);
    }

    #[test]
    fn per_request_limits_override() {
        let mut server = Server::start(quiet_cfg()).unwrap();
        let (tx, rx) = channel();
        assert!(server.handle_line(
            "{\"id\": 1, \"source\": \"val x = 1 + 2\", \"limits\": {\"nodes\": 2}}",
            &tx
        ));
        let r = rx.recv_timeout(Duration::from_secs(30)).unwrap();
        assert_eq!(r.status, ResponseStatus::Limit, "{:?}", r.rendered);
        server.shutdown();
    }

    #[test]
    fn stats_and_shutdown_ops_round_trip_over_a_connection() {
        let mut server = Server::start(quiet_cfg()).unwrap();
        let input = "{\"id\": 1, \"source\": \"val x = 1 + 2\"}\n\
                     {\"id\": 2, \"op\": \"stats\"}\n\
                     {\"id\": 3, \"op\": \"shutdown\"}\n";
        let mut out: Vec<u8> = Vec::new();
        serve_connection(&server, input.as_bytes(), &mut out);
        let text = String::from_utf8(out).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3, "{text}");
        for line in &lines {
            let doc = recmod_telemetry::json::parse(line).unwrap();
            assert_eq!(doc.get("kind").and_then(Json::as_str), Some("response"));
            assert_eq!(
                doc.get("schema_version").and_then(Json::as_u64),
                Some(SCHEMA_VERSION)
            );
        }
        let stats_line = lines
            .iter()
            .find(|l| {
                recmod_telemetry::json::parse(l)
                    .unwrap()
                    .get("id")
                    .and_then(Json::as_u64)
                    == Some(2)
            })
            .unwrap();
        let doc = recmod_telemetry::json::parse(stats_line).unwrap();
        assert!(doc.get("stats").is_some());
        server.shutdown();
    }
}
