//! Linking: assembling the elaborated top-level bindings into one
//! closed, evaluable term.
//!
//! After elaboration each top-level binding has a phase-split dynamic
//! part referencing earlier bindings through `snd(s)` (structures) or
//! plain variables (values). Linking wraps them in a `let` chain. Since
//! one structure entry becomes one `let` binder, the de Bruijn indices
//! line up exactly: `snd(i)` is rewritten to `Var(i)` — a change of
//! *sort*, not of index.
//!
//! Static references (`Fst(s)`) may survive inside type annotations.
//! The linked term is intended solely for the type-erased evaluator
//! ([`recmod_eval`](https://docs.rs/recmod-eval)), which never inspects
//! annotations; the linked term is *not* meant to be re-typechecked.
//! (Typechecking already happened, binding by binding, during
//! elaboration — with structure variables in the context.)

use recmod_syntax::ast::{Con, Module, Term};
use recmod_syntax::map::{map_term, VarMap};

use crate::elab::TopBinding;

struct Dynamize;

impl VarMap for Dynamize {
    fn cvar(&mut self, _d: usize, i: usize) -> Con {
        Con::Var(i)
    }
    fn tvar(&mut self, _d: usize, i: usize) -> Term {
        Term::Var(i)
    }
    fn fst(&mut self, _d: usize, i: usize) -> Con {
        // Annotation-only residue; the evaluator never reads it.
        Con::Fst(i)
    }
    fn snd(&mut self, _d: usize, i: usize) -> Term {
        Term::Var(i)
    }
    fn mvar(&mut self, _d: usize, _i: usize) -> Module {
        unreachable!("terms do not contain module expressions")
    }
}

/// Rewrites `snd(s)` references to plain variables (sort change only).
pub fn dynamize(t: &Term) -> Term {
    map_term(t, 0, &mut Dynamize)
}

/// Builds the closed program term: a `let` chain over the bindings'
/// dynamic parts, ending in `main` (or `*` when there is none).
pub fn link_program(bindings: &[TopBinding], main: Option<&Term>) -> Term {
    let mut term = dynamize(main.unwrap_or(&Term::Star));
    for b in bindings.iter().rev() {
        term = Term::Let(Box::new(dynamize(&b.dynamic)), Box::new(term));
    }
    term
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dynamize_changes_sort_not_index() {
        let t = Term::App(Box::new(Term::Snd(2)), Box::new(Term::Var(0)));
        assert_eq!(
            dynamize(&t),
            Term::App(Box::new(Term::Var(2)), Box::new(Term::Var(0)))
        );
    }

    #[test]
    fn link_wraps_in_lets() {
        let bindings = vec![
            TopBinding {
                name: "a".into(),
                describe: String::new(),
                dynamic: Term::IntLit(1),
                static_part: None,
                is_structure: false,
                elab_nanos: 0,
                kernel: Default::default(),
            },
            TopBinding {
                name: "b".into(),
                describe: String::new(),
                dynamic: Term::Var(0),
                static_part: None,
                is_structure: false,
                elab_nanos: 0,
                kernel: Default::default(),
            },
        ];
        let main = Term::Var(0);
        let linked = link_program(&bindings, Some(&main));
        assert_eq!(
            linked,
            Term::Let(
                Box::new(Term::IntLit(1)),
                Box::new(Term::Let(Box::new(Term::Var(0)), Box::new(Term::Var(0))))
            )
        );
    }

    #[test]
    fn empty_program_links_to_star() {
        assert_eq!(link_program(&[], None), Term::Star);
    }
}
