//! Elaboration of structure expressions, bindings, functors, and
//! recursive structure groups.
//!
//! `structure rec` follows the paper's prescription:
//!
//! * the bindings of a `rec … and …` group become **one** internal
//!   `fix(s:S.M)` whose body is a structure of substructures;
//! * the annotation is rendered as a recursively-dependent signature,
//!   made *fully transparent* "by inspection of the module being
//!   defined" (§4.1): opaque `type t` specs are filled in with the
//!   body's implementation types;
//! * exception: a `:>`-sealed group whose signatures make **no**
//!   reference to the recursive variables keeps the paper's §3 *opaque*
//!   interpretation — reproducing both the inefficient opaque `List` and
//!   the ill-typed opaque `Expr`/`Decl`.

use recmod_kernel::Entry;
use recmod_syntax::ast::{Con, Kind, Module, Sig, Term, Ty};
use recmod_syntax::intern::hc;
use recmod_syntax::map::VarMap;
use recmod_syntax::subst::{shift_con, shift_kind, shift_term, shift_ty, subst_con_ty};

use crate::ast::{Dec, SigExp, Spec, StrBind, StrExp, TopDec};
use crate::elab::{Elaborator, TopBinding};
use crate::env::{Entity, FunctorEntity, SigTemplate, StructEntity};
use crate::error::{ErrorKind, Span, SurfaceError, SurfaceResult};
use crate::shape::{con_proj, con_tuple, kind_tuple, term_proj, term_tuple, ty_tuple, Item, Shape};

impl Elaborator {
    // ------------------------------------------------------------------
    // Structure expressions
    // ------------------------------------------------------------------

    /// Elaborates a structure expression to an inline view at the
    /// current depth (static tuple, dynamic term, shape).
    pub fn elab_strexp(&mut self, se: &StrExp) -> SurfaceResult<StructEntity> {
        let _j = recmod_telemetry::judgement_span("surface.elab_strexp");
        self.with_depth(se.span(), |this| this.elab_strexp_inner(se))
    }

    fn elab_strexp_inner(&mut self, se: &StrExp) -> SurfaceResult<StructEntity> {
        match se {
            StrExp::Path(p) => self.resolve_struct(p),
            StrExp::Body(decs, span) => self.elab_struct_body(decs, *span),
            StrExp::Ascribe {
                body,
                sig,
                opaque,
                span,
            } => {
                let tmpl = self.elab_sigexp(sig)?;
                let src = self.elab_strexp(body)?;
                let coerced = self.coerce(&src, &tmpl.shape, *span)?;
                let target = tmpl.instantiate(self.depth());
                let module = Module::Struct(coerced.statics.clone(), coerced.dynamics.clone());
                // Both `:` and `:>` check the coerced structure against
                // the signature; true opacity takes effect when the
                // expression is *bound* (the binding's context entry gets
                // the sealed signature). See `bind_structure`.
                self.kernel(|tc, ctx| tc.check_module(ctx, &module, &target))
                    .map_err(|e| self.terr(*span, e))?;
                let _ = opaque;
                Ok(StructEntity {
                    shape: tmpl.shape,
                    ..coerced
                })
            }
            StrExp::App { functor, arg, span } => {
                let Some(Entity::Functor(fe)) = self.env.lookup(functor) else {
                    return match self.env.lookup(functor) {
                        Some(_) => self.err(
                            *span,
                            ErrorKind::WrongEntity {
                                name: functor.clone(),
                                expected: "a functor",
                            },
                        ),
                        None => self.err(*span, ErrorKind::Unbound(functor.clone())),
                    };
                };
                let fe = fe.clone();
                let src = self.elab_strexp(arg)?;
                let coerced = self.coerce(&src, &fe.param.shape, *span)?;
                // Check the (coerced) argument against the parameter
                // signature — this is where an rds parameter's recursive
                // type equations are demanded of the argument.
                let param_sig = self
                    .retarget_template(fe.param.clone())
                    .instantiate(self.depth());
                let arg_mod = Module::Struct(coerced.statics.clone(), coerced.dynamics.clone());
                self.kernel(|tc, ctx| tc.check_module(ctx, &arg_mod, &param_sig))
                    .map_err(|e| self.terr(*span, e))?;
                // β-reduce the application (the HMM equational rule):
                // shift the stored body to this depth (keeping its
                // parameter binder fixed), then substitute the argument's
                // phase-split parts for the parameter.
                let delta = self.depth() as isize + 1 - fe.body_depth as isize;
                let body_con = shift_con(&fe.body_con, delta, 1);
                let body_term = shift_term(&fe.body_term, delta, 1);
                let parts = recmod_syntax::subst::ModParts {
                    fst: coerced.statics,
                    snd: Some(coerced.dynamics),
                };
                Ok(StructEntity {
                    shape: fe.result_shape.clone(),
                    statics: recmod_syntax::subst::subst_mod_con(&body_con, &parts),
                    dynamics: recmod_syntax::subst::subst_mod_term(&body_term, &parts),
                    depth: self.depth(),
                })
            }
        }
    }

    /// Elaborates `struct decs end`.
    pub(crate) fn elab_struct_body(
        &mut self,
        decs: &[Dec],
        span: Span,
    ) -> SurfaceResult<StructEntity> {
        let mut acc = self.begin_body();
        let mut failure = None;
        for d in decs {
            if let Err(e) = self.elab_dec(d, &mut acc) {
                failure = Some(e);
                break;
            }
        }
        let base = acc.base_depth;
        let n_dyn = acc.dyn_len();
        // Assemble before restoring the context.
        let result = if failure.is_none() {
            let tuple = term_tuple(
                (0..n_dyn)
                    .map(|i| Term::Var(n_dyn - 1 - i))
                    .collect::<Vec<_>>(),
            );
            let mut term = tuple;
            for bound in acc.lets.iter().rev() {
                term = Term::Let(Box::new(bound.clone()), Box::new(term));
            }
            let statics = con_tuple(
                acc.statics
                    .iter()
                    .map(|(_, c, d)| shift_con(c, base as isize - *d as isize, 0))
                    .collect(),
            );
            Some(StructEntity {
                shape: Shape {
                    fields: acc.fields.clone(),
                },
                statics,
                dynamics: term,
                depth: base,
            })
        } else {
            None
        };
        self.ctx.truncate(base);
        self.env.reset(acc.env_mark);
        match (failure, result) {
            (Some(e), _) => Err(e),
            (None, Some(r)) => Ok(r),
            (None, None) => Err(SurfaceError::internal(
                span,
                "structure body produced neither a result nor an error",
            )),
        }
    }

    /// Elaborates a nested (in-body) structure binding.
    pub(crate) fn elab_strbind_inner(&mut self, bind: &StrBind) -> SurfaceResult<StructEntity> {
        self.elab_strexp(&apply_ann(bind))
    }

    // ------------------------------------------------------------------
    // Coercion (signature matching)
    // ------------------------------------------------------------------

    /// Re-tuples `src` to the field layout of `target` (dropping extra
    /// components, reordering, recursing into substructures).
    pub(crate) fn coerce(
        &mut self,
        src: &StructEntity,
        target: &Shape,
        span: Span,
    ) -> SurfaceResult<StructEntity> {
        if src.shape == *target {
            return Ok(src.clone());
        }
        let statics = self.coerce_statics(&src.statics, &src.shape, target, span)?;
        let dynamics = self.coerce_dynamics(src.dynamics.clone(), &src.shape, target, span)?;
        Ok(StructEntity {
            shape: target.clone(),
            statics,
            dynamics,
            depth: src.depth,
        })
    }

    fn coerce_statics(
        &mut self,
        src_con: &Con,
        src_shape: &Shape,
        target: &Shape,
        span: Span,
    ) -> SurfaceResult<Con> {
        if src_shape == target {
            return Ok(src_con.clone());
        }
        let n_src = src_shape.static_len();
        let mut parts = Vec::new();
        for (name, item, _) in target.static_fields() {
            let Some(src_item) = src_shape.find(name) else {
                return self.err(
                    span,
                    ErrorKind::MissingComponent {
                        name: name.to_string(),
                    },
                );
            };
            let Some(slot) = src_shape.static_slot(name) else {
                return self.err(
                    span,
                    ErrorKind::MissingComponent {
                        name: name.to_string(),
                    },
                );
            };
            let proj = con_proj(src_con.clone(), slot, n_src);
            match (item, src_item) {
                (Item::Ty | Item::Data(_), Item::Ty | Item::Data(_)) => parts.push(proj),
                (Item::Struct(sub_t), Item::Struct(sub_s)) => {
                    parts.push(self.coerce_statics(&proj, &sub_s.clone(), sub_t, span)?);
                }
                _ => {
                    return self.err(
                        span,
                        ErrorKind::WrongEntity {
                            name: name.to_string(),
                            expected: "a component of the same kind as the signature's",
                        },
                    )
                }
            }
        }
        Ok(con_tuple(parts))
    }

    fn coerce_dynamics(
        &mut self,
        src_term: Term,
        src_shape: &Shape,
        target: &Shape,
        span: Span,
    ) -> SurfaceResult<Term> {
        if src_shape == target {
            return Ok(src_term);
        }
        let n_src = src_shape.dyn_len();
        let mut parts = Vec::new();
        for (name, item, _) in target.dyn_fields() {
            let Some(src_item) = src_shape.find(name) else {
                return self.err(
                    span,
                    ErrorKind::MissingComponent {
                        name: name.to_string(),
                    },
                );
            };
            let Some(slot) = src_shape.dyn_slot(name) else {
                return self.err(
                    span,
                    ErrorKind::MissingComponent {
                        name: name.to_string(),
                    },
                );
            };
            // Under the let binder, the source tuple is Var(0).
            let proj = term_proj(Term::Var(0), slot, n_src);
            match (item, src_item) {
                (Item::Val, Item::Val) => parts.push(proj),
                (Item::Struct(sub_t), Item::Struct(sub_s)) => {
                    parts.push(self.coerce_dynamics(proj, &sub_s.clone(), sub_t, span)?);
                }
                _ => {
                    return self.err(
                        span,
                        ErrorKind::WrongEntity {
                            name: name.to_string(),
                            expected: "a component of the same kind as the signature's",
                        },
                    )
                }
            }
        }
        Ok(Term::Let(Box::new(src_term), Box::new(term_tuple(parts))))
    }

    // ------------------------------------------------------------------
    // Top-level declarations
    // ------------------------------------------------------------------

    /// Elaborates one top-level declaration, extending the context,
    /// environment, and binding list.
    pub fn elab_topdec(&mut self, dec: &TopDec) -> SurfaceResult<()> {
        let _j = recmod_telemetry::judgement_span("surface.elab_topdec");
        self.current_decl = dec.span();
        self.with_depth(dec.span(), |this| this.elab_topdec_inner(dec))
    }

    fn elab_topdec_inner(&mut self, dec: &TopDec) -> SurfaceResult<()> {
        let _span = recmod_telemetry::span("surface.elab_topdec");
        recmod_telemetry::count("surface.topdecs", 1);
        match dec {
            TopDec::Signature { name, sig, .. } => {
                let tmpl = self.elab_sigexp(sig)?;
                self.env.insert(name.clone(), Entity::SigDef(tmpl));
                Ok(())
            }
            TopDec::Val {
                name,
                ann,
                exp,
                span,
            } => self.measured(|e| {
                let mut term = e.elab_exp(exp)?;
                if let Some(t) = ann {
                    term = e.ascribe(term, t)?;
                }
                e.bind_value(name, term, *span)
            }),
            TopDec::Fun {
                name,
                param,
                param_ty,
                ret_ty,
                body,
                span,
            } => self.measured(|e| {
                let term = e.elab_fun(name, param, param_ty, ret_ty, body)?;
                e.bind_value(name, term, *span)
            }),
            TopDec::Structure {
                rec_: false, binds, ..
            } => {
                for bind in binds {
                    self.measured(|e| e.elab_plain_structure(bind))?;
                }
                Ok(())
            }
            TopDec::Structure {
                rec_: true,
                binds,
                span,
            } => self.measured(|e| e.elab_rec_group(binds, *span)),
            TopDec::Functor {
                name,
                param,
                param_rec,
                param_sig,
                body,
                span,
            } => self.measured(|e| e.elab_functor(name, param, *param_rec, param_sig, body, *span)),
        }
    }

    /// Runs one declaration's elaboration, stamping every binding it
    /// produces with the elapsed wall-clock time and the kernel
    /// judgement-counter delta it incurred.
    fn measured(&mut self, f: impl FnOnce(&mut Self) -> SurfaceResult<()>) -> SurfaceResult<()> {
        let mark = self.bindings.len();
        let before = self.tc.stats();
        let t0 = std::time::Instant::now();
        let result = f(self);
        let nanos = t0.elapsed().as_nanos() as u64;
        let delta = self.tc.stats().delta_since(&before);
        for b in &mut self.bindings[mark..] {
            b.elab_nanos = nanos;
            b.kernel = delta;
        }
        result
    }

    fn bind_value(&mut self, name: &str, term: Term, span: Span) -> SurfaceResult<()> {
        let typing = self
            .kernel(|tc, ctx| tc.synth_term(ctx, &term))
            .map_err(|e| self.terr(span, e))?;
        let describe = recmod_syntax::pretty::ty_to_string(
            &typing.ty,
            &mut recmod_syntax::pretty::Names::new(),
        );
        self.ctx.push(Entry::Term(typing.ty, typing.valuable));
        self.env.insert(
            name.to_string(),
            Entity::Val {
                pos: self.depth() - 1,
            },
        );
        self.bindings.push(TopBinding {
            name: name.to_string(),
            describe,
            dynamic: term,
            static_part: None,
            is_structure: false,
            elab_nanos: 0,
            kernel: recmod_kernel::KernelStats::default(),
        });
        Ok(())
    }

    fn elab_plain_structure(&mut self, bind: &StrBind) -> SurfaceResult<()> {
        let se = apply_ann(bind);
        let es = self.elab_strexp(&se)?;
        let module = Module::Struct(es.statics.clone(), es.dynamics.clone());
        // Opaque ascription: seal the context entry.
        let module = match &bind.ann {
            Some((sig, true)) => {
                let tmpl = self.elab_sigexp(sig)?;
                Module::Seal(Box::new(module), Box::new(tmpl.instantiate(self.depth())))
            }
            _ => module,
        };
        let mt = self
            .kernel(|tc, ctx| tc.synth_module(ctx, &module))
            .map_err(|e| self.terr(bind.span, e))?;
        let split = recmod_phase::split_module(&self.tc, &mut self.ctx, &module)
            .map_err(|e| self.terr(bind.span, e))?;
        let describe =
            recmod_syntax::pretty::sig_to_string(&mt.sig, &mut recmod_syntax::pretty::Names::new());
        self.ctx.push(Entry::Struct(mt.sig, mt.valuable));
        self.env.insert(
            bind.name.clone(),
            Entity::Struct(StructEntity {
                shape: es.shape,
                statics: Con::Fst(0),
                dynamics: Term::Snd(0),
                depth: self.depth(),
            }),
        );
        self.bindings.push(TopBinding {
            name: bind.name.clone(),
            describe,
            dynamic: split.term,
            static_part: Some(split.con),
            is_structure: true,
            elab_nanos: 0,
            kernel: recmod_kernel::KernelStats::default(),
        });
        Ok(())
    }

    // ------------------------------------------------------------------
    // Functors
    // ------------------------------------------------------------------

    fn elab_functor(
        &mut self,
        name: &str,
        param: &str,
        param_rec: bool,
        param_sig: &SigExp,
        body: &StrExp,
        span: Span,
    ) -> SurfaceResult<()> {
        // Elaborate the parameter signature (under a pseudo-binder for
        // an rds parameter, per §4's BuildList).
        let param_tmpl = if param_rec {
            self.elab_rds_sig(param, param_sig, span)?
        } else {
            self.elab_sigexp(param_sig)?
        };
        let param_internal = param_tmpl.instantiate(self.depth());
        self.kernel(|tc, ctx| tc.wf_sig(ctx, &param_internal))
            .map_err(|e| self.terr(param_sig.span(), e))?;
        let resolved = self
            .kernel(|tc, ctx| tc.resolve_sig(ctx, &param_internal))
            .map_err(|e| self.terr(param_sig.span(), e))?;
        let Sig::Struct(pk, pty) = resolved.clone() else {
            unreachable!("resolve_sig returns flat signatures")
        };

        // Elaborate the body under the parameter.
        let mark = self.env.mark();
        self.ctx.push(Entry::Struct(resolved, true));
        self.env.insert(
            param.to_string(),
            Entity::Struct(StructEntity {
                shape: param_tmpl.shape.clone(),
                statics: Con::Fst(0),
                dynamics: Term::Snd(0),
                depth: self.depth(),
            }),
        );
        let body_depth = self.depth();
        let body_res = self.elab_strexp(body);
        self.ctx.truncate(self.depth() - 1);
        self.env.reset(mark);
        let body_es = body_res?;

        let pair = recmod_phase::hom::functor_pair(
            &pk,
            &pty,
            recmod_phase::Split {
                con: body_es.statics.clone(),
                term: body_es.dynamics.clone(),
            },
        );
        let module = Module::Struct(pair.con, pair.term);
        let mt = self
            .kernel(|tc, ctx| tc.synth_module(ctx, &module))
            .map_err(|e| self.terr(span, e))?;
        let split = recmod_phase::split_module(&self.tc, &mut self.ctx, &module)
            .map_err(|e| self.terr(span, e))?;
        let describe =
            recmod_syntax::pretty::sig_to_string(&mt.sig, &mut recmod_syntax::pretty::Names::new());
        let param_record = param_tmpl;
        self.ctx.push(Entry::Struct(mt.sig, mt.valuable));
        self.env.insert(
            name.to_string(),
            Entity::Functor(FunctorEntity {
                statics: Con::Fst(0),
                dynamics: Term::Snd(0),
                depth: self.depth(),
                param: param_record,
                result_shape: body_es.shape,
                body_con: body_es.statics,
                body_term: body_es.dynamics,
                body_depth,
            }),
        );
        self.bindings.push(TopBinding {
            name: name.to_string(),
            describe,
            dynamic: split.term,
            static_part: Some(split.con),
            is_structure: true,
            elab_nanos: 0,
            kernel: recmod_kernel::KernelStats::default(),
        });
        Ok(())
    }

    /// Elaborates a signature under a pseudo-binder for the named
    /// recursive structure, producing an rds template. The signature
    /// must be fully transparent as written (e.g. via datatype specs);
    /// an opaque `type t` inside requires the abstract-type extrusion of
    /// §4, available as [`crate::extrude`].
    pub(crate) fn elab_rds_sig(
        &mut self,
        self_name: &str,
        sig: &SigExp,
        span: Span,
    ) -> SurfaceResult<SigTemplate> {
        let skeleton = self.sig_skeleton(sig)?;
        let stripped = skeleton_strip_kind(&skeleton);
        let mark = self.env.mark();
        self.ctx.push(Entry::Struct(
            Sig::Struct(hc(stripped), Box::new(Ty::Unit)),
            true,
        ));
        self.env.insert(
            self_name.to_string(),
            Entity::Struct(StructEntity {
                shape: skeleton,
                statics: Con::Fst(0),
                dynamics: Term::Snd(0),
                depth: self.depth(),
            }),
        );
        let tmpl_res = self.elab_sigexp(sig);
        self.ctx.truncate(self.depth() - 1);
        self.env.reset(mark);
        let tmpl = tmpl_res?;
        let _ = span;
        Ok(SigTemplate {
            kind: tmpl.kind,
            ty: tmpl.ty,
            shape: tmpl.shape,
            depth: self.depth(),
            rds: true,
        })
    }

    // ------------------------------------------------------------------
    // Recursive structure groups
    // ------------------------------------------------------------------

    fn elab_rec_group(&mut self, binds: &[StrBind], span: Span) -> SurfaceResult<()> {
        let n = binds.len();
        let base = self.depth();

        // 1. Skeletons for every member, to pre-bind the names.
        let mut skeletons = Vec::with_capacity(n);
        for b in binds {
            let Some((sig, _)) = &b.ann else {
                return self.err(
                    b.span,
                    ErrorKind::Other(format!(
                        "recursive structure `{}` needs a signature annotation",
                        b.name
                    )),
                );
            };
            skeletons.push(self.sig_skeleton(sig)?);
        }
        let group_shape = Shape {
            fields: binds
                .iter()
                .zip(&skeletons)
                .map(|(b, s)| (b.name.clone(), Item::Struct(s.clone())))
                .collect(),
        };
        let stripped = skeleton_strip_kind(&group_shape);

        // 2. Pseudo-binder with the stripped signature; bind the names.
        let mark = self.env.mark();
        self.ctx.push(Entry::Struct(
            Sig::Struct(hc(stripped), Box::new(Ty::Unit)),
            true,
        ));
        for (i, b) in binds.iter().enumerate() {
            self.env.insert(
                b.name.clone(),
                Entity::Struct(StructEntity {
                    shape: skeletons[i].clone(),
                    statics: con_proj(Con::Fst(0), i, n),
                    dynamics: term_proj(Term::Snd(0), i, n),
                    depth: self.depth(),
                }),
            );
        }

        // 3. Elaborate the member signatures under the pseudo-binder.
        let mut tmpls = Vec::with_capacity(n);
        let mut sig_failure = None;
        for b in binds {
            let Some((sig, _)) = b.ann.as_ref() else {
                sig_failure = Some(SurfaceError::internal(
                    b.span,
                    "recursive structure binding lost its ascription",
                ));
                break;
            };
            match self.elab_sigexp(sig) {
                Ok(t) => tmpls.push(t),
                Err(e) => {
                    sig_failure = Some(e);
                    break;
                }
            }
        }
        if let Some(e) = sig_failure {
            self.ctx.truncate(base);
            self.env.reset(mark);
            return Err(e);
        }

        // 4. Opaque (§3) or transparent (§4)? Opaque iff every member is
        //    `:>`-sealed and no signature mentions the recursive binder.
        let mentions = tmpls
            .iter()
            .any(|t| recmod_kernel::kind::kind_mentions(&t.kind, 0) || ty_mentions(&t.ty, 1));
        let all_opaque = binds.iter().all(|b| matches!(&b.ann, Some((_, true))));
        let opaque_group = all_opaque && !mentions;

        // 5. For the transparent interpretation, render every signature
        //    fully transparent by inspecting the bodies (§4.1).
        let outcome = if opaque_group {
            self.finish_rec_group(binds, &tmpls, &skeletons, false, span)
        } else {
            let transparified = self.transparify(binds, tmpls, span);
            match transparified {
                Ok(tmpls) => self.finish_rec_group(binds, &tmpls, &skeletons, true, span),
                Err(e) => Err(e),
            }
        };
        // `finish_rec_group` restores the context/environment itself on
        // both paths; only unwind here on early error.
        if outcome.is_err() && self.depth() > base {
            self.ctx.truncate(base);
            self.env.reset(mark);
        }
        outcome
    }

    /// Fills every opaque type slot of each member signature with the
    /// implementation type found in the corresponding body (§4.1: "the
    /// elaborator can produce the needed fully transparent signature by
    /// inspection of the module being defined").
    fn transparify(
        &mut self,
        binds: &[StrBind],
        tmpls: Vec<SigTemplate>,
        span: Span,
    ) -> SurfaceResult<Vec<SigTemplate>> {
        let mut out = Vec::with_capacity(tmpls.len());
        for (b, tmpl) in binds.iter().zip(tmpls) {
            if kind_is_transparent(&tmpl.kind) {
                out.push(tmpl);
                continue;
            }
            let (body_con, body_shape) = self.statics_of_strexp(&b.body)?;
            let kind = fill_opaque_slots(&tmpl.kind, &tmpl.shape, &body_con, &body_shape, 0)
                .map_err(|k| SurfaceError::new(span, k))?;
            out.push(SigTemplate { kind, ..tmpl });
        }
        Ok(out)
    }

    /// Builds the combined rds (or plain, for the opaque interpretation)
    /// signature, elaborates the bodies under it, forms the `fix`, checks
    /// it, and binds the member names.
    fn finish_rec_group(
        &mut self,
        binds: &[StrBind],
        tmpls: &[SigTemplate],
        _skeletons: &[Shape],
        transparent: bool,
        span: Span,
    ) -> SurfaceResult<()> {
        let n = binds.len();
        // Context currently has the pseudo-binder on top.
        let base = self.depth() - 1;
        let env_mark_outer = self.env.mark();

        // Combined kind: Σ of the member kinds (member i sits under i
        // extra Σ binders).
        let comb_kind = kind_tuple(
            tmpls
                .iter()
                .enumerate()
                .map(|(i, t)| shift_kind(&t.kind, i as isize, 0))
                .collect(),
        );
        // Combined ty: product of the member σ's with each member's α
        // replaced by the corresponding projection of the combined α.
        let comb_ty = ty_tuple(
            tmpls
                .iter()
                .enumerate()
                .map(|(i, t)| {
                    let shifted = shift_ty(&t.ty, 1, 1);
                    subst_con_ty(&shifted, &con_proj(Con::Var(0), i, n))
                })
                .collect(),
        );
        let group_shape = Shape {
            fields: binds
                .iter()
                .zip(tmpls)
                .map(|(b, t)| (b.name.clone(), Item::Struct(t.shape.clone())))
                .collect(),
        };

        // Pop the pseudo-binder; its index becomes the ρ binder (rds) or
        // is stripped entirely (opaque: the signatures don't mention it).
        self.ctx.truncate(base);
        self.env.reset(env_mark_outer);
        // NOTE: env entries for member names were inside the pseudo scope
        // and are gone; rebind below.

        let ann_sig = if transparent {
            Sig::Rds(Box::new(Sig::Struct(hc(comb_kind), Box::new(comb_ty))))
        } else {
            Sig::Struct(
                hc(shift_kind(&comb_kind, -1, 0)),
                Box::new(shift_ty(&comb_ty, -1, 1)),
            )
        };
        self.kernel(|tc, ctx| tc.wf_sig(ctx, &ann_sig))
            .map_err(|e| self.terr(span, e))?;
        let resolved = self
            .kernel(|tc, ctx| tc.resolve_sig(ctx, &ann_sig))
            .map_err(|e| self.terr(span, e))?;

        // Elaborate the bodies under the recursive assumption.
        let mark = self.env.mark();
        self.ctx.push(Entry::Struct(resolved, false));
        for (i, (b, t)) in binds.iter().zip(tmpls).enumerate() {
            self.env.insert(
                b.name.clone(),
                Entity::Struct(StructEntity {
                    shape: t.shape.clone(),
                    statics: con_proj(Con::Fst(0), i, n),
                    dynamics: term_proj(Term::Snd(0), i, n),
                    depth: self.depth(),
                }),
            );
        }
        let mut members = Vec::with_capacity(n);
        let mut failure = None;
        for (b, t) in binds.iter().zip(tmpls) {
            let es = match self.elab_strexp(&b.body) {
                Ok(es) => es,
                Err(e) => {
                    failure = Some(e);
                    break;
                }
            };
            match self.coerce(&es, &t.shape, b.span) {
                Ok(c) => members.push(c),
                Err(e) => {
                    failure = Some(e);
                    break;
                }
            }
        }
        self.ctx.truncate(base);
        self.env.reset(mark);
        if let Some(e) = failure {
            return Err(e);
        }

        let body_mod = Module::Struct(
            con_tuple(members.iter().map(|m| m.statics.clone()).collect()),
            term_tuple(members.iter().map(|m| m.dynamics.clone()).collect()),
        );
        let fix_mod = Module::Fix(Box::new(ann_sig), Box::new(body_mod));
        let mt = self
            .kernel(|tc, ctx| tc.synth_module(ctx, &fix_mod))
            .map_err(|e| self.terr(span, e))?;
        let split = recmod_phase::split_module(&self.tc, &mut self.ctx, &fix_mod)
            .map_err(|e| self.terr(span, e))?;
        let describe =
            recmod_syntax::pretty::sig_to_string(&mt.sig, &mut recmod_syntax::pretty::Names::new());

        let hidden = self.fresh("rec");
        self.ctx.push(Entry::Struct(mt.sig, true));
        self.env.insert(
            hidden.clone(),
            Entity::Struct(StructEntity {
                shape: group_shape,
                statics: Con::Fst(0),
                dynamics: Term::Snd(0),
                depth: self.depth(),
            }),
        );
        for (i, (b, t)) in binds.iter().zip(tmpls).enumerate() {
            self.env.insert(
                b.name.clone(),
                Entity::Struct(StructEntity {
                    shape: t.shape.clone(),
                    statics: con_proj(Con::Fst(0), i, n),
                    dynamics: term_proj(Term::Snd(0), i, n),
                    depth: self.depth(),
                }),
            );
        }
        self.bindings.push(TopBinding {
            name: hidden,
            describe,
            dynamic: split.term,
            static_part: Some(split.con),
            is_structure: true,
            elab_nanos: 0,
            kernel: recmod_kernel::KernelStats::default(),
        });
        Ok(())
    }

    // ------------------------------------------------------------------
    // Static-only elaboration (for transparification) and skeletons
    // ------------------------------------------------------------------

    /// Computes just the static part (constructor tuple + shape) of a
    /// structure expression, without elaborating any terms. Used to fill
    /// opaque signature slots by body inspection.
    pub(crate) fn statics_of_strexp(&mut self, se: &StrExp) -> SurfaceResult<(Con, Shape)> {
        match se {
            StrExp::Path(p) => {
                let st = self.resolve_struct(p)?;
                Ok((st.statics, st.shape))
            }
            StrExp::Ascribe {
                body, sig, span, ..
            } => {
                let tmpl = self.elab_sigexp(sig)?;
                let (c, shape) = self.statics_of_strexp(body)?;
                let coerced = self.coerce_statics(&c, &shape, &tmpl.shape, *span)?;
                Ok((coerced, tmpl.shape))
            }
            StrExp::App { functor, arg, span } => {
                let Some(Entity::Functor(fe)) = self.env.lookup(functor) else {
                    return self.err(*span, ErrorKind::Unbound(functor.clone()));
                };
                let fe = fe.clone();
                let (ac, ashape) = self.statics_of_strexp(arg)?;
                let coerced = self.coerce_statics(&ac, &ashape, &fe.param.shape, *span)?;
                let delta = self.depth() as isize + 1 - fe.body_depth as isize;
                let body_con = shift_con(&fe.body_con, delta, 1);
                let parts = recmod_syntax::subst::ModParts {
                    fst: coerced,
                    snd: None,
                };
                Ok((
                    recmod_syntax::subst::subst_mod_con(&body_con, &parts),
                    fe.result_shape.clone(),
                ))
            }
            StrExp::Body(decs, _span) => {
                let mark = self.env.mark();
                let base = self.depth();
                let mut statics: Vec<Con> = Vec::new();
                let mut fields = Vec::new();
                let mut go = || -> SurfaceResult<()> {
                    for d in decs {
                        match d {
                            Dec::Type { name, def, .. } => {
                                let con = self.elab_ty(def)?;
                                self.env.insert(
                                    name.clone(),
                                    Entity::TyAlias {
                                        con: con.clone(),
                                        depth: self.depth(),
                                    },
                                );
                                statics.push(con);
                                fields.push((name.clone(), Item::Ty));
                            }
                            Dec::Datatype { name, ctors, .. } => {
                                let (mu, info) = self.elab_datatype_con(name, ctors)?;
                                self.env.insert(
                                    name.clone(),
                                    Entity::Data {
                                        con: mu.clone(),
                                        depth: self.depth(),
                                        info: info.clone(),
                                    },
                                );
                                statics.push(mu);
                                fields.push((name.clone(), Item::Data(info.clone())));
                                for (cname, _) in &info.ctors {
                                    fields.push((cname.clone(), Item::Val));
                                }
                            }
                            Dec::Val { name, .. } | Dec::Fun { name, .. } => {
                                fields.push((name.clone(), Item::Val));
                            }
                            Dec::Structure(bind) => {
                                let (c, shape) = self.statics_of_strexp(&bind.body)?;
                                self.env.insert(
                                    bind.name.clone(),
                                    Entity::Struct(StructEntity {
                                        shape: shape.clone(),
                                        statics: c.clone(),
                                        dynamics: Term::Star,
                                        depth: self.depth(),
                                    }),
                                );
                                statics.push(c);
                                fields.push((bind.name.clone(), Item::Struct(shape)));
                            }
                        }
                    }
                    Ok(())
                };
                let r = go();
                self.ctx.truncate(base);
                self.env.reset(mark);
                r?;
                Ok((con_tuple(statics), Shape { fields }))
            }
        }
    }

    /// The shape of a signature expression, computed without elaborating
    /// any types (names and item kinds only).
    pub(crate) fn sig_skeleton(&mut self, se: &SigExp) -> SurfaceResult<Shape> {
        match se {
            SigExp::Name(name, span) => match self.env.lookup(name) {
                Some(Entity::SigDef(t)) => Ok(t.shape.clone()),
                Some(_) => self.err(
                    *span,
                    ErrorKind::WrongEntity {
                        name: name.clone(),
                        expected: "a signature",
                    },
                ),
                None => self.err(*span, ErrorKind::Unbound(name.clone())),
            },
            SigExp::WhereType { base, .. } => self.sig_skeleton(base),
            SigExp::Body(specs, _) => {
                let mut fields = Vec::new();
                for spec in specs {
                    match spec {
                        Spec::Type { name, .. } => fields.push((name.clone(), Item::Ty)),
                        Spec::Datatype { name, ctors, .. } => {
                            let info = crate::shape::DataInfo {
                                ctors: ctors
                                    .iter()
                                    .map(|c| (c.name.clone(), c.arg.is_some()))
                                    .collect(),
                            };
                            fields.push((name.clone(), Item::Data(info)));
                            for c in ctors {
                                fields.push((c.name.clone(), Item::Val));
                            }
                        }
                        Spec::Val { name, .. } => fields.push((name.clone(), Item::Val)),
                        Spec::Structure { name, sig, .. } => {
                            let sub = self.sig_skeleton(sig)?;
                            fields.push((name.clone(), Item::Struct(sub)));
                        }
                    }
                }
                Ok(Shape { fields })
            }
        }
    }
}

/// Folds an optional binding annotation into the structure expression.
fn apply_ann(bind: &StrBind) -> StrExp {
    match &bind.ann {
        Some((sig, opaque)) => StrExp::Ascribe {
            body: Box::new(bind.body.clone()),
            sig: sig.clone(),
            opaque: *opaque,
            span: bind.span,
        },
        None => bind.body.clone(),
    }
}

/// The all-opaque frame kind of a shape: `T` per type slot, recursively.
fn skeleton_strip_kind(shape: &Shape) -> Kind {
    kind_tuple(
        shape
            .static_fields()
            .map(|(_, item, _)| match item {
                Item::Ty | Item::Data(_) => Kind::Type,
                Item::Struct(sub) => skeleton_strip_kind(sub),
                Item::Val => unreachable!("static fields only"),
            })
            .collect(),
    )
}

/// Is every type slot of the kind transparent already?
fn kind_is_transparent(k: &Kind) -> bool {
    recmod_kernel::singleton::fully_transparent(k)
}

/// Replaces every opaque (`T`) slot in `kind` (laid out by `sig_shape`)
/// with a singleton of the corresponding component of the body statics.
fn fill_opaque_slots(
    kind: &Kind,
    sig_shape: &Shape,
    body_con: &Con,
    body_shape: &Shape,
    crossed: usize,
) -> Result<Kind, ErrorKind> {
    fn go(
        kind: &Kind,
        slots: &[(String, ItemKind)],
        idx: usize,
        body_con: &Con,
        body_shape: &Shape,
        crossed: usize,
    ) -> Result<Kind, ErrorKind> {
        if slots.is_empty() {
            return Ok(kind.clone());
        }
        let last = idx == slots.len() - 1;
        let (here, rest) = if last {
            (kind.clone(), None)
        } else {
            let Kind::Sigma(k1, k2) = kind else {
                return Err(ErrorKind::Other(
                    "signature kind shape mismatch".to_string(),
                ));
            };
            ((**k1).clone(), Some((**k2).clone()))
        };
        let (name, item) = &slots[idx];
        let filled = fill_one(&here, name, item, body_con, body_shape, crossed)?;
        match rest {
            None => Ok(filled),
            Some(k2) => {
                let rest_filled = go(&k2, slots, idx + 1, body_con, body_shape, crossed + 1)?;
                Ok(Kind::Sigma(hc(filled), hc(rest_filled)))
            }
        }
    }

    #[derive(Clone)]
    enum ItemKind {
        Leaf,
        Sub(Shape),
    }

    fn fill_one(
        kind: &Kind,
        name: &str,
        item: &ItemKind,
        body_con: &Con,
        body_shape: &Shape,
        crossed: usize,
    ) -> Result<Kind, ErrorKind> {
        match item {
            ItemKind::Leaf => match kind {
                Kind::Type => {
                    let Some(slot) = body_shape.static_slot(name) else {
                        return Err(ErrorKind::MissingComponent {
                            name: name.to_string(),
                        });
                    };
                    let comp = con_proj(
                        shift_con(body_con, crossed as isize, 0),
                        slot,
                        body_shape.static_len(),
                    );
                    Ok(Kind::Singleton(hc(comp)))
                }
                other => Ok(other.clone()),
            },
            ItemKind::Sub(sub_sig_shape) => {
                let Some(slot) = body_shape.static_slot(name) else {
                    return Err(ErrorKind::MissingComponent {
                        name: name.to_string(),
                    });
                };
                let Some(Item::Struct(sub_body_shape)) = body_shape.find(name) else {
                    return Err(ErrorKind::WrongEntity {
                        name: name.to_string(),
                        expected: "a substructure",
                    });
                };
                let sub_con = con_proj(
                    shift_con(body_con, crossed as isize, 0),
                    slot,
                    body_shape.static_len(),
                );
                fill_opaque_slots(kind, sub_sig_shape, &sub_con, sub_body_shape, 0)
            }
        }
    }

    let slots: Vec<(String, ItemKind)> = sig_shape
        .static_fields()
        .map(|(n, item, _)| {
            (
                n.to_string(),
                match item {
                    Item::Struct(s) => ItemKind::Sub(s.clone()),
                    _ => ItemKind::Leaf,
                },
            )
        })
        .collect();
    let _ = crossed;
    go(kind, &slots, 0, body_con, body_shape, 0)
}

/// Does the type mention the (implicitly-bound-relative) index `target`?
/// `target` is the index as seen at the type's root (e.g. `1` for the
/// pseudo-binder underneath a signature's α binder).
fn ty_mentions(t: &Ty, target: usize) -> bool {
    struct Probe {
        target: usize,
        hit: bool,
    }
    impl VarMap for Probe {
        fn cvar(&mut self, d: usize, i: usize) -> Con {
            if i == self.target + d {
                self.hit = true;
            }
            Con::Var(i)
        }
        fn tvar(&mut self, d: usize, i: usize) -> Term {
            if i == self.target + d {
                self.hit = true;
            }
            Term::Var(i)
        }
        fn fst(&mut self, d: usize, i: usize) -> Con {
            if i == self.target + d {
                self.hit = true;
            }
            Con::Fst(i)
        }
        fn snd(&mut self, d: usize, i: usize) -> Term {
            if i == self.target + d {
                self.hit = true;
            }
            Term::Snd(i)
        }
        fn mvar(&mut self, d: usize, i: usize) -> Module {
            if i == self.target + d {
                self.hit = true;
            }
            Module::Var(i)
        }
    }
    let mut probe = Probe { target, hit: false };
    let _ = recmod_syntax::map::map_ty(t, 0, &mut probe);
    probe.hit
}
