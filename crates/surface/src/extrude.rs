//! Abstract-type extrusion (paper §4).
//!
//! An rds must be *fully transparent*, so a signature like
//!
//! ```text
//! rec S : sig type t
//!             type u = S.u -> t
//!         end
//! ```
//!
//! — whose `t` is opaque — is not directly acceptable as, e.g., a
//! functor parameter. The paper's elaborator "must name any abstract
//! types within the signature and pull them out":
//!
//! ```text
//! sig type t'
//!     structure rec S : sig type t = t'
//!                           type u = S.u -> t
//!                       end
//! end
//! ```
//!
//! [`extrude`] performs exactly that rewriting on internal signatures:
//! each opaque slot of the rds's static kind is hoisted to a fresh outer
//! `Σ` binder, the slot is redefined as a singleton of that binder, and
//! the now fully transparent inner rds is resolved per Figure 5. The
//! result is an ordinary signature with the abstract types in front.

use recmod_kernel::{raise, Ctx, Entry, Tc, TcResult, TypeError};
use recmod_syntax::ast::{Con, Kind, Sig, Ty};
use recmod_syntax::intern::hc;
use recmod_syntax::subst::{shift_kind, shift_ty};

/// The result of extrusion.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Extruded {
    /// How many abstract types were hoisted.
    pub hoisted: usize,
    /// The rewritten, rds-free signature: `[α : Σ β₁:T…βₘ:T. κ' . σ']`
    /// with `κ'` the Figure-5 resolution of the transparentized rds.
    pub sig: Sig,
}

/// Extrudes the opaque type components of a recursively-dependent
/// signature (see module docs).
///
/// # Errors
///
/// Fails if `s` is not an rds over a flat signature, or if resolution of
/// the transparentized signature fails.
pub fn extrude(tc: &Tc, ctx: &mut Ctx, s: &Sig) -> TcResult<Extruded> {
    let Sig::Rds(inner) = s else {
        return raise(TypeError::Other(
            "extrude expects a recursively-dependent signature".into(),
        ));
    };
    let Sig::Struct(kappa, sigma) = &**inner else {
        return raise(TypeError::Other(
            "extrude expects an rds over a flat signature".into(),
        ));
    };

    // Count the opaque leaves.
    let m = count_opaque(kappa);
    if m == 0 {
        // Nothing to do: resolve directly.
        let resolved = recmod_telemetry::stage("stage.kernel", || tc.resolve_sig(ctx, s))?;
        return Ok(Extruded {
            hoisted: 0,
            sig: resolved,
        });
    }

    // Insert m binders *outside* the ρ binder: the rds self-variable
    // (index 0 at the kind's root) stays fixed; genuinely free indices
    // move up by m.
    let shifted_kind = shift_kind(kappa, m as isize, 1);
    let shifted_ty = shift_ty(sigma, m as isize, 2);

    // Replace each opaque leaf (left-to-right) with a singleton of the
    // corresponding hoisted binder.
    let mut next = 0usize;
    let filled = fill(&shifted_kind, m, 0, &mut next);
    debug_assert_eq!(next, m);

    let transparent_rds = Sig::Rds(Box::new(Sig::Struct(hc(filled), Box::new(shifted_ty))));

    // Resolve under the hoisted binders.
    let base = ctx.len();
    for _ in 0..m {
        ctx.push(Entry::Con(Kind::Type));
    }
    let resolved =
        recmod_telemetry::stage("stage.kernel", || tc.resolve_sig(ctx, &transparent_rds));
    let wf = resolved
        .as_ref()
        .ok()
        .map(|r| recmod_telemetry::stage("stage.kernel", || tc.wf_sig(ctx, r)))
        .unwrap_or(Ok(()));
    ctx.truncate(base);
    let resolved = resolved?;
    wf?;
    let Sig::Struct(rk, rt) = resolved else {
        unreachable!("resolve_sig returns flat signatures")
    };

    // Assemble: Σ β₁:T. … Σ βₘ:T. κ_resolved, with σ under one α.
    let mut kind = rk.take();
    for _ in 0..m {
        kind = Kind::Sigma(hc(Kind::Type), hc(kind));
    }
    // The dynamic part: the resolved σ is under [β…, α_inner]; in the
    // combined signature the single α binds the whole Σ tuple, and the
    // inner components are projections. For the demonstration purposes
    // of this transformation we expose the dynamic part of the rds
    // unchanged except that its α now projects past the hoisted types.
    let ty = reproject_ty(&rt, m);
    Ok(Extruded {
        hoisted: m,
        sig: Sig::Struct(hc(kind), Box::new(ty)),
    })
}

fn count_opaque(k: &Kind) -> usize {
    match k {
        Kind::Type => 1,
        Kind::Unit | Kind::Singleton(_) => 0,
        Kind::Pi(_, k2) => count_opaque(k2),
        Kind::Sigma(k1, k2) => count_opaque(k1) + count_opaque(k2),
    }
}

/// Replaces opaque leaves with singletons of the hoisted binders.
/// `crossed` counts binders crossed inside the kind; the hoisted binder
/// `j` is reached at index `crossed + 1 (ρ) + (m − 1 − j)`.
fn fill(k: &Kind, m: usize, crossed: usize, next: &mut usize) -> Kind {
    match k {
        Kind::Type => {
            let j = *next;
            *next += 1;
            Kind::Singleton(hc(Con::Var(crossed + 1 + (m - 1 - j))))
        }
        Kind::Unit | Kind::Singleton(_) => k.clone(),
        Kind::Pi(k1, k2) => Kind::Pi(k1.clone(), hc(fill(k2, m, crossed + 1, next))),
        Kind::Sigma(k1, k2) => {
            let l = fill(k1, m, crossed, next);
            let r = fill(k2, m, crossed + 1, next);
            Kind::Sigma(hc(l), hc(r))
        }
    }
}

/// Rewrites the resolved dynamic part so its references to the hoisted
/// binders `β_j` become projections of the single α: `β_j ↦ π_j(α)` and
/// the old α becomes the trailing projection.
fn reproject_ty(t: &Ty, m: usize) -> Ty {
    use recmod_syntax::ast::{Module, Term};
    use recmod_syntax::map::VarMap;
    struct Reproject {
        m: usize,
    }
    impl Reproject {
        fn remap(&self, d: usize, i: usize) -> Result<usize, Con> {
            // Original context at the root: [outer…, β_{0}…β_{m−1}, α_inner].
            // Target: [outer…, α] with the tuple ⟨β…, inner⟩ behind α.
            let rel = i as isize - d as isize;
            if rel < 0 {
                return Ok(i);
            }
            let rel = rel as usize;
            if rel == 0 {
                // α_inner ↦ the trailing projection of α.
                Err(crate::shape::con_proj(Con::Var(d), self.m, self.m + 1))
            } else if rel <= self.m {
                // β_{m−rel} ↦ projection (m − rel) of α.
                Err(crate::shape::con_proj(
                    Con::Var(d),
                    self.m - rel,
                    self.m + 1,
                ))
            } else {
                Ok(i - self.m)
            }
        }
    }
    impl VarMap for Reproject {
        fn cvar(&mut self, d: usize, i: usize) -> Con {
            match self.remap(d, i) {
                Ok(j) => Con::Var(j),
                Err(c) => c,
            }
        }
        fn tvar(&mut self, d: usize, i: usize) -> Term {
            match self.remap(d, i) {
                Ok(j) => Term::Var(j),
                Err(_) => unreachable!("term occurrence of a hoisted type"),
            }
        }
        fn fst(&mut self, d: usize, i: usize) -> Con {
            match self.remap(d, i) {
                Ok(j) => Con::Fst(j),
                Err(_) => unreachable!("Fst occurrence of a hoisted type"),
            }
        }
        fn snd(&mut self, d: usize, i: usize) -> Term {
            match self.remap(d, i) {
                Ok(j) => Term::Snd(j),
                Err(_) => unreachable!("snd occurrence of a hoisted type"),
            }
        }
        fn mvar(&mut self, d: usize, i: usize) -> Module {
            match self.remap(d, i) {
                Ok(j) => Module::Var(j),
                Err(_) => unreachable!("module occurrence of a hoisted type"),
            }
        }
    }
    recmod_syntax::map::map_ty(t, 0, &mut Reproject { m })
}

#[cfg(test)]
mod tests {
    use super::*;
    use recmod_syntax::dsl::*;

    /// The paper's §4 example:
    /// `rec S : sig type t; type u = S.u -> t end`.
    fn paper_example() -> Sig {
        // κ = Σ α_t:T. Q(π₂(Fst ρ) ⇀ α_t); inside the Σ slot, ρ = 1.
        let u_def = carrow(cproj2(fst(1)), cvar(0));
        rds(Sig::Struct(
            recmod_syntax::intern::hc(sigma(tkind(), q(u_def))),
            Box::new(Ty::Unit),
        ))
    }

    #[test]
    fn rejects_non_rds() {
        let tc = Tc::new();
        let mut ctx = Ctx::new();
        let s = sig(tkind(), Ty::Unit);
        assert!(extrude(&tc, &mut ctx, &s).is_err());
    }

    #[test]
    fn plain_rds_resolves_without_hoisting() {
        let tc = Tc::new();
        let mut ctx = Ctx::new();
        let s = rds(Sig::Struct(
            recmod_syntax::intern::hc(q(carrow(Con::Int, fst(0)))),
            Box::new(Ty::Unit),
        ));
        let out = extrude(&tc, &mut ctx, &s).unwrap();
        assert_eq!(out.hoisted, 0);
        assert!(matches!(out.sig, Sig::Struct(_, _)));
    }

    #[test]
    fn paper_example_hoists_one_abstract_type() {
        let tc = Tc::new();
        let mut ctx = Ctx::new();
        let out = extrude(&tc, &mut ctx, &paper_example()).unwrap();
        assert_eq!(out.hoisted, 1);
        // Result kind: Σ β:T. (resolved, fully transparent).
        let Sig::Struct(k, _) = &out.sig else {
            panic!()
        };
        let Kind::Sigma(k1, k2) = &**k else {
            panic!("{k:?}")
        };
        assert_eq!(**k1, Kind::Type);
        assert!(
            recmod_kernel::singleton::fully_transparent(k2),
            "inner part must be fully transparent after extrusion: {k2:?}"
        );
        // And the rewritten signature is well-formed.
        tc.wf_sig(&mut ctx, &out.sig).unwrap();
    }

    #[test]
    fn extruded_t_slot_equals_hoisted_binder() {
        // The inner `t` slot must be Q(projection of the μ …) such that it
        // definitionally equals the hoisted β. Check by resolving and
        // comparing under a context with β:T.
        let tc = Tc::new();
        let mut ctx = Ctx::new();
        let out = extrude(&tc, &mut ctx, &paper_example()).unwrap();
        let Sig::Struct(k, _) = &out.sig else {
            panic!()
        };
        let Kind::Sigma(_, inner) = &**k else {
            panic!()
        };
        // inner is under the β binder; its first slot is t.
        let Kind::Sigma(t_slot, _) = &**inner else {
            panic!("{inner:?}")
        };
        let Kind::Singleton(t_def) = &**t_slot else {
            panic!("{t_slot:?}")
        };
        ctx.with_con(Kind::Type, |ctx| {
            tc.con_equiv(ctx, t_def, &cvar(0), &Kind::Type).unwrap();
        });
    }
}
