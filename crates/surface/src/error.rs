//! Surface-language errors: lexing, parsing, and elaboration.

use std::error::Error;
use std::fmt;

use recmod_kernel::TypeError;

/// A half-open byte range into the source text.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Span {
    /// Byte offset of the first character.
    pub start: usize,
    /// Byte offset one past the last character.
    pub end: usize,
}

impl Span {
    /// Builds a span.
    pub fn new(start: usize, end: usize) -> Self {
        Span { start, end }
    }

    /// The smallest span covering both.
    pub fn to(self, other: Span) -> Span {
        Span {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
        }
    }

    /// 1-based line and column of the span start within `src`.
    pub fn line_col(&self, src: &str) -> (usize, usize) {
        let mut line = 1;
        let mut col = 1;
        for (i, ch) in src.char_indices() {
            if i >= self.start {
                break;
            }
            if ch == '\n' {
                line += 1;
                col = 1;
            } else {
                col += 1;
            }
        }
        (line, col)
    }
}

/// The derivation provenance a diagnostic carries: the judgement
/// frames that were active when the underlying error was constructed,
/// plus (for constructor-equivalence failures) the equation path from
/// the failing equation outward.
///
/// Provenance is *metadata about* an error, not part of its identity:
/// two errors with the same span and kind are the same diagnostic even
/// if cache state made the checker take a different route to them
/// (warm vs cold batch workers do exactly that). The `PartialEq` impl
/// below encodes this by always comparing equal.
#[derive(Debug, Clone, Default)]
pub struct Provenance {
    /// Active judgement frames at failure, outermost first.
    pub frames: Vec<&'static str>,
    /// For `con_equiv` failures: structural steps from the failing
    /// equation outward (innermost first), e.g. `["domain", "unroll"]`.
    pub equation: Vec<&'static str>,
}

impl Provenance {
    /// Captures provenance for a freshly built error of kind `kind`.
    ///
    /// Kernel errors snapshot their frames at construction time (see
    /// `recmod_kernel::error::raise`); that snapshot is pending in the
    /// telemetry layer and is consumed here. Surface-native errors
    /// (parse, scoping, …) are built while their own frames are still
    /// live, so the current stack *is* the provenance.
    fn capture(kind: &ErrorKind) -> Provenance {
        use recmod_telemetry::diag;
        let pending = match kind {
            ErrorKind::Type(_) | ErrorKind::Limit(_) => diag::take_failure(),
            _ => None,
        };
        match pending {
            Some(f) => Provenance {
                frames: f.frames,
                equation: f.equation,
            },
            None => Provenance {
                frames: diag::current_frames(),
                equation: Vec::new(),
            },
        }
    }
}

impl PartialEq for Provenance {
    fn eq(&self, _: &Self) -> bool {
        true
    }
}

impl Eq for Provenance {}

/// An error produced by the surface pipeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SurfaceError {
    /// Where in the source the error was detected.
    pub span: Span,
    /// What went wrong.
    pub kind: ErrorKind,
    /// The judgement stack that produced the error (never part of the
    /// error's identity — see [`Provenance`]). Boxed to keep the error
    /// itself small: it travels through every `SurfaceResult`.
    pub provenance: Box<Provenance>,
}

/// The category of a surface error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ErrorKind {
    /// An unexpected character during lexing.
    Lex(String),
    /// A parse error with an explanation of what was expected.
    Parse(String),
    /// A name was not in scope.
    Unbound(String),
    /// A name was in scope but denotes the wrong kind of entity.
    WrongEntity {
        /// The name used.
        name: String,
        /// What the context required (e.g. `"a structure"`).
        expected: &'static str,
    },
    /// A structure lacks a component required by a signature.
    MissingComponent {
        /// The component name.
        name: String,
    },
    /// Duplicate binding within one structure or signature body.
    Duplicate(String),
    /// A kernel type error, with the elaborator's phase description.
    Type(TypeError),
    /// A resource limit (depth, node budget, deadline) was hit. A
    /// resource verdict, not a judgement about the program.
    Limit(recmod_telemetry::LimitExceeded),
    /// Anything else.
    Other(String),
}

impl ErrorKind {
    /// The stable error code for this failure class. Surface errors are
    /// `S0xx`; kernel and limit errors delegate to their own taxonomies
    /// (`K0xx`/`L0xx`/`I0xx`). Codes never change meaning once assigned.
    pub fn code(&self) -> &'static str {
        match self {
            ErrorKind::Lex(_) => "S001",
            ErrorKind::Parse(_) => "S002",
            ErrorKind::Unbound(_) => "S003",
            ErrorKind::WrongEntity { .. } => "S004",
            ErrorKind::MissingComponent { .. } => "S005",
            ErrorKind::Duplicate(_) => "S006",
            ErrorKind::Type(e) => e.code(),
            ErrorKind::Limit(e) => e.kind.code(),
            ErrorKind::Other(_) => "S099",
        }
    }
}

impl SurfaceError {
    /// Builds an error, capturing the active judgement frames (and any
    /// pending kernel failure snapshot) as its derivation provenance.
    pub fn new(span: Span, kind: ErrorKind) -> Self {
        let provenance = Box::new(Provenance::capture(&kind));
        SurfaceError {
            span,
            kind,
            provenance,
        }
    }

    /// The stable error code (see [`ErrorKind::code`]).
    pub fn code(&self) -> &'static str {
        self.kind.code()
    }

    /// Builds an internal-invariant error: a compiler bug surfaced as a
    /// structured diagnostic instead of a panic.
    pub fn internal(span: Span, msg: impl Into<String>) -> Self {
        SurfaceError::new(span, ErrorKind::Type(TypeError::Internal(msg.into())))
    }

    /// Is this a resource-bound verdict (depth, nodes, fuel, deadline)
    /// rather than a judgement about the program?
    pub fn is_limit(&self) -> bool {
        match &self.kind {
            ErrorKind::Limit(_) => true,
            ErrorKind::Type(e) => e.is_limit(),
            _ => false,
        }
    }

    /// Is this an internal-invariant failure (a compiler bug)?
    pub fn is_internal(&self) -> bool {
        matches!(&self.kind, ErrorKind::Type(e) if e.is_internal())
    }

    /// Renders the error with line/column information from `src`.
    pub fn render(&self, src: &str) -> String {
        let (line, col) = self.span.line_col(src);
        format!("{line}:{col}: {self}")
    }
}

impl fmt::Display for SurfaceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.kind {
            ErrorKind::Lex(msg) => write!(f, "lexical error: {msg}"),
            ErrorKind::Parse(msg) => write!(f, "parse error: {msg}"),
            ErrorKind::Unbound(name) => write!(f, "unbound identifier `{name}`"),
            ErrorKind::WrongEntity { name, expected } => {
                write!(f, "`{name}` is not {expected}")
            }
            ErrorKind::MissingComponent { name } => {
                write!(
                    f,
                    "structure is missing component `{name}` required by its signature"
                )
            }
            ErrorKind::Duplicate(name) => write!(f, "duplicate binding `{name}`"),
            ErrorKind::Type(e) => write!(f, "type error: {e}"),
            ErrorKind::Limit(e) => write!(f, "{e}"),
            ErrorKind::Other(msg) => f.write_str(msg),
        }
    }
}

impl Error for SurfaceError {}

impl From<SurfaceError> for String {
    fn from(e: SurfaceError) -> String {
        e.to_string()
    }
}

/// Result type for the surface pipeline.
pub type SurfaceResult<T> = Result<T, SurfaceError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_col_computed() {
        let src = "ab\ncd\nef";
        let sp = Span::new(6, 7); // 'e'
        assert_eq!(sp.line_col(src), (3, 1));
    }

    #[test]
    fn span_join() {
        assert_eq!(Span::new(3, 5).to(Span::new(1, 4)), Span::new(1, 5));
    }

    #[test]
    fn render_includes_position() {
        let e = SurfaceError::new(Span::new(0, 1), ErrorKind::Unbound("x".into()));
        assert_eq!(e.render("x"), "1:1: unbound identifier `x`");
    }
}
