//! Surface-language errors: lexing, parsing, and elaboration.

use std::error::Error;
use std::fmt;

use recmod_kernel::TypeError;

/// A half-open byte range into the source text.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Span {
    /// Byte offset of the first character.
    pub start: usize,
    /// Byte offset one past the last character.
    pub end: usize,
}

impl Span {
    /// Builds a span.
    pub fn new(start: usize, end: usize) -> Self {
        Span { start, end }
    }

    /// The smallest span covering both.
    pub fn to(self, other: Span) -> Span {
        Span {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
        }
    }

    /// 1-based line and column of the span start within `src`.
    pub fn line_col(&self, src: &str) -> (usize, usize) {
        let mut line = 1;
        let mut col = 1;
        for (i, ch) in src.char_indices() {
            if i >= self.start {
                break;
            }
            if ch == '\n' {
                line += 1;
                col = 1;
            } else {
                col += 1;
            }
        }
        (line, col)
    }
}

/// An error produced by the surface pipeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SurfaceError {
    /// Where in the source the error was detected.
    pub span: Span,
    /// What went wrong.
    pub kind: ErrorKind,
}

/// The category of a surface error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ErrorKind {
    /// An unexpected character during lexing.
    Lex(String),
    /// A parse error with an explanation of what was expected.
    Parse(String),
    /// A name was not in scope.
    Unbound(String),
    /// A name was in scope but denotes the wrong kind of entity.
    WrongEntity {
        /// The name used.
        name: String,
        /// What the context required (e.g. `"a structure"`).
        expected: &'static str,
    },
    /// A structure lacks a component required by a signature.
    MissingComponent {
        /// The component name.
        name: String,
    },
    /// Duplicate binding within one structure or signature body.
    Duplicate(String),
    /// A kernel type error, with the elaborator's phase description.
    Type(TypeError),
    /// A resource limit (depth, node budget, deadline) was hit. A
    /// resource verdict, not a judgement about the program.
    Limit(recmod_telemetry::LimitExceeded),
    /// Anything else.
    Other(String),
}

impl SurfaceError {
    /// Builds an error.
    pub fn new(span: Span, kind: ErrorKind) -> Self {
        SurfaceError { span, kind }
    }

    /// Builds an internal-invariant error: a compiler bug surfaced as a
    /// structured diagnostic instead of a panic.
    pub fn internal(span: Span, msg: impl Into<String>) -> Self {
        SurfaceError::new(span, ErrorKind::Type(TypeError::Internal(msg.into())))
    }

    /// Is this a resource-bound verdict (depth, nodes, fuel, deadline)
    /// rather than a judgement about the program?
    pub fn is_limit(&self) -> bool {
        match &self.kind {
            ErrorKind::Limit(_) => true,
            ErrorKind::Type(e) => e.is_limit(),
            _ => false,
        }
    }

    /// Is this an internal-invariant failure (a compiler bug)?
    pub fn is_internal(&self) -> bool {
        matches!(&self.kind, ErrorKind::Type(e) if e.is_internal())
    }

    /// Renders the error with line/column information from `src`.
    pub fn render(&self, src: &str) -> String {
        let (line, col) = self.span.line_col(src);
        format!("{line}:{col}: {self}")
    }
}

impl fmt::Display for SurfaceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.kind {
            ErrorKind::Lex(msg) => write!(f, "lexical error: {msg}"),
            ErrorKind::Parse(msg) => write!(f, "parse error: {msg}"),
            ErrorKind::Unbound(name) => write!(f, "unbound identifier `{name}`"),
            ErrorKind::WrongEntity { name, expected } => {
                write!(f, "`{name}` is not {expected}")
            }
            ErrorKind::MissingComponent { name } => {
                write!(
                    f,
                    "structure is missing component `{name}` required by its signature"
                )
            }
            ErrorKind::Duplicate(name) => write!(f, "duplicate binding `{name}`"),
            ErrorKind::Type(e) => write!(f, "type error: {e}"),
            ErrorKind::Limit(e) => write!(f, "{e}"),
            ErrorKind::Other(msg) => f.write_str(msg),
        }
    }
}

impl Error for SurfaceError {}

impl From<SurfaceError> for String {
    fn from(e: SurfaceError) -> String {
        e.to_string()
    }
}

/// Result type for the surface pipeline.
pub type SurfaceResult<T> = Result<T, SurfaceError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_col_computed() {
        let src = "ab\ncd\nef";
        let sp = Span::new(6, 7); // 'e'
        assert_eq!(sp.line_col(src), (3, 1));
    }

    #[test]
    fn span_join() {
        assert_eq!(Span::new(3, 5).to(Span::new(1, 4)), Span::new(1, 5));
    }

    #[test]
    fn render_includes_position() {
        let e = SurfaceError::new(Span::new(0, 1), ErrorKind::Unbound("x".into()));
        assert_eq!(e.render("x"), "1:1: unbound identifier `x`");
    }
}
