//! A recursive-descent parser for the external language.
//!
//! Grammar notes:
//!
//! * `->` is right-associative; `*` builds n-ary products; both follow
//!   SML precedence (`int * t -> t` parses as `(int * t) -> t`).
//! * Application binds tighter than binary operators.
//! * A `case` inside a branch of another `case` must be parenthesized
//!   (the usual SML dangling-bar caveat).
//! * A bare identifier pattern is parsed as a variable; the elaborator
//!   reinterprets it as a nullary constructor when the name is one.

use crate::ast::*;
use crate::error::{ErrorKind, Span, SurfaceError, SurfaceResult};
use crate::lexer::{lex, lex_recover};
use crate::token::{Spanned, Tok};
use recmod_telemetry::Limits;

/// Parses a whole program, stopping at the first error.
///
/// # Errors
///
/// Lexical and syntax errors, with source spans. For multi-error
/// reporting with recovery, use [`parse_with`].
pub fn parse(src: &str) -> SurfaceResult<Program> {
    parse_with(src, &Limits::default()).map_err(|mut errs| errs.remove(0))
}

/// Parses a whole program with error recovery under resource `limits`.
///
/// After a syntax error the parser synchronizes at the next top-level
/// declaration keyword (or `;`) and keeps going, so independent
/// mistakes are all reported in one run.
///
/// # Errors
///
/// Every diagnostic found, ordered by source position; the vector is
/// never empty on `Err`. A resource-limit error ([`ErrorKind::Limit`])
/// aborts recovery and is always the last entry.
pub fn parse_with(src: &str, limits: &Limits) -> Result<Program, Vec<SurfaceError>> {
    // The frame makes lex/parse errors carry non-empty provenance.
    let _j = recmod_telemetry::judgement_span("surface.parse");
    let (toks, mut errors) = recmod_telemetry::stage("stage.lex", || lex_recover(src, limits));
    let mut p = Parser {
        toks,
        pos: 0,
        limits: *limits,
        depth: 0,
    };
    let program = recmod_telemetry::stage("stage.parse", || p.program_recover(&mut errors));
    if errors.is_empty() {
        Ok(program)
    } else {
        errors.sort_by_key(|e| (e.span.start, e.span.end));
        Err(errors)
    }
}

/// Recovery gives up after this many parse errors: past that point the
/// diagnostics are almost certainly cascade noise.
const MAX_PARSE_ERRORS: usize = 100;

/// Parses a single expression (useful in tests and the REPL example).
pub fn parse_exp(src: &str) -> SurfaceResult<Exp> {
    let toks = lex(src)?;
    let mut p = Parser {
        toks,
        pos: 0,
        limits: Limits::default(),
        depth: 0,
    };
    let e = p.exp()?;
    p.expect(Tok::Eof)?;
    Ok(e)
}

struct Parser {
    toks: Vec<Spanned>,
    pos: usize,
    limits: Limits,
    depth: usize,
}

impl Parser {
    fn peek(&self) -> &Tok {
        &self.toks[self.pos].tok
    }

    /// Runs `f` one structural level deeper, failing with a depth
    /// diagnostic once `limits.max_depth` levels are live. Every
    /// recursive production routes through this, so arbitrarily nested
    /// input yields [`ErrorKind::Limit`] instead of a stack overflow.
    fn with_depth<T>(&mut self, f: impl FnOnce(&mut Self) -> SurfaceResult<T>) -> SurfaceResult<T> {
        if self.depth >= self.limits.max_depth {
            return Err(SurfaceError::new(
                self.span(),
                ErrorKind::Limit(self.limits.depth_error("parse")),
            ));
        }
        self.depth += 1;
        let r = f(self);
        self.depth -= 1;
        r
    }

    fn peek2(&self) -> &Tok {
        &self.toks[(self.pos + 1).min(self.toks.len() - 1)].tok
    }

    fn span(&self) -> Span {
        self.toks[self.pos].span
    }

    fn bump(&mut self) -> Spanned {
        let t = self.toks[self.pos].clone();
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, t: Tok) -> bool {
        if *self.peek() == t {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, t: Tok) -> SurfaceResult<Span> {
        if *self.peek() == t {
            Ok(self.bump().span)
        } else {
            Err(self.err(format!("expected `{t}`, found `{}`", self.peek())))
        }
    }

    fn err(&self, msg: String) -> SurfaceError {
        SurfaceError::new(self.span(), ErrorKind::Parse(msg))
    }

    fn ident(&mut self) -> SurfaceResult<(String, Span)> {
        match self.peek().clone() {
            Tok::Ident(name) => {
                let sp = self.bump().span;
                Ok((name, sp))
            }
            other => Err(self.err(format!("expected an identifier, found `{other}`"))),
        }
    }

    fn path(&mut self) -> SurfaceResult<Path> {
        let (first, sp0) = self.ident()?;
        let mut parts = vec![first];
        let mut sp = sp0;
        while *self.peek() == Tok::Dot {
            self.bump();
            let (next, spn) = self.ident()?;
            parts.push(next);
            sp = sp.to(spn);
        }
        Ok(Path { parts, span: sp })
    }

    // ----- programs ---------------------------------------------------

    /// Parses every top-level declaration, recording errors and
    /// synchronizing at declaration keywords instead of stopping. The
    /// returned program holds whatever parsed cleanly; callers must
    /// treat it as partial whenever `errors` is non-empty.
    fn program_recover(&mut self, errors: &mut Vec<SurfaceError>) -> Program {
        let mut decls = Vec::new();
        let mut main = None;
        loop {
            while self.eat(Tok::Semi) {}
            if self.limits.deadline_passed() {
                errors.push(SurfaceError::new(
                    self.span(),
                    ErrorKind::Limit(self.limits.deadline_error("parse")),
                ));
                break;
            }
            match self.peek() {
                Tok::Signature | Tok::Structure | Tok::Functor | Tok::Val | Tok::Fun => {
                    let before = self.pos;
                    match self.topdec() {
                        Ok(d) => decls.push(d),
                        Err(e) => {
                            let stop = e.is_limit();
                            errors.push(e);
                            if stop || errors.len() >= MAX_PARSE_ERRORS {
                                break;
                            }
                            self.synchronize(before);
                        }
                    }
                }
                Tok::Eof => break,
                _ => {
                    let before = self.pos;
                    let parsed = self.exp().and_then(|e| {
                        self.expect(Tok::Eof)?;
                        Ok(e)
                    });
                    match parsed {
                        Ok(e) => {
                            main = Some(e);
                            break;
                        }
                        Err(e) => {
                            let stop = e.is_limit();
                            errors.push(e);
                            if stop || errors.len() >= MAX_PARSE_ERRORS {
                                break;
                            }
                            self.synchronize(before);
                            if *self.peek() == Tok::Eof {
                                break;
                            }
                        }
                    }
                }
            }
        }
        Program { decls, main }
    }

    /// Skips forward to the next plausible declaration start (a
    /// declaration keyword, a `;`, or end of input), consuming at least
    /// one token beyond `before` so recovery always makes progress.
    fn synchronize(&mut self, before: usize) {
        if self.pos == before {
            self.bump();
        }
        loop {
            match self.peek() {
                Tok::Signature | Tok::Structure | Tok::Functor | Tok::Val | Tok::Fun | Tok::Eof => {
                    return
                }
                Tok::Semi => {
                    self.bump();
                    return;
                }
                _ => {
                    self.bump();
                }
            }
        }
    }

    fn topdec(&mut self) -> SurfaceResult<TopDec> {
        match self.peek() {
            Tok::Signature => {
                let sp = self.bump().span;
                let (name, _) = self.ident()?;
                self.expect(Tok::Eq)?;
                let sig = self.sigexp()?;
                Ok(TopDec::Signature {
                    name,
                    span: sp.to(sig.span()),
                    sig,
                })
            }
            Tok::Structure => {
                let sp = self.bump().span;
                let rec_ = self.eat(Tok::Rec);
                let mut binds = vec![self.strbind()?];
                while self.eat(Tok::And) {
                    binds.push(self.strbind()?);
                }
                let end = binds.last().map(|b| b.span).unwrap_or(sp);
                Ok(TopDec::Structure {
                    rec_,
                    binds,
                    span: sp.to(end),
                })
            }
            Tok::Functor => {
                let sp = self.bump().span;
                let (name, _) = self.ident()?;
                self.expect(Tok::LParen)?;
                self.expect(Tok::Structure)?;
                let param_rec = self.eat(Tok::Rec);
                let (param, _) = self.ident()?;
                self.expect(Tok::Colon)?;
                let param_sig = self.sigexp()?;
                self.expect(Tok::RParen)?;
                self.expect(Tok::Eq)?;
                let body = self.strexp()?;
                Ok(TopDec::Functor {
                    name,
                    param,
                    param_rec,
                    param_sig,
                    span: sp.to(body.span()),
                    body,
                })
            }
            Tok::Val => {
                let sp = self.bump().span;
                let (name, _) = self.ident()?;
                let ann = if self.eat(Tok::Colon) {
                    Some(self.tyexp()?)
                } else {
                    None
                };
                self.expect(Tok::Eq)?;
                let exp = self.exp()?;
                Ok(TopDec::Val {
                    name,
                    ann,
                    span: sp.to(exp.span()),
                    exp,
                })
            }
            Tok::Fun => {
                let (name, param, param_ty, ret_ty, body, span) = self.fun_tail()?;
                Ok(TopDec::Fun {
                    name,
                    param,
                    param_ty,
                    ret_ty,
                    body,
                    span,
                })
            }
            other => Err(self.err(format!("expected a declaration, found `{other}`"))),
        }
    }

    /// `fun f (x : ty) : ty' = e`, with the `fun` keyword still pending.
    #[allow(clippy::type_complexity)]
    fn fun_tail(&mut self) -> SurfaceResult<(String, String, TyExp, TyExp, Exp, Span)> {
        let sp = self.expect(Tok::Fun)?;
        let (name, _) = self.ident()?;
        self.expect(Tok::LParen)?;
        let (param, _) = self.ident()?;
        self.expect(Tok::Colon)?;
        let param_ty = self.tyexp()?;
        self.expect(Tok::RParen)?;
        self.expect(Tok::Colon)?;
        let ret_ty = self.tyexp()?;
        self.expect(Tok::Eq)?;
        let body = self.exp()?;
        let span = sp.to(body.span());
        Ok((name, param, param_ty, ret_ty, body, span))
    }

    fn strbind(&mut self) -> SurfaceResult<StrBind> {
        let (name, sp) = self.ident()?;
        let ann = if self.eat(Tok::Colon) {
            Some((self.sigexp()?, false))
        } else if self.eat(Tok::Seal) {
            Some((self.sigexp()?, true))
        } else {
            None
        };
        self.expect(Tok::Eq)?;
        let body = self.strexp()?;
        Ok(StrBind {
            name,
            ann,
            span: sp.to(body.span()),
            body,
        })
    }

    // ----- structures ---------------------------------------------------

    fn strexp(&mut self) -> SurfaceResult<StrExp> {
        self.with_depth(Self::strexp_inner)
    }

    fn strexp_inner(&mut self) -> SurfaceResult<StrExp> {
        let mut base = self.strexp_base()?;
        loop {
            if self.eat(Tok::Colon) {
                let sig = self.sigexp()?;
                let span = base.span().to(sig.span());
                base = StrExp::Ascribe {
                    body: Box::new(base),
                    sig,
                    opaque: false,
                    span,
                };
            } else if self.eat(Tok::Seal) {
                let sig = self.sigexp()?;
                let span = base.span().to(sig.span());
                base = StrExp::Ascribe {
                    body: Box::new(base),
                    sig,
                    opaque: true,
                    span,
                };
            } else {
                return Ok(base);
            }
        }
    }

    fn strexp_base(&mut self) -> SurfaceResult<StrExp> {
        match self.peek().clone() {
            Tok::Struct => {
                let sp = self.bump().span;
                let mut decs = Vec::new();
                while *self.peek() != Tok::End {
                    decs.push(self.dec()?);
                }
                let end = self.expect(Tok::End)?;
                Ok(StrExp::Body(decs, sp.to(end)))
            }
            Tok::Ident(_) => {
                // Either a path or a functor application `F (...)`.
                if matches!(self.peek2(), Tok::LParen) {
                    let (functor, sp) = self.ident()?;
                    self.expect(Tok::LParen)?;
                    // Optional `structure X =` prefix inside the argument.
                    let arg = if *self.peek() == Tok::Structure {
                        self.bump();
                        let _ = self.ident()?; // the keyword name is positional
                        self.expect(Tok::Eq)?;
                        self.strexp()?
                    } else {
                        self.strexp()?
                    };
                    let end = self.expect(Tok::RParen)?;
                    Ok(StrExp::App {
                        functor,
                        arg: Box::new(arg),
                        span: sp.to(end),
                    })
                } else {
                    Ok(StrExp::Path(self.path()?))
                }
            }
            other => Err(self.err(format!("expected a structure expression, found `{other}`"))),
        }
    }

    // ----- signatures ----------------------------------------------------

    fn sigexp(&mut self) -> SurfaceResult<SigExp> {
        self.with_depth(Self::sigexp_inner)
    }

    fn sigexp_inner(&mut self) -> SurfaceResult<SigExp> {
        let mut base = match self.peek().clone() {
            Tok::Sig => {
                let sp = self.bump().span;
                let mut specs = Vec::new();
                while *self.peek() != Tok::End {
                    specs.push(self.spec()?);
                }
                let end = self.expect(Tok::End)?;
                SigExp::Body(specs, sp.to(end))
            }
            Tok::Ident(name) => {
                let sp = self.bump().span;
                SigExp::Name(name, sp)
            }
            other => {
                return Err(self.err(format!("expected a signature, found `{other}`")));
            }
        };
        while *self.peek() == Tok::Where {
            self.bump();
            self.expect(Tok::Type)?;
            let path = self.path()?;
            self.expect(Tok::Eq)?;
            let def = self.tyexp()?;
            let span = base.span().to(def.span());
            base = SigExp::WhereType {
                base: Box::new(base),
                path,
                def,
                span,
            };
        }
        Ok(base)
    }

    fn spec(&mut self) -> SurfaceResult<Spec> {
        match self.peek() {
            Tok::Type => {
                let sp = self.bump().span;
                let (name, nsp) = self.ident()?;
                if self.eat(Tok::Eq) {
                    let def = self.tyexp()?;
                    Ok(Spec::Type {
                        name,
                        span: sp.to(def.span()),
                        def: Some(def),
                    })
                } else {
                    Ok(Spec::Type {
                        name,
                        def: None,
                        span: sp.to(nsp),
                    })
                }
            }
            Tok::Datatype => {
                let (name, ctors, span) = self.datatype_tail()?;
                Ok(Spec::Datatype { name, ctors, span })
            }
            Tok::Val => {
                let sp = self.bump().span;
                let (name, _) = self.ident()?;
                self.expect(Tok::Colon)?;
                let ty = self.tyexp()?;
                Ok(Spec::Val {
                    name,
                    span: sp.to(ty.span()),
                    ty,
                })
            }
            Tok::Structure => {
                let sp = self.bump().span;
                let (name, _) = self.ident()?;
                self.expect(Tok::Colon)?;
                let sig = self.sigexp()?;
                Ok(Spec::Structure {
                    name,
                    span: sp.to(sig.span()),
                    sig,
                })
            }
            other => Err(self.err(format!("expected a specification, found `{other}`"))),
        }
    }

    fn datatype_tail(&mut self) -> SurfaceResult<(String, Vec<CtorDecl>, Span)> {
        let sp = self.expect(Tok::Datatype)?;
        let (name, _) = self.ident()?;
        self.expect(Tok::Eq)?;
        let mut ctors = Vec::new();
        loop {
            let (cname, csp) = self.ident()?;
            let arg = if self.eat(Tok::Of) {
                Some(self.tyexp()?)
            } else {
                None
            };
            let cspan = arg.as_ref().map(|t| csp.to(t.span())).unwrap_or(csp);
            ctors.push(CtorDecl {
                name: cname,
                arg,
                span: cspan,
            });
            if !self.eat(Tok::Bar) {
                break;
            }
        }
        let end = ctors.last().map(|c| c.span).unwrap_or(sp);
        Ok((name, ctors, sp.to(end)))
    }

    // ----- declarations -----------------------------------------------------

    fn dec(&mut self) -> SurfaceResult<Dec> {
        self.with_depth(Self::dec_inner)
    }

    fn dec_inner(&mut self) -> SurfaceResult<Dec> {
        match self.peek() {
            Tok::Type => {
                let sp = self.bump().span;
                let (name, _) = self.ident()?;
                self.expect(Tok::Eq)?;
                let def = self.tyexp()?;
                Ok(Dec::Type {
                    name,
                    span: sp.to(def.span()),
                    def,
                })
            }
            Tok::Datatype => {
                let (name, ctors, span) = self.datatype_tail()?;
                Ok(Dec::Datatype { name, ctors, span })
            }
            Tok::Val => {
                let sp = self.bump().span;
                let (name, _) = self.ident()?;
                let ann = if self.eat(Tok::Colon) {
                    Some(self.tyexp()?)
                } else {
                    None
                };
                self.expect(Tok::Eq)?;
                let exp = self.exp()?;
                Ok(Dec::Val {
                    name,
                    ann,
                    span: sp.to(exp.span()),
                    exp,
                })
            }
            Tok::Fun => {
                let (name, param, param_ty, ret_ty, body, span) = self.fun_tail()?;
                Ok(Dec::Fun {
                    name,
                    param,
                    param_ty,
                    ret_ty,
                    body,
                    span,
                })
            }
            Tok::Structure => {
                let sp = self.bump().span;
                let mut bind = self.strbind()?;
                bind.span = sp.to(bind.span);
                Ok(Dec::Structure(bind))
            }
            other => Err(self.err(format!("expected a declaration, found `{other}`"))),
        }
    }

    // ----- types -------------------------------------------------------------

    fn tyexp(&mut self) -> SurfaceResult<TyExp> {
        self.with_depth(Self::tyexp_inner)
    }

    fn tyexp_inner(&mut self) -> SurfaceResult<TyExp> {
        let lhs = self.ty_prod()?;
        if self.eat(Tok::Arrow) {
            let rhs = self.tyexp()?;
            let span = lhs.span().to(rhs.span());
            Ok(TyExp::Arrow(Box::new(lhs), Box::new(rhs), span))
        } else {
            Ok(lhs)
        }
    }

    fn ty_prod(&mut self) -> SurfaceResult<TyExp> {
        let first = self.ty_atom()?;
        if *self.peek() != Tok::Star {
            return Ok(first);
        }
        let mut parts = vec![first];
        while self.eat(Tok::Star) {
            parts.push(self.ty_atom()?);
        }
        let span = parts
            .first()
            .map(|t| t.span())
            .unwrap_or_default()
            .to(parts.last().map(|t| t.span()).unwrap_or_default());
        Ok(TyExp::Prod(parts, span))
    }

    fn ty_atom(&mut self) -> SurfaceResult<TyExp> {
        match self.peek().clone() {
            Tok::Ident(name) if name == "int" => {
                let sp = self.bump().span;
                Ok(TyExp::Int(sp))
            }
            Tok::Ident(name) if name == "bool" => {
                let sp = self.bump().span;
                Ok(TyExp::Bool(sp))
            }
            Tok::Ident(name) if name == "unit" => {
                let sp = self.bump().span;
                Ok(TyExp::Unit(sp))
            }
            Tok::Ident(_) => Ok(TyExp::Path(self.path()?)),
            Tok::LParen => {
                self.bump();
                let t = self.tyexp()?;
                self.expect(Tok::RParen)?;
                Ok(t)
            }
            other => Err(self.err(format!("expected a type, found `{other}`"))),
        }
    }

    // ----- patterns -------------------------------------------------------------

    fn pat(&mut self) -> SurfaceResult<Pat> {
        self.with_depth(Self::pat_inner)
    }

    fn pat_inner(&mut self) -> SurfaceResult<Pat> {
        match self.peek().clone() {
            Tok::Ident(_) => {
                let path = self.path()?;
                // `C atpat` is a constructor application pattern.
                match self.peek() {
                    Tok::Ident(_) | Tok::LParen | Tok::Wild => {
                        let arg = self.atpat()?;
                        let span = path.span.to(arg.span());
                        Ok(Pat::Con(path, Some(Box::new(arg)), span))
                    }
                    _ => {
                        if path.parts.len() > 1 {
                            let span = path.span;
                            Ok(Pat::Con(path, None, span))
                        } else {
                            let span = path.span;
                            match path.parts.into_iter().next() {
                                Some(name) => Ok(Pat::Var(name, span)),
                                None => Err(self.err("expected a pattern".to_string())),
                            }
                        }
                    }
                }
            }
            _ => self.atpat(),
        }
    }

    fn atpat(&mut self) -> SurfaceResult<Pat> {
        match self.peek().clone() {
            Tok::Wild => {
                let sp = self.bump().span;
                Ok(Pat::Wild(sp))
            }
            Tok::Ident(_) => {
                let path = self.path()?;
                let span = path.span;
                if path.parts.len() > 1 {
                    Ok(Pat::Con(path, None, span))
                } else {
                    match path.parts.into_iter().next() {
                        Some(name) => Ok(Pat::Var(name, span)),
                        None => Err(self.err("expected a pattern".to_string())),
                    }
                }
            }
            Tok::LParen => {
                let sp = self.bump().span;
                let mut parts = vec![self.pat()?];
                while self.eat(Tok::Comma) {
                    parts.push(self.pat()?);
                }
                let end = self.expect(Tok::RParen)?;
                match parts.pop() {
                    Some(only) if parts.is_empty() => Ok(only),
                    Some(last) => {
                        parts.push(last);
                        Ok(Pat::Tuple(parts, sp.to(end)))
                    }
                    None => Err(self.err("expected a pattern".to_string())),
                }
            }
            other => Err(self.err(format!("expected a pattern, found `{other}`"))),
        }
    }

    // ----- expressions ------------------------------------------------------------

    fn exp(&mut self) -> SurfaceResult<Exp> {
        self.with_depth(Self::exp_inner)
    }

    fn exp_inner(&mut self) -> SurfaceResult<Exp> {
        match self.peek() {
            Tok::Fn => {
                let sp = self.bump().span;
                self.expect(Tok::LParen)?;
                let (x, _) = self.ident()?;
                self.expect(Tok::Colon)?;
                let ty = self.tyexp()?;
                self.expect(Tok::RParen)?;
                self.expect(Tok::DArrow)?;
                let body = self.exp()?;
                let span = sp.to(body.span());
                Ok(Exp::Fn(x, ty, Box::new(body), span))
            }
            Tok::If => {
                let sp = self.bump().span;
                let c = self.exp()?;
                self.expect(Tok::Then)?;
                let t = self.exp()?;
                self.expect(Tok::Else)?;
                let f = self.exp()?;
                let span = sp.to(f.span());
                Ok(Exp::If(Box::new(c), Box::new(t), Box::new(f), span))
            }
            Tok::Case => {
                let sp = self.bump().span;
                let scrut = self.exp()?;
                self.expect(Tok::Of)?;
                let mut arms = Vec::new();
                loop {
                    let pat = self.pat()?;
                    self.expect(Tok::DArrow)?;
                    let body = self.exp()?;
                    arms.push((pat, body));
                    if !self.eat(Tok::Bar) {
                        break;
                    }
                }
                let end = arms.last().map(|(_, e)| e.span()).unwrap_or(sp);
                Ok(Exp::Case(Box::new(scrut), arms, sp.to(end)))
            }
            Tok::Let => {
                let sp = self.bump().span;
                let mut decs = Vec::new();
                while *self.peek() != Tok::In {
                    decs.push(self.dec()?);
                }
                self.expect(Tok::In)?;
                let body = self.exp()?;
                let end = self.expect(Tok::End)?;
                Ok(Exp::Let(decs, Box::new(body), sp.to(end)))
            }
            Tok::Raise => {
                let sp = self.bump().span;
                // Accept `raise Fail` (any identifier is allowed as the
                // exception name; only Fail exists).
                let (_, esp) = self.ident()?;
                Ok(Exp::Raise(sp.to(esp)))
            }
            _ => self.cmp_exp(),
        }
    }

    fn cmp_exp(&mut self) -> SurfaceResult<Exp> {
        let lhs = self.add_exp()?;
        let op = match self.peek() {
            Tok::Eq => Some(BinOp::Eq),
            Tok::Lt => Some(BinOp::Lt),
            _ => None,
        };
        if let Some(op) = op {
            self.bump();
            let rhs = self.add_exp()?;
            let span = lhs.span().to(rhs.span());
            Ok(Exp::Bin(op, Box::new(lhs), Box::new(rhs), span))
        } else {
            Ok(lhs)
        }
    }

    fn add_exp(&mut self) -> SurfaceResult<Exp> {
        let mut lhs = self.mul_exp()?;
        loop {
            let op = match self.peek() {
                Tok::Plus => BinOp::Add,
                Tok::Minus => BinOp::Sub,
                _ => return Ok(lhs),
            };
            self.bump();
            let rhs = self.mul_exp()?;
            let span = lhs.span().to(rhs.span());
            lhs = Exp::Bin(op, Box::new(lhs), Box::new(rhs), span);
        }
    }

    fn mul_exp(&mut self) -> SurfaceResult<Exp> {
        let mut lhs = self.app_exp()?;
        while *self.peek() == Tok::Star {
            self.bump();
            let rhs = self.app_exp()?;
            let span = lhs.span().to(rhs.span());
            lhs = Exp::Bin(BinOp::Mul, Box::new(lhs), Box::new(rhs), span);
        }
        Ok(lhs)
    }

    fn app_exp(&mut self) -> SurfaceResult<Exp> {
        let mut head = self.at_exp()?;
        loop {
            match self.peek() {
                Tok::Int(_) | Tok::True | Tok::False | Tok::Ident(_) | Tok::LParen => {
                    let arg = self.at_exp()?;
                    head = Exp::App(Box::new(head), Box::new(arg));
                }
                _ => return Ok(head),
            }
        }
    }

    fn at_exp(&mut self) -> SurfaceResult<Exp> {
        match self.peek().clone() {
            Tok::Int(n) => {
                let sp = self.bump().span;
                Ok(Exp::Int(n, sp))
            }
            Tok::True => {
                let sp = self.bump().span;
                Ok(Exp::Bool(true, sp))
            }
            Tok::False => {
                let sp = self.bump().span;
                Ok(Exp::Bool(false, sp))
            }
            Tok::Ident(_) => Ok(Exp::Path(self.path()?)),
            Tok::LParen => {
                let sp = self.bump().span;
                if *self.peek() == Tok::RParen {
                    let end = self.bump().span;
                    return Ok(Exp::Unit(sp.to(end)));
                }
                let first = self.exp()?;
                if self.eat(Tok::Colon) {
                    let ty = self.tyexp()?;
                    let end = self.expect(Tok::RParen)?;
                    return Ok(Exp::Annot(Box::new(first), ty, sp.to(end)));
                }
                let mut parts = vec![first];
                while self.eat(Tok::Comma) {
                    parts.push(self.exp()?);
                }
                let end = self.expect(Tok::RParen)?;
                match parts.pop() {
                    Some(only) if parts.is_empty() => Ok(only),
                    Some(last) => {
                        parts.push(last);
                        Ok(Exp::Tuple(parts, sp.to(end)))
                    }
                    None => Err(self.err("expected an expression".to_string())),
                }
            }
            other => Err(self.err(format!("expected an expression, found `{other}`"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_arithmetic_with_precedence() {
        let e = parse_exp("1 + 2 * 3").unwrap();
        let Exp::Bin(BinOp::Add, _, rhs, _) = e else {
            panic!("{e:?}")
        };
        assert!(matches!(*rhs, Exp::Bin(BinOp::Mul, _, _, _)));
    }

    #[test]
    fn application_binds_tighter_than_operators() {
        let e = parse_exp("f 1 + g 2").unwrap();
        let Exp::Bin(BinOp::Add, lhs, _, _) = e else {
            panic!("{e:?}")
        };
        assert!(matches!(*lhs, Exp::App(_, _)));
    }

    #[test]
    fn arrow_is_right_associative_and_looser_than_star() {
        let src = "signature S = sig val f : int * int -> int -> bool end";
        let p = parse(src).unwrap();
        let TopDec::Signature {
            sig: SigExp::Body(specs, _),
            ..
        } = &p.decls[0]
        else {
            panic!()
        };
        let Spec::Val {
            ty: TyExp::Arrow(dom, cod, _),
            ..
        } = &specs[0]
        else {
            panic!()
        };
        assert!(matches!(**dom, TyExp::Prod(_, _)));
        assert!(matches!(**cod, TyExp::Arrow(_, _, _)));
    }

    #[test]
    fn parses_the_list_signature() {
        let src = "
            signature LIST = sig
              type t
              val nil : t
              val null : t -> bool
              val cons : int * t -> t
              val uncons : t -> int * t
            end";
        let p = parse(src).unwrap();
        let TopDec::Signature {
            name,
            sig: SigExp::Body(specs, _),
            ..
        } = &p.decls[0]
        else {
            panic!()
        };
        assert_eq!(name, "LIST");
        assert_eq!(specs.len(), 5);
        assert!(matches!(specs[0], Spec::Type { def: None, .. }));
    }

    #[test]
    fn parses_recursive_structure_with_datatype() {
        let src = "
            structure rec List : sig
              datatype t = NIL | CONS of int * List.t
              val cons : int * t -> t
            end = struct
              datatype t = NIL | CONS of int * List.t
              fun cons (p : int * t) : t = CONS p
            end";
        let p = parse(src).unwrap();
        let TopDec::Structure { rec_, binds, .. } = &p.decls[0] else {
            panic!()
        };
        assert!(rec_);
        assert_eq!(binds[0].name, "List");
        let Some((SigExp::Body(specs, _), false)) = &binds[0].ann else {
            panic!()
        };
        let Spec::Datatype { ctors, .. } = &specs[0] else {
            panic!()
        };
        assert_eq!(ctors.len(), 2);
        assert_eq!(ctors[1].name, "CONS");
    }

    #[test]
    fn parses_mutual_rec_with_where_type() {
        let src = "
            structure rec Expr :> EXPR where type dec = Decl.dec = struct end
            and Decl :> DECL where type exp = Expr.exp = struct end";
        let p = parse(src).unwrap();
        let TopDec::Structure { rec_, binds, .. } = &p.decls[0] else {
            panic!()
        };
        assert!(rec_);
        assert_eq!(binds.len(), 2);
        let Some((SigExp::WhereType { path, .. }, true)) = &binds[0].ann else {
            panic!()
        };
        assert_eq!(path.dotted(), "dec");
    }

    #[test]
    fn parses_functor_with_rds_parameter() {
        let src = "
            functor BuildList (structure rec List : sig datatype t = NIL | CONS of int * List.t end) =
              struct end
            structure L = BuildList (structure List = L0)";
        let p = parse(src).unwrap();
        let TopDec::Functor {
            name, param_rec, ..
        } = &p.decls[0]
        else {
            panic!()
        };
        assert_eq!(name, "BuildList");
        assert!(param_rec);
        let TopDec::Structure { binds, .. } = &p.decls[1] else {
            panic!()
        };
        assert!(matches!(binds[0].body, StrExp::App { .. }));
    }

    #[test]
    fn parses_case_with_constructor_patterns() {
        let e = parse_exp("case l of NIL => 0 | CONS (n, rest) => n").unwrap();
        let Exp::Case(_, arms, _) = e else { panic!() };
        assert_eq!(arms.len(), 2);
        assert!(matches!(&arms[0].0, Pat::Var(n, _) if n == "NIL"));
        let Pat::Con(p, Some(arg), _) = &arms[1].0 else {
            panic!()
        };
        assert_eq!(p.dotted(), "CONS");
        assert!(matches!(**arg, Pat::Tuple(_, _)));
    }

    #[test]
    fn parses_let_and_raise() {
        let e = parse_exp("let val x = 1 in x + 1 end").unwrap();
        assert!(matches!(e, Exp::Let(_, _, _)));
        let e = parse_exp("raise Fail").unwrap();
        assert!(matches!(e, Exp::Raise(_)));
    }

    #[test]
    fn parses_main_expression() {
        // A `;` separates a declaration from the main expression (plain
        // juxtaposition would parse as an application).
        let p = parse("val x = 1; x + 1").unwrap();
        assert_eq!(p.decls.len(), 1);
        assert!(p.main.is_some());
        // After `end` no separator is needed.
        let p = parse("structure S = struct val x = 1 end S.x + 1").unwrap();
        assert_eq!(p.decls.len(), 1);
        assert!(p.main.is_some());
    }

    #[test]
    fn parses_sealed_structure() {
        let src = "structure S :> sig type t val x : t end = struct type t = int val x = 3 end";
        let p = parse(src).unwrap();
        let TopDec::Structure { binds, .. } = &p.decls[0] else {
            panic!()
        };
        assert!(matches!(&binds[0].ann, Some((_, true))));
    }

    #[test]
    fn error_on_garbage() {
        assert!(parse("structure = 3").is_err());
        assert!(parse_exp("1 +").is_err());
    }

    #[test]
    fn annotated_expression() {
        let e = parse_exp("(x : int)").unwrap();
        assert!(matches!(e, Exp::Annot(_, _, _)));
    }
}
