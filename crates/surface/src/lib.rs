//! # recmod-surface
//!
//! The external language of the reproduction of Crary, Harper, and
//! Puri's *"What is a Recursive Module?"* (PLDI 1999): an SML-like
//! notation with `structure rec`, recursively-dependent signatures,
//! `where type`, functors (including rds parameters, §4's `BuildList`),
//! and structurally-interpreted datatypes — elaborated into the
//! phase-distinction internal language checked by `recmod-kernel`.
//!
//! # Example
//!
//! ```
//! use recmod_surface::compile;
//!
//! let program = "
//!     structure rec Nat : sig
//!       datatype t = Z | S of Nat.t
//!       val toInt : t -> int
//!     end = struct
//!       datatype t = Z | S of Nat.t
//!       fun toInt (n : t) : int =
//!         case n of Z => 0 | S m => 1 + Nat.toInt m
//!     end
//!     Nat.toInt (Nat.S (Nat.S Nat.Z))
//! ";
//! let compiled = compile(program).map_err(|e| e.render(program)).unwrap();
//! let linked = compiled.program();
//! let v = recmod_eval::Interp::new().run(&linked).unwrap();
//! assert_eq!(v.as_int().unwrap(), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ast;
pub mod diag;
pub mod elab;
mod elab_exp;
mod elab_sig;
mod elab_str;
pub mod env;
pub mod error;
pub mod extrude;
pub mod lexer;
pub mod link;
pub mod parser;
pub mod pipeline;
pub mod shape;
pub mod token;

pub use diag::Diagnostic;
pub use elab::Elaborator;
pub use error::{ErrorKind, Provenance, Span, SurfaceError, SurfaceResult};
pub use parser::{parse, parse_exp, parse_with};
pub use pipeline::{compile, compile_with, compile_with_limits, Compiled};
pub use recmod_telemetry::{LimitExceeded, LimitKind, Limits};
