//! The abstract syntax of the external language — an SML-like notation
//! closely following the paper's examples (§2 "we will conduct our
//! examples using an informal external language closely modeled after
//! the syntax of Standard ML").

use crate::error::Span;

/// A (possibly qualified) name `X.Y.t`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Path {
    /// The name parts, outermost first.
    pub parts: Vec<String>,
    /// Source location.
    pub span: Span,
}

impl Path {
    /// A single-part path.
    pub fn simple(name: impl Into<String>, span: Span) -> Self {
        Path {
            parts: vec![name.into()],
            span,
        }
    }

    /// Renders as dotted text.
    pub fn dotted(&self) -> String {
        self.parts.join(".")
    }
}

/// Surface types.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TyExp {
    /// `int`
    Int(Span),
    /// `bool`
    Bool(Span),
    /// `unit`
    Unit(Span),
    /// `t` or `X.t`
    Path(Path),
    /// `t₁ * t₂ * …` (n-ary, right-nested internally)
    Prod(Vec<TyExp>, Span),
    /// `t₁ -> t₂` (the partial arrow)
    Arrow(Box<TyExp>, Box<TyExp>, Span),
}

impl TyExp {
    /// The source span.
    pub fn span(&self) -> Span {
        match self {
            TyExp::Int(s)
            | TyExp::Bool(s)
            | TyExp::Unit(s)
            | TyExp::Prod(_, s)
            | TyExp::Arrow(_, _, s) => *s,
            TyExp::Path(p) => p.span,
        }
    }
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `=`
    Eq,
    /// `<`
    Lt,
}

/// Patterns (for `case` branches).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Pat {
    /// `_`
    Wild(Span),
    /// A variable.
    Var(String, Span),
    /// A datatype constructor, with optional argument pattern.
    Con(Path, Option<Box<Pat>>, Span),
    /// A tuple pattern.
    Tuple(Vec<Pat>, Span),
}

impl Pat {
    /// The source span.
    pub fn span(&self) -> Span {
        match self {
            Pat::Wild(s) | Pat::Var(_, s) | Pat::Con(_, _, s) | Pat::Tuple(_, s) => *s,
        }
    }
}

/// Expressions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Exp {
    /// Integer literal.
    Int(i64, Span),
    /// Boolean literal.
    Bool(bool, Span),
    /// `()`
    Unit(Span),
    /// A variable or constructor reference, possibly qualified.
    Path(Path),
    /// Application `e₁ e₂`.
    App(Box<Exp>, Box<Exp>),
    /// Binary operator.
    Bin(BinOp, Box<Exp>, Box<Exp>, Span),
    /// Tuple `(e₁, …, eₙ)` with n ≥ 2.
    Tuple(Vec<Exp>, Span),
    /// `fn (x : ty) => e`
    Fn(String, TyExp, Box<Exp>, Span),
    /// `if e₁ then e₂ else e₃`
    If(Box<Exp>, Box<Exp>, Box<Exp>, Span),
    /// `case e of p₁ => e₁ | …`
    Case(Box<Exp>, Vec<(Pat, Exp)>, Span),
    /// `let dec… in e end`
    Let(Vec<Dec>, Box<Exp>, Span),
    /// `raise Fail` — the paper's failure expression.
    Raise(Span),
    /// Type ascription `(e : ty)`.
    Annot(Box<Exp>, TyExp, Span),
}

impl Exp {
    /// The source span.
    pub fn span(&self) -> Span {
        match self {
            Exp::Int(_, s)
            | Exp::Bool(_, s)
            | Exp::Unit(s)
            | Exp::Bin(_, _, _, s)
            | Exp::Tuple(_, s)
            | Exp::Fn(_, _, _, s)
            | Exp::If(_, _, _, s)
            | Exp::Case(_, _, s)
            | Exp::Let(_, _, s)
            | Exp::Raise(s)
            | Exp::Annot(_, _, s) => *s,
            Exp::Path(p) => p.span,
            Exp::App(f, a) => f.span().to(a.span()),
        }
    }
}

/// One datatype constructor declaration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CtorDecl {
    /// The constructor name.
    pub name: String,
    /// The argument type, if any (`C of ty`).
    pub arg: Option<TyExp>,
    /// Source location.
    pub span: Span,
}

/// Declarations (in `struct … end` and `let … in`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Dec {
    /// `type t = ty`
    Type {
        /// The type name.
        name: String,
        /// Its definition.
        def: TyExp,
        /// Source location.
        span: Span,
    },
    /// `datatype t = C₁ of ty | C₂ | …`
    Datatype {
        /// The datatype name.
        name: String,
        /// Its constructors.
        ctors: Vec<CtorDecl>,
        /// Source location.
        span: Span,
    },
    /// `val x = e` / `val x : ty = e`
    Val {
        /// The value name.
        name: String,
        /// Optional ascription.
        ann: Option<TyExp>,
        /// The bound expression.
        exp: Exp,
        /// Source location.
        span: Span,
    },
    /// `fun f (x : ty) : ty' = e` — recursive.
    Fun {
        /// The function name.
        name: String,
        /// The parameter name.
        param: String,
        /// The parameter type.
        param_ty: TyExp,
        /// The result type.
        ret_ty: TyExp,
        /// The body.
        body: Exp,
        /// Source location.
        span: Span,
    },
    /// A nested structure binding.
    Structure(StrBind),
}

impl Dec {
    /// The source span.
    pub fn span(&self) -> Span {
        match self {
            Dec::Type { span, .. }
            | Dec::Datatype { span, .. }
            | Dec::Val { span, .. }
            | Dec::Fun { span, .. } => *span,
            Dec::Structure(b) => b.span,
        }
    }
}

/// Signature specifications.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Spec {
    /// `type t` (opaque) or `type t = ty` (transparent)
    Type {
        /// The type name.
        name: String,
        /// The definition, if transparent.
        def: Option<TyExp>,
        /// Source location.
        span: Span,
    },
    /// `datatype t = …` — interpreted *structurally* (transparently);
    /// see paper §4 on the structural interpretation inside rds's.
    Datatype {
        /// The datatype name.
        name: String,
        /// Its constructors.
        ctors: Vec<CtorDecl>,
        /// Source location.
        span: Span,
    },
    /// `val x : ty`
    Val {
        /// The value name.
        name: String,
        /// Its type.
        ty: TyExp,
        /// Source location.
        span: Span,
    },
    /// `structure X : SIG`
    Structure {
        /// The substructure name.
        name: String,
        /// Its signature.
        sig: SigExp,
        /// Source location.
        span: Span,
    },
}

impl Spec {
    /// The declared name.
    pub fn name(&self) -> &str {
        match self {
            Spec::Type { name, .. }
            | Spec::Datatype { name, .. }
            | Spec::Val { name, .. }
            | Spec::Structure { name, .. } => name,
        }
    }

    /// The source span.
    pub fn span(&self) -> Span {
        match self {
            Spec::Type { span, .. }
            | Spec::Datatype { span, .. }
            | Spec::Val { span, .. }
            | Spec::Structure { span, .. } => *span,
        }
    }
}

/// Signature expressions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SigExp {
    /// A named signature.
    Name(String, Span),
    /// `sig spec… end`
    Body(Vec<Spec>, Span),
    /// `SIG where type p = ty`
    WhereType {
        /// The refined signature.
        base: Box<SigExp>,
        /// The path of the type component to define.
        path: Path,
        /// The definition.
        def: TyExp,
        /// Source location.
        span: Span,
    },
}

impl SigExp {
    /// The source span.
    pub fn span(&self) -> Span {
        match self {
            SigExp::Name(_, s) | SigExp::Body(_, s) | SigExp::WhereType { span: s, .. } => *s,
        }
    }
}

/// Structure expressions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StrExp {
    /// A structure path.
    Path(Path),
    /// `struct dec… end`
    Body(Vec<Dec>, Span),
    /// Functor application `F (structure X = M)` or `F (M)`.
    App {
        /// The functor name.
        functor: String,
        /// The argument.
        arg: Box<StrExp>,
        /// Source location.
        span: Span,
    },
    /// `M : SIG` (transparent) / `M :> SIG` (opaque).
    Ascribe {
        /// The underlying structure.
        body: Box<StrExp>,
        /// The ascribed signature.
        sig: SigExp,
        /// `true` for `:>`.
        opaque: bool,
        /// Source location.
        span: Span,
    },
}

impl StrExp {
    /// The source span.
    pub fn span(&self) -> Span {
        match self {
            StrExp::Path(p) => p.span,
            StrExp::Body(_, s) | StrExp::App { span: s, .. } | StrExp::Ascribe { span: s, .. } => {
                *s
            }
        }
    }
}

/// One structure binding (possibly part of a `rec … and …` group).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StrBind {
    /// The structure name.
    pub name: String,
    /// Optional ascription `(sig, opaque)`.
    pub ann: Option<(SigExp, bool)>,
    /// The right-hand side.
    pub body: StrExp,
    /// Source location.
    pub span: Span,
}

/// Top-level declarations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TopDec {
    /// `signature SIG = sigexp`
    Signature {
        /// The signature name.
        name: String,
        /// The definition.
        sig: SigExp,
        /// Source location.
        span: Span,
    },
    /// `structure X … = M` or `structure rec X … = M and Y … = M'`.
    Structure {
        /// `true` for `structure rec`.
        rec_: bool,
        /// The bindings (singleton unless joined by `and`).
        binds: Vec<StrBind>,
        /// Source location.
        span: Span,
    },
    /// `functor F (structure [rec] X : SIG) = M`
    Functor {
        /// The functor name.
        name: String,
        /// The parameter name.
        param: String,
        /// `true` when the parameter signature is recursively dependent
        /// (`structure rec X : SIG` — paper §4's `BuildList`).
        param_rec: bool,
        /// The parameter signature.
        param_sig: SigExp,
        /// The body.
        body: StrExp,
        /// Source location.
        span: Span,
    },
    /// Top-level `val x = e`.
    Val {
        /// The value name.
        name: String,
        /// Optional ascription.
        ann: Option<TyExp>,
        /// The bound expression.
        exp: Exp,
        /// Source location.
        span: Span,
    },
    /// Top-level `fun f (x:ty) : ty' = e` (recursive).
    Fun {
        /// The function name.
        name: String,
        /// The parameter name.
        param: String,
        /// The parameter type.
        param_ty: TyExp,
        /// The result type.
        ret_ty: TyExp,
        /// The body.
        body: Exp,
        /// Source location.
        span: Span,
    },
}

impl TopDec {
    /// The source span.
    pub fn span(&self) -> Span {
        match self {
            TopDec::Signature { span, .. }
            | TopDec::Structure { span, .. }
            | TopDec::Functor { span, .. }
            | TopDec::Val { span, .. }
            | TopDec::Fun { span, .. } => *span,
        }
    }
}

/// A whole program: declarations plus an optional main expression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Program {
    /// The top-level declarations, in order.
    pub decls: Vec<TopDec>,
    /// The optional final expression (the program's result).
    pub main: Option<Exp>,
}
