//! The lexer.
//!
//! Comments are SML-style `(* … *)` and nest. Identifiers are
//! `[A-Za-z][A-Za-z0-9_']*`; keywords are reserved.

use crate::error::{ErrorKind, Span, SurfaceError, SurfaceResult};
use crate::token::{Spanned, Tok};
use recmod_telemetry::Limits;

/// Lexes the entire source into a token vector terminated by `Eof`.
///
/// # Errors
///
/// Reports unexpected characters and unterminated comments with their
/// source position. Stops at the first error; use [`lex_recover`] to
/// collect all of them.
pub fn lex(src: &str) -> SurfaceResult<Vec<Spanned>> {
    let (toks, mut errors) = lex_recover(src, &Limits::default());
    match errors.is_empty() {
        true => Ok(toks),
        false => Err(errors.remove(0)),
    }
}

/// Lexes with error recovery: bad characters are skipped and recorded,
/// and lexing continues, so one stray byte does not hide every later
/// diagnostic. The token vector is always `Eof`-terminated and always
/// usable by the parser.
///
/// The token count is bounded by `limits.max_nodes` and the scan by
/// `limits.deadline`; hitting either appends an [`ErrorKind::Limit`]
/// error and stops early.
pub fn lex_recover(src: &str, limits: &Limits) -> (Vec<Spanned>, Vec<SurfaceError>) {
    let bytes = src.as_bytes();
    let mut out = Vec::new();
    let mut errors: Vec<SurfaceError> = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        if out.len() as u64 >= limits.max_nodes {
            errors.push(SurfaceError::new(
                Span::new(i, src.len()),
                ErrorKind::Limit(limits.nodes_error("lex")),
            ));
            break;
        }
        // Amortize the clock read; spans of 4096 tokens lex in well
        // under a millisecond.
        if out.len() % 4096 == 4095 && limits.deadline_passed() {
            errors.push(SurfaceError::new(
                Span::new(i, src.len()),
                ErrorKind::Limit(limits.deadline_error("lex")),
            ));
            break;
        }
        let c = bytes[i] as char;
        let start = i;
        match c {
            ' ' | '\t' | '\r' | '\n' => {
                i += 1;
            }
            '(' if bytes.get(i + 1) == Some(&b'*') => {
                // Nested comment.
                let mut depth = 1;
                i += 2;
                while depth > 0 {
                    if i + 1 >= bytes.len() {
                        errors.push(SurfaceError::new(
                            Span::new(start, bytes.len()),
                            ErrorKind::Lex("unterminated comment".to_string()),
                        ));
                        i = bytes.len();
                        break;
                    }
                    if bytes[i] == b'(' && bytes[i + 1] == b'*' {
                        depth += 1;
                        i += 2;
                    } else if bytes[i] == b'*' && bytes[i + 1] == b')' {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
            }
            '(' => {
                out.push(Spanned {
                    tok: Tok::LParen,
                    span: Span::new(i, i + 1),
                });
                i += 1;
            }
            ')' => {
                out.push(Spanned {
                    tok: Tok::RParen,
                    span: Span::new(i, i + 1),
                });
                i += 1;
            }
            ',' => {
                out.push(Spanned {
                    tok: Tok::Comma,
                    span: Span::new(i, i + 1),
                });
                i += 1;
            }
            '.' => {
                out.push(Spanned {
                    tok: Tok::Dot,
                    span: Span::new(i, i + 1),
                });
                i += 1;
            }
            '|' => {
                out.push(Spanned {
                    tok: Tok::Bar,
                    span: Span::new(i, i + 1),
                });
                i += 1;
            }
            '_' => {
                out.push(Spanned {
                    tok: Tok::Wild,
                    span: Span::new(i, i + 1),
                });
                i += 1;
            }
            ';' => {
                out.push(Spanned {
                    tok: Tok::Semi,
                    span: Span::new(i, i + 1),
                });
                i += 1;
            }
            '*' => {
                out.push(Spanned {
                    tok: Tok::Star,
                    span: Span::new(i, i + 1),
                });
                i += 1;
            }
            '+' => {
                out.push(Spanned {
                    tok: Tok::Plus,
                    span: Span::new(i, i + 1),
                });
                i += 1;
            }
            '<' => {
                out.push(Spanned {
                    tok: Tok::Lt,
                    span: Span::new(i, i + 1),
                });
                i += 1;
            }
            '-' if bytes.get(i + 1) == Some(&b'>') => {
                out.push(Spanned {
                    tok: Tok::Arrow,
                    span: Span::new(i, i + 2),
                });
                i += 2;
            }
            '-' => {
                out.push(Spanned {
                    tok: Tok::Minus,
                    span: Span::new(i, i + 1),
                });
                i += 1;
            }
            '=' if bytes.get(i + 1) == Some(&b'>') => {
                out.push(Spanned {
                    tok: Tok::DArrow,
                    span: Span::new(i, i + 2),
                });
                i += 2;
            }
            '=' => {
                out.push(Spanned {
                    tok: Tok::Eq,
                    span: Span::new(i, i + 1),
                });
                i += 1;
            }
            ':' if bytes.get(i + 1) == Some(&b'>') => {
                out.push(Spanned {
                    tok: Tok::Seal,
                    span: Span::new(i, i + 2),
                });
                i += 2;
            }
            ':' => {
                out.push(Spanned {
                    tok: Tok::Colon,
                    span: Span::new(i, i + 1),
                });
                i += 1;
            }
            '0'..='9' => {
                let mut j = i;
                while j < bytes.len() && bytes[j].is_ascii_digit() {
                    j += 1;
                }
                let text = &src[i..j];
                match text.parse::<i64>() {
                    Ok(n) => out.push(Spanned {
                        tok: Tok::Int(n),
                        span: Span::new(i, j),
                    }),
                    Err(_) => errors.push(SurfaceError::new(
                        Span::new(i, j),
                        ErrorKind::Lex(format!("integer literal `{text}` out of range")),
                    )),
                }
                i = j;
            }
            'a'..='z' | 'A'..='Z' => {
                let mut j = i;
                while j < bytes.len()
                    && (bytes[j].is_ascii_alphanumeric() || bytes[j] == b'_' || bytes[j] == b'\'')
                {
                    j += 1;
                }
                let word = &src[i..j];
                let tok = match word {
                    "signature" => Tok::Signature,
                    "structure" => Tok::Structure,
                    "functor" => Tok::Functor,
                    "sig" => Tok::Sig,
                    "struct" => Tok::Struct,
                    "end" => Tok::End,
                    "val" => Tok::Val,
                    "fun" => Tok::Fun,
                    "type" => Tok::Type,
                    "datatype" => Tok::Datatype,
                    "of" => Tok::Of,
                    "rec" => Tok::Rec,
                    "and" => Tok::And,
                    "where" => Tok::Where,
                    "let" => Tok::Let,
                    "in" => Tok::In,
                    "if" => Tok::If,
                    "then" => Tok::Then,
                    "else" => Tok::Else,
                    "case" => Tok::Case,
                    "fn" => Tok::Fn,
                    "raise" => Tok::Raise,
                    "true" => Tok::True,
                    "false" => Tok::False,
                    _ => Tok::Ident(word.to_string()),
                };
                out.push(Spanned {
                    tok,
                    span: Span::new(i, j),
                });
                i = j;
            }
            _ => {
                // Decode the full (possibly multi-byte) character so the
                // error shows `λ`, not its first byte; then skip it and
                // keep lexing, so later errors are still reported.
                let ch = match src[i..].chars().next() {
                    Some(ch) => ch,
                    None => break,
                };
                errors.push(SurfaceError::new(
                    Span::new(i, i + ch.len_utf8()),
                    ErrorKind::Lex(format!("unexpected character `{ch}`")),
                ));
                i += ch.len_utf8();
            }
        }
    }
    out.push(Spanned {
        tok: Tok::Eof,
        span: Span::new(src.len(), src.len()),
    });
    (out, errors)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|s| s.tok).collect()
    }

    #[test]
    fn keywords_and_idents() {
        assert_eq!(
            toks("structure rec List"),
            vec![
                Tok::Structure,
                Tok::Rec,
                Tok::Ident("List".into()),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn operators() {
        assert_eq!(
            toks("-> => :> : = * < -"),
            vec![
                Tok::Arrow,
                Tok::DArrow,
                Tok::Seal,
                Tok::Colon,
                Tok::Eq,
                Tok::Star,
                Tok::Lt,
                Tok::Minus,
                Tok::Eof
            ]
        );
    }

    #[test]
    fn nested_comments() {
        assert_eq!(
            toks("a (* x (* y *) z *) b"),
            vec![Tok::Ident("a".into()), Tok::Ident("b".into()), Tok::Eof]
        );
    }

    #[test]
    fn unterminated_comment_is_an_error() {
        assert!(lex("(* oops").is_err());
    }

    #[test]
    fn integers() {
        assert_eq!(toks("42 0"), vec![Tok::Int(42), Tok::Int(0), Tok::Eof]);
    }

    #[test]
    fn primes_in_identifiers() {
        assert_eq!(toks("t'"), vec![Tok::Ident("t'".into()), Tok::Eof]);
    }

    #[test]
    fn unexpected_character() {
        assert!(lex("#").is_err());
    }

    #[test]
    fn non_ascii_reported_as_whole_character() {
        let err = lex("val λ = 1").unwrap_err();
        assert!(err.to_string().contains('λ'), "{err}");
        // The span covers the whole multi-byte character.
        assert_eq!(err.span.end - err.span.start, 'λ'.len_utf8());
    }
}
