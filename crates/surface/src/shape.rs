//! Shapes: the named-field layout of elaborated structures.
//!
//! The internal language has *anonymous* structures `[c, e]`; the
//! elaborator lays a surface structure's components out as right-nested
//! tuples — the static (type) components in the constructor, the dynamic
//! (value) components in the term — and keeps a [`Shape`] describing
//! which field lives where. Field access compiles to projection chains;
//! signature matching compiles to re-tupling coercions.

use recmod_syntax::ast::{Con, Term, Ty};
use recmod_syntax::intern::hc;

/// Metadata for a datatype component: its constructors in declaration
/// order. Shapes must stay free of de Bruijn indices (they travel across
/// binding depths), so only names and arities are recorded; argument
/// types are recovered from the datatype's `μ` constructor on demand.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DataInfo {
    /// `(constructor name, takes an argument)`, in declaration order.
    pub ctors: Vec<(String, bool)>,
}

impl DataInfo {
    /// The index and arity of a constructor, if present.
    pub fn find(&self, name: &str) -> Option<(usize, bool)> {
        self.ctors
            .iter()
            .enumerate()
            .find(|(_, (n, _))| n == name)
            .map(|(i, (_, has_arg))| (i, *has_arg))
    }
}

/// What kind of component a field is.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Item {
    /// A type component (contributes one static slot).
    Ty,
    /// A datatype's type component (one static slot, plus constructor
    /// metadata; the constructors themselves are separate `Val` fields).
    Data(DataInfo),
    /// A value component (one dynamic slot).
    Val,
    /// A substructure (one static and one dynamic slot, each a nested
    /// tuple laid out by the nested shape).
    Struct(Shape),
}

/// The layout of an elaborated structure or signature.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Shape {
    /// The named fields, in declaration order.
    pub fields: Vec<(String, Item)>,
}

impl Shape {
    /// An empty shape.
    pub fn new() -> Self {
        Shape::default()
    }

    /// Looks up a field by name.
    pub fn find(&self, name: &str) -> Option<&Item> {
        self.fields.iter().find(|(n, _)| n == name).map(|(_, i)| i)
    }

    /// The position of `name` among the *static* slots, if it has one.
    pub fn static_slot(&self, name: &str) -> Option<usize> {
        let mut slot = 0;
        for (n, item) in &self.fields {
            let has_static = matches!(item, Item::Ty | Item::Data(_) | Item::Struct(_));
            if n == name {
                return has_static.then_some(slot);
            }
            if has_static {
                slot += 1;
            }
        }
        None
    }

    /// The position of `name` among the *dynamic* slots, if it has one.
    pub fn dyn_slot(&self, name: &str) -> Option<usize> {
        let mut slot = 0;
        for (n, item) in &self.fields {
            let has_dyn = matches!(item, Item::Val | Item::Struct(_));
            if n == name {
                return has_dyn.then_some(slot);
            }
            if has_dyn {
                slot += 1;
            }
        }
        None
    }

    /// Number of static slots.
    pub fn static_len(&self) -> usize {
        self.fields
            .iter()
            .filter(|(_, i)| matches!(i, Item::Ty | Item::Data(_) | Item::Struct(_)))
            .count()
    }

    /// Number of dynamic slots.
    pub fn dyn_len(&self) -> usize {
        self.fields
            .iter()
            .filter(|(_, i)| matches!(i, Item::Val | Item::Struct(_)))
            .count()
    }

    /// Iterates `(name, item, static_slot)` over fields with static slots.
    pub fn static_fields(&self) -> impl Iterator<Item = (&str, &Item, usize)> {
        self.fields
            .iter()
            .filter(|(_, i)| matches!(i, Item::Ty | Item::Data(_) | Item::Struct(_)))
            .enumerate()
            .map(|(slot, (n, i))| (n.as_str(), i, slot))
    }

    /// Iterates `(name, item, dyn_slot)` over fields with dynamic slots.
    pub fn dyn_fields(&self) -> impl Iterator<Item = (&str, &Item, usize)> {
        self.fields
            .iter()
            .filter(|(_, i)| matches!(i, Item::Val | Item::Struct(_)))
            .enumerate()
            .map(|(slot, (n, i))| (n.as_str(), i, slot))
    }

    /// Finds the datatype (if any) that declares constructor `ctor`,
    /// returning the datatype field name and its info.
    pub fn data_of_ctor(&self, ctor: &str) -> Option<(&str, &DataInfo)> {
        self.fields.iter().find_map(|(n, item)| match item {
            Item::Data(info) if info.find(ctor).is_some() => Some((n.as_str(), info)),
            _ => None,
        })
    }
}

/// Projects the `slot`-th of `arity` components out of a right-nested
/// constructor tuple.
pub fn con_proj(base: Con, slot: usize, arity: usize) -> Con {
    debug_assert!(slot < arity.max(1));
    if arity <= 1 {
        return base;
    }
    let mut cur = base;
    for _ in 0..slot {
        cur = Con::Proj2(hc(cur));
    }
    if slot < arity - 1 {
        Con::Proj1(hc(cur))
    } else {
        cur
    }
}

/// Projects the `slot`-th of `arity` components out of a right-nested
/// term tuple.
pub fn term_proj(base: Term, slot: usize, arity: usize) -> Term {
    debug_assert!(slot < arity.max(1));
    if arity <= 1 {
        return base;
    }
    let mut cur = base;
    for _ in 0..slot {
        cur = Term::Proj2(Box::new(cur));
    }
    if slot < arity - 1 {
        Term::Proj1(Box::new(cur))
    } else {
        cur
    }
}

/// Builds a right-nested constructor tuple (`*` when empty).
pub fn con_tuple(parts: Vec<Con>) -> Con {
    let mut rev = parts.into_iter().rev();
    match rev.next() {
        None => Con::Star,
        Some(last) => rev.fold(last, |acc, c| Con::Pair(hc(c), hc(acc))),
    }
}

/// Builds a right-nested term tuple (`*` when empty).
pub fn term_tuple(parts: Vec<Term>) -> Term {
    Term::tuple(parts)
}

/// Builds a right-nested product type (`1` when empty).
pub fn ty_tuple(parts: Vec<Ty>) -> Ty {
    let mut rev = parts.into_iter().rev();
    match rev.next() {
        None => Ty::Unit,
        Some(last) => rev.fold(last, |acc, t| Ty::Prod(Box::new(t), Box::new(acc))),
    }
}

/// Builds a right-nested `Σ` kind (`1` when empty).
pub fn kind_tuple(parts: Vec<recmod_syntax::ast::Kind>) -> recmod_syntax::ast::Kind {
    use recmod_syntax::ast::Kind;
    let mut rev = parts.into_iter().rev();
    match rev.next() {
        None => Kind::Unit,
        Some(last) => rev.fold(last, |acc, k| Kind::Sigma(hc(k), hc(acc))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Shape {
        Shape {
            fields: vec![
                (
                    "t".into(),
                    Item::Data(DataInfo {
                        ctors: vec![("NIL".into(), false), ("CONS".into(), true)],
                    }),
                ),
                ("NIL".into(), Item::Val),
                ("CONS".into(), Item::Val),
                ("u".into(), Item::Ty),
                ("cons".into(), Item::Val),
                (
                    "Sub".into(),
                    Item::Struct(Shape {
                        fields: vec![("v".into(), Item::Ty)],
                    }),
                ),
            ],
        }
    }

    #[test]
    fn slot_positions() {
        let s = sample();
        assert_eq!(s.static_slot("t"), Some(0));
        assert_eq!(s.static_slot("u"), Some(1));
        assert_eq!(s.static_slot("Sub"), Some(2));
        assert_eq!(s.static_slot("cons"), None);
        assert_eq!(s.dyn_slot("NIL"), Some(0));
        assert_eq!(s.dyn_slot("CONS"), Some(1));
        assert_eq!(s.dyn_slot("cons"), Some(2));
        assert_eq!(s.dyn_slot("Sub"), Some(3));
        assert_eq!(s.static_len(), 3);
        assert_eq!(s.dyn_len(), 4);
    }

    #[test]
    fn ctor_lookup() {
        let s = sample();
        let (dt, info) = s.data_of_ctor("CONS").unwrap();
        assert_eq!(dt, "t");
        assert_eq!(info.find("CONS"), Some((1, true)));
        assert_eq!(info.find("NIL"), Some((0, false)));
        assert!(s.data_of_ctor("nope").is_none());
    }

    #[test]
    fn projections_match_tuple_layout() {
        // A 3-tuple ⟨a, ⟨b, c⟩⟩: slot 0 = π1, slot 1 = π1 π2, slot 2 = π2 π2.
        let base = Con::Var(0);
        assert_eq!(
            con_proj(base.clone(), 0, 3),
            Con::Proj1(recmod_syntax::intern::hc(base.clone()))
        );
        assert_eq!(
            con_proj(base.clone(), 1, 3),
            Con::Proj1(recmod_syntax::intern::hc(Con::Proj2(
                recmod_syntax::intern::hc(base.clone())
            )))
        );
        assert_eq!(
            con_proj(base.clone(), 2, 3),
            Con::Proj2(recmod_syntax::intern::hc(Con::Proj2(
                recmod_syntax::intern::hc(base.clone())
            )))
        );
        // Arity 1: identity.
        assert_eq!(con_proj(base.clone(), 0, 1), base);
    }

    #[test]
    fn tuple_builders() {
        assert_eq!(con_tuple(vec![]), Con::Star);
        assert_eq!(con_tuple(vec![Con::Int]), Con::Int);
        assert_eq!(
            con_tuple(vec![Con::Int, Con::Bool]),
            Con::Pair(
                recmod_syntax::intern::hc(Con::Int),
                recmod_syntax::intern::hc(Con::Bool)
            )
        );
        assert_eq!(ty_tuple(vec![]), Ty::Unit);
    }
}
