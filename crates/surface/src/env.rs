//! The elaboration environment: what surface names denote.
//!
//! Every entity that owns internal syntax stores it together with the
//! internal-context depth at which it was created; uses at a deeper
//! context shift the syntax by the depth difference. This keeps all de
//! Bruijn bookkeeping in one place ([`StructEntity::statics_at`] and friends).

use recmod_syntax::ast::{Con, Kind, Term, Ty};
use recmod_syntax::subst::{shift_con, shift_kind, shift_term, shift_ty};

use crate::shape::{DataInfo, Shape};

/// An elaborated signature: the pieces of an internal `[α:κ.σ]` plus the
/// field layout. For a recursively-dependent signature (`rds` = true),
/// both `kind` and `ty` sit under one extra *structure* binder (the `ρ`
/// binder), mirroring `Sig::Rds`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SigTemplate {
    /// The static kind (under the ρ binder when `rds`).
    pub kind: Kind,
    /// The dynamic type, under the signature's constructor binder (and
    /// the ρ binder when `rds`).
    pub ty: Ty,
    /// The field layout.
    pub shape: Shape,
    /// Context depth at which the template's syntax is expressed.
    pub depth: usize,
    /// Is this a recursively-dependent signature?
    pub rds: bool,
}

impl SigTemplate {
    /// The internal signature, shifted for use at context depth `at`.
    ///
    /// The template's `kind` and `ty` carry *implicit* binders (the ρ
    /// binder when `rds`, and always the signature's α binder on `ty`);
    /// shifting uses cutoffs so those stay fixed while genuinely free
    /// references move with the context.
    pub fn instantiate(&self, at: usize) -> recmod_syntax::ast::Sig {
        let delta = depth_delta(self.depth, at);
        let rho = usize::from(self.rds);
        let inner = recmod_syntax::ast::Sig::Struct(
            recmod_syntax::intern::hc(shift_kind(&self.kind, delta, rho)),
            Box::new(shift_ty(&self.ty, delta, rho + 1)),
        );
        if self.rds {
            recmod_syntax::ast::Sig::Rds(Box::new(inner))
        } else {
            inner
        }
    }
}

/// A structure denotation: layout plus the two phase-split access
/// expressions (e.g. `Fst(s)`/`snd(s)` with projections, or inline
/// constructor/term tuples for locally-defined structures).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StructEntity {
    /// The field layout.
    pub shape: Shape,
    /// The static tuple, at depth `depth`.
    pub statics: Con,
    /// The dynamic tuple, at depth `depth`.
    pub dynamics: Term,
    /// Context depth at which `statics`/`dynamics` are expressed.
    pub depth: usize,
}

impl StructEntity {
    /// The static tuple shifted for use at context depth `at`.
    pub fn statics_at(&self, at: usize) -> Con {
        shift_con(&self.statics, depth_delta(self.depth, at), 0)
    }

    /// The dynamic tuple shifted for use at context depth `at`.
    pub fn dynamics_at(&self, at: usize) -> Term {
        shift_term(&self.dynamics, depth_delta(self.depth, at), 0)
    }
}

/// A functor denotation (the HMM pair plus its interface).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FunctorEntity {
    /// The static part (a constructor function), at depth `depth`.
    pub statics: Con,
    /// The dynamic part (a polymorphic function), at depth `depth`.
    pub dynamics: Term,
    /// Context depth of the above.
    pub depth: usize,
    /// The parameter's elaborated signature (non-rds or rds; at `depth`).
    pub param: SigTemplate,
    /// The body's layout (the result shape of applications).
    pub result_shape: Shape,
    /// The raw body split, under one structure binder for the parameter,
    /// expressed at depth `body_depth`. Applications are β-reduced at
    /// elaboration time (the HMM equational rule), which in particular
    /// keeps `fix(s. F(s))` bodies syntactically valuable — required for
    /// the paper's §4 functorized recursive bindings.
    pub body_con: Con,
    /// See [`FunctorEntity::body_con`].
    pub body_term: Term,
    /// Context depth of the body (the parameter binder is index 0 there).
    pub body_depth: usize,
}

/// A datatype-constructor denotation (for locally-declared datatypes;
/// constructors of structure components are found through shapes).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CtorEntity {
    /// Context position of the constructor's value binding.
    pub pos: usize,
    /// The datatype's `μ` constructor, at depth `depth`.
    pub data_con: Con,
    /// Context depth of `data_con`.
    pub depth: usize,
    /// The constructor's index within the datatype's sum.
    pub index: usize,
    /// Whether the constructor takes an argument.
    pub has_arg: bool,
    /// The constructors of the datatype (for exhaustiveness checks).
    pub info: DataInfo,
}

/// What a surface name denotes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Entity {
    /// A term variable at a context position.
    Val {
        /// Absolute context position (from the bottom).
        pos: usize,
    },
    /// A datatype constructor.
    Ctor(CtorEntity),
    /// A type abbreviation (`type t = ty`, signature type components,
    /// and `μ`-bound datatype self-references).
    TyAlias {
        /// The definition, at depth `depth`.
        con: Con,
        /// Context depth of `con`.
        depth: usize,
    },
    /// A locally-declared datatype's type name.
    Data {
        /// The `μ` constructor, at depth `depth`.
        con: Con,
        /// Context depth of `con`.
        depth: usize,
        /// Constructor metadata.
        info: DataInfo,
    },
    /// A structure.
    Struct(StructEntity),
    /// A functor.
    Functor(FunctorEntity),
    /// A named signature.
    SigDef(SigTemplate),
}

/// Converts a stored depth and a use-site depth into a shift amount.
pub fn depth_delta(stored: usize, at: usize) -> isize {
    at as isize - stored as isize
}

/// A name → entity map with block scoping.
#[derive(Debug, Default)]
pub struct ElabEnv {
    entries: Vec<(String, Entity)>,
}

impl ElabEnv {
    /// An empty environment.
    pub fn new() -> Self {
        Self::default()
    }

    /// Binds `name` (shadowing any previous binding).
    pub fn insert(&mut self, name: impl Into<String>, entity: Entity) {
        self.entries.push((name.into(), entity));
    }

    /// Looks a name up, innermost binding first.
    pub fn lookup(&self, name: &str) -> Option<&Entity> {
        self.entries
            .iter()
            .rev()
            .find(|(n, _)| n == name)
            .map(|(_, e)| e)
    }

    /// A scope marker to pass to [`ElabEnv::reset`].
    pub fn mark(&self) -> usize {
        self.entries.len()
    }

    /// Discards bindings made since `mark`.
    pub fn reset(&mut self, mark: usize) {
        self.entries.truncate(mark);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_prefers_inner_bindings() {
        let mut env = ElabEnv::new();
        env.insert("x", Entity::Val { pos: 0 });
        let m = env.mark();
        env.insert("x", Entity::Val { pos: 5 });
        assert_eq!(env.lookup("x"), Some(&Entity::Val { pos: 5 }));
        env.reset(m);
        assert_eq!(env.lookup("x"), Some(&Entity::Val { pos: 0 }));
    }

    #[test]
    fn struct_entity_shifts_to_use_site() {
        let s = StructEntity {
            shape: Shape::new(),
            statics: Con::Fst(0),
            dynamics: Term::Snd(0),
            depth: 3,
        };
        assert_eq!(s.statics_at(5), Con::Fst(2));
        assert_eq!(s.dynamics_at(5), Term::Snd(2));
        assert_eq!(s.statics_at(3), Con::Fst(0));
    }

    #[test]
    fn rds_template_keeps_self_reference_fixed_when_shifted() {
        // kind = Q(int ⇀ Fst(ρ-binder)) with one free outer ref Fst(1).
        let t = SigTemplate {
            kind: Kind::Singleton(recmod_syntax::intern::hc(Con::Arrow(
                recmod_syntax::intern::hc(Con::Int),
                recmod_syntax::intern::hc(Con::Fst(0)),
            ))),
            ty: Ty::Con(Con::Fst(1)),
            shape: Shape::new(),
            depth: 1,
            rds: true,
        };
        let s = t.instantiate(4);
        let recmod_syntax::ast::Sig::Rds(inner) = s else {
            panic!()
        };
        let recmod_syntax::ast::Sig::Struct(k, ty) = *inner else {
            panic!()
        };
        // The ρ-bound Fst(0) in the kind did not move.
        assert_eq!(
            *k,
            Kind::Singleton(recmod_syntax::intern::hc(Con::Arrow(
                recmod_syntax::intern::hc(Con::Int),
                recmod_syntax::intern::hc(Con::Fst(0))
            )))
        );
        // In ty, index 0 = α, index 1 = ρ binder: both stay fixed; had it
        // been 2+ it would shift by 3.
        assert_eq!(*ty, Ty::Con(Con::Fst(1)));
    }

    #[test]
    fn plain_template_shifts_free_refs_only() {
        // ty = Con(Var 0) references the α binder — fixed under shifting;
        // kind references a free variable — it moves.
        let t = SigTemplate {
            kind: Kind::Singleton(recmod_syntax::intern::hc(Con::Var(2))),
            ty: Ty::Con(Con::Var(0)),
            shape: Shape::new(),
            depth: 3,
            rds: false,
        };
        let recmod_syntax::ast::Sig::Struct(k, ty) = t.instantiate(5) else {
            panic!()
        };
        assert_eq!(*k, Kind::Singleton(recmod_syntax::intern::hc(Con::Var(4))));
        assert_eq!(*ty, Ty::Con(Con::Var(0)));
    }
}
