//! Structured diagnostics: stable error codes, derivation provenance,
//! JSON emission, and the `explain` registry.
//!
//! A [`Diagnostic`] is the presentation-layer view of a
//! [`SurfaceError`]: everything the CLI, the batch driver, and the
//! (future) language server need to show a failure — code, position,
//! message, expected/found pair, notes, and the judgement stack that
//! produced it — without holding onto the source text or the error
//! value itself. Both the single-file CLI path and the parallel batch
//! driver render their human-readable lines through [`render_line`] /
//! [`render_elided`], so the two surfaces can never drift apart.

use recmod_telemetry::json::Json;

use crate::error::{ErrorKind, Span, SurfaceError};

/// The schema version stamped on every diagnostics JSON document.
/// Matches the telemetry schema version: the emitters evolve together.
pub const SCHEMA_VERSION: u64 = recmod_telemetry::SCHEMA_VERSION;

/// A fully rendered, self-contained diagnostic.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// Stable error code (`K0xx` kernel, `S0xx` surface, `L0xx` limit,
    /// `I0xx` internal).
    pub code: &'static str,
    /// Primary span (byte offsets into the source).
    pub span: Span,
    /// 1-based line of the span start.
    pub line: usize,
    /// 1-based column of the span start.
    pub col: usize,
    /// The human-readable message (the error's `Display` form).
    pub message: String,
    /// Pretty-printed expected side, for mismatch-shaped failures.
    pub expected: Option<String>,
    /// Pretty-printed found side, for mismatch-shaped failures.
    pub found: Option<String>,
    /// Related notes (resource-bound hints, comparison kinds, …).
    pub notes: Vec<String>,
    /// Derivation provenance: judgement frames active at failure,
    /// outermost first.
    pub provenance: Vec<&'static str>,
    /// For constructor-equivalence failures: the structural path from
    /// the failing equation outward, innermost step first.
    pub equation_path: Vec<&'static str>,
}

impl Diagnostic {
    /// Builds a diagnostic from a surface error and the source it
    /// points into.
    pub fn from_error(src: &str, e: &SurfaceError) -> Diagnostic {
        let (line, col) = e.span.line_col(src);
        let mut notes = Vec::new();
        let mut expected = None;
        let mut found = None;
        match &e.kind {
            ErrorKind::Type(te) => {
                if let Some((exp, fnd)) = te.expected_found() {
                    expected = Some(exp.to_string());
                    found = Some(fnd.to_string());
                }
                if let recmod_kernel::TypeError::ConMismatch { at, .. } = te {
                    notes.push(format!("constructors compared at kind {at}"));
                }
                if let recmod_kernel::TypeError::FuelExhausted { budget, .. } = te {
                    notes.push(format!(
                        "resource verdict, not a semantic one; raise the budget with --limits fuel=N (was {budget})"
                    ));
                }
                if let recmod_kernel::TypeError::Limit(l) = te {
                    notes.push(limit_note(l));
                }
            }
            ErrorKind::Limit(l) => notes.push(limit_note(l)),
            _ => {}
        }
        Diagnostic {
            code: e.code(),
            span: e.span,
            line,
            col,
            message: e.to_string(),
            expected,
            found,
            notes,
            provenance: e.provenance.frames.clone(),
            equation_path: e.provenance.equation.clone(),
        }
    }

    /// Builds an internal-class diagnostic with no underlying
    /// [`SurfaceError`] (worker death, caught panics).
    pub fn internal(code: &'static str, message: impl Into<String>) -> Diagnostic {
        Diagnostic {
            code,
            span: Span::default(),
            line: 1,
            col: 1,
            message: message.into(),
            expected: None,
            found: None,
            notes: Vec::new(),
            provenance: Vec::new(),
            equation_path: Vec::new(),
        }
    }

    /// The JSON form (one element of a `diagnostics` array).
    pub fn to_json(&self) -> Json {
        let mut pairs: Vec<(&'static str, Json)> = vec![
            ("code", Json::str(self.code)),
            ("message", Json::Str(self.message.clone())),
            (
                "span",
                Json::obj([
                    ("start", Json::UInt(self.span.start as u64)),
                    ("end", Json::UInt(self.span.end as u64)),
                    ("line", Json::UInt(self.line as u64)),
                    ("col", Json::UInt(self.col as u64)),
                ]),
            ),
            (
                "provenance",
                Json::Arr(self.provenance.iter().map(|f| Json::str(*f)).collect()),
            ),
        ];
        if !self.equation_path.is_empty() {
            pairs.push((
                "equation_path",
                Json::Arr(self.equation_path.iter().map(|s| Json::str(*s)).collect()),
            ));
        }
        if let Some(exp) = &self.expected {
            pairs.push(("expected", Json::Str(exp.clone())));
        }
        if let Some(fnd) = &self.found {
            pairs.push(("found", Json::Str(fnd.clone())));
        }
        if !self.notes.is_empty() {
            pairs.push((
                "notes",
                Json::Arr(self.notes.iter().map(|n| Json::Str(n.clone())).collect()),
            ));
        }
        Json::obj(pairs)
    }

    /// Rebuilds a diagnostic from its [`to_json`](Self::to_json) form.
    ///
    /// Exists for the driver's on-disk artifact cache, which stores
    /// structured diagnostics and replays them on a hit. Codes resolve
    /// through the [`CODES`] registry so a cached diagnostic shares the
    /// registry's canonical `&'static str`; provenance/equation frames
    /// (an open set of judgement names) go through a bounded intern
    /// table. Returns `None` on any missing or mistyped field — callers
    /// treat that as a cache miss, never an error.
    pub fn from_json(doc: &Json) -> Option<Diagnostic> {
        let code_str = doc.get("code")?.as_str()?;
        let code = match explain(code_str) {
            Some(info) => info.code,
            None => static_str(code_str),
        };
        let span = doc.get("span")?;
        let usize_of = |j: &Json| j.as_u64().map(|v| v as usize);
        let frames = |j: Option<&Json>| -> Option<Vec<&'static str>> {
            match j {
                None => Some(Vec::new()),
                Some(j) => j
                    .as_arr()?
                    .iter()
                    .map(|f| f.as_str().map(static_str))
                    .collect(),
            }
        };
        let strings = |j: Option<&Json>| -> Option<Vec<String>> {
            match j {
                None => Some(Vec::new()),
                Some(j) => j
                    .as_arr()?
                    .iter()
                    .map(|s| s.as_str().map(str::to_string))
                    .collect(),
            }
        };
        Some(Diagnostic {
            code,
            span: Span {
                start: usize_of(span.get("start")?)?,
                end: usize_of(span.get("end")?)?,
            },
            line: usize_of(span.get("line")?)?,
            col: usize_of(span.get("col")?)?,
            message: doc.get("message")?.as_str()?.to_string(),
            expected: match doc.get("expected") {
                Some(j) => Some(j.as_str()?.to_string()),
                None => None,
            },
            found: match doc.get("found") {
                Some(j) => Some(j.as_str()?.to_string()),
                None => None,
            },
            notes: strings(doc.get("notes"))?,
            provenance: frames(doc.get("provenance"))?,
            equation_path: frames(doc.get("equation_path"))?,
        })
    }
}

/// Interns a string into the process-wide leak table, deduplicated.
///
/// Used only when deserializing cached diagnostics, whose
/// provenance/equation frames and codes are `&'static str` in live
/// diagnostics. The population is bounded by the finite set of
/// judgement names and codes the compiler can ever emit (plus whatever
/// a corrupt-but-checksum-valid cache entry smuggles in, which the
/// size-capped cache bounds), so the leak is bounded too.
fn static_str(s: &str) -> &'static str {
    use std::sync::Mutex;
    static TABLE: Mutex<std::collections::BTreeSet<&'static str>> =
        Mutex::new(std::collections::BTreeSet::new());
    let mut table = TABLE
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    if let Some(existing) = table.get(s) {
        return existing;
    }
    let leaked: &'static str = Box::leak(s.to_string().into_boxed_str());
    table.insert(leaked);
    leaked
}

fn limit_note(l: &recmod_telemetry::LimitExceeded) -> String {
    use recmod_telemetry::LimitKind;
    let hint = match l.kind {
        LimitKind::Depth => "raise with --limits depth=N",
        LimitKind::Nodes => "raise with --limits nodes=N",
        LimitKind::Fuel => "raise with --limits fuel=N",
        LimitKind::Deadline => "raise with --deadline-ms N",
    };
    format!("resource verdict, not a semantic one; {hint}")
}

/// Converts every error of one file into diagnostics, in input order.
pub fn from_errors(src: &str, errors: &[SurfaceError]) -> Vec<Diagnostic> {
    errors
        .iter()
        .map(|e| Diagnostic::from_error(src, e))
        .collect()
}

/// The canonical one-line human rendering, shared by the CLI and the
/// batch driver: `file:line:col: error: message [CODE]`.
pub fn render_line(file: &str, d: &Diagnostic) -> String {
    format!(
        "{file}:{}:{}: error: {} [{}]",
        d.line, d.col, d.message, d.code
    )
}

/// The canonical truncation line appended when `--max-errors` elides
/// diagnostics from the human-readable report (the JSON stream is
/// never truncated).
pub fn render_elided(file: &str, elided: usize) -> String {
    format!("{file}: ... and {elided} more error(s) (raise --max-errors to see them)")
}

/// Accumulates `code → count` over diagnostics (for batch summaries).
pub fn histogram<'d>(
    diags: impl IntoIterator<Item = &'d Diagnostic>,
) -> std::collections::BTreeMap<&'static str, u64> {
    let mut h = std::collections::BTreeMap::new();
    for d in diags {
        *h.entry(d.code).or_insert(0) += 1;
    }
    h
}

/// One entry in the `explain` registry.
#[derive(Debug, Clone, Copy)]
pub struct CodeInfo {
    /// The stable code.
    pub code: &'static str,
    /// One-line description of the failure class.
    pub summary: &'static str,
    /// A short example (input or scenario) that produces it.
    pub example: &'static str,
}

/// Every stable error code, its meaning, and an example. Codes are
/// append-only: retired codes are never reused.
pub const CODES: &[CodeInfo] = &[
    CodeInfo {
        code: "K001",
        summary: "a de Bruijn index pointed past the context, or at the wrong sort of entry",
        example: "internal elaborator output referencing a variable the kernel context lacks",
    },
    CodeInfo {
        code: "K002",
        summary: "a constructor was used at a Π kind but does not have one",
        example: "applying a non-functional constructor: `type u = t int` where `t : T`",
    },
    CodeInfo {
        code: "K003",
        summary: "a constructor was used at a Σ kind but does not have one",
        example: "projecting a component from a constructor that is not a pair",
    },
    CodeInfo {
        code: "K004",
        summary: "a term was applied but has no function type",
        example: "val x = 1 2",
    },
    CodeInfo {
        code: "K005",
        summary: "a term was projected from but has no product type",
        example: "val x = #1 3",
    },
    CodeInfo {
        code: "K006",
        summary: "a term was type-instantiated but has no ∀ type",
        example: "instantiating a monomorphic value at a type argument",
    },
    CodeInfo {
        code: "K007",
        summary: "a case scrutinee (or inj annotation) is not a sum monotype",
        example: "case 1 of x => x",
    },
    CodeInfo {
        code: "K008",
        summary: "a roll/unroll subject is not a μ monotype",
        example: "unrolling a value of type int",
    },
    CodeInfo {
        code: "K009",
        summary: "two kinds failed to be equivalent",
        example: "sealing a structure whose type component has the wrong arity",
    },
    CodeInfo {
        code: "K010",
        summary: "subkinding found ≤ expected failed",
        example: "matching an opaque type component against a transparent specification",
    },
    CodeInfo {
        code: "K011",
        summary: "two constructors failed to be equivalent at a kind",
        example: "type t = int matched against a signature demanding type t = bool",
    },
    CodeInfo {
        code: "K012",
        summary: "two types failed to be equivalent",
        example: "val x : int = true",
    },
    CodeInfo {
        code: "K013",
        summary: "subtyping found ≤ expected failed",
        example: "passing a total function where a more general type is required",
    },
    CodeInfo {
        code: "K014",
        summary: "signature matching failed",
        example: "structure S :> sig val f : int -> int end = struct val f = true end",
    },
    CodeInfo {
        code: "K015",
        summary: "the value restriction rejected a non-valuable fix/Λ body",
        example: "fix whose body performs an application before reaching a value",
    },
    CodeInfo {
        code: "K016",
        summary: "a recursively-dependent signature's static part is not fully transparent",
        example: "structure rec X : sig type t val v : t end = ... (opaque t in an rds)",
    },
    CodeInfo {
        code: "K017",
        summary: "a case has the wrong number of branches for its scrutinee's sum",
        example: "2-ary sum scrutinized by a 3-branch case",
    },
    CodeInfo {
        code: "K018",
        summary: "a primop was applied to the wrong number of arguments",
        example: "`+` applied to one argument",
    },
    CodeInfo {
        code: "K019",
        summary: "an inj index is out of range for its sum annotation",
        example: "inj 5 into a 2-ary sum",
    },
    CodeInfo {
        code: "K020",
        summary: "no statically-computable compile-time part (module sealed opaque where an rds must inspect it)",
        example: "using an opaquely sealed module as the body of a recursive module",
    },
    CodeInfo {
        code: "K099",
        summary: "other kernel-level failure (see the message)",
        example: "projecting a value component from a non-structure signature",
    },
    CodeInfo {
        code: "S001",
        summary: "lexical error: unexpected character",
        example: "val x = @",
    },
    CodeInfo {
        code: "S002",
        summary: "parse error (the message says what was expected)",
        example: "val = 3",
    },
    CodeInfo {
        code: "S003",
        summary: "unbound identifier",
        example: "val x = mystery",
    },
    CodeInfo {
        code: "S004",
        summary: "a name is in scope but denotes the wrong kind of entity",
        example: "opening a value binding as if it were a structure",
    },
    CodeInfo {
        code: "S005",
        summary: "a structure lacks a component its signature requires",
        example: "structure S : sig val f : int end = struct end",
    },
    CodeInfo {
        code: "S006",
        summary: "duplicate binding within one structure or signature body",
        example: "sig type t type t end",
    },
    CodeInfo {
        code: "S099",
        summary: "other surface-level failure (see the message)",
        example: "an unsupported surface construct",
    },
    CodeInfo {
        code: "L001",
        summary: "recursion-depth limit hit (resource verdict, not semantic)",
        example: "1000 nested parentheses under --limits depth=200",
    },
    CodeInfo {
        code: "L002",
        summary: "node/token budget hit (resource verdict, not semantic)",
        example: "a machine-generated file beyond --limits nodes=N",
    },
    CodeInfo {
        code: "L003",
        summary: "fuel budget exhausted during normalization/equivalence (resource verdict)",
        example: "equi-recursive equivalence on adversarial μ types under small --limits fuel=N",
    },
    CodeInfo {
        code: "L004",
        summary: "wall-clock deadline passed (resource verdict, not semantic)",
        example: "any file under --deadline-ms 0",
    },
    CodeInfo {
        code: "I001",
        summary: "internal invariant violated — a checker bug surfaced as a diagnostic",
        example: "resolve_sig returning an unresolved rds",
    },
    CodeInfo {
        code: "I002",
        summary: "the checker panicked; the panic was caught and converted to a diagnostic",
        example: "a bug reaching an unwinding code path (please report)",
    },
    CodeInfo {
        code: "I003",
        summary: "a batch worker thread died before compiling the file",
        example: "a worker killed by the OS mid-batch",
    },
    // C-codes are cache-layer *warnings*: they describe the artifact
    // cache's own health, never a property of the compiled program, so
    // they are reported on stderr and excluded from file diagnostics
    // (verdicts and exit codes are byte-identical with and without a
    // cache).
    CodeInfo {
        code: "C001",
        summary: "artifact-cache I/O error; the entry was recompiled (warning, not a failure)",
        example: "an unreadable cache file under --cache-dir, e.g. permissions changed",
    },
    CodeInfo {
        code: "C002",
        summary: "corrupt artifact-cache entry skipped; the file was recompiled (warning)",
        example: "a truncated or bit-flipped entry failing its checksum",
    },
    CodeInfo {
        code: "C003",
        summary: "artifact-cache directory could not be created; caching disabled for the run",
        example: "--cache-dir pointing into a read-only tree",
    },
];

/// Looks up a code in the registry.
pub fn explain(code: &str) -> Option<&'static CodeInfo> {
    CODES.iter().find(|c| c.code.eq_ignore_ascii_case(code))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_is_sorted_and_unique() {
        let mut seen = std::collections::BTreeSet::new();
        for c in CODES {
            assert!(seen.insert(c.code), "duplicate code {}", c.code);
            assert!(!c.summary.is_empty() && !c.example.is_empty());
        }
    }

    #[test]
    fn every_emittable_code_is_registered() {
        use recmod_kernel::TypeError;
        let kernel_codes = [
            TypeError::Unbound {
                what: "x",
                index: 0,
            }
            .code(),
            TypeError::NotAPiKind(String::new()).code(),
            TypeError::Internal(String::new()).code(),
            TypeError::Other(String::new()).code(),
        ];
        for code in kernel_codes {
            assert!(explain(code).is_some(), "unregistered code {code}");
        }
        for kind in [
            recmod_telemetry::LimitKind::Depth,
            recmod_telemetry::LimitKind::Nodes,
            recmod_telemetry::LimitKind::Fuel,
            recmod_telemetry::LimitKind::Deadline,
        ] {
            assert!(explain(kind.code()).is_some());
        }
    }

    #[test]
    fn diagnostics_render_with_codes() {
        let src = "val x = mystery";
        let Err(errs) =
            crate::pipeline::compile_with_limits(src, &recmod_telemetry::Limits::default())
        else {
            panic!("unbound identifier should fail");
        };
        let diags = from_errors(src, &errs);
        assert!(!diags.is_empty());
        let d = &diags[0];
        assert_eq!(d.code, "S003");
        assert!(!d.provenance.is_empty(), "surface frames captured");
        let line = render_line("demo.rm", d);
        assert!(line.contains(": error: "), "text keeps the error: marker");
        assert!(line.ends_with("[S003]"));
        let json = d.to_json().to_compact();
        let doc = recmod_telemetry::json::parse(&json).expect("valid JSON");
        assert_eq!(doc.get("code").and_then(|c| c.as_str()), Some("S003"));
    }

    #[test]
    fn type_errors_carry_kernel_provenance() {
        let src = "val x : int = true";
        let Err(errs) =
            crate::pipeline::compile_with_limits(src, &recmod_telemetry::Limits::default())
        else {
            panic!("type mismatch should fail");
        };
        let diags = from_errors(src, &errs);
        let d = diags
            .iter()
            .find(|d| d.code.starts_with('K'))
            .expect("kernel code");
        assert!(
            d.provenance.iter().any(|f| f.starts_with("kernel.")),
            "kernel frames in provenance: {:?}",
            d.provenance
        );
        assert!(d.expected.is_some() && d.found.is_some());
    }
}
