//! Elaboration of signature expressions into [`SigTemplate`]s.
//!
//! The static components of a signature become a right-nested dependent
//! `Σ` kind (pass 1: each component's kind may mention the earlier
//! components through their `Σ` binders); the dynamic components become
//! a product type under the signature's single constructor binder `α`,
//! with type references compiled to projections of `α` (pass 2).
//!
//! Datatype specifications are interpreted *structurally* (paper §4):
//! the spec `datatype t = NIL | CONS of int * List.t` contributes the
//! transparent kind `Q(μα:T. 1 + int × List.t)` plus total-function
//! value components for the constructors.

use recmod_kernel::Entry;
use recmod_syntax::ast::{Con, Kind, Term, Ty};
use recmod_syntax::intern::hc;
use recmod_syntax::subst::{shift_con, subst_con_ty};

use crate::ast::{SigExp, Spec};
use crate::elab::Elaborator;
use crate::env::{Entity, SigTemplate, StructEntity};
use crate::error::{ErrorKind, Span, SurfaceError, SurfaceResult};
use crate::shape::{con_proj, kind_tuple, ty_tuple, Item, Shape};

impl Elaborator {
    /// Elaborates a signature expression at the current depth. The
    /// result is a non-rds template (an rds wrapper is added by the
    /// recursive-binding elaboration, which supplies the ρ binder).
    pub fn elab_sigexp(&mut self, se: &SigExp) -> SurfaceResult<SigTemplate> {
        let _j = recmod_telemetry::judgement_span("surface.elab_sigexp");
        self.with_depth(se.span(), |this| this.elab_sigexp_inner(se))
    }

    fn elab_sigexp_inner(&mut self, se: &SigExp) -> SurfaceResult<SigTemplate> {
        match se {
            SigExp::Name(name, span) => match self.env.lookup(name) {
                Some(Entity::SigDef(t)) => Ok(self.retarget_template(t.clone())),
                Some(_) => self.err(
                    *span,
                    ErrorKind::WrongEntity {
                        name: name.clone(),
                        expected: "a signature",
                    },
                ),
                None => self.err(*span, ErrorKind::Unbound(name.clone())),
            },
            SigExp::Body(specs, span) => self.elab_sig_body(specs, *span),
            SigExp::WhereType {
                base,
                path,
                def,
                span,
            } => {
                let tmpl = self.elab_sigexp(base)?;
                let con = self.elab_ty(def)?;
                self.refine_template(tmpl, &path.parts, &con, *span)
            }
        }
    }

    /// Shifts a stored template to the current depth.
    pub(crate) fn retarget_template(&self, t: SigTemplate) -> SigTemplate {
        let delta = crate::env::depth_delta(t.depth, self.depth());
        let rho = usize::from(t.rds);
        SigTemplate {
            kind: recmod_syntax::subst::shift_kind(&t.kind, delta, rho),
            ty: recmod_syntax::subst::shift_ty(&t.ty, delta, rho + 1),
            shape: t.shape,
            depth: self.depth(),
            rds: t.rds,
        }
    }

    fn elab_sig_body(&mut self, specs: &[Spec], span: Span) -> SurfaceResult<SigTemplate> {
        // Duplicate check.
        let mut seen = std::collections::HashSet::new();
        for spec in specs {
            if !seen.insert(spec.name().to_string()) {
                return self.err(spec.span(), ErrorKind::Duplicate(spec.name().to_string()));
            }
        }
        let base_depth = self.depth();

        // ---- pass 1: static kinds (under accumulating Σ binders) ----
        let mark = self.env.mark();
        let mut slot_kinds: Vec<Kind> = Vec::new();
        let mut fields: Vec<(String, Item)> = Vec::new();
        // Substructure σ's: (name, σ under its own α, Σ binders in scope
        // when it was elaborated).
        let mut sub_tys: Vec<(String, Ty, usize)> = Vec::new();
        let mut pass1 = || -> SurfaceResult<()> {
            for spec in specs {
                match spec {
                    Spec::Type { name, def, .. } => {
                        let k = match def {
                            Some(t) => Kind::Singleton(hc(self.elab_ty(t)?)),
                            None => Kind::Type,
                        };
                        self.push_static_slot(name, k.clone(), None);
                        slot_kinds.push(k);
                        fields.push((name.clone(), Item::Ty));
                    }
                    Spec::Datatype { name, ctors, .. } => {
                        let (mu, info) = self.elab_datatype_con(name, ctors)?;
                        let k = Kind::Singleton(hc(mu));
                        self.push_static_slot(name, k.clone(), None);
                        slot_kinds.push(k);
                        fields.push((name.clone(), Item::Data(info.clone())));
                        for (cname, _) in &info.ctors {
                            fields.push((cname.clone(), Item::Val));
                        }
                    }
                    Spec::Val { name, .. } => {
                        fields.push((name.clone(), Item::Val));
                    }
                    Spec::Structure { name, sig, .. } => {
                        let sub = self.elab_sigexp(sig)?;
                        if sub.rds {
                            return self.err(
                                spec.span(),
                                ErrorKind::Other(
                                    "recursively-dependent substructure signatures are not \
                                     supported"
                                        .to_string(),
                                ),
                            );
                        }
                        let k = sub.kind.clone();
                        let binders_before = slot_kinds.len();
                        self.push_static_slot(name, k.clone(), Some(sub.shape.clone()));
                        slot_kinds.push(k);
                        sub_tys.push((name.clone(), sub.ty.clone(), binders_before));
                        fields.push((name.clone(), Item::Struct(sub.shape)));
                    }
                }
            }
            Ok(())
        };
        let r1 = pass1();
        self.ctx.truncate(base_depth);
        self.env.reset(mark);
        r1?;
        let kind = kind_tuple(slot_kinds);
        let shape = Shape { fields };

        // ---- pass 2: dynamic types under the single α binder ----
        self.ctx.push(Entry::Con(kind.clone()));
        let alpha_depth = self.depth();
        let mark2 = self.env.mark();
        let n_static = shape.static_len();
        // Rebind every static field name to a projection of α.
        for (name, item, slot) in shape.static_fields() {
            let proj = con_proj(Con::Var(0), slot, n_static);
            match item {
                Item::Ty => self.env.insert(
                    name.to_string(),
                    Entity::TyAlias {
                        con: proj,
                        depth: alpha_depth,
                    },
                ),
                Item::Data(info) => self.env.insert(
                    name.to_string(),
                    Entity::Data {
                        con: proj,
                        depth: alpha_depth,
                        info: info.clone(),
                    },
                ),
                Item::Struct(sub_shape) => self.env.insert(
                    name.to_string(),
                    Entity::Struct(StructEntity {
                        shape: sub_shape.clone(),
                        statics: proj,
                        // Signatures have no dynamic components to hand
                        // out during elaboration of *types*; a value
                        // reference through this entity is an error that
                        // the kernel would catch, so a placeholder is safe.
                        dynamics: Term::Star,
                        depth: alpha_depth,
                    }),
                ),
                Item::Val => unreachable!("static_fields yields no Val items"),
            }
        }
        let mut dyn_tys: Vec<Ty> = Vec::new();
        let mut pass2 = || -> SurfaceResult<()> {
            for spec in specs {
                match spec {
                    Spec::Type { .. } => {}
                    Spec::Datatype { name, ctors, span } => {
                        // Constructor value types: Cᵢ : argᵢ → t (total).
                        let t_slot = shape.static_slot(name).ok_or_else(|| {
                            SurfaceError::internal(*span, "datatype spec without a static slot")
                        })?;
                        let t_con = con_proj(Con::Var(0), t_slot, n_static);
                        for c in ctors {
                            let ty = match &c.arg {
                                Some(arg_ty) => {
                                    // Elaborate with the datatype name bound
                                    // to the α projection (already in env).
                                    let arg = self.elab_ty(arg_ty)?;
                                    Ty::Total(
                                        Box::new(Ty::Con(arg)),
                                        Box::new(Ty::Con(t_con.clone())),
                                    )
                                }
                                None => Ty::Con(t_con.clone()),
                            };
                            dyn_tys.push(ty);
                        }
                        let _ = span;
                    }
                    Spec::Val { ty, .. } => {
                        let con = self.elab_ty(ty)?;
                        dyn_tys.push(Ty::Con(con));
                    }
                    Spec::Structure { name, span, .. } => {
                        let slot = shape.static_slot(name).ok_or_else(|| {
                            SurfaceError::internal(*span, "substructure spec without a static slot")
                        })?;
                        let proj = con_proj(Con::Var(0), slot, n_static);
                        let (_, sub_ty, binders_before) =
                            sub_tys.iter().find(|(n, _, _)| n == name).ok_or_else(|| {
                                SurfaceError::internal(
                                    *span,
                                    "substructure spec not recorded in pass 1",
                                )
                            })?;
                        // The substructure's σ was elaborated in pass 1
                        // under `binders_before` sibling Σ binders plus its
                        // own α_sub. Remap sibling references to α
                        // projections and α_sub to this slot's projection.
                        let remapped =
                            remap_slot_refs_ty(sub_ty, *binders_before, n_static, &shape);
                        dyn_tys.push(subst_con_ty(&remapped, &proj));
                    }
                }
            }
            Ok(())
        };
        let r2 = pass2();
        self.ctx.truncate(base_depth);
        self.env.reset(mark2.min(mark));
        debug_assert_eq!(self.depth(), base_depth);
        r2?;
        let ty = ty_tuple(dyn_tys);

        let _ = span;
        Ok(SigTemplate {
            kind,
            ty,
            shape,
            depth: base_depth,
            rds: false,
        })
    }

    /// Pushes a `Σ` binder for a static slot and binds its surface name.
    fn push_static_slot(&mut self, name: &str, kind: Kind, sub: Option<Shape>) {
        self.ctx.push(Entry::Con(kind));
        match sub {
            None => {
                // Both plain types and datatypes resolve as type aliases
                // during pass 1 (constructor metadata is not needed in
                // kinds).
                self.env.insert(
                    name.to_string(),
                    Entity::TyAlias {
                        con: Con::Var(0),
                        depth: self.depth(),
                    },
                );
            }
            Some(shape) => {
                self.env.insert(
                    name.to_string(),
                    Entity::Struct(StructEntity {
                        shape,
                        statics: Con::Var(0),
                        dynamics: Term::Star,
                        depth: self.depth(),
                    }),
                );
            }
        }
    }

    /// `SIG where type p = c`: replaces the named component's kind with
    /// `Q(c)`. The component must currently be opaque (`T`).
    pub(crate) fn refine_template(
        &mut self,
        tmpl: SigTemplate,
        parts: &[String],
        def: &Con,
        span: Span,
    ) -> SurfaceResult<SigTemplate> {
        let kind = refine_kind(&tmpl.kind, &tmpl.shape, parts, def, 0)
            .map_err(|k| SurfaceError::new(span, k))?;
        Ok(SigTemplate { kind, ..tmpl })
    }
}

/// Rewrites the kind of the component at `parts` to `Q(def)`.
/// `crossed` counts the `Σ` binders already crossed (the definition is
/// shifted by that amount when inserted).
fn refine_kind(
    kind: &Kind,
    shape: &Shape,
    parts: &[String],
    def: &Con,
    crossed: usize,
) -> Result<Kind, ErrorKind> {
    let name = &parts[0];
    let Some(slot) = shape.static_slot(name) else {
        return Err(ErrorKind::Unbound(name.clone()));
    };
    let n = shape.static_len();
    let Some(item) = shape.find(name) else {
        return Err(ErrorKind::Type(recmod_kernel::TypeError::Internal(
            "static slot without a shape field".to_string(),
        )));
    };
    rewrite_sigma(kind, slot, n, &mut |target, inner_crossed| {
        let total = crossed + inner_crossed;
        if parts.len() == 1 {
            match target {
                Kind::Type => Ok(Kind::Singleton(hc(shift_con(def, total as isize, 0)))),
                other => Err(ErrorKind::Other(format!(
                    "`where type {name}` applies to an opaque type component, found kind {}",
                    recmod_syntax::pretty::kind_to_string(
                        other,
                        &mut recmod_syntax::pretty::Names::new()
                    )
                ))),
            }
        } else {
            match item {
                Item::Struct(sub_shape) => refine_kind(target, sub_shape, &parts[1..], def, total),
                _ => Err(ErrorKind::WrongEntity {
                    name: name.clone(),
                    expected: "a substructure",
                }),
            }
        }
    })
}

/// Navigates a right-nested `Σ` chain to slot `slot` of `n` and rewrites
/// it with `f` (which receives the number of binders crossed).
fn rewrite_sigma(
    kind: &Kind,
    slot: usize,
    n: usize,
    f: &mut dyn FnMut(&Kind, usize) -> Result<Kind, ErrorKind>,
) -> Result<Kind, ErrorKind> {
    fn go(
        kind: &Kind,
        slot: usize,
        remaining: usize,
        crossed: usize,
        f: &mut dyn FnMut(&Kind, usize) -> Result<Kind, ErrorKind>,
    ) -> Result<Kind, ErrorKind> {
        if remaining == 1 {
            debug_assert_eq!(slot, 0);
            return f(kind, crossed);
        }
        let Kind::Sigma(k1, k2) = kind else {
            return Err(ErrorKind::Other(
                "signature kind shape mismatch".to_string(),
            ));
        };
        if slot == 0 {
            Ok(Kind::Sigma(hc(f(k1, crossed)?), k2.clone()))
        } else {
            let rest = go(k2, slot - 1, remaining - 1, crossed + 1, f)?;
            Ok(Kind::Sigma(k1.clone(), hc(rest)))
        }
    }
    if n == 0 {
        return Err(ErrorKind::Other(
            "empty signature has no type components".to_string(),
        ));
    }
    go(kind, slot, n, 0, f)
}

/// Remaps a substructure's pass-1 type (expressed under `binders_before`
/// sibling Σ binders plus its own α_sub) into the pass-2 context (the
/// single signature binder α plus α_sub): sibling binder references
/// become projections of α, outer references shift accordingly.
fn remap_slot_refs_ty(ty: &Ty, binders_before: usize, n_static: usize, shape: &Shape) -> Ty {
    struct Remap<'a> {
        s: usize,
        n: usize,
        shape: &'a Shape,
    }
    impl Remap<'_> {
        /// New index for a non-slot occurrence, or `None` when the
        /// occurrence hits a sibling slot binder.
        fn slot_or_index(&self, d: usize, i: usize) -> Result<usize, usize> {
            // Original context (innermost first): α_sub, slot_{s-1}, …,
            // slot_0, outer…  Target: α_sub, α, outer…
            let rel = i as isize - d as isize;
            if rel <= 0 {
                Ok(i) // bound within the traversal or α_sub
            } else if (rel as usize) <= self.s {
                Err(self.s - rel as usize) // sibling slot index
            } else {
                Ok((i + 1) - self.s) // outer: drop s binders, add α
            }
        }
        fn alpha_at(&self, d: usize) -> Con {
            // α sits just outside α_sub: index d+1 at depth d.
            Con::Var(d + 1)
        }
    }
    impl recmod_syntax::map::VarMap for Remap<'_> {
        fn cvar(&mut self, d: usize, i: usize) -> Con {
            match self.slot_or_index(d, i) {
                Ok(j) => Con::Var(j),
                Err(slot) => {
                    // Translate the binder position to a *static slot*
                    // projection. Binder k corresponds to the k-th static
                    // slot of the enclosing signature.
                    let _ = self.shape;
                    con_proj(self.alpha_at(d), slot, self.n)
                }
            }
        }
        fn tvar(&mut self, d: usize, i: usize) -> Term {
            match self.slot_or_index(d, i) {
                Ok(j) => Term::Var(j),
                Err(_) => unreachable!("term occurrence of a Σ binder"),
            }
        }
        fn fst(&mut self, d: usize, i: usize) -> Con {
            match self.slot_or_index(d, i) {
                Ok(j) => Con::Fst(j),
                Err(_) => unreachable!("Fst occurrence of a Σ binder"),
            }
        }
        fn snd(&mut self, d: usize, i: usize) -> Term {
            match self.slot_or_index(d, i) {
                Ok(j) => Term::Snd(j),
                Err(_) => unreachable!("snd occurrence of a Σ binder"),
            }
        }
        fn mvar(&mut self, d: usize, i: usize) -> recmod_syntax::ast::Module {
            match self.slot_or_index(d, i) {
                Ok(j) => recmod_syntax::ast::Module::Var(j),
                Err(_) => unreachable!("module occurrence of a Σ binder"),
            }
        }
    }
    recmod_syntax::map::map_ty(
        ty,
        0,
        &mut Remap {
            s: binders_before,
            n: n_static,
            shape,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::TopDec;
    use crate::parser::parse;

    fn elab_named_sig(src: &str) -> SurfaceResult<SigTemplate> {
        let p = parse(src).expect("parse");
        let TopDec::Signature { sig, .. } = &p.decls[0] else {
            panic!("expected signature")
        };
        let mut e = Elaborator::new();
        e.elab_sigexp(sig)
    }

    #[test]
    fn list_signature_layout() {
        let t = elab_named_sig(
            "signature LIST = sig
               type t
               val nil : t
               val null : t -> bool
               val cons : int * t -> t
               val uncons : t -> int * t
             end",
        )
        .unwrap();
        assert_eq!(t.kind, Kind::Type);
        assert_eq!(t.shape.static_len(), 1);
        assert_eq!(t.shape.dyn_len(), 4);
        // ty = Con(α) × (Con(α ⇀ bool) × …): first val's type mentions α.
        let Ty::Prod(first, _) = &t.ty else {
            panic!("{:?}", t.ty)
        };
        assert_eq!(**first, Ty::Con(Con::Var(0)));
    }

    #[test]
    fn transparent_type_spec_gives_singleton() {
        let t = elab_named_sig("signature S = sig type t = int val x : t end").unwrap();
        assert_eq!(t.kind, Kind::Singleton(recmod_syntax::intern::hc(Con::Int)));
        // x : t resolves to the α projection (arity-1 tuple: α itself).
        assert_eq!(t.ty, Ty::Con(Con::Var(0)));
    }

    #[test]
    fn dependent_type_specs() {
        // type t; type u = t * t — the second kind mentions the first Σ binder.
        let t = elab_named_sig("signature S = sig type t type u = t * t end").unwrap();
        let Kind::Sigma(k1, k2) = &t.kind else {
            panic!("{:?}", t.kind)
        };
        assert_eq!(**k1, Kind::Type);
        assert_eq!(
            **k2,
            Kind::Singleton(recmod_syntax::intern::hc(Con::Prod(
                recmod_syntax::intern::hc(Con::Var(0)),
                recmod_syntax::intern::hc(Con::Var(0))
            )))
        );
    }

    #[test]
    fn datatype_spec_is_structural() {
        let t =
            elab_named_sig("signature L = sig datatype t = NIL | CONS of int * t val x : t end")
                .unwrap();
        let Kind::Singleton(mu) = &t.kind else {
            panic!("{:?}", t.kind)
        };
        assert!(matches!(&**mu, Con::Mu(_, _)));
        // Constructors contribute value components: NIL, CONS, then x.
        assert_eq!(t.shape.dyn_len(), 3);
    }

    #[test]
    fn where_type_refines_opaque_component() {
        let src = "signature S = sig type t type u val x : t end";
        let p = parse(src).unwrap();
        let TopDec::Signature { sig, .. } = &p.decls[0] else {
            panic!()
        };
        let mut e = Elaborator::new();
        let tmpl = e.elab_sigexp(sig).unwrap();
        let refined = e
            .refine_template(tmpl, &["u".to_string()], &Con::Bool, Span::default())
            .unwrap();
        let Kind::Sigma(_, k2) = &refined.kind else {
            panic!()
        };
        assert_eq!(**k2, Kind::Singleton(recmod_syntax::intern::hc(Con::Bool)));
        // Refining an already-transparent component fails.
        let again = e.refine_template(refined, &["u".to_string()], &Con::Int, Span::default());
        assert!(again.is_err());
    }

    #[test]
    fn duplicate_spec_rejected() {
        assert!(matches!(
            elab_named_sig("signature S = sig type t type t end"),
            Err(SurfaceError {
                kind: ErrorKind::Duplicate(_),
                ..
            })
        ));
    }

    #[test]
    fn substructure_signature() {
        let t = elab_named_sig(
            "signature S = sig
               structure Sub : sig type v val get : v end
               val use : Sub.v -> int
             end",
        )
        .unwrap();
        assert_eq!(t.shape.static_len(), 1);
        assert_eq!(t.shape.dyn_len(), 2);
        // use : Sub.v -> int where Sub.v projects α (arity-1 outer tuple,
        // arity-1 inner tuple → just α).
        let Ty::Prod(_, second) = &t.ty else {
            panic!("{:?}", t.ty)
        };
        assert_eq!(
            **second,
            Ty::Con(Con::Arrow(
                recmod_syntax::intern::hc(Con::Var(0)),
                recmod_syntax::intern::hc(Con::Int)
            ))
        );
    }

    #[test]
    fn elaboration_restores_depth() {
        let mut e = Elaborator::new();
        let p = parse("signature S = sig type t val x : t end").unwrap();
        let TopDec::Signature { sig, .. } = &p.decls[0] else {
            panic!()
        };
        let _ = e.elab_sigexp(sig).unwrap();
        assert_eq!(e.depth(), 0);
    }
}
