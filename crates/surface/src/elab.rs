//! The elaborator: external language → internal language.
//!
//! Elaboration follows Harper–Stone in outline: structures become pairs
//! of right-nested tuples (static constructors / dynamic terms) with a
//! [`Shape`](crate::shape::Shape) recording the field layout; signatures become
//! `[α:κ.σ]` templates; functors become HMM pairs; `structure rec`
//! becomes the internal `fix(s:S.M)` with the annotation rendered as a
//! recursively-dependent signature exactly as the paper's §4.1
//! prescribes ("the elaborator implicitly renders every recursively
//! dependent signature to be fully transparent … by inspection of the
//! module being defined").
//!
//! The elaborator keeps the kernel context in lockstep with its own
//! scope structure: every internal binder it introduces is pushed onto
//! the [`Ctx`], so de Bruijn indices are always `depth − 1 − position`.

use recmod_kernel::{Ctx, Entry, Tc, TypeError};
use recmod_syntax::ast::{Con, Kind, Term};
use recmod_syntax::intern::hc;
use recmod_syntax::subst::shift_con;

use crate::ast::{Path, TyExp};
use crate::env::{depth_delta, ElabEnv, Entity, StructEntity};
use crate::error::{ErrorKind, Span, SurfaceError, SurfaceResult};
use crate::shape::{con_proj, term_proj, DataInfo, Item};

/// One elaborated top-level binding, ready for linking.
#[derive(Debug, Clone)]
pub struct TopBinding {
    /// The surface name (or a generated name for hidden bindings).
    pub name: String,
    /// The principal internal signature (for structures/functors) or
    /// type (rendered) of the binding.
    pub describe: String,
    /// The dynamic part, used by the linker. References earlier
    /// bindings via `snd(s)`/variables at matching indices.
    pub dynamic: Term,
    /// The static (constructor) part, when the binding has one
    /// (structures and functors; `None` for plain values).
    pub static_part: Option<Con>,
    /// Whether the context entry is a structure (`snd` reference) or a
    /// term variable.
    pub is_structure: bool,
    /// Wall-clock nanoseconds spent elaborating (and kernel-checking)
    /// this binding's top-level declaration.
    pub elab_nanos: u64,
    /// Kernel judgement counters attributable to this binding's
    /// declaration (a delta over the elaborator's shared checker).
    pub kernel: recmod_kernel::KernelStats,
}

/// The elaborator state.
#[derive(Debug)]
pub struct Elaborator {
    /// The kernel checker.
    pub tc: Tc,
    /// The internal typing context, mirroring elaborator scope.
    pub ctx: Ctx,
    /// The name environment.
    pub env: ElabEnv,
    /// Completed top-level bindings in order.
    pub bindings: Vec<TopBinding>,
    pub(crate) gensym: usize,
    /// Live structural-recursion depth across the elab_* family.
    pub(crate) rec_depth: usize,
    /// Monotone call counter, used to amortize deadline clock reads.
    pub(crate) ticks: u64,
    /// Span of the top-level declaration currently being elaborated.
    /// Limit diagnostics raised deep in the kernel have no span of
    /// their own; this anchors them to the declaration being checked.
    pub(crate) current_decl: Span,
}

impl Elaborator {
    /// A fresh elaborator with an equi-recursive kernel.
    pub fn new() -> Self {
        Self::with_tc(Tc::new())
    }

    /// A fresh elaborator whose kernel and own recursion guards honor
    /// the given [`recmod_kernel::Limits`].
    pub fn with_limits(limits: recmod_kernel::Limits) -> Self {
        Self::with_tc(Tc::with_limits(limits))
    }

    /// A fresh elaborator with a caller-provided kernel (e.g. a
    /// different [`recmod_kernel::RecMode`] or fuel budget).
    pub fn with_tc(tc: Tc) -> Self {
        Elaborator {
            tc,
            ctx: Ctx::new(),
            env: ElabEnv::new(),
            bindings: Vec::new(),
            gensym: 0,
            rec_depth: 0,
            ticks: 0,
            current_decl: Span::default(),
        }
    }

    /// Resets all per-program state (context, environment, bindings,
    /// gensym, recursion guards) and re-arms the kernel's fuel and
    /// deadline from `limits`, while keeping the kernel's memo tables
    /// warm. A batch driver calls this between files so interned nodes,
    /// whnf results, and equivalence verdicts carry over; soundness of
    /// the carry-over is argued at [`Tc::renew`].
    pub fn renew(&mut self, limits: recmod_kernel::Limits) {
        self.ctx = Ctx::new();
        self.env = ElabEnv::new();
        self.bindings.clear();
        self.gensym = 0;
        self.rec_depth = 0;
        self.ticks = 0;
        self.current_decl = Span::default();
        self.tc.renew(limits);
    }

    /// Runs `f` one structural level deeper, failing with a limit
    /// diagnostic at `span` once the kernel's `max_depth` levels are
    /// live (the bound is shared with [`Tc`]) or the deadline has
    /// passed. Every recursive `elab_*` entry point routes through
    /// this, so arbitrarily nested ASTs yield
    /// [`ErrorKind::Limit`](crate::error::ErrorKind) instead of a
    /// stack overflow.
    pub(crate) fn with_depth<T>(
        &mut self,
        span: Span,
        f: impl FnOnce(&mut Self) -> SurfaceResult<T>,
    ) -> SurfaceResult<T> {
        let limits = *self.tc.limits();
        if self.rec_depth >= limits.max_depth {
            return Err(SurfaceError::new(
                self.anchor(span),
                ErrorKind::Limit(limits.depth_error("elaborate")),
            ));
        }
        self.ticks = self.ticks.wrapping_add(1);
        if self.ticks.is_multiple_of(256) && limits.deadline_passed() {
            return Err(SurfaceError::new(
                self.anchor(span),
                ErrorKind::Limit(limits.deadline_error("elaborate")),
            ));
        }
        self.rec_depth += 1;
        let r = f(self);
        self.rec_depth -= 1;
        r
    }

    /// Current internal-context depth.
    pub fn depth(&self) -> usize {
        self.ctx.len()
    }

    /// Runs one root kernel judgement, attributing its wall-clock to the
    /// `stage.kernel` telemetry stage (exclusive time — nested stages
    /// subtract themselves). Every surface→kernel call site routes
    /// through this so `--stats` can say how much of elaboration is
    /// kernel time.
    pub(crate) fn kernel<R>(&mut self, f: impl FnOnce(&Tc, &mut Ctx) -> R) -> R {
        let Elaborator { tc, ctx, .. } = self;
        recmod_telemetry::stage("stage.kernel", || f(tc, ctx))
    }

    pub(crate) fn fresh(&mut self, prefix: &str) -> String {
        self.gensym += 1;
        format!("${prefix}${}", self.gensym)
    }

    pub(crate) fn err<T>(&self, span: Span, kind: ErrorKind) -> SurfaceResult<T> {
        Err(SurfaceError::new(self.anchor(span), kind))
    }

    pub(crate) fn terr(&self, span: Span, e: TypeError) -> SurfaceError {
        SurfaceError::new(self.anchor(span), ErrorKind::Type(e))
    }

    /// Anchors a default (empty) span to the declaration currently
    /// being elaborated, so deadline/fuel diagnostics raised mid-kernel
    /// still point at a real source location.
    pub(crate) fn anchor(&self, span: Span) -> Span {
        if span == Span::default() {
            self.current_decl
        } else {
            span
        }
    }

    // ----- path resolution ------------------------------------------------

    /// Resolves a (possibly dotted) structure path to a view of the
    /// denoted structure, expressed at the current depth.
    pub(crate) fn resolve_struct(&self, path: &Path) -> SurfaceResult<StructEntity> {
        let first = &path.parts[0];
        let entity = self
            .env
            .lookup(first)
            .ok_or_else(|| SurfaceError::new(path.span, ErrorKind::Unbound(first.clone())))?;
        let Entity::Struct(base) = entity else {
            return Err(SurfaceError::new(
                path.span,
                ErrorKind::WrongEntity {
                    name: first.clone(),
                    expected: "a structure",
                },
            ));
        };
        let mut cur = StructEntity {
            shape: base.shape.clone(),
            statics: base.statics_at(self.depth()),
            dynamics: base.dynamics_at(self.depth()),
            depth: self.depth(),
        };
        for part in &path.parts[1..] {
            cur = self.project_substruct(&cur, part, path.span)?;
        }
        Ok(cur)
    }

    /// Resolves all but the last component of a dotted path to a
    /// structure, returning the structure and the final field name.
    pub(crate) fn resolve_prefix<'p>(
        &self,
        path: &'p Path,
    ) -> SurfaceResult<(StructEntity, &'p str)> {
        debug_assert!(path.parts.len() >= 2);
        let prefix = Path {
            parts: path.parts[..path.parts.len() - 1].to_vec(),
            span: path.span,
        };
        let st = self.resolve_struct(&prefix)?;
        let field = path
            .parts
            .last()
            .ok_or_else(|| SurfaceError::internal(path.span, "resolve_prefix on an empty path"))?;
        Ok((st, field.as_str()))
    }

    fn project_substruct(
        &self,
        parent: &StructEntity,
        name: &str,
        span: Span,
    ) -> SurfaceResult<StructEntity> {
        match parent.shape.find(name) {
            Some(Item::Struct(sub_shape)) => {
                let s_slot = parent.shape.static_slot(name).ok_or_else(|| {
                    SurfaceError::internal(span, "substructure without a static slot")
                })?;
                let d_slot = parent.shape.dyn_slot(name).ok_or_else(|| {
                    SurfaceError::internal(span, "substructure without a dynamic slot")
                })?;
                Ok(StructEntity {
                    shape: sub_shape.clone(),
                    statics: con_proj(parent.statics.clone(), s_slot, parent.shape.static_len()),
                    dynamics: term_proj(parent.dynamics.clone(), d_slot, parent.shape.dyn_len()),
                    depth: parent.depth,
                })
            }
            Some(_) => Err(SurfaceError::new(
                span,
                ErrorKind::WrongEntity {
                    name: name.to_string(),
                    expected: "a structure",
                },
            )),
            None => Err(SurfaceError::new(
                span,
                ErrorKind::Unbound(name.to_string()),
            )),
        }
    }

    /// Resolves a type path to a constructor at the current depth.
    pub(crate) fn resolve_ty_path(&self, path: &Path) -> SurfaceResult<Con> {
        if path.parts.len() == 1 {
            let name = &path.parts[0];
            match self.env.lookup(name) {
                Some(Entity::TyAlias { con, depth }) | Some(Entity::Data { con, depth, .. }) => {
                    Ok(shift_con(con, depth_delta(*depth, self.depth()), 0))
                }
                Some(_) => self.err(
                    path.span,
                    ErrorKind::WrongEntity {
                        name: name.clone(),
                        expected: "a type",
                    },
                ),
                None => self.err(path.span, ErrorKind::Unbound(name.clone())),
            }
        } else {
            let (st, field) = self.resolve_prefix(path)?;
            match st.shape.find(field) {
                Some(Item::Ty) | Some(Item::Data(_)) => {
                    let slot = st.shape.static_slot(field).ok_or_else(|| {
                        SurfaceError::internal(path.span, "type item without a static slot")
                    })?;
                    Ok(con_proj(st.statics, slot, st.shape.static_len()))
                }
                Some(_) => self.err(
                    path.span,
                    ErrorKind::WrongEntity {
                        name: field.to_string(),
                        expected: "a type",
                    },
                ),
                None => self.err(path.span, ErrorKind::Unbound(path.dotted())),
            }
        }
    }

    /// Resolves a value path to a term at the current depth.
    pub(crate) fn resolve_val_path(&self, path: &Path) -> SurfaceResult<Term> {
        if path.parts.len() == 1 {
            let name = &path.parts[0];
            match self.env.lookup(name) {
                Some(Entity::Val { pos }) => Ok(Term::Var(self.index_of(*pos))),
                Some(Entity::Ctor(c)) => Ok(Term::Var(self.index_of(c.pos))),
                Some(_) => self.err(
                    path.span,
                    ErrorKind::WrongEntity {
                        name: name.clone(),
                        expected: "a value",
                    },
                ),
                None => self.err(path.span, ErrorKind::Unbound(name.clone())),
            }
        } else {
            let (st, field) = self.resolve_prefix(path)?;
            match st.shape.find(field) {
                Some(Item::Val) => {
                    let slot = st.shape.dyn_slot(field).ok_or_else(|| {
                        SurfaceError::internal(path.span, "val item without a dynamic slot")
                    })?;
                    Ok(term_proj(st.dynamics, slot, st.shape.dyn_len()))
                }
                Some(_) => self.err(
                    path.span,
                    ErrorKind::WrongEntity {
                        name: field.to_string(),
                        expected: "a value",
                    },
                ),
                None => self.err(path.span, ErrorKind::Unbound(path.dotted())),
            }
        }
    }

    /// How a constructor used in an expression or pattern resolves.
    pub(crate) fn resolve_ctor(&self, path: &Path) -> SurfaceResult<CtorRes> {
        if path.parts.len() == 1 {
            let name = &path.parts[0];
            match self.env.lookup(name) {
                Some(Entity::Ctor(c)) => Ok(CtorRes {
                    data_con: shift_con(&c.data_con, depth_delta(c.depth, self.depth()), 0),
                    index: c.index,
                    has_arg: c.has_arg,
                    info: c.info.clone(),
                    value: Term::Var(self.index_of(c.pos)),
                }),
                _ => self.err(
                    path.span,
                    ErrorKind::WrongEntity {
                        name: name.clone(),
                        expected: "a datatype constructor",
                    },
                ),
            }
        } else {
            let (st, field) = self.resolve_prefix(path)?;
            let Some((ty_name, info)) = st.shape.data_of_ctor(field) else {
                return self.err(
                    path.span,
                    ErrorKind::WrongEntity {
                        name: field.to_string(),
                        expected: "a datatype constructor",
                    },
                );
            };
            let (index, has_arg) = info.find(field).ok_or_else(|| {
                SurfaceError::internal(path.span, "data_of_ctor hit without the constructor")
            })?;
            let t_slot = st.shape.static_slot(ty_name).ok_or_else(|| {
                SurfaceError::internal(path.span, "datatype without a static slot")
            })?;
            let v_slot = st.shape.dyn_slot(field).ok_or_else(|| {
                SurfaceError::internal(path.span, "constructor without a val slot")
            })?;
            Ok(CtorRes {
                data_con: con_proj(st.statics.clone(), t_slot, st.shape.static_len()),
                index,
                has_arg,
                info: info.clone(),
                value: term_proj(st.dynamics, v_slot, st.shape.dyn_len()),
            })
        }
    }

    /// Does `name` denote a datatype constructor here? (Used to decide
    /// whether a bare identifier pattern is a nullary-constructor pattern.)
    pub(crate) fn is_ctor(&self, path: &Path) -> bool {
        if path.parts.len() == 1 {
            matches!(self.env.lookup(&path.parts[0]), Some(Entity::Ctor(_)))
        } else {
            self.resolve_prefix(path)
                .map(|(st, field)| st.shape.data_of_ctor(field).is_some())
                .unwrap_or(false)
        }
    }

    /// Converts an absolute context position to a de Bruijn index at the
    /// current depth.
    pub(crate) fn index_of(&self, pos: usize) -> usize {
        self.depth() - 1 - pos
    }

    // ----- types ------------------------------------------------------------

    /// Elaborates a surface type to a monotype constructor.
    pub fn elab_ty(&mut self, t: &TyExp) -> SurfaceResult<Con> {
        let _j = recmod_telemetry::judgement_span("surface.elab_ty");
        self.with_depth(t.span(), |this| this.elab_ty_inner(t))
    }

    fn elab_ty_inner(&mut self, t: &TyExp) -> SurfaceResult<Con> {
        match t {
            TyExp::Int(_) => Ok(Con::Int),
            TyExp::Bool(_) => Ok(Con::Bool),
            TyExp::Unit(_) => Ok(Con::UnitTy),
            TyExp::Path(p) => self.resolve_ty_path(p),
            TyExp::Prod(parts, _) => {
                let mut out = Vec::with_capacity(parts.len());
                for p in parts {
                    out.push(self.elab_ty(p)?);
                }
                Ok(prod_chain(out))
            }
            TyExp::Arrow(a, b, _) => {
                let ca = self.elab_ty(a)?;
                let cb = self.elab_ty(b)?;
                Ok(Con::Arrow(hc(ca), hc(cb)))
            }
        }
    }

    /// Elaborates a datatype declaration's `μ` constructor and metadata.
    /// The datatype's own name is in scope inside its constructors'
    /// argument types (bound to the `μ` variable).
    pub(crate) fn elab_datatype_con(
        &mut self,
        name: &str,
        ctors: &[crate::ast::CtorDecl],
    ) -> SurfaceResult<(Con, DataInfo)> {
        // Elaborate summands under the μ binder.
        self.ctx.push(Entry::Con(Kind::Type));
        let mark = self.env.mark();
        self.env.insert(
            name,
            Entity::TyAlias {
                con: Con::Var(0),
                depth: self.depth(),
            },
        );
        let mut summands = Vec::with_capacity(ctors.len());
        let mut info = Vec::with_capacity(ctors.len());
        let mut result: SurfaceResult<()> = Ok(());
        for c in ctors {
            match &c.arg {
                Some(t) => match self.elab_ty(t) {
                    Ok(con) => {
                        summands.push(hc(con));
                        info.push((c.name.clone(), true));
                    }
                    Err(e) => {
                        result = Err(e);
                        break;
                    }
                },
                None => {
                    summands.push(hc(Con::UnitTy));
                    info.push((c.name.clone(), false));
                }
            }
        }
        self.env.reset(mark);
        self.ctx.truncate(self.depth() - 1);
        result?;
        let mu = Con::Mu(hc(Kind::Type), hc(Con::Sum(summands)));
        Ok((mu, DataInfo { ctors: info }))
    }

    /// The sum constructor reached by unrolling a datatype's `μ` (needed
    /// as the annotation on injections and for branch types). Recursive
    /// modules wrap the datatype's own `μ` in a module-level `μ` (the §5
    /// nested-tower situation), so unrolling repeats until the sum
    /// appears.
    pub(crate) fn unrolled_sum(&mut self, data_con: &Con, span: Span) -> SurfaceResult<Con> {
        let mut cur = data_con.clone();
        for _ in 0..64 {
            let w = self
                .kernel(|tc, ctx| tc.whnf(ctx, &cur))
                .map_err(|e| self.terr(span, e))?;
            match w {
                Con::Sum(_) => return Ok(w),
                Con::Mu(_, _) if recmod_kernel::whnf::is_contractive(&w) => {
                    cur = recmod_kernel::whnf::unroll_mu(&w).map_err(|e| self.terr(span, e))?;
                }
                other => {
                    return self.err(
                        span,
                        ErrorKind::Other(format!(
                            "not a datatype: {}",
                            recmod_syntax::pretty::con_to_string(
                                &other,
                                &mut recmod_syntax::pretty::Names::new()
                            )
                        )),
                    )
                }
            }
        }
        self.err(
            span,
            ErrorKind::Other("datatype unrolling did not converge".into()),
        )
    }
}

impl Default for Elaborator {
    fn default() -> Self {
        Self::new()
    }
}

/// A resolved constructor occurrence, at the current depth.
#[derive(Debug, Clone)]
pub(crate) struct CtorRes {
    /// The datatype's `μ` constructor.
    pub data_con: Con,
    /// The constructor's summand index.
    pub index: usize,
    /// Whether it carries an argument (recorded for completeness; the
    /// pattern code recovers arity from `info`).
    #[allow(dead_code)]
    pub has_arg: bool,
    /// All constructors of the datatype.
    pub info: DataInfo,
    /// The constructor *value* (a total function or a rolled value).
    pub value: Term,
}

/// Builds a right-nested product monotype (`unit` when empty).
pub(crate) fn prod_chain(parts: Vec<Con>) -> Con {
    let mut rev = parts.into_iter().rev();
    match rev.next() {
        None => Con::UnitTy,
        Some(last) => rev.fold(last, |acc, c| Con::Prod(hc(c), hc(acc))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::CtorDecl;

    #[test]
    fn elab_base_types() {
        let mut e = Elaborator::new();
        assert_eq!(e.elab_ty(&TyExp::Int(Span::default())).unwrap(), Con::Int);
        let t = TyExp::Prod(
            vec![TyExp::Int(Span::default()), TyExp::Bool(Span::default())],
            Span::default(),
        );
        assert_eq!(
            e.elab_ty(&t).unwrap(),
            Con::Prod(
                recmod_syntax::intern::hc(Con::Int),
                recmod_syntax::intern::hc(Con::Bool)
            )
        );
    }

    #[test]
    fn datatype_builds_mu_of_sum() {
        let mut e = Elaborator::new();
        let ctors = vec![
            CtorDecl {
                name: "NIL".into(),
                arg: None,
                span: Span::default(),
            },
            CtorDecl {
                name: "CONS".into(),
                arg: Some(TyExp::Prod(
                    vec![
                        TyExp::Int(Span::default()),
                        TyExp::Path(Path::simple("t", Span::default())),
                    ],
                    Span::default(),
                )),
                span: Span::default(),
            },
        ];
        let (mu, info) = e.elab_datatype_con("t", &ctors).unwrap();
        assert_eq!(
            mu,
            Con::Mu(
                recmod_syntax::intern::hc(Kind::Type),
                recmod_syntax::intern::hc(Con::Sum(vec![
                    recmod_syntax::intern::hc(Con::UnitTy),
                    recmod_syntax::intern::hc(Con::Prod(
                        recmod_syntax::intern::hc(Con::Int),
                        recmod_syntax::intern::hc(Con::Var(0))
                    )),
                ]))
            )
        );
        assert_eq!(info.find("CONS"), Some((1, true)));
        assert_eq!(e.depth(), 0, "μ binder popped");
    }

    #[test]
    fn unbound_type_reported() {
        let mut e = Elaborator::new();
        let t = TyExp::Path(Path::simple("mystery", Span::default()));
        assert!(matches!(
            e.elab_ty(&t),
            Err(SurfaceError {
                kind: ErrorKind::Unbound(_),
                ..
            })
        ));
    }
}
