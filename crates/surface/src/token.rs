//! Tokens of the external language.

use std::fmt;

use crate::error::Span;

/// A lexical token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    // Keywords
    /// `signature`
    Signature,
    /// `structure`
    Structure,
    /// `functor`
    Functor,
    /// `sig`
    Sig,
    /// `struct`
    Struct,
    /// `end`
    End,
    /// `val`
    Val,
    /// `fun`
    Fun,
    /// `type`
    Type,
    /// `datatype`
    Datatype,
    /// `of`
    Of,
    /// `rec`
    Rec,
    /// `and`
    And,
    /// `where`
    Where,
    /// `let`
    Let,
    /// `in`
    In,
    /// `if`
    If,
    /// `then`
    Then,
    /// `else`
    Else,
    /// `case`
    Case,
    /// `fn`
    Fn,
    /// `raise`
    Raise,
    /// `true`
    True,
    /// `false`
    False,
    // Punctuation and operators
    /// `=`
    Eq,
    /// `=>`
    DArrow,
    /// `->`
    Arrow,
    /// `*`
    Star,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `<`
    Lt,
    /// `:`
    Colon,
    /// `:>`
    Seal,
    /// `.`
    Dot,
    /// `,`
    Comma,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `|`
    Bar,
    /// `_`
    Wild,
    /// `;`
    Semi,
    // Literals and identifiers
    /// An integer literal.
    Int(i64),
    /// An identifier (either case; the parser distinguishes by role).
    Ident(String),
    /// End of input.
    Eof,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Tok::Signature => "signature",
            Tok::Structure => "structure",
            Tok::Functor => "functor",
            Tok::Sig => "sig",
            Tok::Struct => "struct",
            Tok::End => "end",
            Tok::Val => "val",
            Tok::Fun => "fun",
            Tok::Type => "type",
            Tok::Datatype => "datatype",
            Tok::Of => "of",
            Tok::Rec => "rec",
            Tok::And => "and",
            Tok::Where => "where",
            Tok::Let => "let",
            Tok::In => "in",
            Tok::If => "if",
            Tok::Then => "then",
            Tok::Else => "else",
            Tok::Case => "case",
            Tok::Fn => "fn",
            Tok::Raise => "raise",
            Tok::True => "true",
            Tok::False => "false",
            Tok::Eq => "=",
            Tok::DArrow => "=>",
            Tok::Arrow => "->",
            Tok::Star => "*",
            Tok::Plus => "+",
            Tok::Minus => "-",
            Tok::Lt => "<",
            Tok::Colon => ":",
            Tok::Seal => ":>",
            Tok::Dot => ".",
            Tok::Comma => ",",
            Tok::LParen => "(",
            Tok::RParen => ")",
            Tok::Bar => "|",
            Tok::Wild => "_",
            Tok::Semi => ";",
            Tok::Int(n) => return write!(f, "{n}"),
            Tok::Ident(s) => return f.write_str(s),
            Tok::Eof => "<eof>",
        };
        f.write_str(s)
    }
}

/// A token together with its source span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Spanned {
    /// The token.
    pub tok: Tok,
    /// Its location.
    pub span: Span,
}
