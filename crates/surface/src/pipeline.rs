//! The compilation pipeline: parse → elaborate → typecheck → link.

use recmod_syntax::ast::Term;

use crate::elab::Elaborator;
use crate::error::{ErrorKind, SurfaceError, SurfaceResult};
use crate::link::link_program;
use crate::parser::parse;

/// The result of compiling a program.
#[derive(Debug)]
pub struct Compiled {
    /// The elaborator, holding the final context, environment, and the
    /// per-binding splits (useful for inspection and tests).
    pub elab: Elaborator,
    /// The elaborated main expression, if the program had one.
    pub main: Option<Term>,
}

impl Compiled {
    /// The closed, linked program term for the evaluator.
    pub fn program(&self) -> Term {
        link_program(&self.elab.bindings, self.main.as_ref())
    }

    /// `(name, description)` pairs for the top-level bindings.
    pub fn summaries(&self) -> Vec<(String, String)> {
        self.elab
            .bindings
            .iter()
            .map(|b| (b.name.clone(), b.describe.clone()))
            .collect()
    }
}

/// Compiles a program with a default (equi-recursive) kernel.
///
/// # Errors
///
/// Lexical, syntax, scoping, and type errors, each carrying a source
/// span (render with [`SurfaceError::render`]).
pub fn compile(src: &str) -> SurfaceResult<Compiled> {
    compile_with(Elaborator::new(), src)
}

/// Compiles with a caller-supplied elaborator (custom kernel mode/fuel).
pub fn compile_with(mut elab: Elaborator, src: &str) -> SurfaceResult<Compiled> {
    let prog = parse(src)?;
    for d in &prog.decls {
        elab.elab_topdec(d)?;
    }
    let main = match &prog.main {
        Some(e) => {
            let term = elab.elab_exp(e)?;
            elab.tc
                .synth_term(&mut elab.ctx, &term)
                .map_err(|err| SurfaceError::new(e.span(), ErrorKind::Type(err)))?;
            Some(term)
        }
        None => None,
    };
    Ok(Compiled { elab, main })
}
