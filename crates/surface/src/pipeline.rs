//! The compilation pipeline: parse → elaborate → typecheck → link.

use recmod_syntax::ast::Term;
use recmod_telemetry::{stage, Limits};

use crate::elab::Elaborator;
use crate::error::{ErrorKind, SurfaceError, SurfaceResult};
use crate::link::link_program;
use crate::parser::{parse, parse_with};

/// The result of compiling a program.
#[derive(Debug)]
pub struct Compiled {
    /// The elaborator, holding the final context, environment, and the
    /// per-binding splits (useful for inspection and tests).
    pub elab: Elaborator,
    /// The elaborated main expression, if the program had one.
    pub main: Option<Term>,
}

impl Compiled {
    /// The closed, linked program term for the evaluator.
    pub fn program(&self) -> Term {
        link_program(&self.elab.bindings, self.main.as_ref())
    }

    /// `(name, description)` pairs for the top-level bindings.
    pub fn summaries(&self) -> Vec<(String, String)> {
        self.elab
            .bindings
            .iter()
            .map(|b| (b.name.clone(), b.describe.clone()))
            .collect()
    }
}

/// Compiles a program with a default (equi-recursive) kernel.
///
/// # Errors
///
/// Lexical, syntax, scoping, and type errors, each carrying a source
/// span (render with [`SurfaceError::render`]).
pub fn compile(src: &str) -> SurfaceResult<Compiled> {
    compile_with(Elaborator::new(), src)
}

/// Compiles with a caller-supplied elaborator (custom kernel mode/fuel).
pub fn compile_with(mut elab: Elaborator, src: &str) -> SurfaceResult<Compiled> {
    // A failure snapshot swallowed by an earlier run on this thread must
    // never become this run's provenance.
    recmod_telemetry::diag::clear_failure();
    let prog = parse(src)?;
    let main = stage("stage.elab", || -> SurfaceResult<Option<Term>> {
        for d in &prog.decls {
            elab.elab_topdec(d)?;
        }
        match &prog.main {
            Some(e) => {
                let term = elab.elab_exp(e)?;
                elab.kernel(|tc, ctx| tc.synth_term(ctx, &term))
                    .map_err(|err| SurfaceError::new(e.span(), ErrorKind::Type(err)))?;
                Ok(Some(term))
            }
            None => Ok(None),
        }
    })?;
    Ok(Compiled { elab, main })
}

/// Compiles under resource `limits`, collecting every diagnostic the
/// run produces instead of stopping at the first.
///
/// The parser recovers at declaration boundaries; elaboration then
/// continues past a failed top-level declaration (its bindings are
/// simply absent downstream, which may cascade into unbound-name
/// errors — those are still real positions in the source). A resource
/// limit aborts the run, since later work would only hit it again.
///
/// # Errors
///
/// Every diagnostic found, ordered by source position; the vector is
/// never empty on `Err`.
pub fn compile_with_limits(src: &str, limits: &Limits) -> Result<Compiled, Vec<SurfaceError>> {
    compile_with_limits_in(Elaborator::with_limits(*limits), src).map_err(|(errs, _)| errs)
}

/// Like [`compile_with_limits`], but reuses a caller-supplied
/// elaborator — and hands it back on failure, so a batch driver can
/// keep a warm typechecker (interner, whnf memo, equivalence cache)
/// across files. The caller is responsible for resetting per-run state
/// first (see `Elaborator::renew`).
///
/// # Errors
///
/// Every diagnostic found, ordered by source position, paired with the
/// elaborator for reuse; the vector is never empty on `Err`.
#[allow(clippy::result_large_err)]
pub fn compile_with_limits_in(
    mut elab: Elaborator,
    src: &str,
) -> Result<Compiled, (Vec<SurfaceError>, Elaborator)> {
    // See `compile_with`: stale snapshots must not leak across runs.
    recmod_telemetry::diag::clear_failure();
    let mut errors: Vec<SurfaceError> = Vec::new();
    let limits = *elab.tc.limits();
    let prog = match parse_with(src, &limits) {
        Ok(p) => p,
        Err(errs) => {
            // Parsing already recovered what it could; elaborating the
            // partial program would double-report, so stop here.
            return Err((errs, elab));
        }
    };
    let main = stage("stage.elab", || {
        for d in &prog.decls {
            if let Err(e) = elab.elab_topdec(d) {
                let stop = e.is_limit();
                errors.push(e);
                if stop {
                    return None;
                }
            }
        }
        match &prog.main {
            Some(e) => {
                let checked = elab.elab_exp(e).and_then(|term| {
                    elab.kernel(|tc, ctx| tc.synth_term(ctx, &term))
                        .map_err(|err| SurfaceError::new(e.span(), ErrorKind::Type(err)))?;
                    Ok(term)
                });
                match checked {
                    Ok(term) => Some(Some(term)),
                    Err(e) => {
                        errors.push(e);
                        Some(None)
                    }
                }
            }
            None => Some(None),
        }
    });
    let main = match main {
        Some(m) => m,
        None => {
            // A resource limit aborted the run.
            errors.sort_by_key(|e| (e.span.start, e.span.end));
            return Err((errors, elab));
        }
    };
    if errors.is_empty() {
        Ok(Compiled { elab, main })
    } else {
        errors.sort_by_key(|e| (e.span.start, e.span.end));
        Err((errors, elab))
    }
}
