//! Elaboration of expressions, patterns, and core declarations.
//!
//! Declarations inside `struct … end` and `let … in` bodies elaborate to
//! a chain of `let`-bound terms; the [`BodyAcc`] accumulator records, for
//! each declaration, its dynamic term, its shape field, and its static
//! (type) contribution. The internal context is pushed in lockstep, so a
//! later declaration's references are ordinary de Bruijn indices.

use recmod_kernel::Entry;
use recmod_syntax::ast::{Con, PrimOp, Term, Ty};
use recmod_syntax::subst::{shift_con, shift_term};

use crate::ast::{BinOp, Dec, Exp, Pat};
use crate::elab::{CtorRes, Elaborator};
use crate::error::{ErrorKind, Span, SurfaceError, SurfaceResult};
use crate::shape::Item;

/// Accumulator for a declaration sequence.
#[derive(Debug)]
pub(crate) struct BodyAcc {
    /// Context depth before the first declaration.
    pub base_depth: usize,
    /// Environment mark before the first declaration.
    pub env_mark: usize,
    /// Dynamic terms, one per pushed context entry, in push order;
    /// `lets[i]` is expressed at depth `base_depth + i`.
    pub lets: Vec<Term>,
    /// Static components: `(name, constructor, depth at elaboration)`.
    pub statics: Vec<(String, Con, usize)>,
    /// Shape fields in declaration order.
    pub fields: Vec<(String, Item)>,
}

impl BodyAcc {
    pub(crate) fn dyn_len(&self) -> usize {
        self.lets.len()
    }
}

impl Elaborator {
    pub(crate) fn begin_body(&self) -> BodyAcc {
        BodyAcc {
            base_depth: self.depth(),
            env_mark: self.env.mark(),
            lets: Vec::new(),
            statics: Vec::new(),
            fields: Vec::new(),
        }
    }

    /// Pushes one dynamic binding: synthesizes its type (so later
    /// references typecheck), extends the context, and records the term.
    pub(crate) fn push_dynamic(
        &mut self,
        acc: &mut BodyAcc,
        term: Term,
        span: Span,
    ) -> SurfaceResult<usize> {
        let typing = self
            .kernel(|tc, ctx| tc.synth_term(ctx, &term))
            .map_err(|e| self.terr(span, e))?;
        self.ctx.push(Entry::Term(typing.ty, typing.valuable));
        acc.lets.push(term);
        Ok(self.depth() - 1) // the new entry's position
    }

    /// Elaborates one declaration into the accumulator.
    pub(crate) fn elab_dec(&mut self, dec: &Dec, acc: &mut BodyAcc) -> SurfaceResult<()> {
        let _j = recmod_telemetry::judgement_span("surface.elab_dec");
        self.with_depth(dec.span(), |this| this.elab_dec_inner(dec, acc))
    }

    fn elab_dec_inner(&mut self, dec: &Dec, acc: &mut BodyAcc) -> SurfaceResult<()> {
        match dec {
            Dec::Type { name, def, .. } => {
                let con = self.elab_ty(def)?;
                self.env.insert(
                    name.clone(),
                    crate::env::Entity::TyAlias {
                        con: con.clone(),
                        depth: self.depth(),
                    },
                );
                acc.statics.push((name.clone(), con, self.depth()));
                acc.fields.push((name.clone(), Item::Ty));
                Ok(())
            }
            Dec::Datatype { name, ctors, span } => {
                let (mu, info) = self.elab_datatype_con(name, ctors)?;
                self.env.insert(
                    name.clone(),
                    crate::env::Entity::Data {
                        con: mu.clone(),
                        depth: self.depth(),
                        info: info.clone(),
                    },
                );
                acc.statics.push((name.clone(), mu.clone(), self.depth()));
                acc.fields.push((name.clone(), Item::Data(info.clone())));
                // Constructor values.
                let sum = self.unrolled_sum(&mu, *span)?;
                let Con::Sum(summands) = &sum else {
                    return self.err(*span, ErrorKind::Other("datatype sum expected".into()));
                };
                let data_depth = self.depth();
                for (i, (cname, has_arg)) in info.ctors.iter().enumerate() {
                    let term = if *has_arg {
                        // λx:argᵢ. roll[μ] injᵢ[sum] x — shift annotations
                        // under the λ binder.
                        Term::Lam(
                            Box::new(Ty::Con(summands[i].take())),
                            Box::new(Term::Roll(
                                shift_con(&mu, 1, 0),
                                Box::new(Term::Inj(
                                    i,
                                    shift_con(&sum, 1, 0),
                                    Box::new(Term::Var(0)),
                                )),
                            )),
                        )
                    } else {
                        Term::Roll(
                            mu.clone(),
                            Box::new(Term::Inj(i, sum.clone(), Box::new(Term::Star))),
                        )
                    };
                    // Re-shift the mu/sum to the current depth (entries
                    // accumulate as constructors are pushed).
                    let delta = (self.depth() - data_depth) as isize;
                    let term = shift_term(&term, delta, 0);
                    let pos = self.push_dynamic(acc, term, *span)?;
                    self.env.insert(
                        cname.clone(),
                        crate::env::Entity::Ctor(crate::env::CtorEntity {
                            pos,
                            data_con: mu.clone(),
                            depth: data_depth,
                            index: i,
                            has_arg: *has_arg,
                            info: info.clone(),
                        }),
                    );
                    acc.fields.push((cname.clone(), Item::Val));
                }
                Ok(())
            }
            Dec::Val {
                name,
                ann,
                exp,
                span,
            } => {
                let mut term = self.elab_exp(exp)?;
                if let Some(t) = ann {
                    term = self.ascribe(term, t)?;
                }
                let pos = self.push_dynamic(acc, term, *span)?;
                self.env
                    .insert(name.clone(), crate::env::Entity::Val { pos });
                acc.fields.push((name.clone(), Item::Val));
                Ok(())
            }
            Dec::Fun {
                name,
                param,
                param_ty,
                ret_ty,
                body,
                span,
            } => {
                let term = self.elab_fun(name, param, param_ty, ret_ty, body)?;
                let pos = self.push_dynamic(acc, term, *span)?;
                self.env
                    .insert(name.clone(), crate::env::Entity::Val { pos });
                acc.fields.push((name.clone(), Item::Val));
                Ok(())
            }
            Dec::Structure(bind) => {
                let st = self.elab_strbind_inner(bind)?;
                acc.statics
                    .push((bind.name.clone(), st.statics.clone(), self.depth()));
                let pos = self.push_dynamic(acc, st.dynamics.clone(), bind.span)?;
                acc.fields
                    .push((bind.name.clone(), Item::Struct(st.shape.clone())));
                self.env.insert(
                    bind.name.clone(),
                    crate::env::Entity::Struct(crate::env::StructEntity {
                        shape: st.shape,
                        statics: shift_con(&st.statics, 1, 0),
                        dynamics: Term::Var(0),
                        depth: self.depth(),
                    }),
                );
                let _ = pos;
                Ok(())
            }
        }
    }

    /// `fun f (x : pty) : rty = body` — a recursive function via `fix`.
    pub(crate) fn elab_fun(
        &mut self,
        name: &str,
        param: &str,
        param_ty: &crate::ast::TyExp,
        ret_ty: &crate::ast::TyExp,
        body: &Exp,
    ) -> SurfaceResult<Term> {
        let pc = self.elab_ty(param_ty)?;
        let rc = self.elab_ty(ret_ty)?;
        let fn_ty = Ty::Partial(Box::new(Ty::Con(pc.clone())), Box::new(Ty::Con(rc.clone())));
        // fix(f : pty ⇀ rty. λx:pty. (body : rty))
        let env_mark = self.env.mark();
        self.ctx.push(Entry::Term(fn_ty.clone(), false));
        self.env.insert(
            name.to_string(),
            crate::env::Entity::Val {
                pos: self.depth() - 1,
            },
        );
        self.ctx
            .push(Entry::Term(Ty::Con(shift_con(&pc, 1, 0)), true));
        self.env.insert(
            param.to_string(),
            crate::env::Entity::Val {
                pos: self.depth() - 1,
            },
        );
        let body_res = self.elab_exp(body);
        self.ctx.truncate(self.depth() - 2);
        self.env.reset(env_mark);
        let body_term = body_res?;
        // Ascribe the body at rty (shifted under fix + λ binders).
        let rc_in = shift_con(&rc, 2, 0);
        let checked = Term::App(
            Box::new(Term::Lam(Box::new(Ty::Con(rc_in)), Box::new(Term::Var(0)))),
            Box::new(body_term),
        );
        Ok(Term::Fix(
            Box::new(fn_ty),
            Box::new(Term::Lam(
                Box::new(Ty::Con(shift_con(&pc, 1, 0))),
                Box::new(checked),
            )),
        ))
    }

    /// Type ascription by η-expansion: `(e : τ)` becomes `(λx:τ.x) e`.
    pub(crate) fn ascribe(&mut self, term: Term, t: &crate::ast::TyExp) -> SurfaceResult<Term> {
        if let Term::Fail(_) = term {
            // `(raise Fail : τ)` — give the failure its type directly.
            let con = self.elab_ty(t)?;
            return Ok(Term::Fail(Box::new(Ty::Con(con))));
        }
        let con = self.elab_ty(t)?;
        Ok(Term::App(
            Box::new(Term::Lam(Box::new(Ty::Con(con)), Box::new(Term::Var(0)))),
            Box::new(term),
        ))
    }

    /// Elaborates an expression to an internal term at the current depth.
    pub fn elab_exp(&mut self, e: &Exp) -> SurfaceResult<Term> {
        let _j = recmod_telemetry::judgement_span("surface.elab_exp");
        self.with_depth(e.span(), |this| this.elab_exp_inner(e))
    }

    fn elab_exp_inner(&mut self, e: &Exp) -> SurfaceResult<Term> {
        match e {
            Exp::Int(n, _) => Ok(Term::IntLit(*n)),
            Exp::Bool(b, _) => Ok(Term::BoolLit(*b)),
            Exp::Unit(_) => Ok(Term::Star),
            Exp::Raise(span) => self.err(
                *span,
                ErrorKind::Other(
                    "`raise Fail` needs a type annotation here: write `(raise Fail : ty)`"
                        .to_string(),
                ),
            ),
            Exp::Path(p) => {
                if self.is_ctor(p) {
                    Ok(self.resolve_ctor(p)?.value)
                } else {
                    self.resolve_val_path(p)
                }
            }
            Exp::App(f, a) => {
                let ft = self.elab_exp(f)?;
                let at = self.elab_exp(a)?;
                Ok(Term::App(Box::new(ft), Box::new(at)))
            }
            Exp::Bin(op, a, b, _) => {
                let ta = self.elab_exp(a)?;
                let tb = self.elab_exp(b)?;
                let prim = match op {
                    BinOp::Add => PrimOp::Add,
                    BinOp::Sub => PrimOp::Sub,
                    BinOp::Mul => PrimOp::Mul,
                    BinOp::Eq => PrimOp::Eq,
                    BinOp::Lt => PrimOp::Lt,
                };
                Ok(Term::Prim(prim, vec![ta, tb]))
            }
            Exp::Tuple(parts, _) => {
                let mut out = Vec::with_capacity(parts.len());
                for p in parts {
                    out.push(self.elab_exp(p)?);
                }
                Ok(Term::tuple(out))
            }
            Exp::Fn(x, ty, body, _) => {
                let con = self.elab_ty(ty)?;
                let mark = self.env.mark();
                self.ctx.push(Entry::Term(Ty::Con(con.clone()), true));
                self.env.insert(
                    x.clone(),
                    crate::env::Entity::Val {
                        pos: self.depth() - 1,
                    },
                );
                let body_res = self.elab_exp(body);
                self.ctx.truncate(self.depth() - 1);
                self.env.reset(mark);
                Ok(Term::Lam(Box::new(Ty::Con(con)), Box::new(body_res?)))
            }
            Exp::If(c, t, f, _) => {
                let tc_ = self.elab_exp(c)?;
                let tt = self.elab_exp(t)?;
                let tf = self.elab_exp(f)?;
                Ok(Term::If(Box::new(tc_), Box::new(tt), Box::new(tf)))
            }
            Exp::Annot(inner, ty, _) => {
                let t = match &**inner {
                    Exp::Raise(_) => Term::Fail(Box::new(Ty::Unit)), // placeholder, retyped below
                    other => self.elab_exp(other)?,
                };
                self.ascribe(t, ty)
            }
            Exp::Let(decs, body, _) => {
                let mut acc = self.begin_body();
                let mut out: SurfaceResult<()> = Ok(());
                for d in decs {
                    if let Err(e) = self.elab_dec(d, &mut acc) {
                        out = Err(e);
                        break;
                    }
                }
                let body_res = match out {
                    Ok(()) => self.elab_exp(body),
                    Err(e) => Err(e),
                };
                self.ctx.truncate(acc.base_depth);
                self.env.reset(acc.env_mark);
                let mut term = body_res?;
                for bound in acc.lets.into_iter().rev() {
                    term = Term::Let(Box::new(bound), Box::new(term));
                }
                Ok(term)
            }
            Exp::Case(scrut, arms, span) => self.elab_case(scrut, arms, *span),
        }
    }

    fn elab_case(&mut self, scrut: &Exp, arms: &[(Pat, Exp)], span: Span) -> SurfaceResult<Term> {
        let scrut_term = self.elab_exp(scrut)?;

        // A single irrefutable arm is just a binding.
        if arms.len() == 1 {
            match &arms[0].0 {
                Pat::Tuple(parts, psp) => {
                    // Destructure a product: let p = scrut in
                    //   let x₀ = π₀ p in … body.
                    let typing = self
                        .kernel(|tc, ctx| tc.synth_term(ctx, &scrut_term))
                        .map_err(|e| self.terr(span, e))?;
                    let comp_tys = self.split_ty_prod(&typing.ty, parts.len(), *psp)?;
                    self.ctx.push(Entry::Term(typing.ty, typing.valuable));
                    let mark = self.env.mark();
                    let mut pushed = 0usize;
                    let mut result: SurfaceResult<()> = Ok(());
                    for p in parts {
                        let ty = recmod_syntax::subst::shift_ty(
                            &comp_tys[pushed],
                            (pushed + 1) as isize,
                            0,
                        );
                        self.ctx.push(Entry::Term(ty, true));
                        pushed += 1;
                        match p {
                            Pat::Var(x, _) => self.env.insert(
                                x.clone(),
                                crate::env::Entity::Val {
                                    pos: self.depth() - 1,
                                },
                            ),
                            Pat::Wild(_) => {}
                            other => {
                                result = Err(SurfaceError::new(
                                    other.span(),
                                    ErrorKind::Other(
                                        "only variables and _ are allowed inside tuple patterns"
                                            .to_string(),
                                    ),
                                ));
                            }
                        }
                        if result.is_err() {
                            break;
                        }
                    }
                    let body_res = match result {
                        Ok(()) => self.elab_exp(&arms[0].1),
                        Err(e) => Err(e),
                    };
                    self.ctx.truncate(self.depth() - pushed - 1);
                    self.env.reset(mark);
                    let mut term = body_res?;
                    for j in (0..parts.len()).rev() {
                        let proj = crate::shape::term_proj(Term::Var(j), j, parts.len());
                        term = Term::Let(Box::new(proj), Box::new(term));
                    }
                    return Ok(Term::Let(Box::new(scrut_term), Box::new(term)));
                }
                Pat::Var(x, _) if !self.is_ctor(&crate::ast::Path::simple(x, span)) => {
                    let typing = self
                        .kernel(|tc, ctx| tc.synth_term(ctx, &scrut_term))
                        .map_err(|e| self.terr(span, e))?;
                    let mark = self.env.mark();
                    self.ctx.push(Entry::Term(typing.ty, typing.valuable));
                    self.env.insert(
                        x.clone(),
                        crate::env::Entity::Val {
                            pos: self.depth() - 1,
                        },
                    );
                    let body = self.elab_exp(&arms[0].1);
                    self.ctx.truncate(self.depth() - 1);
                    self.env.reset(mark);
                    return Ok(Term::Let(Box::new(scrut_term), Box::new(body?)));
                }
                Pat::Wild(_) => {
                    let body = self.elab_exp(&arms[0].1)?;
                    return Ok(Term::Let(
                        Box::new(scrut_term),
                        Box::new(shift_term(&body, 1, 0)),
                    ));
                }
                _ => {}
            }
        }

        // Find the datatype from the first constructor pattern.
        let mut ctor_of_arm: Vec<Option<CtorRes>> = Vec::with_capacity(arms.len());
        for (pat, _) in arms {
            ctor_of_arm.push(self.pattern_ctor(pat)?);
        }
        let Some(first) = ctor_of_arm.iter().flatten().next() else {
            return self.err(
                span,
                ErrorKind::Other("case requires at least one constructor pattern".into()),
            );
        };
        let info = first.info.clone();
        let data_con = first.data_con.clone();
        for c in ctor_of_arm.iter().flatten() {
            if c.info != info {
                return self.err(
                    span,
                    ErrorKind::Other(
                        "case patterns mix constructors of different datatypes".into(),
                    ),
                );
            }
        }

        let sum = self.unrolled_sum(&data_con, span)?;
        let Con::Sum(summands) = sum.clone() else {
            return self.err(
                span,
                ErrorKind::Other("case scrutinee is not a datatype".into()),
            );
        };

        // Bind the scrutinee once so catch-all arms can refer to it.
        let typing = self
            .kernel(|tc, ctx| tc.synth_term(ctx, &scrut_term))
            .map_err(|e| self.terr(span, e))?;
        self.ctx.push(Entry::Term(typing.ty, typing.valuable));
        let scrut_pos = self.depth() - 1;

        // Locate an optional trailing catch-all.
        let catch_all: Option<(&Pat, &Exp)> = arms
            .iter()
            .zip(&ctor_of_arm)
            .find(|(_, c)| c.is_none())
            .map(|((p, e), _)| (p, e));

        let mut branches = Vec::with_capacity(summands.len());
        let mut failure: Option<SurfaceError> = None;
        'outer: for (i, (cname, _)) in info.ctors.iter().enumerate() {
            // Find the arm for constructor i.
            let arm = arms
                .iter()
                .zip(&ctor_of_arm)
                .find(|(_, c)| c.as_ref().is_some_and(|c| c.index == i));
            let payload_ty = Ty::Con(shift_con(&summands[i], 1, 0));
            self.ctx.push(Entry::Term(payload_ty, true));
            let mark = self.env.mark();
            let branch = match arm {
                Some(((pat, body), _)) => {
                    let sub = match pat {
                        Pat::Con(_, arg, _) => arg.as_deref(),
                        Pat::Var(_, _) => None, // nullary ctor pattern
                        _ => None,
                    };
                    let summand_here = shift_con(&summands[i], 2, 0);
                    self.elab_branch(sub, &summand_here, body, span)
                }
                None => match catch_all {
                    Some((pat, body)) => {
                        if let Pat::Var(x, _) = pat {
                            self.env
                                .insert(x.clone(), crate::env::Entity::Val { pos: scrut_pos });
                        }
                        self.elab_exp(body)
                    }
                    None => Err(SurfaceError::new(
                        span,
                        ErrorKind::Other(format!(
                            "nonexhaustive case: missing constructor `{cname}`"
                        )),
                    )),
                },
            };
            self.env.reset(mark);
            self.ctx.truncate(self.depth() - 1);
            match branch {
                Ok(b) => branches.push(b),
                Err(e) => {
                    failure = Some(e);
                    break 'outer;
                }
            }
        }
        self.ctx.truncate(scrut_pos);
        if let Some(e) = failure {
            return Err(e);
        }
        Ok(Term::Let(
            Box::new(scrut_term),
            Box::new(Term::Case(
                Box::new(Term::Unroll(Box::new(Term::Var(0)))),
                branches,
            )),
        ))
    }

    /// Elaborates a branch body with the payload (context index 0) bound
    /// according to the argument pattern.
    fn elab_branch(
        &mut self,
        pat: Option<&Pat>,
        summand: &Con,
        body: &Exp,
        span: Span,
    ) -> SurfaceResult<Term> {
        let payload_pos = self.depth() - 1;
        match pat {
            None | Some(Pat::Wild(_)) => self.elab_exp(body),
            Some(Pat::Var(x, _)) => {
                self.env
                    .insert(x.clone(), crate::env::Entity::Val { pos: payload_pos });
                self.elab_exp(body)
            }
            Some(Pat::Tuple(parts, psp)) => {
                // Destructure via lets over projections.
                let comps = self.prod_components(summand, parts.len(), *psp)?;
                let mut pushed = 0;
                let mut result: SurfaceResult<()> = Ok(());
                for (j, p) in parts.iter().enumerate() {
                    let comp_ty = Ty::Con(shift_con(&comps[j], pushed as isize, 0));
                    self.ctx.push(Entry::Term(comp_ty, true));
                    pushed += 1;
                    match p {
                        Pat::Var(x, _) => {
                            self.env.insert(
                                x.clone(),
                                crate::env::Entity::Val {
                                    pos: self.depth() - 1,
                                },
                            );
                        }
                        Pat::Wild(_) => {}
                        other => {
                            result = Err(SurfaceError::new(
                                other.span(),
                                ErrorKind::Other(
                                    "nested constructor patterns are not supported; \
                                     bind a variable and case on it"
                                        .to_string(),
                                ),
                            ));
                        }
                    }
                    if result.is_err() {
                        break;
                    }
                }
                let body_res = match result {
                    Ok(()) => self.elab_exp(body),
                    Err(e) => Err(e),
                };
                self.ctx.truncate(self.depth() - pushed);
                let mut term = body_res?;
                // Wrap the lets, innermost last: let x₀ = π₀ payload in …
                for j in (0..parts.len()).rev() {
                    let proj = crate::shape::term_proj(Term::Var(j), j, parts.len());
                    term = Term::Let(Box::new(proj), Box::new(term));
                }
                let _ = span;
                Ok(term)
            }
            Some(other) => self.err(
                other.span(),
                ErrorKind::Other("unsupported pattern form".to_string()),
            ),
        }
    }

    /// Splits a type into `n` product components, exposing monotype
    /// structure as needed.
    fn split_ty_prod(&mut self, ty: &Ty, n: usize, span: Span) -> SurfaceResult<Vec<Ty>> {
        let mut comps = Vec::with_capacity(n);
        let mut cur = ty.clone();
        for i in 0..n {
            if i == n - 1 {
                comps.push(cur.clone());
                break;
            }
            let e = self
                .kernel(|tc, ctx| tc.expose_deep(ctx, &cur))
                .map_err(|err| self.terr(span, err))?;
            match e {
                Ty::Prod(a, b) => {
                    comps.push(*a);
                    cur = *b;
                }
                other => {
                    return self.err(
                        span,
                        ErrorKind::Other(format!(
                            "tuple pattern with {n} parts does not match type {}",
                            recmod_syntax::pretty::ty_to_string(
                                &other,
                                &mut recmod_syntax::pretty::Names::new()
                            )
                        )),
                    )
                }
            }
        }
        Ok(comps)
    }

    /// Splits a summand type into `n` product components (weak-head
    /// normalizing so aliases are seen through).
    fn prod_components(&mut self, con: &Con, n: usize, span: Span) -> SurfaceResult<Vec<Con>> {
        let mut comps = Vec::with_capacity(n);
        let mut cur = con.clone();
        for i in 0..n {
            if i == n - 1 {
                comps.push(cur.clone());
                break;
            }
            let w = self
                .kernel(|tc, ctx| tc.whnf(ctx, &cur))
                .map_err(|e| self.terr(span, e))?;
            match w {
                Con::Prod(a, b) => {
                    comps.push(a.take());
                    cur = b.take();
                }
                other => {
                    return self.err(
                        span,
                        ErrorKind::Other(format!(
                            "tuple pattern with {n} parts does not match type {}",
                            recmod_syntax::pretty::con_to_string(
                                &other,
                                &mut recmod_syntax::pretty::Names::new()
                            )
                        )),
                    );
                }
            }
        }
        Ok(comps)
    }

    /// If the pattern's head is a datatype constructor, resolve it.
    fn pattern_ctor(&mut self, pat: &Pat) -> SurfaceResult<Option<CtorRes>> {
        match pat {
            Pat::Con(path, _, _) => Ok(Some(self.resolve_ctor(path)?)),
            Pat::Var(x, sp) => {
                let p = crate::ast::Path::simple(x, *sp);
                if self.is_ctor(&p) {
                    Ok(Some(self.resolve_ctor(&p)?))
                } else {
                    Ok(None)
                }
            }
            _ => Ok(None),
        }
    }
}
