//! End-to-end tests for the `recmodc` binary: exit codes, multi-error
//! reporting, stdin input, and resource-limit verdicts.

use std::io::Write;
use std::process::{Command, Output, Stdio};

fn recmodc(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_recmodc"))
        .args(args)
        .output()
        .expect("recmodc runs")
}

fn recmodc_stdin(args: &[&str], input: &str) -> Output {
    let mut child = Command::new(env!("CARGO_BIN_EXE_recmodc"))
        .args(args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("recmodc spawns");
    child
        .stdin
        .take()
        .expect("stdin is piped")
        .write_all(input.as_bytes())
        .expect("write to stdin");
    child.wait_with_output().expect("recmodc runs")
}

fn code(out: &Output) -> i32 {
    out.status
        .code()
        .expect("recmodc exits normally, not by signal")
}

#[test]
fn ok_program_exits_zero() {
    let out = recmodc(&["-e", "1 + 2 * 3"]);
    assert_eq!(
        code(&out),
        0,
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert_eq!(String::from_utf8_lossy(&out.stdout).trim(), "7");
}

#[test]
fn type_error_exits_one_with_span() {
    let out = recmodc(&["-e", "1 = true"]);
    assert_eq!(code(&out), 1);
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("<expr>:1:1:"), "missing file:line:col: {err}");
    assert!(err.contains("error:"), "missing error label: {err}");
}

#[test]
fn two_independent_syntax_errors_both_reported() {
    let dir = std::env::temp_dir().join("recmodc-cli-tests");
    std::fs::create_dir_all(&dir).expect("mkdir");
    let path = dir.join("two_errors.rm");
    std::fs::write(&path, "val x = 1 +\nval y = )\nval z = 3\n;\nz\n").expect("write");
    let out = recmodc(&["check", path.to_str().expect("utf8 path")]);
    assert_eq!(code(&out), 1);
    let err = String::from_utf8_lossy(&out.stderr);
    let diagnostics = err.lines().filter(|l| l.contains(": error:")).count();
    assert!(
        diagnostics >= 2,
        "expected at least 2 diagnostics after recovery, got {diagnostics}:\n{err}"
    );
    assert!(
        err.contains(":2:"),
        "second line's errors carry its line number: {err}"
    );
}

#[test]
fn max_errors_caps_the_report() {
    let mut src = String::new();
    for i in 0..30 {
        src.push_str(&format!("val x{i} = )\n"));
    }
    src.push_str(";\n0\n");
    let out = recmodc_stdin(&["check", "-", "--max-errors", "3"], &src);
    assert_eq!(code(&out), 1);
    let err = String::from_utf8_lossy(&out.stderr);
    let diagnostics = err.lines().filter(|l| l.contains(": error:")).count();
    assert_eq!(diagnostics, 3, "--max-errors 3 must cap the report:\n{err}");
    assert!(err.contains("more error"), "overflow note missing:\n{err}");
}

#[test]
fn stdin_dash_runs_a_program() {
    let out = recmodc_stdin(&["run", "-"], "let val x = 20 in x + 1 end");
    assert_eq!(
        code(&out),
        0,
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert_eq!(String::from_utf8_lossy(&out.stdout).trim(), "21");
    let err = String::from_utf8_lossy(&out.stderr);
    // Diagnostics for stdin input are attributed to `<stdin>`.
    let out2 = recmodc_stdin(&["check", "-"], "unbound");
    assert!(
        String::from_utf8_lossy(&out2.stderr).contains("<stdin>:"),
        "stdin diagnostics name the pseudo-file: {err}"
    );
}

#[test]
fn deep_nesting_exits_three_with_structured_limit() {
    let mut src = String::new();
    for _ in 0..10_000 {
        src.push('(');
    }
    src.push('1');
    for _ in 0..10_000 {
        src.push(')');
    }
    let out = recmodc_stdin(&["run", "-"], &src);
    assert_eq!(
        code(&out),
        3,
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(
        err.contains("limit exceeded"),
        "not a structured limit: {err}"
    );
    assert!(err.contains("recursion depth"), "wrong limit kind: {err}");
}

#[test]
fn custom_limits_flag_tightens_the_budget() {
    // Depth 500 parses under the default limit but not under depth=100.
    let mut src = String::new();
    for _ in 0..500 {
        src.push('(');
    }
    src.push('1');
    for _ in 0..500 {
        src.push(')');
    }
    let ok = recmodc_stdin(&["run", "-"], &src);
    assert_eq!(
        code(&ok),
        0,
        "stderr: {}",
        String::from_utf8_lossy(&ok.stderr)
    );
    let limited = recmodc_stdin(&["run", "-", "--limits", "depth=100"], &src);
    assert_eq!(
        code(&limited),
        3,
        "stderr: {}",
        String::from_utf8_lossy(&limited.stderr)
    );
}

#[test]
fn bad_usage_exits_two() {
    let out = recmodc(&["frobnicate", "x.rm"]);
    assert_eq!(code(&out), 2);
    let out = recmodc(&["run", "-", "--limits", "depth=banana"]);
    assert_eq!(code(&out), 2);
}
