//! End-to-end tests for the `recmodc` binary: exit codes, multi-error
//! reporting, stdin input, and resource-limit verdicts.

use std::io::Write;
use std::process::{Command, Output, Stdio};

fn recmodc(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_recmodc"))
        .args(args)
        .output()
        .expect("recmodc runs")
}

fn recmodc_stdin(args: &[&str], input: &str) -> Output {
    let mut child = Command::new(env!("CARGO_BIN_EXE_recmodc"))
        .args(args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("recmodc spawns");
    child
        .stdin
        .take()
        .expect("stdin is piped")
        .write_all(input.as_bytes())
        .expect("write to stdin");
    child.wait_with_output().expect("recmodc runs")
}

fn code(out: &Output) -> i32 {
    out.status
        .code()
        .expect("recmodc exits normally, not by signal")
}

#[test]
fn ok_program_exits_zero() {
    let out = recmodc(&["-e", "1 + 2 * 3"]);
    assert_eq!(
        code(&out),
        0,
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert_eq!(String::from_utf8_lossy(&out.stdout).trim(), "7");
}

#[test]
fn type_error_exits_one_with_span() {
    let out = recmodc(&["-e", "1 = true"]);
    assert_eq!(code(&out), 1);
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("<expr>:1:1:"), "missing file:line:col: {err}");
    assert!(err.contains("error:"), "missing error label: {err}");
}

#[test]
fn two_independent_syntax_errors_both_reported() {
    let dir = std::env::temp_dir().join("recmodc-cli-tests");
    std::fs::create_dir_all(&dir).expect("mkdir");
    let path = dir.join("two_errors.rm");
    std::fs::write(&path, "val x = 1 +\nval y = )\nval z = 3\n;\nz\n").expect("write");
    let out = recmodc(&["check", path.to_str().expect("utf8 path")]);
    assert_eq!(code(&out), 1);
    let err = String::from_utf8_lossy(&out.stderr);
    let diagnostics = err.lines().filter(|l| l.contains(": error:")).count();
    assert!(
        diagnostics >= 2,
        "expected at least 2 diagnostics after recovery, got {diagnostics}:\n{err}"
    );
    assert!(
        err.contains(":2:"),
        "second line's errors carry its line number: {err}"
    );
}

#[test]
fn max_errors_caps_the_report() {
    let mut src = String::new();
    for i in 0..30 {
        src.push_str(&format!("val x{i} = )\n"));
    }
    src.push_str(";\n0\n");
    let out = recmodc_stdin(&["check", "-", "--max-errors", "3"], &src);
    assert_eq!(code(&out), 1);
    let err = String::from_utf8_lossy(&out.stderr);
    let diagnostics = err.lines().filter(|l| l.contains(": error:")).count();
    assert_eq!(diagnostics, 3, "--max-errors 3 must cap the report:\n{err}");
    assert!(err.contains("more error"), "overflow note missing:\n{err}");
}

#[test]
fn stdin_dash_runs_a_program() {
    let out = recmodc_stdin(&["run", "-"], "let val x = 20 in x + 1 end");
    assert_eq!(
        code(&out),
        0,
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert_eq!(String::from_utf8_lossy(&out.stdout).trim(), "21");
    let err = String::from_utf8_lossy(&out.stderr);
    // Diagnostics for stdin input are attributed to `<stdin>`.
    let out2 = recmodc_stdin(&["check", "-"], "unbound");
    assert!(
        String::from_utf8_lossy(&out2.stderr).contains("<stdin>:"),
        "stdin diagnostics name the pseudo-file: {err}"
    );
}

#[test]
fn deep_nesting_exits_three_with_structured_limit() {
    let mut src = String::new();
    for _ in 0..10_000 {
        src.push('(');
    }
    src.push('1');
    for _ in 0..10_000 {
        src.push(')');
    }
    let out = recmodc_stdin(&["run", "-"], &src);
    assert_eq!(
        code(&out),
        3,
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(
        err.contains("limit exceeded"),
        "not a structured limit: {err}"
    );
    assert!(err.contains("recursion depth"), "wrong limit kind: {err}");
}

#[test]
fn custom_limits_flag_tightens_the_budget() {
    // Depth 500 parses under the default limit but not under depth=100.
    let mut src = String::new();
    for _ in 0..500 {
        src.push('(');
    }
    src.push('1');
    for _ in 0..500 {
        src.push(')');
    }
    let ok = recmodc_stdin(&["run", "-"], &src);
    assert_eq!(
        code(&ok),
        0,
        "stderr: {}",
        String::from_utf8_lossy(&ok.stderr)
    );
    let limited = recmodc_stdin(&["run", "-", "--limits", "depth=100"], &src);
    assert_eq!(
        code(&limited),
        3,
        "stderr: {}",
        String::from_utf8_lossy(&limited.stderr)
    );
}

#[test]
fn bad_usage_exits_two() {
    let out = recmodc(&["frobnicate", "x.rm"]);
    assert_eq!(code(&out), 2);
    let out = recmodc(&["run", "-", "--limits", "depth=banana"]);
    assert_eq!(code(&out), 2);
    // Both flags claim stdout for one JSON document.
    let out = recmodc(&["check", "-", "--diagnostics=json", "--stats=json"]);
    assert_eq!(code(&out), 2);
}

/// A scratch directory unique to one test (temp-dir collisions across
/// concurrent test binaries would make the bundle assertions flaky).
fn scratch(test: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir()
        .join("recmodc-cli-tests")
        .join(format!("{test}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("mkdir");
    dir
}

/// The parsed `--diagnostics=json` document from stdout.
fn diagnostics_doc(out: &Output) -> recmod::telemetry::json::Json {
    let stdout = String::from_utf8_lossy(&out.stdout);
    recmod::telemetry::json::parse(&stdout)
        .unwrap_or_else(|e| panic!("diagnostics stdout is not valid JSON ({e}):\n{stdout}"))
}

/// Every diagnostic object in a diagnostics document, flattened.
fn all_diagnostics(doc: &recmod::telemetry::json::Json) -> Vec<&recmod::telemetry::json::Json> {
    doc.get("files")
        .and_then(|f| f.as_arr())
        .expect("files array")
        .iter()
        .flat_map(|f| {
            f.get("diagnostics")
                .and_then(|d| d.as_arr())
                .expect("diagnostics array")
        })
        .collect()
}

fn is_stable_code(code: &str) -> bool {
    code.len() == 4
        && matches!(code.as_bytes()[0], b'K' | b'S' | b'L' | b'I')
        && code.as_bytes()[1..].iter().all(u8::is_ascii_digit)
}

#[test]
fn batch_max_errors_truncates_text_but_not_json() {
    let dir = scratch("batch-truncation");
    // Three files, each with five independent syntax errors.
    for file in 0..3 {
        let mut src = String::new();
        for i in 0..5 {
            src.push_str(&format!("val x{i} = )\n"));
        }
        std::fs::write(dir.join(format!("f{file}.rm")), src).expect("write");
    }
    let out = recmodc(&[
        "check",
        "--jobs",
        "2",
        dir.to_str().expect("utf8 path"),
        "--max-errors",
        "2",
        "--diagnostics=json",
    ]);
    assert_eq!(
        code(&out),
        1,
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    // Text report: two diagnostics per file, then the elision note.
    let err = String::from_utf8_lossy(&out.stderr);
    for file in 0..3 {
        let name = format!("f{file}.rm");
        let shown = err
            .lines()
            .filter(|l| l.contains(&name) && l.contains(": error:"))
            .count();
        assert_eq!(shown, 2, "--max-errors 2 must cap {name}:\n{err}");
        assert!(
            err.lines()
                .any(|l| l.contains(&name) && l.contains("3 more error(s)")),
            "elision note missing for {name}:\n{err}"
        );
    }
    // JSON stream: all five diagnostics per file survive.
    let doc = diagnostics_doc(&out);
    let files = doc.get("files").and_then(|f| f.as_arr()).expect("files");
    assert_eq!(files.len(), 3);
    for f in files {
        let diags = f.get("diagnostics").and_then(|d| d.as_arr()).expect("arr");
        assert_eq!(
            diags.len(),
            5,
            "the machine-readable stream must not be truncated"
        );
    }
}

#[test]
fn corpus_bad_diagnostics_carry_codes_and_provenance() {
    let bad = concat!(env!("CARGO_MANIFEST_DIR"), "/../../tests/corpus/bad");
    let out = recmodc(&["check", "--jobs", "2", bad, "--diagnostics=json"]);
    assert_eq!(code(&out), 1);
    let doc = diagnostics_doc(&out);
    assert_eq!(
        doc.get("schema_version").and_then(|v| v.as_u64()),
        Some(recmod::telemetry::SCHEMA_VERSION)
    );
    let diags = all_diagnostics(&doc);
    assert!(!diags.is_empty(), "corpus/bad produces diagnostics");
    for d in diags {
        let code = d.get("code").and_then(|c| c.as_str()).expect("code");
        assert!(is_stable_code(code), "malformed code {code}");
        let provenance = d
            .get("provenance")
            .and_then(|p| p.as_arr())
            .expect("provenance");
        assert!(
            !provenance.is_empty(),
            "every diagnostic names the judgement frames that produced it"
        );
    }
}

#[test]
fn mid_kernel_limit_diagnostics_anchor_to_the_declaration() {
    let src = "val a = 1\nval b : int = a + 1\n";
    let out = recmodc_stdin(
        &["check", "-", "--limits", "fuel=1", "--diagnostics=json"],
        src,
    );
    assert_eq!(code(&out), 3);
    let doc = diagnostics_doc(&out);
    let diags = all_diagnostics(&doc);
    let limit = diags
        .iter()
        .find(|d| d.get("code").and_then(|c| c.as_str()) == Some("L003"))
        .expect("a fuel-exhausted diagnostic");
    // The kernel loses the source position mid-judgement; the
    // elaborator re-anchors the diagnostic to the declaration it was
    // checking rather than the whole file.
    let line = limit
        .get("span")
        .and_then(|s| s.get("line"))
        .and_then(|l| l.as_u64());
    assert_eq!(line, Some(2), "limit anchors to the second declaration");
}

#[test]
fn explain_describes_every_code() {
    let out = recmodc(&["explain"]);
    assert_eq!(code(&out), 0);
    let listing = String::from_utf8_lossy(&out.stdout);
    for code in ["K011", "S003", "L004", "I002"] {
        assert!(listing.contains(code), "listing lacks {code}");
    }
    let out = recmodc(&["explain", "K011"]);
    assert_eq!(code(&out), 0);
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("equivalent"), "summary missing: {text}");
    assert!(text.contains("example:"), "example missing: {text}");
    let out = recmodc(&["explain", "Z999"]);
    assert_eq!(code(&out), 2);
}

#[test]
fn limit_exit_writes_a_crash_bundle() {
    let dir = scratch("crash-bundle");
    let out = recmodc_stdin(
        &[
            "check",
            "-",
            "--deadline-ms",
            "0",
            "--crash-dir",
            dir.to_str().expect("utf8 path"),
        ],
        "val x = 1\n",
    );
    assert_eq!(
        code(&out),
        3,
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let bundle = std::fs::read_dir(&dir)
        .expect("read crash dir")
        .filter_map(Result::ok)
        .find(|e| {
            let name = e.file_name();
            let name = name.to_string_lossy();
            name.starts_with("recmod-crash-") && name.ends_with(".json")
        })
        .expect("a recmod-crash-*.json bundle");
    let text = std::fs::read_to_string(bundle.path()).expect("read bundle");
    let doc = recmod::telemetry::json::parse(&text).expect("bundle is valid JSON");
    assert_eq!(doc.get("kind").and_then(|k| k.as_str()), Some("crash"));
    assert_eq!(doc.get("status").and_then(|s| s.as_str()), Some("limit"));
    assert_eq!(doc.get("exit").and_then(|e| e.as_u64()), Some(3));
    assert_eq!(
        doc.get("schema_version").and_then(|v| v.as_u64()),
        Some(recmod::telemetry::SCHEMA_VERSION)
    );
    let recorder = doc
        .get("recorder")
        .and_then(|r| r.as_arr())
        .expect("recorder tail");
    assert!(
        recorder
            .iter()
            .any(|e| e.get("kind").and_then(|k| k.as_str()) == Some("limit")),
        "the flight recorder saw the limit fire"
    );
    assert!(doc.get("limits").is_some(), "limits in force are recorded");
    assert!(
        doc.get("input_fnv1a").and_then(|h| h.as_str()).is_some(),
        "input hash present"
    );
}
