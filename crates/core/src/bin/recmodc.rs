//! `recmodc` — the command-line compiler/runner for the recursive-module
//! language.
//!
//! ```text
//! recmodc run  <file.rml>      compile and run, print the main value
//! recmodc check <file.rml>     typecheck only, print binding signatures
//! recmodc check [--jobs N] <file|dir>...   batch-check files/directories
//! recmodc check --corpus       batch-check the built-in paper corpus
//! recmodc serve [--socket PATH]  supervised compile service (JSON lines)
//! recmodc split <file.rml>     print each binding's phase-split parts
//! recmodc explain [CODE]       describe a diagnostic error code
//! recmodc -e "<expr>"          evaluate one expression
//! ```
//!
//! `<file.rml>` may be `-` to read the program from stdin. Batch mode
//! engages for `check` whenever `--jobs`/`--corpus` is given, more than
//! one path is named, or a path is a directory (searched recursively
//! for `*.rm`); it compiles files in parallel on worker threads sharing
//! the global interner, with warm per-worker caches, and prints
//! per-file diagnostics prefixed by the file name, in input order.
//!
//! Options:
//!
//! * `--jobs N` — batch worker threads (default: available parallelism);
//! * `--corpus` — batch-check the built-in corpus (`recmod::corpus`);
//! * `--cold` — batch mode: rebuild the typechecker per file instead of
//!   keeping per-worker caches warm (for measuring the warm-cache effect);
//! * `--steps` — print the interpreter step count after `run`;
//! * `--fuel N` — set the kernel's normalization/equivalence fuel budget;
//! * `--limits K=V,...` — set resource limits (`depth`, `nodes`, `fuel`,
//!   `eval-fuel`, `eval-depth`);
//! * `--deadline-ms N` — abort any stage once `N` ms of wall clock pass;
//! * `--max-errors N` — print at most `N` diagnostics (default 20);
//! * `--stats` / `--stats=json` — print pipeline counters (kernel fuel
//!   by operation, μ-unrolls, whnf steps, per-binding elaboration
//!   timings, phase-split node counts, evaluator counters) as text or as
//!   one JSON document on stdout;
//! * `--trace` / `--trace=DEPTH` — print the kernel's judgement-level
//!   derivation trace (indented, depth-limited) to stderr;
//! * `--profile[=FILE]` — write a Chrome Trace Event / Perfetto JSON
//!   trace (default `trace.json`): per-worker thread lanes, one
//!   complete-duration event per judgement/stage span and per file,
//!   counter tracks (cache hit rates, interner occupancy, fuel), and
//!   instant events for limit hits and internal errors. Under `serve`,
//!   profiles the whole session: one event per compile attempt plus
//!   supervision instants (sheds, faults, respawns, drain). Load the
//!   file at <https://ui.perfetto.dev>;
//! * `--profile-text` — print a flat + top-down text profile computed
//!   from the span tree (self/total time and call counts);
//! * `--profile-by=judgement|stage|file` — pivot for `--profile-text`
//!   (default `judgement`);
//! * `--log-json FILE` — batch mode: write a structured JSONL event log,
//!   one event per file (path, outcome, exit class, stage times, counter
//!   deltas, worker id, steal flag, structured diagnostics) after a
//!   `meta` header line; serve mode: the `--metrics-interval` heartbeat
//!   appends its metrics documents here;
//! * `--metrics-interval SECS` — serve mode (with `--log-json`): append
//!   one compact metrics document to the log every `SECS` seconds;
//! * `--metrics-text` — serve mode: print the session's final metrics
//!   as Prometheus exposition text on exit;
//! * `--diagnostics=json` — print one schema-versioned JSON document on
//!   stdout holding every diagnostic (stable code, span, provenance
//!   chain, expected/found, equation path); never truncated by
//!   `--max-errors`. Human-readable output moves to stderr. Conflicts
//!   with `--stats=json` (each claims stdout);
//! * `--crash-dir DIR` — where limit/internal exits (codes 3 and 4)
//!   write their crash bundle, a `recmod-crash-<hash>.json` holding the
//!   flight-recorder tail, counters, limits, and an input hash
//!   (default: the system temp directory);
//! * `--cache-dir DIR` — batch `check` and `serve`: consult and fill a
//!   content-addressed on-disk artifact cache keyed by source bytes ×
//!   limits × schema version × equivalence engine. Hits skip the
//!   pipeline entirely and replay the stored verdict and diagnostics;
//!   cache trouble (I/O errors, corrupt entries, an uncreatable
//!   directory) degrades to a C-coded warning on stderr, never a
//!   failure. See README "Caching";
//! * `--no-cache` — ignore `--cache-dir` (run everything uncached).
//!
//! Exit codes: `0` success, `1` program error (syntax/type/runtime),
//! `2` usage, `3` resource limit hit, `4` internal error (a compiler
//! bug — every panic is caught at this boundary and reported as one).

use std::process::ExitCode;

use recmod::stats::StatsReport;
use recmod::surface::diag::{self as sdiag, Diagnostic};
use recmod::surface::SurfaceError;
use recmod::syntax::pretty::{con_to_string, term_to_string, Names};
use recmod::telemetry::Limits;

/// Depth limit used by a bare `--trace` (override with `--trace=DEPTH`).
const DEFAULT_TRACE_DEPTH: usize = 8;

/// Default cap on printed diagnostics (override with `--max-errors`).
const DEFAULT_MAX_ERRORS: usize = 20;

const EXIT_USER: u8 = 1;
const EXIT_USAGE: u8 = 2;
const EXIT_LIMIT: u8 = 3;
const EXIT_INTERNAL: u8 = 4;

fn usage() -> ExitCode {
    eprintln!(
        "usage: recmodc <run|check|split> <file|-> [options]\n       \
         recmodc check [--jobs N] <file|dir>... [options]\n       \
         recmodc check --corpus [options]\n       \
         recmodc serve [--socket PATH] [--queue-depth N] [--faults SEED,RATE[,KIND]]\n             \
         [--metrics-interval SECS] [--metrics-text] [--profile[=FILE]] [--log-json FILE]\n       \
         recmodc explain [CODE]\n       \
         recmodc -e \"<expression>\" [options]\n\
         options: --steps --fuel N --limits K=V,... --deadline-ms N\n         \
         --max-errors N --stats[=json] --diagnostics=json --trace[=DEPTH]\n         \
         --jobs N --corpus --cold --crash-dir DIR --cache-dir DIR --no-cache\n         \
         --profile[=FILE] --profile-text --profile-by=judgement|stage|file\n         \
         --log-json FILE (batch only)\n\
         exit codes: 0 ok, 1 program error, 2 usage, 3 limit hit, 4 internal error\n         \
         (per-response: 5 overloaded, 6 draining)"
    );
    ExitCode::from(EXIT_USAGE)
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum StatsMode {
    Off,
    Text,
    Json,
}

/// Pivot for `--profile-text`.
#[derive(Clone, Copy, PartialEq, Eq)]
enum ProfileBy {
    /// Per span name (judgement form / stage), flat + top-down.
    Judgement,
    /// Per pipeline stage (exclusive stage-frame totals).
    Stage,
    /// Per input file (batch mode; a single row otherwise).
    File,
}

#[derive(Clone)]
struct Options {
    steps: bool,
    stats: StatsMode,
    trace: Option<usize>,
    max_errors: usize,
    limits: Limits,
    /// Raw `--deadline-ms` value; batch mode re-arms it per file (the
    /// absolute instant baked into `limits` would make later files time
    /// out just for being scheduled later).
    deadline_ms: Option<u64>,
    jobs: Option<usize>,
    corpus: bool,
    /// Batch mode: rebuild the typechecker for every file instead of
    /// keeping per-worker caches warm (for measuring the warm-cache
    /// effect; see EXPERIMENTS.md).
    cold: bool,
    /// `--profile[=FILE]`: write a Chrome Trace Event JSON file.
    profile: Option<String>,
    /// `--profile-text`: print a text profile of the span tree.
    profile_text: bool,
    /// `--profile-by=...` pivot for the text profile.
    profile_by: ProfileBy,
    /// `--log-json FILE`: batch-mode structured JSONL event log.
    log_json: Option<String>,
    /// `--diagnostics=json`: structured diagnostics document on stdout.
    diagnostics: bool,
    /// `--crash-dir DIR`: where crash bundles land (default: temp dir).
    crash_dir: Option<String>,
    /// `serve --socket PATH`: listen on a unix socket instead of stdio.
    socket: Option<String>,
    /// `serve --queue-depth N`: admission-queue bound (default 256).
    queue_depth: Option<usize>,
    /// `serve --faults SEED,RATE[,KIND]`: deterministic fault injection.
    faults: Option<String>,
    /// `serve --metrics-interval SECS`: periodic metrics heartbeat
    /// appended to the `--log-json` file.
    metrics_interval: Option<u64>,
    /// `serve --metrics-text`: print the session's final metrics as
    /// Prometheus exposition text when the service exits.
    metrics_text: bool,
    /// `--cache-dir DIR`: content-addressed artifact cache for batch
    /// `check` and `serve` (single-file `check file.rm` stays uncached).
    cache_dir: Option<String>,
    /// `--no-cache`: ignore `--cache-dir`, run everything uncached.
    no_cache: bool,
}

impl Options {
    /// Is any profile output requested (trace file or text profile)?
    fn wants_profile(&self) -> bool {
        self.profile.is_some() || self.profile_text
    }

    /// Does a machine-readable document own stdout? If so, every
    /// human-readable line moves to stderr.
    fn machine_stdout(&self) -> bool {
        self.stats == StatsMode::Json || self.diagnostics
    }

    /// The artifact-cache configuration implied by the flags: `None`
    /// unless `--cache-dir` was given, and `--no-cache` wins over it.
    fn cache_config(&self) -> Option<recmod::driver::cache::CacheConfig> {
        if self.no_cache {
            return None;
        }
        self.cache_dir
            .as_ref()
            .map(|d| recmod::driver::cache::CacheConfig::new(std::path::PathBuf::from(d)))
    }

    /// The telemetry configuration implied by the flags, `None` when no
    /// observation was requested. Profiling upgrades the config to
    /// judgement-level span recording with the larger node cap.
    fn telemetry_config(&self) -> Option<recmod::telemetry::Config> {
        let observing =
            self.stats != StatsMode::Off || self.trace.is_some() || self.wants_profile();
        observing.then(|| {
            let mut config = match self.trace {
                Some(depth) => recmod::telemetry::Config::with_trace(depth),
                None => recmod::telemetry::Config::default(),
            };
            if self.wants_profile() {
                let profiled = recmod::telemetry::Config::profiled();
                config.profile = profiled.profile;
                config.span_max_nodes = profiled.span_max_nodes;
            }
            config
        })
    }
}

fn parse_options(args: Vec<String>) -> Result<(Vec<String>, Options), String> {
    let mut rest = Vec::new();
    let mut opts = Options {
        steps: false,
        stats: StatsMode::Off,
        trace: None,
        max_errors: DEFAULT_MAX_ERRORS,
        limits: Limits::default(),
        deadline_ms: None,
        jobs: None,
        corpus: false,
        cold: false,
        profile: None,
        profile_text: false,
        profile_by: ProfileBy::Judgement,
        log_json: None,
        diagnostics: false,
        crash_dir: None,
        socket: None,
        queue_depth: None,
        faults: None,
        metrics_interval: None,
        metrics_text: false,
        cache_dir: None,
        no_cache: false,
    };
    let mut deadline_ms: Option<u64> = None;
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--steps" => opts.steps = true,
            "--corpus" => opts.corpus = true,
            "--cold" => opts.cold = true,
            "--jobs" => {
                let n = it.next().ok_or("--jobs needs a number")?;
                let jobs: usize = n.parse().map_err(|_| format!("bad job count: {n}"))?;
                if jobs == 0 {
                    return Err("--jobs must be at least 1".to_string());
                }
                opts.jobs = Some(jobs);
            }
            "--stats" => opts.stats = StatsMode::Text,
            "--stats=json" => opts.stats = StatsMode::Json,
            "--diagnostics=json" => opts.diagnostics = true,
            "--crash-dir" => {
                let d = it.next().ok_or("--crash-dir needs a directory")?;
                opts.crash_dir = Some(d);
            }
            "--socket" => {
                let p = it.next().ok_or("--socket needs a path")?;
                opts.socket = Some(p);
            }
            "--queue-depth" => {
                let n = it.next().ok_or("--queue-depth needs a number")?;
                opts.queue_depth = Some(n.parse().map_err(|_| format!("bad queue depth: {n}"))?);
            }
            "--faults" => {
                let spec = it.next().ok_or("--faults needs SEED,RATE[,KIND]")?;
                opts.faults = Some(spec);
            }
            "--metrics-interval" => {
                let n = it.next().ok_or("--metrics-interval needs seconds")?;
                opts.metrics_interval = Some(parse_metrics_interval(&n)?);
            }
            "--metrics-text" => opts.metrics_text = true,
            "--cache-dir" => {
                let d = it.next().ok_or("--cache-dir needs a directory")?;
                opts.cache_dir = Some(d);
            }
            "--no-cache" => opts.no_cache = true,
            "--profile" => opts.profile = Some("trace.json".to_string()),
            "--profile-text" => opts.profile_text = true,
            "--log-json" => {
                let f = it.next().ok_or("--log-json needs a file name")?;
                opts.log_json = Some(f);
            }
            "--trace" => opts.trace = Some(DEFAULT_TRACE_DEPTH),
            "--fuel" => {
                let n = it.next().ok_or("--fuel needs a number")?;
                opts.limits.fuel = n.parse().map_err(|_| format!("bad fuel budget: {n}"))?;
            }
            "--limits" => {
                let spec = it.next().ok_or("--limits needs key=value,...")?;
                let parsed = recmod::telemetry::parse_limits_spec(&spec)?;
                // The spec replaces every keyed limit but must not drop
                // an already-parsed --deadline-ms.
                opts.limits = parsed;
            }
            "--deadline-ms" => {
                let n = it.next().ok_or("--deadline-ms needs a number")?;
                deadline_ms = Some(n.parse().map_err(|_| format!("bad deadline: {n}"))?);
            }
            "--max-errors" => {
                let n = it.next().ok_or("--max-errors needs a number")?;
                opts.max_errors = n.parse().map_err(|_| format!("bad error cap: {n}"))?;
            }
            _ if a.starts_with("--trace=") => {
                let d = &a["--trace=".len()..];
                opts.trace = Some(d.parse().map_err(|_| format!("bad trace depth: {d}"))?);
            }
            _ if a.starts_with("--profile-by=") => {
                opts.profile_by = match &a["--profile-by=".len()..] {
                    "judgement" => ProfileBy::Judgement,
                    "stage" => ProfileBy::Stage,
                    "file" => ProfileBy::File,
                    other => {
                        return Err(format!(
                            "unknown profile pivot: {other} (try judgement, stage, or file)"
                        ))
                    }
                };
            }
            _ if a.starts_with("--profile=") => {
                let f = &a["--profile=".len()..];
                if f.is_empty() {
                    return Err("--profile= needs a file name".to_string());
                }
                opts.profile = Some(f.to_string());
            }
            _ if a.starts_with("--log-json=") => {
                let f = &a["--log-json=".len()..];
                if f.is_empty() {
                    return Err("--log-json= needs a file name".to_string());
                }
                opts.log_json = Some(f.to_string());
            }
            _ if a.starts_with("--stats=") => {
                return Err(format!("unknown stats format: {a} (try --stats=json)"));
            }
            _ if a.starts_with("--socket=") => {
                let p = &a["--socket=".len()..];
                if p.is_empty() {
                    return Err("--socket= needs a path".to_string());
                }
                opts.socket = Some(p.to_string());
            }
            _ if a.starts_with("--queue-depth=") => {
                let n = &a["--queue-depth=".len()..];
                opts.queue_depth = Some(n.parse().map_err(|_| format!("bad queue depth: {n}"))?);
            }
            _ if a.starts_with("--faults=") => {
                let spec = &a["--faults=".len()..];
                if spec.is_empty() {
                    return Err("--faults= needs SEED,RATE[,KIND]".to_string());
                }
                opts.faults = Some(spec.to_string());
            }
            _ if a.starts_with("--metrics-interval=") => {
                let n = &a["--metrics-interval=".len()..];
                opts.metrics_interval = Some(parse_metrics_interval(n)?);
            }
            _ if a.starts_with("--cache-dir=") => {
                let d = &a["--cache-dir=".len()..];
                if d.is_empty() {
                    return Err("--cache-dir= needs a directory".to_string());
                }
                opts.cache_dir = Some(d.to_string());
            }
            _ if a.starts_with("--crash-dir=") => {
                let d = &a["--crash-dir=".len()..];
                if d.is_empty() {
                    return Err("--crash-dir= needs a directory".to_string());
                }
                opts.crash_dir = Some(d.to_string());
            }
            _ if a.starts_with("--diagnostics") => {
                return Err(format!(
                    "unknown diagnostics format: {a} (try --diagnostics=json)"
                ));
            }
            _ => rest.push(a),
        }
    }
    if let Some(ms) = deadline_ms {
        opts.limits = opts.limits.with_deadline_ms(ms);
        opts.deadline_ms = Some(ms);
    }
    if opts.diagnostics && opts.stats == StatsMode::Json {
        return Err(
            "--diagnostics=json conflicts with --stats=json (each claims stdout)".to_string(),
        );
    }
    Ok((rest, opts))
}

/// Parses a `--metrics-interval` seconds value (at least 1).
fn parse_metrics_interval(n: &str) -> Result<u64, String> {
    let secs: u64 = n
        .parse()
        .map_err(|_| format!("bad metrics interval: {n}"))?;
    if secs == 0 {
        return Err("--metrics-interval must be at least 1 second".to_string());
    }
    Ok(secs)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (args, opts) = match parse_options(args) {
        Ok(x) => x,
        Err(msg) => {
            eprintln!("recmodc: {msg}");
            return ExitCode::from(EXIT_USAGE);
        }
    };

    let is_batch = matches!(args.as_slice(),
        [cmd, paths @ ..] if cmd.as_str() == "check" && wants_batch(paths, &opts));
    let is_serve = matches!(args.as_slice(), [cmd] if cmd.as_str() == "serve");
    if opts.log_json.is_some() && !is_batch && !is_serve {
        eprintln!(
            "recmodc: --log-json only applies to batch mode (check --jobs/--corpus/dir) or serve"
        );
        return ExitCode::from(EXIT_USAGE);
    }
    if opts.metrics_interval.is_some() && !(is_serve && opts.log_json.is_some()) {
        eprintln!("recmodc: --metrics-interval needs serve mode and --log-json FILE");
        return ExitCode::from(EXIT_USAGE);
    }
    if opts.metrics_text && !is_serve {
        eprintln!("recmodc: --metrics-text only applies to serve mode");
        return ExitCode::from(EXIT_USAGE);
    }

    match args.as_slice() {
        [cmd] if cmd.as_str() == "explain" => {
            for c in sdiag::CODES {
                println!("{}  {}", c.code, c.summary);
            }
            ExitCode::SUCCESS
        }
        [cmd, code] if cmd.as_str() == "explain" => match sdiag::explain(code) {
            Some(c) => {
                println!("{} — {}", c.code, c.summary);
                println!("  example: {}", c.example);
                ExitCode::SUCCESS
            }
            None => {
                eprintln!(
                    "recmodc: unknown error code: {code} (run `recmodc explain` to list all)"
                );
                ExitCode::from(EXIT_USAGE)
            }
        },
        [cmd] if cmd.as_str() == "serve" => run_serve(&opts),
        [flag, expr] if flag.as_str() == "-e" => run_source("<expr>", expr, &opts, Mode::Run),
        [cmd, paths @ ..] if cmd.as_str() == "check" && wants_batch(paths, &opts) => {
            run_batch(paths, &opts)
        }
        [cmd, path] => {
            let mode = match cmd.as_str() {
                "run" => Mode::Run,
                "check" => Mode::Check,
                "split" => Mode::Split,
                _ => return usage(),
            };
            let (name, src) = if path == "-" {
                let mut buf = String::new();
                use std::io::Read;
                if let Err(e) = std::io::stdin().read_to_string(&mut buf) {
                    eprintln!("recmodc: cannot read stdin: {e}");
                    return ExitCode::from(EXIT_USER);
                }
                ("<stdin>".to_string(), buf)
            } else {
                match std::fs::read_to_string(path) {
                    Ok(s) => (path.clone(), s),
                    Err(e) => {
                        eprintln!("recmodc: cannot read {path}: {e}");
                        return ExitCode::from(EXIT_USER);
                    }
                }
            };
            run_source(&name, &src, &opts, mode)
        }
        _ => usage(),
    }
}

#[derive(Clone, Copy)]
enum Mode {
    Run,
    Check,
    Split,
}

/// Batch mode engages for `check` when explicitly requested
/// (`--jobs`/`--corpus`), when several paths are named, or when a path
/// is a directory; `check file.rm` alone keeps the single-file path
/// (and its unprefixed output) for compatibility.
fn wants_batch(paths: &[String], opts: &Options) -> bool {
    opts.corpus
        || opts.jobs.is_some()
        || paths.len() > 1
        || paths
            .iter()
            .any(|p| p != "-" && std::path::Path::new(p).is_dir())
}

/// `recmodc serve`: a supervised compile service speaking line-delimited
/// JSON over stdio (default) or a unix socket (`--socket PATH`). Each
/// request line gets exactly one response line reusing the structured
/// diagnostics schema; `--queue-depth` bounds admission (excess load is
/// shed with status `overloaded`), `--jobs` sets the worker count, and
/// `--faults SEED,RATE[,KIND]` arms deterministic fault injection for
/// chaos testing. See README "Serve" for the wire schema.
fn run_serve(opts: &Options) -> ExitCode {
    use recmod::driver::serve::{serve_connection, ServeConfig, Server};

    let faults = match &opts.faults {
        Some(spec) => match recmod::telemetry::fault::FaultPlan::parse(spec) {
            Ok(plan) => Some(plan),
            Err(msg) => {
                eprintln!("recmodc: {msg}");
                return ExitCode::from(EXIT_USAGE);
            }
        },
        None => None,
    };
    let defaults = ServeConfig::default();
    // Seeding trace ids from the fault plan makes a chaos replay
    // reproduce not just the verdicts but the trace ids too.
    let trace_seed = faults.as_ref().map(|p| p.seed).unwrap_or(0);
    let cfg = ServeConfig {
        workers: opts.jobs.unwrap_or(defaults.workers),
        queue_depth: opts.queue_depth.unwrap_or(defaults.queue_depth),
        limits: opts.limits,
        default_deadline_ms: opts.deadline_ms.or(defaults.default_deadline_ms),
        max_errors: opts.max_errors,
        faults,
        crash_dir: Some(
            opts.crash_dir
                .as_ref()
                .map(std::path::PathBuf::from)
                .unwrap_or_else(std::env::temp_dir),
        ),
        log_events: true,
        cache: opts.cache_config(),
        trace_seed,
        profile: opts.profile.is_some(),
        ..defaults
    };
    let mut server = match Server::start(cfg) {
        Ok(s) => s,
        Err(msg) => {
            eprintln!("recmodc: {msg}");
            return ExitCode::from(EXIT_INTERNAL);
        }
    };

    let heartbeat_stop = std::sync::atomic::AtomicBool::new(false);
    let code = std::thread::scope(|scope| {
        if let (Some(secs), Some(path)) = (opts.metrics_interval, opts.log_json.as_deref()) {
            let server = &server;
            let stop = &heartbeat_stop;
            scope.spawn(move || serve_heartbeat(server, path, secs, stop));
        }
        let code = match &opts.socket {
            Some(path) => serve_socket(&server, path),
            None => {
                let stdin = std::io::stdin();
                serve_connection(&server, stdin.lock(), std::io::stdout());
                ExitCode::SUCCESS
            }
        };
        heartbeat_stop.store(true, std::sync::atomic::Ordering::Release);
        code
    });
    for w in server.cache_warnings() {
        eprintln!("{}", w.render());
    }
    server.shutdown();
    if let Some(path) = &opts.profile {
        match server.session_trace_json() {
            Some(doc) => match std::fs::write(path, doc.to_compact()) {
                Ok(()) => eprintln!(
                    "profile: wrote Chrome trace to {path} (open at https://ui.perfetto.dev)"
                ),
                Err(e) => eprintln!("recmodc: cannot write {path}: {e}"),
            },
            None => eprintln!("recmodc: no session profile recorded"),
        }
    }
    if opts.metrics_text {
        // The peer may already have closed stdout (it saw the shutdown
        // response); losing the scrape then is fine, panicking is not.
        use std::io::Write as _;
        let _ = std::io::stdout().write_all(server.metrics_text().as_bytes());
    }
    code
}

/// The `--metrics-interval` heartbeat: appends one compact metrics
/// document per tick to the `--log-json` file until the serve loop
/// signals `stop`. File trouble disables the heartbeat with a warning;
/// it never takes the service down.
fn serve_heartbeat(
    server: &recmod::driver::serve::Server,
    path: &str,
    secs: u64,
    stop: &std::sync::atomic::AtomicBool,
) {
    use std::io::Write as _;
    let mut file = match std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
    {
        Ok(f) => f,
        Err(e) => {
            eprintln!("recmodc: cannot open {path} for the metrics heartbeat: {e}");
            return;
        }
    };
    let interval = std::time::Duration::from_secs(secs);
    let mut next = std::time::Instant::now() + interval;
    // Polling keeps shutdown prompt without a dedicated wakeup channel.
    while !stop.load(std::sync::atomic::Ordering::Acquire) {
        std::thread::sleep(std::time::Duration::from_millis(50));
        if std::time::Instant::now() < next {
            continue;
        }
        next += interval;
        let line = server.metrics_json(false).to_compact();
        if writeln!(file, "{line}")
            .and_then(|()| file.flush())
            .is_err()
        {
            eprintln!("recmodc: metrics heartbeat cannot write {path}; stopping it");
            return;
        }
    }
}

/// Accept loop for `serve --socket PATH`: one connection at a time,
/// polling between accepts so a `shutdown` op received on any
/// connection stops the listener. A stale socket file from a previous
/// run is removed before binding.
fn serve_socket(server: &recmod::driver::serve::Server, path: &str) -> ExitCode {
    use std::os::unix::net::UnixListener;

    let p = std::path::Path::new(path);
    if p.exists() {
        let _ = std::fs::remove_file(p);
    }
    let listener = match UnixListener::bind(p) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("recmodc: cannot bind {path}: {e}");
            return ExitCode::from(EXIT_USER);
        }
    };
    if let Err(e) = listener.set_nonblocking(true) {
        eprintln!("recmodc: cannot poll {path}: {e}");
        return ExitCode::from(EXIT_INTERNAL);
    }
    eprintln!("recmodc: serving on {path}");
    loop {
        match listener.accept() {
            Ok((stream, _addr)) => {
                // The listener polls, but each connection reads blocking.
                if let Err(e) = stream.set_nonblocking(false) {
                    eprintln!("recmodc: cannot configure connection: {e}");
                    continue;
                }
                let reader = match stream.try_clone() {
                    Ok(s) => std::io::BufReader::new(s),
                    Err(e) => {
                        eprintln!("recmodc: cannot clone connection: {e}");
                        continue;
                    }
                };
                recmod::driver::serve::serve_connection(server, reader, stream);
                if server.is_draining() {
                    break;
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                if server.is_draining() {
                    break;
                }
                std::thread::sleep(std::time::Duration::from_millis(10));
            }
            Err(e) => {
                eprintln!("recmodc: accept failed on {path}: {e}");
                break;
            }
        }
    }
    let _ = std::fs::remove_file(p);
    ExitCode::SUCCESS
}

fn run_batch(paths: &[String], opts: &Options) -> ExitCode {
    use recmod::driver;

    let mut jobs: Vec<driver::Job> = Vec::new();
    if opts.corpus {
        for entry in recmod::corpus::all() {
            jobs.push(driver::Job::new(entry.name, entry.source));
        }
    }
    if !paths.is_empty() {
        let pathbufs: Vec<std::path::PathBuf> =
            paths.iter().map(std::path::PathBuf::from).collect();
        match driver::jobs_from_paths(&pathbufs) {
            Ok(mut found) => jobs.append(&mut found),
            Err(msg) => {
                eprintln!("recmodc: cannot read {msg}");
                return ExitCode::from(EXIT_USER);
            }
        }
    }
    if jobs.is_empty() {
        eprintln!("recmodc: no input files");
        return ExitCode::from(EXIT_USAGE);
    }

    let telemetry = opts.telemetry_config();
    let config = driver::DriverConfig {
        file_counters: opts.log_json.is_some(),
        jobs: opts.jobs.unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        }),
        limits: opts.limits,
        deadline_ms: opts.deadline_ms,
        max_errors: opts.max_errors,
        warm: !opts.cold,
        telemetry,
        cache: opts.cache_config(),
        ..driver::DriverConfig::default()
    };
    let result = driver::compile_batch(&jobs, &config);
    for w in &result.cache_warnings {
        eprintln!("{}", w.render());
    }

    // With `--stats=json` or `--diagnostics=json`, stdout must carry
    // exactly one JSON document; the usual human-readable output moves
    // to stderr.
    macro_rules! out {
        ($($t:tt)*) => {
            if opts.machine_stdout() {
                eprintln!($($t)*)
            } else {
                println!($($t)*)
            }
        };
    }

    for outcome in &result.outcomes {
        match outcome.status {
            driver::FileStatus::Ok => {
                for (name, describe) in &outcome.summaries {
                    out!("{}: {name} : {describe}", outcome.name);
                }
                out!("{}: ok", outcome.name);
            }
            _ => {
                for line in &outcome.diagnostics {
                    eprintln!("{line}");
                }
            }
        }
    }
    let failed = result.outcomes.len() - result.ok_count();
    out!(
        "checked {} file(s) on {} worker(s): {} ok, {} failed",
        result.outcomes.len(),
        result.workers.len(),
        result.ok_count(),
        failed
    );
    let histogram = sdiag::histogram(result.outcomes.iter().flat_map(|o| &o.diags));
    if !histogram.is_empty() {
        let parts: Vec<String> = histogram
            .iter()
            .map(|(code, n)| format!("{code} x{n}"))
            .collect();
        out!("error codes: {}", parts.join(", "));
    }

    // Crash bundles for limit/internal outcomes; the driver captured
    // the per-file recorder tail on the worker that compiled the file.
    // Outcomes come back in input order, so they pair with `jobs`.
    for (outcome, job) in result.outcomes.iter().zip(&jobs) {
        if let Some(crash) = &outcome.crash {
            write_crash_bundle(
                opts,
                &outcome.name,
                &job.source,
                status_label(outcome.status),
                outcome.status.exit_code(),
                crash,
            );
        }
    }
    if opts.diagnostics {
        let files: Vec<(&str, &'static str, u8, &[Diagnostic])> = result
            .outcomes
            .iter()
            .map(|o| {
                (
                    o.name.as_str(),
                    status_label(o.status),
                    o.status.exit_code(),
                    o.diags.as_slice(),
                )
            })
            .collect();
        println!("{}", diagnostics_doc(files).to_pretty());
    }

    if opts.trace.is_some() {
        if let Some(r) = &result.merged {
            eprint!("{}", r.render_trace());
        }
    }
    if let Some(path) = &opts.profile {
        write_batch_trace(path, &result);
    }
    if opts.profile_text {
        let text = render_batch_profile(&result, opts.profile_by);
        if opts.machine_stdout() {
            eprint!("{text}");
        } else {
            print!("{text}");
        }
    }
    if let Some(path) = &opts.log_json {
        write_log_json(path, &result);
    }
    match opts.stats {
        StatsMode::Off => {}
        StatsMode::Text if opts.machine_stdout() => eprint!("{}", render_batch_stats(&result)),
        StatsMode::Text => print!("{}", render_batch_stats(&result)),
        StatsMode::Json => println!("{}", batch_stats_json(&result).to_pretty()),
    }
    ExitCode::from(result.exit_code())
}

/// The instant-event label for a file, `None` for uneventful outcomes.
fn instant_label(status: recmod::driver::FileStatus) -> Option<&'static str> {
    match status {
        recmod::driver::FileStatus::Limit => Some("limit"),
        recmod::driver::FileStatus::Internal => Some("internal"),
        _ => None,
    }
}

/// The machine-readable outcome label for a file.
fn status_label(status: recmod::driver::FileStatus) -> &'static str {
    match status {
        recmod::driver::FileStatus::Ok => "ok",
        recmod::driver::FileStatus::Error => "error",
        recmod::driver::FileStatus::Limit => "limit",
        recmod::driver::FileStatus::Internal => "internal",
    }
}

/// Writes the batch as a Chrome Trace Event / Perfetto JSON file: one
/// lane per worker (spans + counter tracks) plus one complete event per
/// input file, with instant events marking limit hits and panics.
fn write_batch_trace(path: &str, result: &recmod::driver::BatchResult) {
    use recmod::telemetry::chrome_trace::{export, FileEvent, Lane};
    let lanes: Vec<Lane<'_>> = result
        .workers
        .iter()
        .filter_map(|w| {
            w.report.as_ref().map(|report| Lane {
                tid: w.worker as u64,
                name: format!("worker {}", w.worker),
                report,
            })
        })
        .collect();
    let files: Vec<FileEvent> = result
        .outcomes
        .iter()
        .map(|o| FileEvent {
            name: o.name.clone(),
            tid: o.worker as u64,
            start_nanos: o.start_nanos,
            dur_nanos: o.nanos,
            instant: instant_label(o.status).map(String::from),
        })
        .collect();
    let doc = export("recmodc", &lanes, &files);
    match std::fs::write(path, doc.to_compact()) {
        Ok(()) => {
            eprintln!("profile: wrote Chrome trace to {path} (open at https://ui.perfetto.dev)")
        }
        Err(e) => eprintln!("recmodc: cannot write {path}: {e}"),
    }
}

/// The flat (+ top-down, for the judgement pivot) text profile of one
/// telemetry report. The file pivot is handled by the callers, which
/// know their file boundaries.
fn render_report_profile(report: &recmod::telemetry::Report, by: ProfileBy) -> String {
    use recmod::telemetry::profile;
    match by {
        ProfileBy::Judgement => {
            let rows = profile::flat(&report.spans);
            let wall = profile::self_total(&report.spans);
            let mut s = profile::render_flat(&rows, Some(wall));
            s.push_str(&profile::render_top_down(
                &profile::top_down(&report.spans),
                wall / 100,
            ));
            s
        }
        ProfileBy::Stage | ProfileBy::File => {
            let mut rows: Vec<profile::FlatEntry> = report
                .stage_totals()
                .iter()
                .map(|(name, t)| profile::FlatEntry {
                    name,
                    calls: t.calls,
                    total_nanos: t.nanos,
                    self_nanos: t.nanos,
                })
                .collect();
            rows.sort_by(|a, b| b.self_nanos.cmp(&a.self_nanos).then(a.name.cmp(b.name)));
            let wall: u64 = rows.iter().map(|r| r.self_nanos).sum();
            profile::render_flat(&rows, Some(wall))
        }
    }
}

/// Single-file profile outputs: the whole pipeline is one trace lane;
/// the file pivot degenerates to the stage pivot (there is one file).
fn emit_single_profile(file: &str, opts: &Options, report: &recmod::telemetry::Report) {
    if let Some(path) = &opts.profile {
        use recmod::telemetry::chrome_trace::{export, Lane};
        let lanes = [Lane {
            tid: 0,
            name: format!("pipeline ({file})"),
            report,
        }];
        let doc = export("recmodc", &lanes, &[]);
        match std::fs::write(path, doc.to_compact()) {
            Ok(()) => {
                eprintln!("profile: wrote Chrome trace to {path} (open at https://ui.perfetto.dev)")
            }
            Err(e) => eprintln!("recmodc: cannot write {path}: {e}"),
        }
    }
    if opts.profile_text {
        let text = render_report_profile(report, opts.profile_by);
        if opts.machine_stdout() {
            eprint!("{text}");
        } else {
            print!("{text}");
        }
    }
}

/// The batch text profile under the requested pivot.
fn render_batch_profile(result: &recmod::driver::BatchResult, by: ProfileBy) -> String {
    match by {
        ProfileBy::Judgement | ProfileBy::Stage => match &result.merged {
            Some(report) => render_report_profile(report, by),
            None => "profile: no telemetry report\n".to_string(),
        },
        ProfileBy::File => {
            let mut s = String::from("file profile (wall ms, worker, status):\n");
            let mut sorted: Vec<_> = result.outcomes.iter().collect();
            sorted.sort_by(|a, b| b.nanos.cmp(&a.nanos).then(a.name.cmp(&b.name)));
            for o in sorted {
                s.push_str(&format!(
                    "{:>12.3}  w{}  {:<8}  {}\n",
                    o.nanos as f64 / 1e6,
                    o.worker,
                    status_label(o.status),
                    o.name
                ));
            }
            s
        }
    }
}

/// Writes the batch as a JSONL event log: a `meta` header line, then one
/// event per file in input order with its outcome, timing, worker, steal
/// flag, per-stage nanoseconds, and non-stage counter deltas.
fn write_log_json(path: &str, result: &recmod::driver::BatchResult) {
    use recmod::telemetry::json::Json;
    let mut out = String::new();
    out.push_str(
        &Json::obj([
            (
                "schema_version",
                Json::UInt(recmod::telemetry::SCHEMA_VERSION),
            ),
            ("kind", Json::str("meta")),
            ("files", Json::UInt(result.outcomes.len() as u64)),
            ("workers", Json::UInt(result.workers.len() as u64)),
            ("wall_nanos", Json::UInt(result.wall_nanos)),
        ])
        .to_compact(),
    );
    out.push('\n');
    for o in &result.outcomes {
        let mut fields = vec![
            ("kind", Json::str("file")),
            ("path", Json::str(o.name.as_str())),
            ("status", Json::str(status_label(o.status))),
            ("exit", Json::UInt(o.status.exit_code() as u64)),
            ("worker", Json::UInt(o.worker as u64)),
            ("stolen", Json::Bool(o.stolen)),
            ("start_nanos", Json::UInt(o.start_nanos)),
            ("nanos", Json::UInt(o.nanos)),
            (
                "diagnostics",
                Json::Arr(o.diags.iter().map(Diagnostic::to_json).collect()),
            ),
        ];
        if let Some(counters) = &o.counters {
            // `stage.X.nanos` deltas become the per-file stage times;
            // everything outside the stage namespace is a counter delta.
            let stages: std::collections::BTreeMap<String, Json> = counters
                .iter()
                .filter_map(|(k, v)| {
                    k.strip_prefix("stage.")
                        .and_then(|rest| rest.strip_suffix(".nanos"))
                        .map(|stage| (stage.to_string(), Json::UInt(*v)))
                })
                .collect();
            let deltas: std::collections::BTreeMap<String, Json> = counters
                .iter()
                .filter(|(k, _)| !k.starts_with("stage."))
                .map(|(k, v)| ((*k).to_string(), Json::UInt(*v)))
                .collect();
            fields.push(("stages", Json::Obj(stages)));
            fields.push(("counters", Json::Obj(deltas)));
        }
        out.push_str(&Json::obj(fields).to_compact());
        out.push('\n');
    }
    match std::fs::write(path, out) {
        Ok(()) => eprintln!(
            "log: wrote {} event(s) to {path}",
            result.outcomes.len() + 1
        ),
        Err(e) => eprintln!("recmodc: cannot write {path}: {e}"),
    }
}

/// Human-readable batch statistics: wall clock, per-stage time
/// attribution (exclusive self-time summed across workers), per-worker
/// file/steal counts, and merged pipeline counters.
fn render_batch_stats(result: &recmod::driver::BatchResult) -> String {
    use std::fmt::Write as _;
    let mut s = String::new();
    let wall_ms = result.wall_nanos as f64 / 1e6;
    let _ = writeln!(s, "batch: {:.2} ms wall", wall_ms);
    for w in &result.workers {
        let _ = writeln!(
            s,
            "worker {}: {} file(s), {} stolen",
            w.worker, w.files, w.steals
        );
    }
    if let Some(report) = &result.merged {
        let stages = report.stage_totals();
        if !stages.is_empty() {
            let _ = writeln!(s, "stages (exclusive time, all workers):");
            for (name, total) in &stages {
                let _ = writeln!(
                    s,
                    "  {name:<8} {:>10.3} ms  {:>8} call(s)",
                    total.nanos as f64 / 1e6,
                    total.calls
                );
            }
        }
        let _ = writeln!(s, "counters:");
        for (k, v) in &report.counters {
            if !k.starts_with("stage.") {
                let _ = writeln!(s, "  {k} = {v}");
            }
        }
    }
    s
}

/// The batch statistics as one JSON document.
fn batch_stats_json(result: &recmod::driver::BatchResult) -> recmod::telemetry::json::Json {
    use recmod::telemetry::json::Json;
    let mut obj = vec![
        (
            "schema_version",
            Json::UInt(recmod::telemetry::SCHEMA_VERSION),
        ),
        ("files", Json::UInt(result.outcomes.len() as u64)),
        ("ok", Json::UInt(result.ok_count() as u64)),
        ("workers", Json::UInt(result.workers.len() as u64)),
        ("wall_nanos", Json::UInt(result.wall_nanos)),
        (
            "error_codes",
            Json::Obj(
                sdiag::histogram(result.outcomes.iter().flat_map(|o| &o.diags))
                    .iter()
                    .map(|(code, n)| ((*code).to_string(), Json::UInt(*n)))
                    .collect(),
            ),
        ),
        (
            "per_worker",
            Json::Arr(
                result
                    .workers
                    .iter()
                    .map(|w| {
                        Json::obj([
                            ("worker", Json::UInt(w.worker as u64)),
                            ("files", Json::UInt(w.files as u64)),
                            ("steals", Json::UInt(w.steals as u64)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ];
    if let Some(report) = &result.merged {
        obj.push((
            "stages",
            Json::Obj(
                report
                    .stage_totals()
                    .iter()
                    .map(|(name, t)| {
                        (
                            (*name).to_string(),
                            Json::obj([
                                ("nanos", Json::UInt(t.nanos)),
                                ("calls", Json::UInt(t.calls)),
                            ]),
                        )
                    })
                    .collect(),
            ),
        ));
        obj.push((
            "counters",
            Json::Obj(
                report
                    .counters
                    .iter()
                    .map(|(k, v)| ((*k).to_string(), Json::UInt(*v)))
                    .collect(),
            ),
        ));
    }
    Json::obj(obj)
}

/// Stack size for the pipeline thread. Parsing, elaboration, and
/// evaluation are all recursive; running them on a dedicated big stack
/// guarantees the [`Limits`] depth guards fire long before the host
/// stack is at risk, even in debug builds with fat frames.
const PIPELINE_STACK_MB: usize = 512;

fn run_source(file: &str, src: &str, opts: &Options, mode: Mode) -> ExitCode {
    let file = file.to_string();
    let src = src.to_string();
    let opts = opts.clone();
    // Telemetry state is thread-local, so the whole observed pipeline
    // (install → compile/run → uninstall → print) lives on the big-stack
    // thread.
    let code = recmod::eval::run_big_stack(PIPELINE_STACK_MB, move || {
        run_pipeline(&file, &src, &opts, mode)
    });
    ExitCode::from(code)
}

fn run_pipeline(file: &str, src: &str, opts: &Options, mode: Mode) -> u8 {
    let telemetry = opts.telemetry_config();
    let observing = telemetry.is_some();
    if let Some(config) = telemetry {
        recmod::telemetry::install(config);
    }
    recmod::telemetry::diag::reset_recorder();
    // The last line of defense: any panic that slips past the
    // structured error paths is a compiler bug, reported as an
    // internal-error diagnostic rather than an unwound process.
    let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        run_source_inner(file, src, opts, mode)
    }));
    let (code, observed, diags) = match caught {
        Ok(x) => x,
        Err(payload) => {
            recmod::telemetry::count("internal.panics", 1);
            let msg = panic_message(&payload);
            eprintln!("{file}: internal error: panic: {msg}");
            eprintln!("{file}: this is a bug in recmodc, not in your program");
            let diag = Diagnostic::internal("I002", format!("panic: {msg}"));
            (EXIT_INTERNAL, None, vec![diag])
        }
    };
    // Crash forensics must be captured on this thread (the flight
    // recorder is thread-local) and before the telemetry sink is
    // uninstalled (the counter snapshot needs it live).
    if code == EXIT_LIMIT || code == EXIT_INTERNAL {
        let crash = recmod::telemetry::diag::crash_data();
        write_crash_bundle(opts, file, src, exit_status_label(code), code, &crash);
    }
    if opts.diagnostics {
        let doc = diagnostics_doc([(file, exit_status_label(code), code, diags.as_slice())]);
        println!("{}", doc.to_pretty());
    }
    let report = if observing {
        recmod::telemetry::uninstall()
    } else {
        None
    };
    if opts.trace.is_some() {
        if let Some(r) = &report {
            eprint!("{}", r.render_trace());
        }
    }
    if let Some(r) = &report {
        emit_single_profile(file, opts, r);
    }
    if opts.stats != StatsMode::Off {
        if let Some((compiled, eval)) = observed {
            let stats = StatsReport::collect(&compiled, eval, report);
            match opts.stats {
                StatsMode::Json => println!("{}", stats.to_json().to_pretty()),
                StatsMode::Text if opts.machine_stdout() => eprint!("{}", stats.render_text()),
                StatsMode::Text => print!("{}", stats.render_text()),
                StatsMode::Off => unreachable!(),
            }
        }
    }
    code
}

/// The outcome label for a single-file exit code.
fn exit_status_label(code: u8) -> &'static str {
    match code {
        0 => "ok",
        EXIT_LIMIT => "limit",
        EXIT_INTERNAL => "internal",
        _ => "error",
    }
}

/// The `--diagnostics=json` document: one schema-versioned object with
/// a `files` array of `{path, status, exit, diagnostics}` records. The
/// diagnostics arrays are never truncated by `--max-errors`.
fn diagnostics_doc<'a>(
    files: impl IntoIterator<Item = (&'a str, &'static str, u8, &'a [Diagnostic])>,
) -> recmod::telemetry::json::Json {
    use recmod::telemetry::json::Json;
    let entries: Vec<Json> = files
        .into_iter()
        .map(|(path, status, exit, diags)| {
            Json::obj([
                ("path", Json::str(path)),
                ("status", Json::str(status)),
                ("exit", Json::UInt(exit as u64)),
                (
                    "diagnostics",
                    Json::Arr(diags.iter().map(Diagnostic::to_json).collect()),
                ),
            ])
        })
        .collect();
    Json::obj([
        (
            "schema_version",
            Json::UInt(recmod::telemetry::SCHEMA_VERSION),
        ),
        ("kind", Json::str("diagnostics")),
        ("files", Json::Arr(entries)),
    ])
}

/// Writes the crash bundle for a limit/internal exit under `--crash-dir`
/// (default the system temp directory) through the shared
/// `telemetry::bundle` writer, whose filename discriminator keeps
/// repeated failures on one input from overwriting each other. Failure
/// to write is reported but never changes the exit code — forensics
/// must not mask the original error.
fn write_crash_bundle(
    opts: &Options,
    file: &str,
    src: &str,
    status: &'static str,
    exit: u8,
    crash: &recmod::telemetry::diag::CrashData,
) {
    let dir = opts
        .crash_dir
        .as_ref()
        .map(std::path::PathBuf::from)
        .unwrap_or_else(std::env::temp_dir);
    match recmod::telemetry::bundle::write_bundle(
        &dir,
        file,
        src,
        status,
        exit,
        &opts.limits,
        crash,
    ) {
        Ok(path) => eprintln!("crash bundle: wrote {}", path.display()),
        Err(msg) => eprintln!("recmodc: {msg}"),
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "(non-string panic payload)".to_string()
    }
}

/// Prints up to `max_errors` diagnostics through the shared renderer
/// (`file:line:col: error: … [CODE]`), classifies them into an exit
/// code (internal errors dominate, then resource limits, then ordinary
/// program errors), and hands back the full untruncated structured set.
fn report_errors(
    file: &str,
    src: &str,
    errors: &[SurfaceError],
    max_errors: usize,
) -> (u8, Vec<Diagnostic>) {
    let diags = sdiag::from_errors(src, errors);
    for d in diags.iter().take(max_errors) {
        eprintln!("{}", sdiag::render_line(file, d));
    }
    if diags.len() > max_errors {
        eprintln!("{}", sdiag::render_elided(file, diags.len() - max_errors));
    }
    let code = if errors.iter().any(|e| e.is_internal()) {
        EXIT_INTERNAL
    } else if errors.iter().any(|e| e.is_limit()) {
        EXIT_LIMIT
    } else {
        EXIT_USER
    };
    (code, diags)
}

type Observed = Option<(recmod::Compiled, Option<recmod::eval::EvalStats>)>;

fn run_source_inner(
    file: &str,
    src: &str,
    opts: &Options,
    mode: Mode,
) -> (u8, Observed, Vec<Diagnostic>) {
    // With `--stats=json` or `--diagnostics=json`, stdout must carry
    // exactly one JSON document; the usual human-readable output moves
    // to stderr.
    macro_rules! out {
        ($($t:tt)*) => {
            if opts.machine_stdout() {
                eprintln!($($t)*)
            } else {
                println!($($t)*)
            }
        };
    }
    let compiled = match recmod::surface::compile_with_limits(src, &opts.limits) {
        Ok(c) => c,
        Err(errors) => {
            let (code, diags) = report_errors(file, src, &errors, opts.max_errors);
            return (code, None, diags);
        }
    };
    match mode {
        Mode::Check => {
            for (name, describe) in compiled.summaries() {
                out!("{name} : {describe}");
            }
            out!("ok");
            (0, Some((compiled, None)), Vec::new())
        }
        Mode::Split => {
            for b in &compiled.elab.bindings {
                out!("── {} ──", b.name);
                match &b.static_part {
                    Some(con) => {
                        out!("  static:  {}", con_to_string(con, &mut Names::new()))
                    }
                    None => out!("  static:  (none — value binding)"),
                }
                out!(
                    "  dynamic: {}",
                    term_to_string(&b.dynamic, &mut Names::new())
                );
            }
            (0, Some((compiled, None)), Vec::new())
        }
        Mode::Run => {
            if compiled.main.is_none() {
                for (name, describe) in compiled.summaries() {
                    out!("{name} : {describe}");
                }
                eprintln!("(no main expression; add one after the declarations)");
                return (0, Some((compiled, None)), Vec::new());
            }
            // Already on the big-stack pipeline thread; evaluate inline.
            let term = compiled.program();
            let mut interp = recmod::eval::Interp::with_pipeline_limits(&opts.limits);
            let outcome = interp.run(&term).map(|v| v.to_string());
            let stats = interp.stats();
            match outcome {
                Ok(v) => {
                    out!("{v}");
                    if opts.steps {
                        eprintln!("steps: {}", stats.steps);
                    }
                    (0, Some((compiled, Some(stats))), Vec::new())
                }
                Err(e) => {
                    eprintln!("{file}: runtime error: {e}");
                    // Runtime failures carry a code too: resource-class
                    // ones map onto the L taxonomy, stuck states are
                    // compiler bugs; an ordinary `raise Fail` is the
                    // program's own business and stays code-less.
                    let (code, diag_code) = match &e {
                        recmod::eval::EvalError::DepthExceeded => (EXIT_LIMIT, Some("L001")),
                        recmod::eval::EvalError::Limit(l) => (EXIT_LIMIT, Some(l.kind.code())),
                        e if e.is_limit() => (EXIT_LIMIT, Some("L003")),
                        // The kernel accepted this program, so a stuck
                        // or ill-formed runtime state is our bug.
                        recmod::eval::EvalError::Stuck(_)
                        | recmod::eval::EvalError::BlackHole
                        | recmod::eval::EvalError::OpenTerm => (EXIT_INTERNAL, Some("I001")),
                        _ => (EXIT_USER, None),
                    };
                    let diags = diag_code
                        .map(|c| vec![Diagnostic::internal(c, format!("runtime error: {e}"))])
                        .unwrap_or_default();
                    (code, None, diags)
                }
            }
        }
    }
}
