//! `recmodc` — the command-line compiler/runner for the recursive-module
//! language.
//!
//! ```text
//! recmodc run  <file.rml>      compile and run, print the main value
//! recmodc check <file.rml>     typecheck only, print binding signatures
//! recmodc split <file.rml>     print each binding's phase-split parts
//! recmodc -e "<expr>"          evaluate one expression
//! ```
//!
//! Options: `--steps` prints the interpreter step count after `run`.

use std::process::ExitCode;

use recmod::syntax::pretty::{term_to_string, Names};

fn usage() -> ExitCode {
    eprintln!(
        "usage: recmodc <run|check|split> <file> [--steps]\n       recmodc -e \"<expression>\""
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let steps_flag = args.iter().any(|a| a == "--steps");
    let args: Vec<&String> = args.iter().filter(|a| *a != "--steps").collect();

    match args.as_slice() {
        [flag, expr] if flag.as_str() == "-e" => {
            run_source(expr, steps_flag, Mode::Run)
        }
        [cmd, path] => {
            let mode = match cmd.as_str() {
                "run" => Mode::Run,
                "check" => Mode::Check,
                "split" => Mode::Split,
                _ => return usage(),
            };
            let src = match std::fs::read_to_string(path) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("recmodc: cannot read {path}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            run_source(&src, steps_flag, mode)
        }
        _ => usage(),
    }
}

enum Mode {
    Run,
    Check,
    Split,
}

fn run_source(src: &str, steps_flag: bool, mode: Mode) -> ExitCode {
    let compiled = match recmod::compile(src) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: {}", e.render(src));
            return ExitCode::FAILURE;
        }
    };
    match mode {
        Mode::Check => {
            for (name, describe) in compiled.summaries() {
                println!("{name} : {describe}");
            }
            println!("ok");
            ExitCode::SUCCESS
        }
        Mode::Split => {
            for b in &compiled.elab.bindings {
                println!("── {} ──", b.name);
                println!("  dynamic: {}", term_to_string(&b.dynamic, &mut Names::new()));
            }
            ExitCode::SUCCESS
        }
        Mode::Run => {
            if compiled.main.is_none() {
                for (name, describe) in compiled.summaries() {
                    println!("{name} : {describe}");
                }
                eprintln!("(no main expression; add one after the declarations)");
                return ExitCode::SUCCESS;
            }
            let term = compiled.program();
            let outcome = recmod::eval::run_big_stack(512, move || {
                let mut interp = recmod::eval::Interp::new();
                let r = interp.run(&term).map(|v| v.to_string());
                (r, interp.steps())
            });
            match outcome {
                (Ok(v), steps) => {
                    println!("{v}");
                    if steps_flag {
                        eprintln!("steps: {steps}");
                    }
                    ExitCode::SUCCESS
                }
                (Err(e), _) => {
                    eprintln!("runtime error: {e}");
                    ExitCode::FAILURE
                }
            }
        }
    }
}
