//! `recmodc` — the command-line compiler/runner for the recursive-module
//! language.
//!
//! ```text
//! recmodc run  <file.rml>      compile and run, print the main value
//! recmodc check <file.rml>     typecheck only, print binding signatures
//! recmodc split <file.rml>     print each binding's phase-split parts
//! recmodc -e "<expr>"          evaluate one expression
//! ```
//!
//! Options:
//!
//! * `--steps` — print the interpreter step count after `run`;
//! * `--fuel N` — set the kernel's normalization/equivalence fuel budget;
//! * `--stats` / `--stats=json` — print pipeline counters (kernel fuel
//!   by operation, μ-unrolls, whnf steps, per-binding elaboration
//!   timings, phase-split node counts, evaluator counters) as text or as
//!   one JSON document on stdout;
//! * `--trace` / `--trace=DEPTH` — print the kernel's judgement-level
//!   derivation trace (indented, depth-limited) to stderr.

use std::process::ExitCode;

use recmod::stats::StatsReport;
use recmod::syntax::pretty::{con_to_string, term_to_string, Names};

/// Depth limit used by a bare `--trace` (override with `--trace=DEPTH`).
const DEFAULT_TRACE_DEPTH: usize = 8;

fn usage() -> ExitCode {
    eprintln!(
        "usage: recmodc <run|check|split> <file> [options]\n       \
         recmodc -e \"<expression>\" [options]\n\
         options: --steps --fuel N --stats[=json] --trace[=DEPTH]"
    );
    ExitCode::from(2)
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum StatsMode {
    Off,
    Text,
    Json,
}

struct Options {
    steps: bool,
    stats: StatsMode,
    trace: Option<usize>,
    fuel: Option<u64>,
}

fn parse_options(args: Vec<String>) -> Result<(Vec<String>, Options), String> {
    let mut rest = Vec::new();
    let mut opts = Options {
        steps: false,
        stats: StatsMode::Off,
        trace: None,
        fuel: None,
    };
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--steps" => opts.steps = true,
            "--stats" => opts.stats = StatsMode::Text,
            "--stats=json" => opts.stats = StatsMode::Json,
            "--trace" => opts.trace = Some(DEFAULT_TRACE_DEPTH),
            "--fuel" => {
                let n = it.next().ok_or("--fuel needs a number")?;
                opts.fuel = Some(n.parse().map_err(|_| format!("bad fuel budget: {n}"))?);
            }
            _ if a.starts_with("--trace=") => {
                let d = &a["--trace=".len()..];
                opts.trace = Some(d.parse().map_err(|_| format!("bad trace depth: {d}"))?);
            }
            _ if a.starts_with("--stats=") => {
                return Err(format!("unknown stats format: {a} (try --stats=json)"));
            }
            _ => rest.push(a),
        }
    }
    Ok((rest, opts))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (args, opts) = match parse_options(args) {
        Ok(x) => x,
        Err(msg) => {
            eprintln!("recmodc: {msg}");
            return ExitCode::from(2);
        }
    };

    match args.as_slice() {
        [flag, expr] if flag.as_str() == "-e" => run_source(expr, &opts, Mode::Run),
        [cmd, path] => {
            let mode = match cmd.as_str() {
                "run" => Mode::Run,
                "check" => Mode::Check,
                "split" => Mode::Split,
                _ => return usage(),
            };
            let src = match std::fs::read_to_string(path) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("recmodc: cannot read {path}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            run_source(&src, &opts, mode)
        }
        _ => usage(),
    }
}

enum Mode {
    Run,
    Check,
    Split,
}

fn run_source(src: &str, opts: &Options, mode: Mode) -> ExitCode {
    let observing = opts.stats != StatsMode::Off || opts.trace.is_some();
    if observing {
        let config = match opts.trace {
            Some(depth) => recmod::telemetry::Config::with_trace(depth),
            None => recmod::telemetry::Config::default(),
        };
        recmod::telemetry::install(config);
    }
    let (code, observed) = run_source_inner(src, opts, mode);
    let report = if observing {
        recmod::telemetry::uninstall()
    } else {
        None
    };
    if opts.trace.is_some() {
        if let Some(r) = &report {
            eprint!("{}", r.render_trace());
        }
    }
    if opts.stats != StatsMode::Off {
        if let Some((compiled, eval)) = observed {
            let stats = StatsReport::collect(&compiled, eval, report);
            match opts.stats {
                StatsMode::Json => println!("{}", stats.to_json().to_pretty()),
                StatsMode::Text => print!("{}", stats.render_text()),
                StatsMode::Off => unreachable!(),
            }
        }
    }
    code
}

type Observed = Option<(recmod::Compiled, Option<recmod::eval::EvalStats>)>;

fn run_source_inner(src: &str, opts: &Options, mode: Mode) -> (ExitCode, Observed) {
    // With `--stats=json`, stdout must carry exactly one JSON document;
    // the usual human-readable output moves to stderr.
    macro_rules! out {
        ($($t:tt)*) => {
            if opts.stats == StatsMode::Json {
                eprintln!($($t)*)
            } else {
                println!($($t)*)
            }
        };
    }
    let elab = match opts.fuel {
        Some(fuel) => recmod::surface::Elaborator::with_tc(recmod::kernel::Tc::with_fuel(fuel)),
        None => recmod::surface::Elaborator::new(),
    };
    let compiled = match recmod::compile_with(elab, src) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: {}", e.render(src));
            return (ExitCode::FAILURE, None);
        }
    };
    match mode {
        Mode::Check => {
            for (name, describe) in compiled.summaries() {
                out!("{name} : {describe}");
            }
            out!("ok");
            (ExitCode::SUCCESS, Some((compiled, None)))
        }
        Mode::Split => {
            for b in &compiled.elab.bindings {
                out!("── {} ──", b.name);
                match &b.static_part {
                    Some(con) => {
                        out!("  static:  {}", con_to_string(con, &mut Names::new()))
                    }
                    None => out!("  static:  (none — value binding)"),
                }
                out!(
                    "  dynamic: {}",
                    term_to_string(&b.dynamic, &mut Names::new())
                );
            }
            (ExitCode::SUCCESS, Some((compiled, None)))
        }
        Mode::Run => {
            if compiled.main.is_none() {
                for (name, describe) in compiled.summaries() {
                    out!("{name} : {describe}");
                }
                eprintln!("(no main expression; add one after the declarations)");
                return (ExitCode::SUCCESS, Some((compiled, None)));
            }
            let term = compiled.program();
            let outcome = recmod::eval::run_big_stack(512, move || {
                let mut interp = recmod::eval::Interp::new();
                let r = interp.run(&term).map(|v| v.to_string());
                (r, interp.stats())
            });
            match outcome {
                (Ok(v), stats) => {
                    out!("{v}");
                    if opts.steps {
                        eprintln!("steps: {}", stats.steps);
                    }
                    (ExitCode::SUCCESS, Some((compiled, Some(stats))))
                }
                (Err(e), _) => {
                    eprintln!("runtime error: {e}");
                    (ExitCode::FAILURE, None)
                }
            }
        }
    }
}
