//! `recmodc` — the command-line compiler/runner for the recursive-module
//! language.
//!
//! ```text
//! recmodc run  <file.rml>      compile and run, print the main value
//! recmodc check <file.rml>     typecheck only, print binding signatures
//! recmodc check [--jobs N] <file|dir>...   batch-check files/directories
//! recmodc check --corpus       batch-check the built-in paper corpus
//! recmodc split <file.rml>     print each binding's phase-split parts
//! recmodc -e "<expr>"          evaluate one expression
//! ```
//!
//! `<file.rml>` may be `-` to read the program from stdin. Batch mode
//! engages for `check` whenever `--jobs`/`--corpus` is given, more than
//! one path is named, or a path is a directory (searched recursively
//! for `*.rm`); it compiles files in parallel on shared-nothing worker
//! threads with warm per-worker caches and prints per-file diagnostics
//! prefixed by the file name, in input order.
//!
//! Options:
//!
//! * `--jobs N` — batch worker threads (default: available parallelism);
//! * `--corpus` — batch-check the built-in corpus (`recmod::corpus`);
//! * `--cold` — batch mode: rebuild the typechecker per file instead of
//!   keeping per-worker caches warm (for measuring the warm-cache effect);
//! * `--steps` — print the interpreter step count after `run`;
//! * `--fuel N` — set the kernel's normalization/equivalence fuel budget;
//! * `--limits K=V,...` — set resource limits (`depth`, `nodes`, `fuel`,
//!   `eval-fuel`, `eval-depth`);
//! * `--deadline-ms N` — abort any stage once `N` ms of wall clock pass;
//! * `--max-errors N` — print at most `N` diagnostics (default 20);
//! * `--stats` / `--stats=json` — print pipeline counters (kernel fuel
//!   by operation, μ-unrolls, whnf steps, per-binding elaboration
//!   timings, phase-split node counts, evaluator counters) as text or as
//!   one JSON document on stdout;
//! * `--trace` / `--trace=DEPTH` — print the kernel's judgement-level
//!   derivation trace (indented, depth-limited) to stderr.
//!
//! Exit codes: `0` success, `1` program error (syntax/type/runtime),
//! `2` usage, `3` resource limit hit, `4` internal error (a compiler
//! bug — every panic is caught at this boundary and reported as one).

use std::process::ExitCode;

use recmod::stats::StatsReport;
use recmod::surface::SurfaceError;
use recmod::syntax::pretty::{con_to_string, term_to_string, Names};
use recmod::telemetry::Limits;

/// Depth limit used by a bare `--trace` (override with `--trace=DEPTH`).
const DEFAULT_TRACE_DEPTH: usize = 8;

/// Default cap on printed diagnostics (override with `--max-errors`).
const DEFAULT_MAX_ERRORS: usize = 20;

const EXIT_USER: u8 = 1;
const EXIT_USAGE: u8 = 2;
const EXIT_LIMIT: u8 = 3;
const EXIT_INTERNAL: u8 = 4;

fn usage() -> ExitCode {
    eprintln!(
        "usage: recmodc <run|check|split> <file|-> [options]\n       \
         recmodc check [--jobs N] <file|dir>... [options]\n       \
         recmodc check --corpus [options]\n       \
         recmodc -e \"<expression>\" [options]\n\
         options: --steps --fuel N --limits K=V,... --deadline-ms N\n         \
         --max-errors N --stats[=json] --trace[=DEPTH] --jobs N --corpus --cold\n\
         exit codes: 0 ok, 1 program error, 2 usage, 3 limit hit, 4 internal error"
    );
    ExitCode::from(EXIT_USAGE)
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum StatsMode {
    Off,
    Text,
    Json,
}

#[derive(Clone, Copy)]
struct Options {
    steps: bool,
    stats: StatsMode,
    trace: Option<usize>,
    max_errors: usize,
    limits: Limits,
    /// Raw `--deadline-ms` value; batch mode re-arms it per file (the
    /// absolute instant baked into `limits` would make later files time
    /// out just for being scheduled later).
    deadline_ms: Option<u64>,
    jobs: Option<usize>,
    corpus: bool,
    /// Batch mode: rebuild the typechecker for every file instead of
    /// keeping per-worker caches warm (for measuring the warm-cache
    /// effect; see EXPERIMENTS.md).
    cold: bool,
}

fn parse_options(args: Vec<String>) -> Result<(Vec<String>, Options), String> {
    let mut rest = Vec::new();
    let mut opts = Options {
        steps: false,
        stats: StatsMode::Off,
        trace: None,
        max_errors: DEFAULT_MAX_ERRORS,
        limits: Limits::default(),
        deadline_ms: None,
        jobs: None,
        corpus: false,
        cold: false,
    };
    let mut deadline_ms: Option<u64> = None;
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--steps" => opts.steps = true,
            "--corpus" => opts.corpus = true,
            "--cold" => opts.cold = true,
            "--jobs" => {
                let n = it.next().ok_or("--jobs needs a number")?;
                let jobs: usize = n.parse().map_err(|_| format!("bad job count: {n}"))?;
                if jobs == 0 {
                    return Err("--jobs must be at least 1".to_string());
                }
                opts.jobs = Some(jobs);
            }
            "--stats" => opts.stats = StatsMode::Text,
            "--stats=json" => opts.stats = StatsMode::Json,
            "--trace" => opts.trace = Some(DEFAULT_TRACE_DEPTH),
            "--fuel" => {
                let n = it.next().ok_or("--fuel needs a number")?;
                opts.limits.fuel = n.parse().map_err(|_| format!("bad fuel budget: {n}"))?;
            }
            "--limits" => {
                let spec = it.next().ok_or("--limits needs key=value,...")?;
                let parsed = recmod::telemetry::parse_limits_spec(&spec)?;
                // The spec replaces every keyed limit but must not drop
                // an already-parsed --deadline-ms.
                opts.limits = parsed;
            }
            "--deadline-ms" => {
                let n = it.next().ok_or("--deadline-ms needs a number")?;
                deadline_ms = Some(n.parse().map_err(|_| format!("bad deadline: {n}"))?);
            }
            "--max-errors" => {
                let n = it.next().ok_or("--max-errors needs a number")?;
                opts.max_errors = n.parse().map_err(|_| format!("bad error cap: {n}"))?;
            }
            _ if a.starts_with("--trace=") => {
                let d = &a["--trace=".len()..];
                opts.trace = Some(d.parse().map_err(|_| format!("bad trace depth: {d}"))?);
            }
            _ if a.starts_with("--stats=") => {
                return Err(format!("unknown stats format: {a} (try --stats=json)"));
            }
            _ => rest.push(a),
        }
    }
    if let Some(ms) = deadline_ms {
        opts.limits = opts.limits.with_deadline_ms(ms);
        opts.deadline_ms = Some(ms);
    }
    Ok((rest, opts))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (args, opts) = match parse_options(args) {
        Ok(x) => x,
        Err(msg) => {
            eprintln!("recmodc: {msg}");
            return ExitCode::from(EXIT_USAGE);
        }
    };

    match args.as_slice() {
        [flag, expr] if flag.as_str() == "-e" => run_source("<expr>", expr, &opts, Mode::Run),
        [cmd, paths @ ..] if cmd.as_str() == "check" && wants_batch(paths, &opts) => {
            run_batch(paths, &opts)
        }
        [cmd, path] => {
            let mode = match cmd.as_str() {
                "run" => Mode::Run,
                "check" => Mode::Check,
                "split" => Mode::Split,
                _ => return usage(),
            };
            let (name, src) = if path == "-" {
                let mut buf = String::new();
                use std::io::Read;
                if let Err(e) = std::io::stdin().read_to_string(&mut buf) {
                    eprintln!("recmodc: cannot read stdin: {e}");
                    return ExitCode::from(EXIT_USER);
                }
                ("<stdin>".to_string(), buf)
            } else {
                match std::fs::read_to_string(path) {
                    Ok(s) => (path.clone(), s),
                    Err(e) => {
                        eprintln!("recmodc: cannot read {path}: {e}");
                        return ExitCode::from(EXIT_USER);
                    }
                }
            };
            run_source(&name, &src, &opts, mode)
        }
        _ => usage(),
    }
}

#[derive(Clone, Copy)]
enum Mode {
    Run,
    Check,
    Split,
}

/// Batch mode engages for `check` when explicitly requested
/// (`--jobs`/`--corpus`), when several paths are named, or when a path
/// is a directory; `check file.rm` alone keeps the single-file path
/// (and its unprefixed output) for compatibility.
fn wants_batch(paths: &[String], opts: &Options) -> bool {
    opts.corpus
        || opts.jobs.is_some()
        || paths.len() > 1
        || paths
            .iter()
            .any(|p| p != "-" && std::path::Path::new(p).is_dir())
}

fn run_batch(paths: &[String], opts: &Options) -> ExitCode {
    use recmod::driver;

    let mut jobs: Vec<driver::Job> = Vec::new();
    if opts.corpus {
        for entry in recmod::corpus::all() {
            jobs.push(driver::Job::new(entry.name, entry.source));
        }
    }
    if !paths.is_empty() {
        let pathbufs: Vec<std::path::PathBuf> =
            paths.iter().map(std::path::PathBuf::from).collect();
        match driver::jobs_from_paths(&pathbufs) {
            Ok(mut found) => jobs.append(&mut found),
            Err(msg) => {
                eprintln!("recmodc: cannot read {msg}");
                return ExitCode::from(EXIT_USER);
            }
        }
    }
    if jobs.is_empty() {
        eprintln!("recmodc: no input files");
        return ExitCode::from(EXIT_USAGE);
    }

    let observing = opts.stats != StatsMode::Off || opts.trace.is_some();
    let telemetry = observing.then(|| match opts.trace {
        Some(depth) => recmod::telemetry::Config::with_trace(depth),
        None => recmod::telemetry::Config::default(),
    });
    let config = driver::DriverConfig {
        jobs: opts.jobs.unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        }),
        limits: opts.limits,
        deadline_ms: opts.deadline_ms,
        max_errors: opts.max_errors,
        warm: !opts.cold,
        telemetry,
        ..driver::DriverConfig::default()
    };
    let result = driver::compile_batch(&jobs, &config);

    // With `--stats=json`, stdout must carry exactly one JSON document;
    // the usual human-readable output moves to stderr.
    macro_rules! out {
        ($($t:tt)*) => {
            if opts.stats == StatsMode::Json {
                eprintln!($($t)*)
            } else {
                println!($($t)*)
            }
        };
    }

    for outcome in &result.outcomes {
        match outcome.status {
            driver::FileStatus::Ok => {
                for (name, describe) in &outcome.summaries {
                    out!("{}: {name} : {describe}", outcome.name);
                }
                out!("{}: ok", outcome.name);
            }
            _ => {
                for line in &outcome.diagnostics {
                    eprintln!("{line}");
                }
            }
        }
    }
    let failed = result.outcomes.len() - result.ok_count();
    out!(
        "checked {} file(s) on {} worker(s): {} ok, {} failed",
        result.outcomes.len(),
        result.workers.len(),
        result.ok_count(),
        failed
    );

    if opts.trace.is_some() {
        if let Some(r) = &result.merged {
            eprint!("{}", r.render_trace());
        }
    }
    match opts.stats {
        StatsMode::Off => {}
        StatsMode::Text => print!("{}", render_batch_stats(&result)),
        StatsMode::Json => println!("{}", batch_stats_json(&result).to_pretty()),
    }
    ExitCode::from(result.exit_code())
}

/// Human-readable batch statistics: wall clock, per-stage time
/// attribution (exclusive self-time summed across workers), per-worker
/// file/steal counts, and merged pipeline counters.
fn render_batch_stats(result: &recmod::driver::BatchResult) -> String {
    use std::fmt::Write as _;
    let mut s = String::new();
    let wall_ms = result.wall_nanos as f64 / 1e6;
    let _ = writeln!(s, "batch: {:.2} ms wall", wall_ms);
    for w in &result.workers {
        let _ = writeln!(
            s,
            "worker {}: {} file(s), {} stolen",
            w.worker, w.files, w.steals
        );
    }
    if let Some(report) = &result.merged {
        let stages = report.stage_totals();
        if !stages.is_empty() {
            let _ = writeln!(s, "stages (exclusive time, all workers):");
            for (name, total) in &stages {
                let _ = writeln!(
                    s,
                    "  {name:<8} {:>10.3} ms  {:>8} call(s)",
                    total.nanos as f64 / 1e6,
                    total.calls
                );
            }
        }
        let _ = writeln!(s, "counters:");
        for (k, v) in &report.counters {
            if !k.starts_with("stage.") {
                let _ = writeln!(s, "  {k} = {v}");
            }
        }
    }
    s
}

/// The batch statistics as one JSON document.
fn batch_stats_json(result: &recmod::driver::BatchResult) -> recmod::telemetry::json::Json {
    use recmod::telemetry::json::Json;
    let mut obj = vec![
        ("files", Json::UInt(result.outcomes.len() as u64)),
        ("ok", Json::UInt(result.ok_count() as u64)),
        ("workers", Json::UInt(result.workers.len() as u64)),
        ("wall_nanos", Json::UInt(result.wall_nanos)),
        (
            "per_worker",
            Json::Arr(
                result
                    .workers
                    .iter()
                    .map(|w| {
                        Json::obj([
                            ("worker", Json::UInt(w.worker as u64)),
                            ("files", Json::UInt(w.files as u64)),
                            ("steals", Json::UInt(w.steals as u64)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ];
    if let Some(report) = &result.merged {
        obj.push((
            "stages",
            Json::Obj(
                report
                    .stage_totals()
                    .iter()
                    .map(|(name, t)| {
                        (
                            (*name).to_string(),
                            Json::obj([
                                ("nanos", Json::UInt(t.nanos)),
                                ("calls", Json::UInt(t.calls)),
                            ]),
                        )
                    })
                    .collect(),
            ),
        ));
        obj.push((
            "counters",
            Json::Obj(
                report
                    .counters
                    .iter()
                    .map(|(k, v)| ((*k).to_string(), Json::UInt(*v)))
                    .collect(),
            ),
        ));
    }
    Json::obj(obj)
}

/// Stack size for the pipeline thread. Parsing, elaboration, and
/// evaluation are all recursive; running them on a dedicated big stack
/// guarantees the [`Limits`] depth guards fire long before the host
/// stack is at risk, even in debug builds with fat frames.
const PIPELINE_STACK_MB: usize = 512;

fn run_source(file: &str, src: &str, opts: &Options, mode: Mode) -> ExitCode {
    let file = file.to_string();
    let src = src.to_string();
    let opts = *opts;
    // Telemetry state is thread-local, so the whole observed pipeline
    // (install → compile/run → uninstall → print) lives on the big-stack
    // thread.
    let code = recmod::eval::run_big_stack(PIPELINE_STACK_MB, move || {
        run_pipeline(&file, &src, &opts, mode)
    });
    ExitCode::from(code)
}

fn run_pipeline(file: &str, src: &str, opts: &Options, mode: Mode) -> u8 {
    let observing = opts.stats != StatsMode::Off || opts.trace.is_some();
    if observing {
        let config = match opts.trace {
            Some(depth) => recmod::telemetry::Config::with_trace(depth),
            None => recmod::telemetry::Config::default(),
        };
        recmod::telemetry::install(config);
    }
    // The last line of defense: any panic that slips past the
    // structured error paths is a compiler bug, reported as an
    // internal-error diagnostic rather than an unwound process.
    let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        run_source_inner(file, src, opts, mode)
    }));
    let (code, observed) = match caught {
        Ok(x) => x,
        Err(payload) => {
            recmod::telemetry::count("internal.panics", 1);
            let msg = panic_message(&payload);
            eprintln!("{file}: internal error: panic: {msg}");
            eprintln!("{file}: this is a bug in recmodc, not in your program");
            (EXIT_INTERNAL, None)
        }
    };
    let report = if observing {
        recmod::telemetry::uninstall()
    } else {
        None
    };
    if opts.trace.is_some() {
        if let Some(r) = &report {
            eprint!("{}", r.render_trace());
        }
    }
    if opts.stats != StatsMode::Off {
        if let Some((compiled, eval)) = observed {
            let stats = StatsReport::collect(&compiled, eval, report);
            match opts.stats {
                StatsMode::Json => println!("{}", stats.to_json().to_pretty()),
                StatsMode::Text => print!("{}", stats.render_text()),
                StatsMode::Off => unreachable!(),
            }
        }
    }
    code
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "(non-string panic payload)".to_string()
    }
}

/// Prints up to `max_errors` diagnostics as `file:line:col: error: …`
/// and classifies the batch into an exit code: internal errors dominate,
/// then resource limits, then ordinary program errors.
fn report_errors(file: &str, src: &str, errors: &[SurfaceError], max_errors: usize) -> u8 {
    for e in errors.iter().take(max_errors) {
        let (line, col) = e.span.line_col(src);
        eprintln!("{file}:{line}:{col}: error: {e}");
    }
    if errors.len() > max_errors {
        eprintln!(
            "{file}: ... and {} more error(s) (raise --max-errors to see them)",
            errors.len() - max_errors
        );
    }
    if errors.iter().any(|e| e.is_internal()) {
        EXIT_INTERNAL
    } else if errors.iter().any(|e| e.is_limit()) {
        EXIT_LIMIT
    } else {
        EXIT_USER
    }
}

type Observed = Option<(recmod::Compiled, Option<recmod::eval::EvalStats>)>;

fn run_source_inner(file: &str, src: &str, opts: &Options, mode: Mode) -> (u8, Observed) {
    // With `--stats=json`, stdout must carry exactly one JSON document;
    // the usual human-readable output moves to stderr.
    macro_rules! out {
        ($($t:tt)*) => {
            if opts.stats == StatsMode::Json {
                eprintln!($($t)*)
            } else {
                println!($($t)*)
            }
        };
    }
    let compiled = match recmod::surface::compile_with_limits(src, &opts.limits) {
        Ok(c) => c,
        Err(errors) => {
            let code = report_errors(file, src, &errors, opts.max_errors);
            return (code, None);
        }
    };
    match mode {
        Mode::Check => {
            for (name, describe) in compiled.summaries() {
                out!("{name} : {describe}");
            }
            out!("ok");
            (0, Some((compiled, None)))
        }
        Mode::Split => {
            for b in &compiled.elab.bindings {
                out!("── {} ──", b.name);
                match &b.static_part {
                    Some(con) => {
                        out!("  static:  {}", con_to_string(con, &mut Names::new()))
                    }
                    None => out!("  static:  (none — value binding)"),
                }
                out!(
                    "  dynamic: {}",
                    term_to_string(&b.dynamic, &mut Names::new())
                );
            }
            (0, Some((compiled, None)))
        }
        Mode::Run => {
            if compiled.main.is_none() {
                for (name, describe) in compiled.summaries() {
                    out!("{name} : {describe}");
                }
                eprintln!("(no main expression; add one after the declarations)");
                return (0, Some((compiled, None)));
            }
            // Already on the big-stack pipeline thread; evaluate inline.
            let term = compiled.program();
            let mut interp = recmod::eval::Interp::with_pipeline_limits(&opts.limits);
            let outcome = interp.run(&term).map(|v| v.to_string());
            let stats = interp.stats();
            match outcome {
                Ok(v) => {
                    out!("{v}");
                    if opts.steps {
                        eprintln!("steps: {}", stats.steps);
                    }
                    (0, Some((compiled, Some(stats))))
                }
                Err(e) => {
                    eprintln!("{file}: runtime error: {e}");
                    let code = match &e {
                        e if e.is_limit() => EXIT_LIMIT,
                        // The kernel accepted this program, so a stuck
                        // or ill-formed runtime state is our bug.
                        recmod::eval::EvalError::Stuck(_)
                        | recmod::eval::EvalError::BlackHole
                        | recmod::eval::EvalError::OpenTerm => EXIT_INTERNAL,
                        _ => EXIT_USER,
                    };
                    (code, None)
                }
            }
        }
    }
}
