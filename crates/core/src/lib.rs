//! # recmod
//!
//! A complete implementation of Crary, Harper, and Puri's *"What is a
//! Recursive Module?"* (PLDI 1999): the phase-distinction calculus with
//! singleton kinds and equi-recursive constructors, recursive modules
//! `fix(s:S.M)`, recursively-dependent signatures `ρs.S`, the
//! phase-splitting interpretations of Figures 4 and 5, an SML-like
//! external language, and an instrumented evaluator.
//!
//! This crate is the facade: it re-exports the workspace crates and
//! provides the end-to-end [`run`] pipeline plus the paper's example
//! [`corpus`].
//!
//! ## Pipeline
//!
//! ```text
//! source ──parse──▶ surface AST ──elaborate──▶ internal modules
//!        ──typecheck (kernel)──▶ signatures
//!        ──phase-split (Fig. 4/5)──▶ pure structure calculus
//!        ──link + erase──▶ closed term ──evaluate──▶ value
//! ```
//!
//! ## Example
//!
//! Run the paper's transparent recursive `List` module end to end:
//!
//! ```
//! let program = recmod::corpus::list_program(false, 10);
//! let outcome = recmod::run(&program).unwrap();
//! assert_eq!(outcome.value_int(), Some(55)); // 10 + 9 + … + 1
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod corpus;
pub mod stats;

use std::rc::Rc;

pub use recmod_driver as driver;
pub use recmod_eval as eval;
pub use recmod_kernel as kernel;
pub use recmod_phase as phase;
pub use recmod_surface as surface;
pub use recmod_syntax as syntax;
pub use recmod_telemetry as telemetry;

pub use stats::StatsReport;

pub use recmod_surface::{compile, compile_with, compile_with_limits, Compiled, SurfaceError};
pub use recmod_telemetry::{LimitExceeded, LimitKind, Limits};

/// The result of running a program end to end.
#[derive(Debug)]
pub struct Outcome {
    /// The compiled program (bindings, signatures, linked term).
    pub compiled: Compiled,
    /// The main expression's value, if the program had one.
    pub value: Option<Rc<recmod_eval::Value>>,
    /// Evaluation steps taken (0 when there was no main expression).
    pub steps: u64,
}

impl Outcome {
    /// The main value as an integer, if it is one.
    pub fn value_int(&self) -> Option<i64> {
        self.value.as_ref().and_then(|v| v.as_int().ok())
    }

    /// The main value as a boolean, if it is one.
    pub fn value_bool(&self) -> Option<bool> {
        self.value.as_ref().and_then(|v| v.as_bool().ok())
    }
}

/// Errors from the end-to-end pipeline.
#[derive(Debug)]
pub enum PipelineError {
    /// Parsing, elaboration, or typechecking failed.
    Compile(SurfaceError),
    /// Evaluation failed.
    Eval(recmod_eval::EvalError),
}

impl std::fmt::Display for PipelineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PipelineError::Compile(e) => write!(f, "compile error: {e}"),
            PipelineError::Eval(e) => write!(f, "evaluation error: {e}"),
        }
    }
}

impl PipelineError {
    /// Renders with line/column info when the error has a source span.
    pub fn render(&self, src: &str) -> String {
        match self {
            PipelineError::Compile(e) => e.render(src),
            PipelineError::Eval(e) => e.to_string(),
        }
    }
}

impl std::error::Error for PipelineError {}

impl From<SurfaceError> for PipelineError {
    fn from(e: SurfaceError) -> Self {
        PipelineError::Compile(e)
    }
}

impl From<recmod_eval::EvalError> for PipelineError {
    fn from(e: recmod_eval::EvalError) -> Self {
        PipelineError::Eval(e)
    }
}

/// Compiles and runs a program: parse → elaborate → typecheck →
/// phase-split → link → evaluate.
///
/// # Errors
///
/// Any compile-time error (with source span) or run-time failure.
pub fn run(src: &str) -> Result<Outcome, PipelineError> {
    run_with_fuel(src, recmod_eval::DEFAULT_EVAL_FUEL)
}

/// [`run`] with an explicit evaluation step budget.
///
/// # Errors
///
/// As [`run`]; exceeding the budget yields
/// [`recmod_eval::EvalError::FuelExhausted`].
pub fn run_with_fuel(src: &str, fuel: u64) -> Result<Outcome, PipelineError> {
    let compiled = compile(src)?;
    let mut interp = recmod_eval::Interp::with_fuel(fuel);
    let (value, steps) = match compiled.main {
        Some(_) => {
            let term = compiled.program();
            let v = interp.run(&term)?;
            (Some(v), interp.steps())
        }
        None => (None, 0),
    };
    Ok(Outcome {
        compiled,
        value,
        steps,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_a_trivial_program() {
        let out = run("1 + 2 * 3").unwrap();
        assert_eq!(out.value_int(), Some(7));
        assert!(out.steps > 0);
    }

    #[test]
    fn reports_compile_errors() {
        assert!(matches!(run("unbound"), Err(PipelineError::Compile(_))));
    }

    #[test]
    fn reports_runtime_failures() {
        assert!(matches!(
            run("(raise Fail : int)"),
            Err(PipelineError::Eval(recmod_eval::EvalError::Failure))
        ));
    }
}
