//! Machine-readable pipeline statistics (`recmodc --stats[=json]`).
//!
//! [`StatsReport`] gathers every layer's counters into one value: the
//! kernel's judgement/fuel counters ([`recmod_kernel::KernelStats`]),
//! per-binding elaboration timings recorded by the surface elaborator,
//! the phase splitter's node counts, the evaluator's
//! [`recmod_eval::EvalStats`], and — when a telemetry sink was installed
//! — the raw counter/span [`recmod_telemetry::Report`]. [`StatsReport::to_json`]
//! renders the whole thing with the zero-dependency JSON emitter from
//! [`recmod_telemetry::json`].

use recmod_eval::EvalStats;
use recmod_kernel::{FuelOp, KernelStats};
use recmod_syntax::intern::{intern_stats, InternStats};
use recmod_telemetry::json::Json;
use recmod_telemetry::{Report, Span};

use crate::Compiled;

/// Per-binding elaboration statistics, lifted off
/// [`recmod_surface::elab::TopBinding`].
#[derive(Debug, Clone)]
pub struct BindingStats {
    /// The binding's surface (or generated) name.
    pub name: String,
    /// Wall-clock nanoseconds spent elaborating the declaration.
    pub elab_nanos: u64,
    /// Kernel judgement counters attributable to the declaration.
    pub kernel: KernelStats,
}

/// Statistics for one end-to-end pipeline run.
#[derive(Debug, Clone)]
pub struct StatsReport {
    /// Aggregate kernel counters for the whole compilation.
    pub kernel: KernelStats,
    /// The equivalence engine the kernel ran (`"nbe"` or `"subst"`) —
    /// the whnf/cache counters below mean different things per engine,
    /// so both text and JSON output name it explicitly.
    pub equiv_engine: &'static str,
    /// The kernel's fuel budget (what `--fuel` set, or the default).
    pub fuel_budget: u64,
    /// Per-binding elaboration timings and judgement counts.
    pub bindings: Vec<BindingStats>,
    /// Evaluator counters, when the program was run.
    pub eval: Option<EvalStats>,
    /// The telemetry sink's report (counters, spans, trace), when a sink
    /// was installed around the run.
    pub telemetry: Option<Report>,
    /// Hash-consing activity on this thread (snapshotted at collect time).
    pub intern: InternStats,
}

impl StatsReport {
    /// Assembles a report from a compiled program plus whatever the
    /// caller collected around it.
    pub fn collect(
        compiled: &Compiled,
        eval: Option<EvalStats>,
        telemetry: Option<Report>,
    ) -> StatsReport {
        StatsReport {
            kernel: compiled.elab.tc.stats(),
            equiv_engine: compiled.elab.tc.engine().name(),
            fuel_budget: compiled.elab.tc.fuel_budget(),
            bindings: compiled
                .elab
                .bindings
                .iter()
                .map(|b| BindingStats {
                    name: b.name.clone(),
                    elab_nanos: b.elab_nanos,
                    kernel: b.kernel,
                })
                .collect(),
            eval,
            telemetry,
            intern: intern_stats(),
        }
    }

    /// The full report as a JSON document.
    pub fn to_json(&self) -> Json {
        let mut doc = vec![
            (
                "schema_version",
                Json::UInt(recmod_telemetry::SCHEMA_VERSION),
            ),
            (
                "kernel",
                kernel_json(
                    &self.kernel,
                    Some(self.fuel_budget),
                    Some(self.equiv_engine),
                ),
            ),
            (
                "bindings",
                Json::Arr(self.bindings.iter().map(binding_json).collect()),
            ),
            ("phase", self.phase_json()),
            ("surface", self.surface_json()),
            ("syntax", self.syntax_json()),
        ];
        doc.push((
            "eval",
            match &self.eval {
                Some(e) => eval_json(e),
                None => Json::Null,
            },
        ));
        if let Some(report) = &self.telemetry {
            doc.push((
                "spans",
                Json::Arr(report.spans.iter().map(span_json).collect()),
            ));
        }
        Json::obj(doc)
    }

    /// Renders the report for humans, one counter per line.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let k = &self.kernel;
        out.push_str(&format!(
            "kernel: fuel {} / {} budget, {} mu-unrolls, \
             {} assumption inserts (hwm {}), {} singleton short-circuits\n",
            k.fuel_used(),
            self.fuel_budget,
            k.mu_unrolls,
            k.assumption_inserts,
            k.assumption_hwm,
            k.singleton_shortcuts,
        ));
        for (op, fuel) in k.fuel_pairs().filter(|&(_, f)| f > 0) {
            out.push_str(&format!("  fuel[{}]: {}\n", op.key(), fuel));
        }
        // The engine determines which step counters are live: the NbE
        // machine reports eval/quote/env-alloc counts, the substitution
        // reference engine the classic whnf step count.
        match self.equiv_engine {
            "subst" => out.push_str(&format!(
                "kernel engine [subst]: {} whnf steps\n",
                k.whnf_steps,
            )),
            engine => out.push_str(&format!(
                "kernel engine [{}]: {} eval steps, {} quote ops, {} env allocs\n",
                engine, k.eval_steps, k.quote_nodes, k.env_allocs,
            )),
        }
        out.push_str(&format!(
            "kernel caches [{}]: {} whnf hits / {} misses, \
             {} synth hits / {} misses, {} ptr-eq equalities, \
             {} equiv cache hits\n",
            self.equiv_engine,
            k.whnf_cache_hits,
            k.whnf_cache_misses,
            k.synth_cache_hits,
            k.synth_cache_misses,
            k.equiv_ptr_eqs,
            k.equiv_cache_hits,
        ));
        let i = &self.intern;
        out.push_str(&format!(
            "syntax interning: {} hits / {} misses ({:.1}% hit rate), \
             {} con + {} kind nodes live\n",
            i.hits,
            i.misses,
            i.hit_rate() * 100.0,
            i.con_entries,
            i.kind_entries,
        ));
        for b in &self.bindings {
            out.push_str(&format!(
                "binding {}: {:.3} ms elaboration, {} fuel, {} mu-unrolls\n",
                b.name,
                b.elab_nanos as f64 / 1e6,
                b.kernel.fuel_used(),
                b.kernel.mu_unrolls,
            ));
        }
        if let Some(t) = &self.telemetry {
            for (name, v) in &t.counters {
                out.push_str(&format!("counter {name}: {v}\n"));
            }
        }
        if let Some(e) = &self.eval {
            out.push_str(&format!(
                "eval: {} steps, {} closures, {} backpatches, env depth {}\n",
                e.steps, e.closures, e.backpatches, e.max_env_depth,
            ));
        }
        out
    }

    fn counter(&self, name: &str) -> u64 {
        self.telemetry.as_ref().map_or(0, |t| t.counter(name))
    }

    fn phase_json(&self) -> Json {
        let nodes_in = self.counter("phase.nodes_in");
        let nodes_out =
            self.counter("phase.nodes_out_static") + self.counter("phase.nodes_out_dynamic");
        let blowup = if nodes_in == 0 {
            Json::Null
        } else {
            Json::Float(nodes_out as f64 / nodes_in as f64)
        };
        Json::obj([
            ("split_calls", Json::UInt(self.counter("phase.split_calls"))),
            (
                "verify_calls",
                Json::UInt(self.counter("phase.verify_calls")),
            ),
            ("nodes_in", Json::UInt(nodes_in)),
            (
                "nodes_out_static",
                Json::UInt(self.counter("phase.nodes_out_static")),
            ),
            (
                "nodes_out_dynamic",
                Json::UInt(self.counter("phase.nodes_out_dynamic")),
            ),
            ("blowup", blowup),
        ])
    }

    fn surface_json(&self) -> Json {
        Json::obj([
            ("topdecs", Json::UInt(self.counter("surface.topdecs"))),
            ("bindings", Json::UInt(self.bindings.len() as u64)),
        ])
    }

    fn syntax_json(&self) -> Json {
        let i = &self.intern;
        Json::obj([
            ("intern_hits", Json::UInt(i.hits)),
            ("intern_misses", Json::UInt(i.misses)),
            ("intern_hit_rate", Json::Float(i.hit_rate())),
            ("intern_sweeps", Json::UInt(i.sweeps)),
            ("con_entries", Json::UInt(i.con_entries)),
            ("kind_entries", Json::UInt(i.kind_entries)),
        ])
    }
}

/// The kernel counters as JSON (shared by the aggregate and per-binding
/// sections; the budget and engine name only appear on the aggregate).
fn kernel_json(k: &KernelStats, budget: Option<u64>, engine: Option<&str>) -> Json {
    let mut fields = Vec::new();
    if let Some(b) = budget {
        fields.push(("fuel_budget", Json::UInt(b)));
    }
    if let Some(e) = engine {
        fields.push(("equiv_engine", Json::str(e)));
    }
    fields.push(("fuel_used", Json::UInt(k.fuel_used())));
    fields.push((
        "fuel_by_op",
        Json::Obj(
            FuelOp::ALL
                .iter()
                .zip(k.fuel_by_op.iter())
                .map(|(&op, &c)| (op.key().to_string(), Json::UInt(c)))
                .collect(),
        ),
    ));
    fields.push(("mu_unrolls", Json::UInt(k.mu_unrolls)));
    fields.push(("whnf_steps", Json::UInt(k.whnf_steps)));
    fields.push(("assumption_inserts", Json::UInt(k.assumption_inserts)));
    fields.push(("assumption_hwm", Json::UInt(k.assumption_hwm)));
    fields.push(("singleton_shortcuts", Json::UInt(k.singleton_shortcuts)));
    fields.push(("eval_steps", Json::UInt(k.eval_steps)));
    fields.push(("quote_nodes", Json::UInt(k.quote_nodes)));
    fields.push(("env_allocs", Json::UInt(k.env_allocs)));
    fields.push(("whnf_cache_hits", Json::UInt(k.whnf_cache_hits)));
    fields.push(("whnf_cache_misses", Json::UInt(k.whnf_cache_misses)));
    fields.push(("synth_cache_hits", Json::UInt(k.synth_cache_hits)));
    fields.push(("synth_cache_misses", Json::UInt(k.synth_cache_misses)));
    fields.push(("equiv_ptr_eqs", Json::UInt(k.equiv_ptr_eqs)));
    fields.push(("equiv_cache_hits", Json::UInt(k.equiv_cache_hits)));
    Json::obj(fields)
}

fn binding_json(b: &BindingStats) -> Json {
    Json::obj([
        ("name", Json::str(&b.name)),
        ("elab_nanos", Json::UInt(b.elab_nanos)),
        ("kernel", kernel_json(&b.kernel, None, None)),
    ])
}

fn eval_json(e: &EvalStats) -> Json {
    Json::obj([
        ("steps", Json::UInt(e.steps)),
        ("closures", Json::UInt(e.closures)),
        ("backpatches", Json::UInt(e.backpatches)),
        ("max_env_depth", Json::UInt(e.max_env_depth)),
    ])
}

fn span_json(s: &Span) -> Json {
    Json::obj([
        ("name", Json::str(s.name)),
        ("start_nanos", Json::UInt(s.start_nanos)),
        ("nanos", Json::UInt(s.nanos)),
        (
            "children",
            Json::Arr(s.children.iter().map(span_json).collect()),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_for_a_checked_program_has_nonzero_kernel_counters() {
        let compiled = crate::compile("val x : int = 1 + 2").unwrap();
        let report = StatsReport::collect(&compiled, None, None);
        assert!(report.kernel.fuel_used() > 0);
        assert_eq!(report.bindings.len(), 1);
        assert_eq!(report.bindings[0].name, "x");
        let json = report.to_json();
        assert!(json.get("kernel").is_some());
        assert_eq!(
            json.get("eval").map(|j| matches!(j, Json::Null)),
            Some(true)
        );
    }

    #[test]
    fn caches_hit_on_the_list_showdown_program() {
        // E1's recursive List module exercises the whnf/equivalence hot
        // path enough that every cache layer must report activity.
        let program = crate::corpus::list_program(true, 4);
        let compiled = crate::compile(&program).unwrap();
        let report = StatsReport::collect(&compiled, None, None);
        assert!(report.kernel.whnf_cache_hits > 0, "whnf cache never hit");
        assert!(
            report.kernel.equiv_ptr_eqs > 0,
            "no pointer-equal equivalences"
        );
        assert!(report.intern.hits > 0, "interner never deduplicated a node");
        assert!(
            report.kernel.synth_cache_hits > 0,
            "synthesis memo never hit under the NbE engine"
        );
        let json = report.to_json();
        assert!(json.get("syntax").is_some());
        let kernel = json.get("kernel").unwrap();
        assert_eq!(
            kernel.get("equiv_engine").and_then(Json::as_str),
            Some("nbe"),
            "JSON must name the active equivalence engine"
        );
        assert!(kernel.get("synth_cache_hits").is_some());
        assert!(kernel.get("eval_steps").is_some());
        let text = report.render_text();
        assert!(text.contains("kernel caches [nbe]:"));
        assert!(text.contains("kernel engine [nbe]:"));
        assert!(text.contains("syntax interning:"));
    }

    #[test]
    fn render_text_mentions_fuel() {
        let compiled = crate::compile("val x : int = 1").unwrap();
        let report = StatsReport::collect(&compiled, None, None);
        assert!(report.render_text().contains("kernel: fuel"));
    }
}
