//! The paper's worked examples, as surface-language programs.
//!
//! Each constant reproduces one of the programs discussed in §3–§4 of
//! *"What is a Recursive Module?"*; `EXPERIMENTS.md` maps them to the
//! paper's claims. Programs marked *ill-typed* are expected to be
//! rejected, with the same reason the paper gives.

/// §3.1 (E1): integer lists as an **opaque** recursive module. The
/// module "defers recursively to itself for an implementation of the
/// tail": because `List.t` is opaque inside the body, every `cons` and
/// `uncons` must convert between the concrete datatype and the abstract
/// `List.t` by going through the module's own operations — a full
/// traversal per operation. Typechecks; asymptotically slow.
pub const OPAQUE_LIST: &str = r#"
signature LIST = sig
  type t
  val nil : t
  val null : t -> bool
  val cons : int * t -> t
  val uncons : t -> int * t
end

structure rec List :> LIST = struct
  datatype t = NIL | CONS of int * List.t
  val nil = NIL
  fun null (l : t) : bool = case l of NIL => true | CONS p => false
  (* t -> List.t : constant-time shell, but List.cons recurses. *)
  fun toSelf (l : t) : List.t =
    case l of
      NIL => List.nil
    | CONS p => (case p of (m, rest) => List.cons (m, rest))
  (* List.t -> t : constant-time shell, but List.uncons recurses. *)
  fun fromSelf (x : List.t) : t =
    if List.null x then NIL
    else (case List.uncons x of (m, y) => CONS (m, y))
  fun cons (p : int * t) : t =
    case p of (n, l) => CONS (n, toSelf l)
  fun uncons (l : t) : int * t =
    case l of
      NIL => (raise Fail : int * t)
    | CONS p => (case p of (m, rest) => (m, fromSelf rest))
end
"#;

/// §4 (E4): the same lists as a **transparent** recursive module, using
/// a recursively-dependent signature whose `datatype` spec makes
/// `List.t` equal to the implementation type inside the body. Constant
/// time per operation.
pub const TRANSPARENT_LIST: &str = r#"
structure rec List : sig
  datatype t = NIL | CONS of int * List.t
  val nil : t
  val null : t -> bool
  val cons : int * t -> t
  val uncons : t -> int * t
end = struct
  datatype t = NIL | CONS of int * List.t
  val nil = NIL
  fun null (l : t) : bool = case l of NIL => true | CONS p => false
  fun cons (p : int * t) : t = CONS p
  fun uncons (l : t) : int * t =
    case l of NIL => (raise Fail : int * t) | CONS p => p
end
"#;

/// §3.1 (E2): mutually recursive abstract-syntax modules with **opaque**
/// signatures. Ill-typed: inside `Expr`, the call `Decl.make_val (id, e1)`
/// requires `e1 : Decl.exp`, but the opacity of `Decl` hides the fact
/// that `Decl.exp` equals `Expr`'s own `exp`.
pub const EXPR_DECL_OPAQUE: &str = r#"
signature EXPR = sig
  type exp
  type dec
  val make_let : dec * exp -> exp
  val make_let_val : int * exp * exp -> exp
end

signature DECL = sig
  type dec
  type exp
  val make_val : int * exp -> dec
end

structure rec Expr :> EXPR = struct
  datatype exp = VAR of int | LET of Decl.dec * exp
  type dec = Decl.dec
  fun make_let (p : dec * exp) : exp = LET p
  fun make_let_val (q : int * exp * exp) : exp =
    case q of (id, e1, e2) =>
      make_let (Decl.make_val (id, e1), e2)
end
and Decl :> DECL = struct
  datatype dec = VAL of int * Expr.exp
  type exp = Expr.exp
  fun make_val (p : int * exp) : dec = VAL p
end
"#;

/// §4 (E3): the same modules with `where type` clauses propagating the
/// recursive type equations — the recursively-dependent signature. Now
/// `exp = Expr.exp = Decl.exp` holds inside the bodies and the program
/// typechecks (and runs).
pub const EXPR_DECL_RDS: &str = r#"
signature EXPR = sig
  type exp
  type dec
  val make_var : int -> exp
  val make_let : dec * exp -> exp
  val make_let_val : int * exp * exp -> exp
  val size : exp -> int
end

signature DECL = sig
  type dec
  type exp
  val make_val : int * exp -> dec
  val dec_size : dec -> int
end

structure rec Expr :> EXPR where type dec = Decl.dec = struct
  datatype exp = VAR of int | LET of Decl.dec * exp
  type dec = Decl.dec
  fun make_var (x : int) : exp = VAR x
  fun make_let (p : dec * exp) : exp = LET p
  fun make_let_val (q : int * exp * exp) : exp =
    case q of (id, e1, e2) =>
      make_let (Decl.make_val (id, e1), e2)
  fun size (e : exp) : int =
    case e of
      VAR x => 1
    | LET p => (case p of (d, body) => Decl.dec_size d + size body)
end
and Decl : DECL where type exp = Expr.exp = struct
  datatype dec = VAL of int * Expr.exp
  type exp = Expr.exp
  fun make_val (p : int * exp) : dec = VAL p
  fun dec_size (d : dec) : int =
    case d of VAL p => (case p of (id, e) => 1 + Expr.size e)
end
"#;

/// §4 (E5, failing direction): `BuildList` with a **plain** `LIST`
/// parameter. Ill-typed: "the assumption governing the parameter List of
/// BuildList does not propagate the critical recursive type equation".
pub const BUILD_LIST_PLAIN: &str = r#"
signature LIST = sig
  type t
  val nil : t
  val null : t -> bool
  val cons : int * t -> t
  val uncons : t -> int * t
end

functor BuildList (structure List : LIST) = struct
  datatype t = NIL | CONS of int * List.t
  val nil = NIL
  fun null (l : t) : bool = case l of NIL => true | CONS p => false
  fun cons (p : int * t) : t = CONS p
  fun uncons (l : t) : int * t =
    case l of NIL => (raise Fail : int * t) | CONS p => p
end
"#;

/// §4 (E5, succeeding direction): `BuildList` with a **recursively-
/// dependent** parameter signature, and the recursive binding whose
/// right-hand side is the functor application.
pub const BUILD_LIST_RDS: &str = r#"
functor BuildList (structure rec List : sig
  datatype t = NIL | CONS of int * List.t
  val nil : t
  val null : t -> bool
  val cons : int * t -> t
  val uncons : t -> int * t
end) = struct
  datatype t = NIL | CONS of int * List.t
  val nil = NIL
  fun null (l : t) : bool = case l of NIL => true | CONS p => false
  fun cons (p : int * t) : t = CONS p
  fun uncons (l : t) : int * t =
    case l of NIL => (raise Fail : int * t) | CONS p => p
end

structure rec List : sig
  datatype t = NIL | CONS of int * List.t
  val nil : t
  val null : t -> bool
  val cons : int * t -> t
  val uncons : t -> int * t
end = BuildList (structure List = List)
"#;

/// E9 (module level): a recursive module whose body *uses* the recursive
/// variable's dynamic part outside a λ — rejected by the value
/// restriction (the module analogue of `fix(x:int list. 1 :: x)`).
pub const VALUE_RESTRICTION_MODULE: &str = r#"
structure rec Bad : sig
  val v : int
end = struct
  val v = Bad.v
end
"#;

/// A driver appended to list programs: builds a list of the given length
/// with `cons`, then sums it back with `uncons`. `{N}` is replaced by
/// the length.
pub const LIST_DRIVER_TEMPLATE: &str = r#"
fun build (n : int) : List.t =
  if n = 0 then List.nil else List.cons (n, build (n - 1))
fun total (l : List.t) : int =
  if List.null l then 0
  else (case List.uncons l of (h, rest) => h + total rest)
;
total (build {N})
"#;

/// Builds a complete list benchmark program (opaque or transparent) for
/// a given list length.
pub fn list_program(opaque: bool, n: usize) -> String {
    let base = if opaque {
        OPAQUE_LIST
    } else {
        TRANSPARENT_LIST
    };
    format!(
        "{base}\n{}",
        LIST_DRIVER_TEMPLATE.replace("{N}", &n.to_string())
    )
}

/// A driver for the Expr/Decl example: builds
/// `let val 1 = VAR 7 in let val 2 = VAR 7 in VAR 9` and measures sizes.
pub const EXPR_DECL_DRIVER: &str = r#"
;
Expr.size (Expr.make_let_val (1, Expr.make_var 7,
  Expr.make_let_val (2, Expr.make_var 7, Expr.make_var 9)))
"#;

/// One corpus entry: a stable name, the program source, and whether the
/// paper expects it to typecheck.
#[derive(Debug, Clone, Copy)]
pub struct CorpusEntry {
    /// Stable display name (used as the batch driver's file name).
    pub name: &'static str,
    /// The program source.
    pub source: &'static str,
    /// `true` when the paper expects the program to typecheck.
    pub well_typed: bool,
}

/// Every fixed corpus program, in a stable order, with its expected
/// verdict. Batch mode (`recmodc check --corpus`) and the throughput
/// benchmarks iterate over exactly this list.
pub fn all() -> Vec<CorpusEntry> {
    vec![
        CorpusEntry {
            name: "corpus/opaque_list.rm",
            source: OPAQUE_LIST,
            well_typed: true,
        },
        CorpusEntry {
            name: "corpus/transparent_list.rm",
            source: TRANSPARENT_LIST,
            well_typed: true,
        },
        CorpusEntry {
            name: "corpus/expr_decl_opaque.rm",
            source: EXPR_DECL_OPAQUE,
            well_typed: false,
        },
        CorpusEntry {
            name: "corpus/expr_decl_rds.rm",
            source: EXPR_DECL_RDS,
            well_typed: true,
        },
        CorpusEntry {
            name: "corpus/build_list_plain.rm",
            source: BUILD_LIST_PLAIN,
            well_typed: false,
        },
        CorpusEntry {
            name: "corpus/build_list_rds.rm",
            source: BUILD_LIST_RDS,
            well_typed: true,
        },
        CorpusEntry {
            name: "corpus/value_restriction_module.rm",
            source: VALUE_RESTRICTION_MODULE,
            well_typed: false,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn list_program_substitutes_length() {
        let p = list_program(false, 17);
        assert!(p.contains("build 17"));
        assert!(p.contains("structure rec List"));
    }
}
