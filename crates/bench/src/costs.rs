//! Deterministic cost model: counter snapshots that gate perf regressions.
//!
//! Wall clocks on this 1-CPU container are too noisy to gate on
//! (`BENCH_parallel.json` measured scaling efficiencies of 0.46/0.22/0.11
//! for 2/4/8 workers — pure scheduler noise), so regressions are gated
//! on **counters** instead: fuel per judgement form, μ-unrolls, whnf
//! steps, kernel cache hits/misses. These are exact, reproducible
//! numbers — each example is compiled on a fresh thread (fresh
//! telemetry sink, fresh kernel caches), so the counts depend only on
//! the compiler and the source text. Interner hit/miss counts are
//! deliberately **excluded**: the interner is process-global (sharded,
//! see `recmod_syntax::intern`), so whether a node is a hit depends on
//! what else the process interned first — warmth, not work.
//!
//! The checked-in baseline lives at `tests/golden_costs.json`:
//!
//! ```json
//! {
//!   "schema_version": 1,
//!   "default_tolerance_pct": 0,
//!   "tolerances": { "kernel.whnf_cache_hit": 5 },
//!   "examples": { "<corpus name>": { "<counter>": 123 } }
//! }
//! ```
//!
//! `bench_json --costs` prints the current model in that format;
//! `bench_json --costs --compare tests/golden_costs.json` exits nonzero
//! when any counter moved beyond its declared tolerance **in either
//! direction** — an unexplained improvement is as suspicious as a
//! regression, and intentional changes are recorded by regenerating the
//! baseline (`cargo run --release -p recmod-bench --bin bench_json --
//! --costs > tests/golden_costs.json`).

use std::collections::{BTreeMap, BTreeSet};

use recmod::surface::elab::Elaborator;
use recmod::surface::pipeline::compile_with_limits_in;
use recmod::telemetry::json::Json;
use recmod::telemetry::{self, names};

/// Stack for the per-example measurement threads (elaboration is deeply
/// recursive; match the CLI's pipeline thread).
const MEASURE_STACK: usize = 512 * 1024 * 1024;

/// One example's counters, keyed by dotted counter name.
pub type Costs = BTreeMap<String, u64>;

/// The cost model of a whole corpus: per-example counter maps.
#[derive(Debug, Default, PartialEq, Eq)]
pub struct CostModel {
    /// Per-example costs, keyed by corpus entry name.
    pub examples: BTreeMap<String, Costs>,
}

/// Measures the built-in paper corpus, one fresh thread per example.
pub fn measure_corpus() -> CostModel {
    let mut examples = BTreeMap::new();
    for entry in recmod::corpus::all() {
        examples.insert(entry.name.to_string(), measure_example(entry.source));
    }
    CostModel { examples }
}

/// Compiles `source` in isolation and returns its counters. The fresh
/// thread gives the run a fresh thread-local telemetry sink; the fresh
/// elaborator gives it fresh kernel caches — together they make every
/// counter a pure function of the source text (interner warmth, the one
/// process-global input, is filtered out below).
pub fn measure_example(source: &str) -> Costs {
    let source = source.to_string();
    std::thread::Builder::new()
        .stack_size(MEASURE_STACK)
        .spawn(move || measure_in_thread(&source))
        .expect("spawn cost-measurement thread")
        .join()
        .expect("cost measurement must not panic")
}

fn measure_in_thread(source: &str) -> Costs {
    // Pin every node this thread interns: the interner is process-global,
    // so without pins a re-interned node keeps its NodeId only while some
    // thread happens to hold it alive — which would make the id-keyed
    // kernel memo hit counts depend on concurrent threads' liveness.
    let _pin = recmod::syntax::intern::pin_thread();
    telemetry::install(telemetry::Config::default());
    let elab = Elaborator::with_limits(recmod::telemetry::Limits::default());
    let (elab, ok) = match compile_with_limits_in(elab, source) {
        Ok(compiled) => (compiled.elab, true),
        Err((_, elab)) => (elab, false),
    };
    let kernel = elab.tc.stats();
    let report = telemetry::uninstall().expect("sink installed above");

    let mut costs = Costs::new();
    fn put(costs: &mut Costs, name: String, v: u64) {
        if v > 0 {
            costs.insert(name, v);
        }
    }
    // A vanished counter compares as 0, so zero counts are elided and
    // `driver.compile_ok` pins the outcome even for all-zero failures.
    costs.insert("driver.compile_ok".to_string(), u64::from(ok));
    for (op, fuel) in kernel.fuel_pairs() {
        put(&mut costs, format!("kernel.fuel.{}", op.key()), fuel);
    }
    put(
        &mut costs,
        "kernel.mu_unrolls".to_string(),
        kernel.mu_unrolls,
    );
    put(
        &mut costs,
        "kernel.whnf_steps".to_string(),
        kernel.whnf_steps,
    );
    put(
        &mut costs,
        "kernel.assumption_inserts".to_string(),
        kernel.assumption_inserts,
    );
    put(
        &mut costs,
        "kernel.assumption.hwm".to_string(),
        kernel.assumption_hwm,
    );
    put(
        &mut costs,
        "kernel.singleton_shortcuts".to_string(),
        kernel.singleton_shortcuts,
    );
    // S17 NbE engine counters. Under the default engine `whnf_steps`
    // above reads 0 (it counts only the substitution loop, kept for
    // RECMOD_EQUIV=subst) and these carry the normalization costs.
    put(
        &mut costs,
        "kernel.eval_steps".to_string(),
        kernel.eval_steps,
    );
    put(
        &mut costs,
        "kernel.quote_nodes".to_string(),
        kernel.quote_nodes,
    );
    put(
        &mut costs,
        "kernel.env_allocs".to_string(),
        kernel.env_allocs,
    );
    for (&name, &v) in &report.counters {
        // Wall-clock derived counters (`*.nanos`) are exactly what this
        // model exists to avoid; interner counters depend on global
        // table warmth (what the process interned before this example),
        // so they are not a function of the source text; counters
        // already covered by the kernel snapshot above are duplicates.
        if names::is_time_based(name)
            || name.starts_with("syntax.intern_")
            || name.starts_with("intern.")
            || costs.contains_key(name)
        {
            continue;
        }
        put(&mut costs, name.to_string(), v);
    }
    costs
}

/// Renders a cost model in the golden-file format (tolerances default
/// to the all-exact model; edit the file to declare looser ones).
pub fn to_json(model: &CostModel) -> Json {
    Json::obj([
        ("schema_version", Json::UInt(telemetry::SCHEMA_VERSION)),
        ("default_tolerance_pct", Json::UInt(0)),
        ("tolerances", Json::Obj(BTreeMap::new())),
        (
            "examples",
            Json::Obj(
                model
                    .examples
                    .iter()
                    .map(|(name, costs)| {
                        (
                            name.clone(),
                            Json::Obj(
                                costs
                                    .iter()
                                    .map(|(k, &v)| (k.clone(), Json::UInt(v)))
                                    .collect(),
                            ),
                        )
                    })
                    .collect(),
            ),
        ),
    ])
}

/// A parsed golden baseline: the model plus its declared tolerances.
#[derive(Debug)]
pub struct Baseline {
    /// The baseline counter values.
    pub model: CostModel,
    /// Allowed relative drift per counter name, in percent.
    pub tolerances: BTreeMap<String, u64>,
    /// Drift allowed for counters without a declared tolerance.
    pub default_tolerance_pct: u64,
}

/// Parses a golden cost file.
///
/// # Errors
///
/// A message describing the malformed or version-skewed document.
pub fn parse_baseline(text: &str) -> Result<Baseline, String> {
    let doc = telemetry::json::parse(text).map_err(|e| format!("bad JSON: {e}"))?;
    let version = doc
        .get("schema_version")
        .and_then(Json::as_u64)
        .ok_or("missing schema_version")?;
    if version != telemetry::SCHEMA_VERSION {
        return Err(format!(
            "schema_version {version} != supported {}",
            telemetry::SCHEMA_VERSION
        ));
    }
    let default_tolerance_pct = doc
        .get("default_tolerance_pct")
        .and_then(Json::as_u64)
        .unwrap_or(0);
    let mut tolerances = BTreeMap::new();
    if let Some(Json::Obj(map)) = doc.get("tolerances") {
        for (k, v) in map {
            tolerances.insert(
                k.clone(),
                v.as_u64().ok_or_else(|| format!("bad tolerance for {k}"))?,
            );
        }
    }
    let Some(Json::Obj(examples_json)) = doc.get("examples") else {
        return Err("missing examples object".to_string());
    };
    let mut examples = BTreeMap::new();
    for (name, costs_json) in examples_json {
        let Json::Obj(counters) = costs_json else {
            return Err(format!("example {name} is not an object"));
        };
        let mut costs = Costs::new();
        for (k, v) in counters {
            costs.insert(
                k.clone(),
                v.as_u64()
                    .ok_or_else(|| format!("bad count for {name}/{k}"))?,
            );
        }
        examples.insert(name.clone(), costs);
    }
    Ok(Baseline {
        model: CostModel { examples },
        tolerances,
        default_tolerance_pct,
    })
}

/// Compares `current` against a `baseline`, returning one human-readable
/// line per violation (empty = within tolerance). The comparison is
/// symmetric: a counter that *dropped* beyond tolerance also fails, so
/// accidental behavior changes can't hide behind "it got faster".
pub fn compare(current: &CostModel, baseline: &Baseline) -> Vec<String> {
    let mut diffs = Vec::new();
    let names: BTreeSet<&String> = current
        .examples
        .keys()
        .chain(baseline.model.examples.keys())
        .collect();
    for name in names {
        let (cur, base) = match (
            current.examples.get(name.as_str()),
            baseline.model.examples.get(name.as_str()),
        ) {
            (Some(c), Some(b)) => (c, b),
            (Some(_), None) => {
                diffs.push(format!("{name}: example not in baseline (regenerate it)"));
                continue;
            }
            (None, Some(_)) => {
                diffs.push(format!("{name}: example vanished from the corpus"));
                continue;
            }
            (None, None) => unreachable!("name came from one of the maps"),
        };
        let counters: BTreeSet<&String> = cur.keys().chain(base.keys()).collect();
        for counter in counters {
            let c = cur.get(counter.as_str()).copied().unwrap_or(0);
            let b = base.get(counter.as_str()).copied().unwrap_or(0);
            let pct = baseline
                .tolerances
                .get(counter.as_str())
                .copied()
                .unwrap_or(baseline.default_tolerance_pct);
            // Integer ceiling of b*pct/100 so a nonzero tolerance always
            // allows at least proportional drift on small counts.
            let allowed = (b * pct).div_ceil(100);
            let drift = c.abs_diff(b);
            if drift > allowed {
                diffs.push(format!(
                    "{name}: {counter} = {c}, baseline {b} (drift {drift} > allowed {allowed}, tolerance {pct}%)"
                ));
            }
        }
    }
    diffs
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model(pairs: &[(&str, &[(&str, u64)])]) -> CostModel {
        CostModel {
            examples: pairs
                .iter()
                .map(|(name, cs)| {
                    (
                        name.to_string(),
                        cs.iter().map(|&(k, v)| (k.to_string(), v)).collect(),
                    )
                })
                .collect(),
        }
    }

    #[test]
    fn measurement_is_deterministic_across_threads() {
        let entry = recmod::corpus::all()[0];
        let a = measure_example(entry.source);
        let b = measure_example(entry.source);
        assert_eq!(a, b);
        assert_eq!(a.get("driver.compile_ok"), Some(&1));
        assert!(
            a.keys().any(|k| k.starts_with("kernel.fuel.")),
            "expected fuel counters, got {:?}",
            a.keys().collect::<Vec<_>>()
        );
    }

    #[test]
    fn json_round_trips() {
        let m = measure_corpus();
        let text = to_json(&m).to_pretty();
        let parsed = parse_baseline(&text).unwrap();
        assert_eq!(parsed.model, m);
        assert!(compare(&m, &parsed).is_empty());
    }

    #[test]
    fn compare_flags_drift_in_both_directions() {
        let base =
            parse_baseline(&to_json(&model(&[("e", &[("kernel.fuel.whnf", 100)])])).to_pretty())
                .unwrap();
        let up = model(&[("e", &[("kernel.fuel.whnf", 101)])]);
        let down = model(&[("e", &[("kernel.fuel.whnf", 99)])]);
        assert_eq!(compare(&up, &base).len(), 1);
        assert_eq!(compare(&down, &base).len(), 1);
        let gone = model(&[("e", &[])]);
        assert_eq!(compare(&gone, &base).len(), 1, "0 vs 100 must fail");
    }

    #[test]
    fn tolerances_allow_declared_drift() {
        let mut base =
            parse_baseline(&to_json(&model(&[("e", &[("syntax.intern_hit", 100)])])).to_pretty())
                .unwrap();
        base.tolerances.insert("syntax.intern_hit".to_string(), 5);
        let within = model(&[("e", &[("syntax.intern_hit", 104)])]);
        let beyond = model(&[("e", &[("syntax.intern_hit", 106)])]);
        assert!(compare(&within, &base).is_empty());
        assert_eq!(compare(&beyond, &base).len(), 1);
    }

    #[test]
    fn cost_counter_names_follow_the_convention() {
        let entry = recmod::corpus::all()[0];
        for name in measure_example(entry.source).keys() {
            assert!(
                recmod::telemetry::names::is_well_formed(name),
                "cost counter {name} violates the naming convention"
            );
            assert!(
                !recmod::telemetry::names::is_time_based(name),
                "cost counter {name} is wall-clock derived"
            );
        }
    }
}
