//! A minimal wall-clock benchmark harness: warm up, pick an iteration
//! count that makes one sample meaningful, take a fixed number of
//! samples, and report robust statistics. No external crates; the
//! benches in `benches/` are plain `main()` binaries built on this.

use std::time::{Duration, Instant};

/// Statistics for one benchmark case, in nanoseconds per iteration.
#[derive(Debug, Clone, Copy)]
pub struct Stats {
    /// Median of the per-sample means.
    pub median_ns: u64,
    /// Fastest sample.
    pub min_ns: u64,
    /// Slowest sample.
    pub max_ns: u64,
    /// Iterations per sample.
    pub iters: u64,
    /// Number of samples taken.
    pub samples: usize,
}

impl Stats {
    /// Renders the median as a human unit (ns/µs/ms/s).
    pub fn human_median(&self) -> String {
        human_ns(self.median_ns)
    }
}

/// Renders nanoseconds with an adaptive unit.
pub fn human_ns(ns: u64) -> String {
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

/// Benchmark configuration.
#[derive(Debug, Clone, Copy)]
pub struct BenchConfig {
    /// Samples per case.
    pub samples: usize,
    /// Target wall-clock per sample — iteration count is chosen so one
    /// sample takes at least this long.
    pub sample_target: Duration,
    /// Hard cap on iterations per sample (for very fast bodies).
    pub max_iters: u64,
}

impl Default for BenchConfig {
    fn default() -> Self {
        BenchConfig {
            samples: 11,
            sample_target: Duration::from_millis(20),
            max_iters: 100_000,
        }
    }
}

/// Runs `f` under the default config and prints one result line.
pub fn bench(label: &str, f: impl FnMut()) -> Stats {
    bench_with(BenchConfig::default(), label, f)
}

/// Runs `f` repeatedly: one calibration pass sizes the per-sample
/// iteration count, then `config.samples` timed samples run. Prints a
/// `label ... median [min .. max]` line and returns the stats.
pub fn bench_with(config: BenchConfig, label: &str, mut f: impl FnMut()) -> Stats {
    // Calibration: run once (also the warm-up), then scale.
    let t0 = Instant::now();
    f();
    let once = t0.elapsed().max(Duration::from_nanos(1));
    let iters = (config.sample_target.as_nanos() / once.as_nanos()).max(1) as u64;
    let iters = iters.min(config.max_iters);

    let mut per_iter: Vec<u64> = Vec::with_capacity(config.samples);
    for _ in 0..config.samples {
        let start = Instant::now();
        for _ in 0..iters {
            f();
        }
        let total = start.elapsed().as_nanos() as u64;
        per_iter.push(total / iters);
    }
    per_iter.sort_unstable();
    let stats = Stats {
        median_ns: per_iter[per_iter.len() / 2],
        min_ns: per_iter[0],
        max_ns: per_iter[per_iter.len() - 1],
        iters,
        samples: config.samples,
    };
    println!(
        "{label:<44} {:>12} [{} .. {}]  ({} iters × {} samples)",
        stats.human_median(),
        human_ns(stats.min_ns),
        human_ns(stats.max_ns),
        stats.iters,
        stats.samples,
    );
    stats
}

/// Like [`bench_with`], but prints nothing — used by machine-readable
/// runners that format results themselves.
pub fn bench_quiet(config: BenchConfig, mut f: impl FnMut()) -> Stats {
    let t0 = Instant::now();
    f();
    let once = t0.elapsed().max(Duration::from_nanos(1));
    let iters = (config.sample_target.as_nanos() / once.as_nanos()).max(1) as u64;
    let iters = iters.min(config.max_iters);

    let mut per_iter: Vec<u64> = Vec::with_capacity(config.samples);
    for _ in 0..config.samples {
        let start = Instant::now();
        for _ in 0..iters {
            f();
        }
        let total = start.elapsed().as_nanos() as u64;
        per_iter.push(total / iters);
    }
    per_iter.sort_unstable();
    Stats {
        median_ns: per_iter[per_iter.len() / 2],
        min_ns: per_iter[0],
        max_ns: per_iter[per_iter.len() - 1],
        iters,
        samples: config.samples,
    }
}

/// Prints a section header for a group of related cases.
pub fn group(title: &str) {
    println!("\n== {title} ==");
}

/// Opaque sink that defeats value-based dead-code elimination in bench
/// bodies (reads the value through a volatile-ish black box).
pub fn sink<T>(v: T) -> T {
    std::hint::black_box(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_returns_sane_stats() {
        let cfg = BenchConfig {
            samples: 3,
            sample_target: Duration::from_micros(200),
            max_iters: 1_000,
        };
        let mut n = 0u64;
        let stats = bench_with(cfg, "self-test", || {
            n = sink(n.wrapping_add(1));
        });
        assert!(stats.iters >= 1);
        assert!(stats.min_ns <= stats.median_ns && stats.median_ns <= stats.max_ns);
        assert_eq!(stats.samples, 3);
    }

    #[test]
    fn human_units() {
        assert_eq!(human_ns(999), "999 ns");
        assert_eq!(human_ns(1_500), "1.50 µs");
        assert_eq!(human_ns(2_000_000), "2.00 ms");
        assert_eq!(human_ns(3_000_000_000), "3.00 s");
    }
}
