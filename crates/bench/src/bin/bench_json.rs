//! Machine-readable benchmark runner for the interning/memoization and
//! parallel-throughput experiments (`BENCH_interning.json`,
//! `BENCH_parallel.json`).
//!
//! Measures the P1 equivalence workloads (μ vs unrolling, nested ≃
//! collapse, iso+Shao), the P2 front-end workloads, the E1 list
//! compile, and the batch-driver corpus throughput at 1/2/4/8 workers
//! (plus a cold-cache jobs=1 run, isolating the warm-cache lift from
//! the parallel lift).
//!
//! With `--json` the results are printed as one JSON object holding the
//! **effective harness config** and the case array; otherwise as
//! human-readable lines. Flags:
//!
//! * `--samples N` / `--target-ms M` — tune the harness; defaults come
//!   from [`BenchConfig::default`], the single source of truth;
//! * `--only SUBSTR` — run only cases whose name contains `SUBSTR`;
//! * `--baseline FILE` — load a checked-in `BENCH_*.json` and print a
//!   per-case speedup column against it (matches `median_ns`, falling
//!   back to `after_median_ns` for the hand-merged interning file);
//! * `--costs` — skip the wall-clock benches and print the deterministic
//!   cost model of the corpus (see [`recmod_bench::costs`]);
//! * `--costs --compare FILE` — compare the cost model against a golden
//!   baseline and exit `1` if any counter drifted beyond its declared
//!   tolerance (the regression gate that works on noisy hardware);
//! * `--costs --bless` — regenerate the golden baseline in place
//!   (default `tests/golden_costs.json`; `--compare FILE` overrides the
//!   destination).

use std::time::Duration;

use recmod::kernel::{Ctx, RecMode, Tc};
use recmod::syntax::ast::Kind;
use recmod::syntax::intern::intern_stats;
use recmod::telemetry::json::{parse, Json};
use recmod_bench::harness::{bench_quiet, BenchConfig};
use recmod_bench::{
    gen_module_chain, gen_nested_pair, gen_rec_datatypes, gen_shao_pair, gen_unrolled_pair,
    singleton_chain,
};
use recmod_driver::{compile_batch, DriverConfig, FileStatus, Job};

struct Case {
    name: String,
    median_ns: u64,
    min_ns: u64,
    max_ns: u64,
    iters: u64,
    /// Whnf-memo hit rate over the whole timed run (persistent-Tc cases).
    whnf_hit_rate: Option<f64>,
    /// Interner hit rate over the whole timed run.
    intern_hit_rate: Option<f64>,
    /// Programs compiled per second (throughput cases).
    programs_per_sec: Option<f64>,
    /// `(t_jobs1 / t_jobsN) / N` (throughput cases with N > 1).
    scaling_efficiency: Option<f64>,
    /// `baseline_median / median` when `--baseline` matched this case.
    speedup_vs_baseline: Option<f64>,
}

fn rate(hits: u64, misses: u64) -> Option<f64> {
    let total = hits + misses;
    if total == 0 {
        None
    } else {
        Some(hits as f64 / total as f64)
    }
}

/// The harness settings plus the case filter, threaded through every
/// case so the effective configuration is recorded in the output.
struct Runner {
    cfg: BenchConfig,
    only: Option<String>,
    cases: Vec<Case>,
}

impl Runner {
    fn wants(&self, name: &str) -> bool {
        self.only.as_ref().is_none_or(|s| name.contains(s))
    }

    fn add(&mut self, name: &str, f: impl FnMut()) {
        if !self.wants(name) {
            return;
        }
        let case = run(self.cfg, name, f);
        self.cases.push(case);
    }

    fn add_tc(&mut self, name: &str, tc: &Tc, f: impl FnMut()) {
        if !self.wants(name) {
            return;
        }
        let k0 = tc.stats();
        let mut case = run(self.cfg, name, f);
        let kd = tc.stats().delta_since(&k0);
        case.whnf_hit_rate = rate(kd.whnf_cache_hits, kd.whnf_cache_misses);
        self.cases.push(case);
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.iter().any(|a| a == "--costs") {
        run_costs(
            flag_str(&args, "--compare"),
            args.iter().any(|a| a == "--bless"),
        );
        return;
    }
    let json = args.iter().any(|a| a == "--json");
    let defaults = BenchConfig::default();
    let samples = flag_value(&args, "--samples")
        .map(|n| n as usize)
        .unwrap_or(defaults.samples);
    let target_ms =
        flag_value(&args, "--target-ms").unwrap_or(defaults.sample_target.as_millis() as u64);
    let cfg = BenchConfig {
        samples,
        sample_target: Duration::from_millis(target_ms),
        max_iters: defaults.max_iters,
    };
    let baseline = flag_str(&args, "--baseline").map(|path| load_baseline(&path));
    let mut r = Runner {
        cfg,
        only: flag_str(&args, "--only"),
        cases: Vec::new(),
    };

    // P1: persistent-session equivalence. One Tc per case, reused
    // across iterations (fuel reset per query so the budget bounds one
    // query, not the batch).
    for size in [8usize, 32, 64, 128] {
        if r.wants(&format!("p1_mu_vs_unrolling/{size}")) {
            let (a, b) = gen_unrolled_pair(size, 42);
            let tc = Tc::new();
            let mut ctx = Ctx::new();
            r.add_tc(&format!("p1_mu_vs_unrolling/{size}"), &tc, || {
                tc.set_fuel(recmod::kernel::DEFAULT_FUEL);
                tc.con_equiv(&mut ctx, &a, &b, &Kind::Type).unwrap();
            });
        }

        if r.wants(&format!("p1_nested_collapse/{size}")) {
            let (a, b) = gen_nested_pair(size, 42);
            let tc = Tc::new();
            let mut ctx = Ctx::new();
            r.add_tc(&format!("p1_nested_collapse/{size}"), &tc, || {
                tc.set_fuel(recmod::kernel::DEFAULT_FUEL);
                tc.con_equiv(&mut ctx, &a, &b, &Kind::Type).unwrap();
            });
        }

        if r.wants(&format!("p1_iso_shao/{size}")) {
            let (a, b) = gen_shao_pair(size, 42);
            let tc = Tc::with_mode(RecMode::IsoShao);
            let mut ctx = Ctx::new();
            r.add_tc(&format!("p1_iso_shao/{size}"), &tc, || {
                tc.set_fuel(recmod::kernel::DEFAULT_FUEL);
                tc.con_equiv(&mut ctx, &a, &b, &Kind::Type).unwrap();
            });
        }
    }

    // Singleton-chain whnf (sharing propagation).
    for n in [100usize, 1000] {
        if r.wants(&format!("whnf_singleton_chain/{n}")) {
            let (mut ctx, con) = singleton_chain(n);
            let tc = Tc::new();
            r.add_tc(&format!("whnf_singleton_chain/{n}"), &tc, || {
                tc.set_fuel(recmod::kernel::DEFAULT_FUEL);
                let w = tc.whnf(&mut ctx, &con).unwrap();
                assert!(matches!(w, recmod::syntax::ast::Con::Int));
            });
        }
    }

    // P2: full compile throughput (fresh pipeline per iteration — the
    // cold path; interning still shares across iterations).
    let chain = gen_module_chain(32);
    r.add("p2_module_chain/32", || {
        let c = recmod::compile(&chain).unwrap();
        std::hint::black_box(&c);
    });
    let datatypes = gen_rec_datatypes(8);
    r.add("p2_rec_datatypes/8", || {
        let c = recmod::compile(&datatypes).unwrap();
        std::hint::black_box(&c);
    });

    // E1: compile the opaque + transparent list programs.
    for opaque in [true, false] {
        let program = recmod_bench::corpus::list_program(opaque, 20);
        let label = if opaque { "opaque" } else { "transparent" };
        r.add(&format!("e1_list_compile/{label}"), || {
            let c = recmod::compile(&program).unwrap();
            std::hint::black_box(&c);
        });
    }

    // NbE A/B: the same workloads under each equivalence engine,
    // side by side — the measured evidence behind BENCH_nbe.json. The
    // kernel cases force the engine per `Tc`; the compile cases scope
    // it over the whole pipeline with the thread override.
    run_engine_ab(&mut r);

    // Serve: per-request latency through a live one-worker compile
    // server (warm elaborator, admission queue, supervision) against
    // the same program compiled one-shot through a fresh pipeline —
    // the service overhead plus warm-cache lift in one comparison.
    run_serve_bench(&mut r);

    // Throughput: the corpus (replicated ×4 so there is enough work to
    // schedule) through the batch driver at 1/2/4/8 workers, warm
    // caches, plus a cold-cache jobs=1 run that rebuilds the pipeline
    // per file — isolating the warm-cache lift from the parallel lift.
    run_throughput(&mut r);

    // Artifact cache: cold vs in-process-warm vs cross-run-warm (a
    // pre-populated on-disk cache replaying every verdict).
    run_cache_bench(&mut r);

    let mut cases = r.cases;
    if let Some(baseline) = &baseline {
        for c in &mut cases {
            if let Some(base) = baseline.iter().find(|(n, _)| *n == c.name) {
                c.speedup_vs_baseline = Some(base.1 as f64 / c.median_ns as f64);
            }
        }
    }

    if json {
        println!("{}", to_json(&cfg, &cases).to_pretty());
    } else {
        for c in &cases {
            let mut extra = String::new();
            if let Some(pps) = c.programs_per_sec {
                extra.push_str(&format!("  {pps:.1} programs/s"));
            }
            if let Some(eff) = c.scaling_efficiency {
                extra.push_str(&format!("  {:.0}% scaling", eff * 100.0));
            }
            if let Some(sp) = c.speedup_vs_baseline {
                extra.push_str(&format!("  {sp:.2}x vs baseline"));
            }
            println!(
                "{:<36} median {:>10} ns  [{} .. {}] ({} iters){extra}",
                c.name, c.median_ns, c.min_ns, c.max_ns, c.iters
            );
        }
    }
}

/// `--costs`: measure the deterministic cost model and either print it
/// (no `--compare`), regenerate the golden baseline in place
/// (`--bless`, default path `tests/golden_costs.json`), or gate against
/// a golden baseline, exiting `1` on any counter drift beyond tolerance
/// and `2` on a broken baseline.
fn run_costs(compare: Option<String>, bless: bool) {
    use recmod_bench::costs;
    let model = costs::measure_corpus();
    if bless {
        let path = compare.unwrap_or_else(|| "tests/golden_costs.json".to_string());
        let text = format!("{}\n", costs::to_json(&model).to_pretty());
        match std::fs::write(&path, text) {
            Ok(()) => println!(
                "blessed cost model into {path} ({} example(s))",
                model.examples.len()
            ),
            Err(e) => {
                eprintln!("bench_json: cannot write {path}: {e}");
                std::process::exit(2);
            }
        }
        return;
    }
    let Some(path) = compare else {
        println!("{}", costs::to_json(&model).to_pretty());
        return;
    };
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        eprintln!("bench_json: cannot read cost baseline {path}: {e}");
        std::process::exit(2);
    });
    let baseline = costs::parse_baseline(&text).unwrap_or_else(|e| {
        eprintln!("bench_json: bad cost baseline {path}: {e}");
        std::process::exit(2);
    });
    let diffs = costs::compare(&model, &baseline);
    if diffs.is_empty() {
        println!(
            "cost model matches {path}: {} example(s) within tolerance",
            model.examples.len()
        );
        return;
    }
    eprintln!("cost model drifted from {path}:");
    for d in &diffs {
        eprintln!("  {d}");
    }
    eprintln!(
        "{} violation(s); if intentional, regenerate with:\n  \
         cargo run --release -p recmod-bench --bin bench_json -- --costs > {path}",
        diffs.len()
    );
    std::process::exit(1);
}

/// `nbe_ab/...`: each P1-style equivalence family at one representative
/// size, plus the E1 opaque-list compile, under the NbE machine and
/// under the legacy substitution engine. Case names end in the engine
/// (`.../nbe`, `.../subst`) so the pairs line up in the output and a
/// `--baseline BENCH_nbe.json` run can track either side.
fn run_engine_ab(r: &mut Runner) {
    use recmod::kernel::{set_thread_engine, EquivEngine};
    use recmod::syntax::ast::Con;
    use recmod::telemetry::Limits;

    type PairGen = fn(usize, u64) -> (Con, Con);
    let engines = [EquivEngine::Nbe, EquivEngine::Subst];
    let pairs: [(&str, PairGen); 3] = [
        ("mu_vs_unrolling", gen_unrolled_pair),
        ("nested_collapse", gen_nested_pair),
        ("iso_shao", gen_shao_pair),
    ];
    for (family, gen) in pairs {
        for engine in engines {
            let name = format!("nbe_ab/{family}/64/{}", engine.name());
            if !r.wants(&name) {
                continue;
            }
            let (a, b) = gen(64, 42);
            let mode = if family == "iso_shao" {
                RecMode::IsoShao
            } else {
                RecMode::Equi
            };
            let tc = Tc::with_engine(engine, mode, Limits::default());
            let mut ctx = Ctx::new();
            r.add_tc(&name, &tc, || {
                tc.set_fuel(recmod::kernel::DEFAULT_FUEL);
                tc.con_equiv(&mut ctx, &a, &b, &Kind::Type).unwrap();
            });
        }
    }
    for engine in engines {
        let name = format!("nbe_ab/e1_list_compile/opaque/{}", engine.name());
        if !r.wants(&name) {
            continue;
        }
        let program = recmod_bench::corpus::list_program(true, 20);
        set_thread_engine(Some(engine));
        r.add(&name, || {
            let c = recmod::compile(&program).unwrap();
            std::hint::black_box(&c);
        });
        set_thread_engine(None);
    }
}

/// `serve_warm`: one request at a time through a live server (the warm
/// path a long-lived client sees: queue, worker hand-off, warm
/// elaborator, response marshalling) vs the identical program through a
/// fresh pipeline per iteration. The ratio is the service's win once
/// per-process startup is amortized away.
fn run_serve_bench(r: &mut Runner) {
    use recmod_driver::serve::{Request, ResponseStatus, ServeConfig, Server};
    use std::sync::mpsc::channel;

    let program = recmod_bench::corpus::list_program(true, 20);
    if r.wants("serve_warm/list_opaque") {
        let mut server = Server::start(ServeConfig {
            workers: 1,
            ..ServeConfig::default()
        })
        .expect("bench server failed to start");
        let mut next_id = 0u64;
        {
            let server_ref = &server;
            let program = &program;
            r.add("serve_warm/list_opaque", move || {
                let (tx, rx) = channel();
                next_id += 1;
                server_ref.submit(Request::new(next_id, "bench.rm", program.clone()), tx);
                let resp = rx.recv().expect("bench server dropped a response");
                assert_eq!(resp.status, ResponseStatus::Ok);
                std::hint::black_box(&resp);
            });
        }
        server.shutdown();
    }
    r.add("serve_warm/one_shot_baseline", || {
        let c = recmod::compile(&program).unwrap();
        std::hint::black_box(&c);
    });
}

/// How many times the corpus is replicated into one throughput batch.
const CORPUS_REPLICAS: usize = 4;

/// The corpus ×[`CORPUS_REPLICAS`] as one batch of driver jobs.
fn corpus_jobs() -> Vec<Job> {
    let entries = recmod::corpus::all();
    (0..CORPUS_REPLICAS)
        .flat_map(|rep| {
            entries
                .iter()
                .map(move |e| Job::new(format!("{}#{rep}", e.name), e.source))
        })
        .collect()
}

/// One extra **untimed** telemetry pass over the batch: the timed runs
/// stay observation-free, and the merged worker counters give the
/// whnf/interner hit rates the timed configuration actually sees.
fn batch_hit_rates(jobs: &[Job], cfg: &DriverConfig) -> (Option<f64>, Option<f64>) {
    let tcfg = DriverConfig {
        telemetry: Some(recmod::telemetry::Config::default()),
        ..cfg.clone()
    };
    let res = compile_batch(jobs, &tcfg);
    let Some(merged) = &res.merged else {
        return (None, None);
    };
    let get = |name: &str| merged.counters.get(name).copied().unwrap_or(0);
    (
        rate(get("kernel.whnf_cache_hit"), get("kernel.whnf_cache_miss")),
        rate(get("syntax.intern_hit"), get("syntax.intern_miss")),
    )
}

fn run_throughput(r: &mut Runner) {
    let jobs = corpus_jobs();
    let n_programs = jobs.len();

    let run_one = |r: &mut Runner, name: String, workers: usize, warm: bool| -> Option<u64> {
        if !r.wants(&name) {
            return None;
        }
        let cfg = DriverConfig {
            jobs: workers,
            warm,
            ..DriverConfig::default()
        };
        let stats = bench_quiet(r.cfg, || {
            let res = compile_batch(&jobs, &cfg);
            assert!(res
                .outcomes
                .iter()
                .all(|o| o.status != FileStatus::Internal));
            std::hint::black_box(&res);
        });
        eprintln!("measured {name}: {} ns", stats.median_ns);
        let (whnf_hit_rate, intern_hit_rate) = batch_hit_rates(&jobs, &cfg);
        r.cases.push(Case {
            name,
            median_ns: stats.median_ns,
            min_ns: stats.min_ns,
            max_ns: stats.max_ns,
            iters: stats.iters,
            whnf_hit_rate,
            intern_hit_rate,
            programs_per_sec: Some(n_programs as f64 * 1e9 / stats.median_ns as f64),
            scaling_efficiency: None,
            speedup_vs_baseline: None,
        });
        Some(stats.median_ns)
    };

    let cold = run_one(r, "throughput/corpus_x4/jobs1_cold".into(), 1, false);
    let t1 = run_one(r, "throughput/corpus_x4/jobs1".into(), 1, true);
    if t1.is_some() {
        // The jobs=1 run is its own scaling baseline: efficiency 1 by
        // definition, recorded explicitly so downstream tooling never
        // has to special-case a null.
        if let Some(case) = r.cases.last_mut() {
            case.scaling_efficiency = Some(1.0);
        }
    }
    if let (Some(cold), Some(t1)) = (cold, t1) {
        eprintln!("warm-cache lift at jobs=1: {:.2}x", cold as f64 / t1 as f64);
    }
    for workers in [2usize, 4, 8] {
        let tn = run_one(
            r,
            format!("throughput/corpus_x4/jobs{workers}"),
            workers,
            true,
        );
        if let (Some(t1), Some(tn)) = (t1, tn) {
            let eff = (t1 as f64 / tn as f64) / workers as f64;
            if let Some(case) = r.cases.last_mut() {
                case.scaling_efficiency = Some(eff);
            }
        }
    }
}

/// `cache/corpus_x4/{cold,warm,cross_run_warm}`: the artifact cache's
/// effect on corpus throughput at jobs=1.
///
/// * `cold` — no artifact cache, per-worker caches rebuilt per file:
///   what a fresh process pays with caching disabled;
/// * `warm` — no artifact cache, warm per-worker caches: the in-process
///   ceiling without persistence;
/// * `cross_run_warm` — a **pre-populated** artifact cache with cold
///   per-worker caches: what a fresh process pays when a previous run
///   already stored every verdict (every file replays from disk, the
///   pipeline never runs).
fn run_cache_bench(r: &mut Runner) {
    let jobs = corpus_jobs();
    let n_programs = jobs.len();
    let cache_dir = std::env::temp_dir().join(format!("recmod-bench-cache-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&cache_dir);

    let run_one = |r: &mut Runner, name: String, cfg: &DriverConfig| {
        if !r.wants(&name) {
            return;
        }
        let stats = bench_quiet(r.cfg, || {
            let res = compile_batch(&jobs, cfg);
            assert!(res
                .outcomes
                .iter()
                .all(|o| o.status != FileStatus::Internal));
            assert!(res.cache_warnings.is_empty(), "cache bench hit C-warnings");
            std::hint::black_box(&res);
        });
        eprintln!("measured {name}: {} ns", stats.median_ns);
        let (whnf_hit_rate, intern_hit_rate) = batch_hit_rates(&jobs, cfg);
        r.cases.push(Case {
            name,
            median_ns: stats.median_ns,
            min_ns: stats.min_ns,
            max_ns: stats.max_ns,
            iters: stats.iters,
            whnf_hit_rate,
            intern_hit_rate,
            programs_per_sec: Some(n_programs as f64 * 1e9 / stats.median_ns as f64),
            scaling_efficiency: None,
            speedup_vs_baseline: None,
        });
    };

    let cold_cfg = DriverConfig {
        jobs: 1,
        warm: false,
        ..DriverConfig::default()
    };
    run_one(r, "cache/corpus_x4/cold".into(), &cold_cfg);
    let warm_cfg = DriverConfig {
        jobs: 1,
        warm: true,
        ..DriverConfig::default()
    };
    run_one(r, "cache/corpus_x4/warm".into(), &warm_cfg);

    let cached_cfg = DriverConfig {
        cache: Some(recmod_driver::cache::CacheConfig::new(cache_dir.clone())),
        ..cold_cfg
    };
    if r.wants("cache/corpus_x4/cross_run_warm") {
        // Populate once (the "previous run"), then measure pure-hit
        // replay; the populating pass is not timed.
        let seeded = compile_batch(&jobs, &cached_cfg);
        assert!(seeded.cache_warnings.is_empty(), "cache seeding warned");
    }
    run_one(r, "cache/corpus_x4/cross_run_warm".into(), &cached_cfg);

    let cases = &r.cases;
    let median_of = |name: &str| {
        cases
            .iter()
            .find(|c| c.name.ends_with(name))
            .map(|c| c.median_ns)
    };
    if let (Some(cold), Some(xrw)) = (
        median_of("cache/corpus_x4/cold"),
        median_of("cache/corpus_x4/cross_run_warm"),
    ) {
        eprintln!(
            "cross-run-warm lift vs cold: {:.2}x",
            cold as f64 / xrw as f64
        );
    }
    let _ = std::fs::remove_dir_all(&cache_dir);
}

fn run(cfg: BenchConfig, name: &str, f: impl FnMut()) -> Case {
    let i0 = intern_stats();
    let stats = bench_quiet(cfg, f);
    let i1 = intern_stats();
    eprintln!("measured {name}: {} ns", stats.median_ns);
    Case {
        name: name.to_string(),
        median_ns: stats.median_ns,
        min_ns: stats.min_ns,
        max_ns: stats.max_ns,
        iters: stats.iters,
        whnf_hit_rate: None,
        intern_hit_rate: rate(i1.hits - i0.hits, i1.misses - i0.misses),
        programs_per_sec: None,
        scaling_efficiency: None,
        speedup_vs_baseline: None,
    }
}

fn flag_value(args: &[String], flag: &str) -> Option<u64> {
    let i = args.iter().position(|a| a == flag)?;
    args.get(i + 1)?.parse().ok()
}

fn flag_str(args: &[String], flag: &str) -> Option<String> {
    let i = args.iter().position(|a| a == flag)?;
    args.get(i + 1).cloned()
}

/// Loads `(name, median_ns)` pairs from a checked-in `BENCH_*.json`.
/// Accepts this binary's own output (object with a `cases` array or a
/// bare array) and the hand-merged interning file, whose cases carry
/// `after_median_ns` instead of `median_ns`.
fn load_baseline(path: &str) -> Vec<(String, u64)> {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("bench_json: cannot read baseline {path}: {e}");
        std::process::exit(2);
    });
    let doc = parse(&text).unwrap_or_else(|e| {
        eprintln!("bench_json: cannot parse baseline {path}: {e}");
        std::process::exit(2);
    });
    let cases = doc
        .get("cases")
        .and_then(|c| c.as_arr())
        .or_else(|| doc.as_arr())
        .unwrap_or_else(|| {
            eprintln!("bench_json: baseline {path} has no case array");
            std::process::exit(2);
        });
    cases
        .iter()
        .filter_map(|c| {
            let name = c.get("name")?.as_str()?.to_string();
            let median = c
                .get("median_ns")
                .or_else(|| c.get("after_median_ns"))?
                .as_u64()?;
            Some((name, median))
        })
        .collect()
}

fn to_json(cfg: &BenchConfig, cases: &[Case]) -> Json {
    let opt_f64 = |v: Option<f64>| match v {
        Some(x) => Json::Float((x * 1e4).round() / 1e4),
        None => Json::Null,
    };
    Json::obj([
        (
            "schema_version",
            Json::UInt(recmod::telemetry::SCHEMA_VERSION),
        ),
        (
            "config",
            Json::obj([
                ("samples", Json::UInt(cfg.samples as u64)),
                (
                    "target_ms",
                    Json::UInt(cfg.sample_target.as_millis() as u64),
                ),
                ("max_iters", Json::UInt(cfg.max_iters)),
            ]),
        ),
        (
            "cases",
            Json::Arr(
                cases
                    .iter()
                    .map(|c| {
                        Json::obj([
                            ("name", Json::str(&c.name)),
                            ("median_ns", Json::UInt(c.median_ns)),
                            ("min_ns", Json::UInt(c.min_ns)),
                            ("max_ns", Json::UInt(c.max_ns)),
                            ("iters", Json::UInt(c.iters)),
                            ("whnf_hit_rate", opt_f64(c.whnf_hit_rate)),
                            ("intern_hit_rate", opt_f64(c.intern_hit_rate)),
                            ("programs_per_sec", opt_f64(c.programs_per_sec)),
                            ("scaling_efficiency", opt_f64(c.scaling_efficiency)),
                            ("speedup_vs_baseline", opt_f64(c.speedup_vs_baseline)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}
