//! Machine-readable benchmark runner for the interning/memoization
//! experiments (`BENCH_interning.json`).
//!
//! Measures the P1 equivalence workloads (μ vs unrolling, nested ≃
//! collapse, iso+Shao), the P2 front-end workloads, and the E1 list
//! compile, each as the median nanoseconds of one query against a
//! *persistent* checker session — the realistic compiler shape, where
//! the same types are compared over and over.
//!
//! With `--json` the results are printed as a JSON array; otherwise as
//! human-readable lines. `--samples N` and `--target-ms M` tune the
//! harness (defaults keep a full run under ~10 s).

use std::time::Duration;

use recmod::kernel::{Ctx, RecMode, Tc};
use recmod::syntax::ast::Kind;
use recmod::syntax::intern::intern_stats;
use recmod_bench::harness::{bench_quiet, BenchConfig};
use recmod_bench::{
    gen_module_chain, gen_nested_pair, gen_rec_datatypes, gen_shao_pair, gen_unrolled_pair,
    singleton_chain,
};

struct Case {
    name: String,
    median_ns: u64,
    min_ns: u64,
    max_ns: u64,
    iters: u64,
    /// Whnf-memo hit rate over the whole timed run (persistent-Tc cases).
    whnf_hit_rate: Option<f64>,
    /// Interner hit rate over the whole timed run.
    intern_hit_rate: Option<f64>,
}

fn rate(hits: u64, misses: u64) -> Option<f64> {
    let total = hits + misses;
    if total == 0 {
        None
    } else {
        Some(hits as f64 / total as f64)
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let json = args.iter().any(|a| a == "--json");
    let samples = flag_value(&args, "--samples").unwrap_or(9);
    let target_ms = flag_value(&args, "--target-ms").unwrap_or(10);
    let cfg = BenchConfig {
        samples: samples as usize,
        sample_target: Duration::from_millis(target_ms),
        max_iters: 100_000,
    };

    let mut cases: Vec<Case> = Vec::new();

    // P1: persistent-session equivalence. One Tc per case, reused
    // across iterations (fuel reset per query so the budget bounds one
    // query, not the batch).
    for size in [8usize, 32, 64, 128] {
        let (a, b) = gen_unrolled_pair(size, 42);
        let tc = Tc::new();
        let mut ctx = Ctx::new();
        cases.push(run_tc(
            cfg,
            &format!("p1_mu_vs_unrolling/{size}"),
            &tc,
            || {
                tc.set_fuel(recmod::kernel::DEFAULT_FUEL);
                tc.con_equiv(&mut ctx, &a, &b, &Kind::Type).unwrap();
            },
        ));

        let (a, b) = gen_nested_pair(size, 42);
        let tc = Tc::new();
        let mut ctx = Ctx::new();
        cases.push(run_tc(
            cfg,
            &format!("p1_nested_collapse/{size}"),
            &tc,
            || {
                tc.set_fuel(recmod::kernel::DEFAULT_FUEL);
                tc.con_equiv(&mut ctx, &a, &b, &Kind::Type).unwrap();
            },
        ));

        let (a, b) = gen_shao_pair(size, 42);
        let tc = Tc::with_mode(RecMode::IsoShao);
        let mut ctx = Ctx::new();
        cases.push(run_tc(cfg, &format!("p1_iso_shao/{size}"), &tc, || {
            tc.set_fuel(recmod::kernel::DEFAULT_FUEL);
            tc.con_equiv(&mut ctx, &a, &b, &Kind::Type).unwrap();
        }));
    }

    // Singleton-chain whnf (sharing propagation).
    for n in [100usize, 1000] {
        let (mut ctx, con) = singleton_chain(n);
        let tc = Tc::new();
        cases.push(run_tc(
            cfg,
            &format!("whnf_singleton_chain/{n}"),
            &tc,
            || {
                tc.set_fuel(recmod::kernel::DEFAULT_FUEL);
                let w = tc.whnf(&mut ctx, &con).unwrap();
                assert!(matches!(w, recmod::syntax::ast::Con::Int));
            },
        ));
    }

    // P2: full compile throughput (fresh pipeline per iteration — the
    // cold path; interning still shares across iterations).
    let chain = gen_module_chain(32);
    cases.push(run(cfg, "p2_module_chain/32", || {
        let c = recmod::compile(&chain).unwrap();
        std::hint::black_box(&c);
    }));
    let datatypes = gen_rec_datatypes(8);
    cases.push(run(cfg, "p2_rec_datatypes/8", || {
        let c = recmod::compile(&datatypes).unwrap();
        std::hint::black_box(&c);
    }));

    // E1: compile the opaque + transparent list programs.
    for opaque in [true, false] {
        let program = recmod_bench::corpus::list_program(opaque, 20);
        let label = if opaque { "opaque" } else { "transparent" };
        cases.push(run(cfg, &format!("e1_list_compile/{label}"), || {
            let c = recmod::compile(&program).unwrap();
            std::hint::black_box(&c);
        }));
    }

    if json {
        print_json(&cases);
    } else {
        for c in &cases {
            println!(
                "{:<32} median {:>10} ns  [{} .. {}] ({} iters)",
                c.name, c.median_ns, c.min_ns, c.max_ns, c.iters
            );
        }
    }
}

fn run(cfg: BenchConfig, name: &str, f: impl FnMut()) -> Case {
    let i0 = intern_stats();
    let stats = bench_quiet(cfg, f);
    let i1 = intern_stats();
    eprintln!("measured {name}: {} ns", stats.median_ns);
    Case {
        name: name.to_string(),
        median_ns: stats.median_ns,
        min_ns: stats.min_ns,
        max_ns: stats.max_ns,
        iters: stats.iters,
        whnf_hit_rate: None,
        intern_hit_rate: rate(i1.hits - i0.hits, i1.misses - i0.misses),
    }
}

/// Like [`run`], but also reports the checker's whnf-memo hit rate over
/// the timed run (only meaningful for persistent-`Tc` cases).
fn run_tc(cfg: BenchConfig, name: &str, tc: &Tc, f: impl FnMut()) -> Case {
    let k0 = tc.stats();
    let mut case = run(cfg, name, f);
    let kd = tc.stats().delta_since(&k0);
    case.whnf_hit_rate = rate(kd.whnf_cache_hits, kd.whnf_cache_misses);
    case
}

fn flag_value(args: &[String], flag: &str) -> Option<u64> {
    let i = args.iter().position(|a| a == flag)?;
    args.get(i + 1)?.parse().ok()
}

fn print_json(cases: &[Case]) {
    println!("[");
    for (i, c) in cases.iter().enumerate() {
        let comma = if i + 1 == cases.len() { "" } else { "," };
        let fmt_rate = |r: Option<f64>| match r {
            Some(v) => format!("{v:.4}"),
            None => "null".to_string(),
        };
        println!(
            "  {{\"name\": \"{}\", \"median_ns\": {}, \"min_ns\": {}, \"max_ns\": {}, \"iters\": {}, \"whnf_hit_rate\": {}, \"intern_hit_rate\": {}}}{comma}",
            c.name,
            c.median_ns,
            c.min_ns,
            c.max_ns,
            c.iters,
            fmt_rate(c.whnf_hit_rate),
            fmt_rate(c.intern_hit_rate)
        );
    }
    println!("]");
}
