//! Regenerates every experiment table of `EXPERIMENTS.md`.
//!
//! ```sh
//! cargo run -p recmod-bench --release --bin tables
//! ```
//!
//! Unlike the Criterion benches (wall-clock), these tables use
//! deterministic counters (interpreter steps, checker fuel) so the
//! numbers are machine-independent and exactly reproducible.

use recmod::kernel::{Ctx, RecMode, Tc};
use recmod::syntax::ast::Kind;
use recmod_bench as bench;

fn main() {
    table_e1();
    table_p1();
    table_e8();
    table_p2();
}

/// E1: opaque vs transparent list, interpreter steps.
fn table_e1() {
    println!("Table E1 — build+sum an n-list: interpreter steps");
    println!("{:>6} {:>14} {:>14} {:>8} {:>12} {:>12}",
        "n", "opaque", "transparent", "ratio", "opaque/n^2", "transp/n");
    for n in [10usize, 20, 40, 80, 160] {
        let o = bench::list_steps(true, n);
        let t = bench::list_steps(false, n);
        println!(
            "{:>6} {:>14} {:>14} {:>7.1}x {:>12.2} {:>12.2}",
            n,
            o,
            t,
            o as f64 / t as f64,
            o as f64 / (n * n) as f64,
            t as f64 / n as f64
        );
    }
    println!();
}

/// P1: equivalence-checker fuel burned, by workload size and mode.
fn table_p1() {
    println!("Table P1 — definitional equality: checker fuel burned");
    println!(
        "{:>6} {:>16} {:>16} {:>18}",
        "size", "μ vs unroll", "nested≃collapse", "iso+Shao μ=μ'"
    );
    let fuel = |mode: RecMode, pair: &(recmod::syntax::ast::Con, recmod::syntax::ast::Con)| {
        let tc = Tc::with_mode(mode);
        let before = tc.fuel();
        let mut ctx = Ctx::new();
        tc.con_equiv(&mut ctx, &pair.0, &pair.1, &Kind::Type).unwrap();
        before - tc.fuel()
    };
    for size in [8usize, 16, 32, 64, 128] {
        let unroll = fuel(RecMode::Equi, &bench::gen_unrolled_pair(size, 42));
        let nested = fuel(RecMode::Equi, &bench::gen_nested_pair(size, 42));
        let shao = fuel(RecMode::IsoShao, &bench::gen_shao_pair(size, 42));
        println!("{size:>6} {unroll:>16} {nested:>16} {shao:>18}");
    }
    println!();
}

/// E8: which equalities hold in which theory.
fn table_e8() {
    use recmod::syntax::ast::Con;
    use recmod::syntax::dsl::*;
    use recmod::syntax::subst::shift_con;
    println!("Table E8 — §5 equality theories (✓ = provable)");
    let m = mu(tkind(), carrow(Con::Int, cvar(0)));
    let shao = mu(tkind(), carrow(Con::Int, shift_con(&m, 1, 0)));
    let unrolled = carrow(Con::Int, m.clone());
    let nested = mu(tkind(), mu(tkind(), carrow(cvar(1), cvar(0))));
    let flat = recmod::phase::iso::collapse_mu(&nested).unwrap();
    let rows: Vec<(&str, &Con, &Con)> = vec![
        ("Shao's equation  μc = μc(μc)", &m, &shao),
        ("μ vs unrolling", &m, &unrolled),
        ("nested-μ collapse", &nested, &flat),
    ];
    println!("{:<32} {:>6} {:>6} {:>9}", "equation", "equi", "iso", "iso+Shao");
    for (name, a, b) in rows {
        let mut row = format!("{name:<32}");
        for mode in [RecMode::Equi, RecMode::Iso, RecMode::IsoShao] {
            let tc = Tc::with_mode(mode);
            let mut ctx = Ctx::new();
            let ok = tc.con_equiv(&mut ctx, a, b, &Kind::Type).is_ok();
            let w = match mode { RecMode::Equi => 6, RecMode::Iso => 6, RecMode::IsoShao => 9 };
            row.push_str(&format!(" {:>w$}", if ok { "✓" } else { "✗" }, w = w));
        }
        println!("{row}");
    }
    println!();
}

/// P2: elaboration fuel, by program size.
fn table_p2() {
    println!("Table P2 — front-end cost (kernel fuel burned during compile)");
    println!("{:>24} {:>10} {:>14}", "workload", "size", "fuel");
    for n in [4usize, 16, 64] {
        let src = bench::gen_module_chain(n);
        let elab = recmod::surface::Elaborator::new();
        let before = elab.tc.fuel();
        let c = recmod::compile_with(elab, &src).unwrap();
        let burned = before - c.elab.tc.fuel();
        println!("{:>24} {n:>10} {burned:>14}", "module_chain");
    }
    for k in [1usize, 2, 4, 8] {
        let src = bench::gen_rec_datatypes(k);
        let elab = recmod::surface::Elaborator::new();
        let before = elab.tc.fuel();
        let c = recmod::compile_with(elab, &src).unwrap();
        let burned = before - c.elab.tc.fuel();
        println!("{:>24} {k:>10} {burned:>14}", "rec_datatypes");
    }
    println!();
}
