//! Regenerates every experiment table of `EXPERIMENTS.md`.
//!
//! ```sh
//! cargo run -p recmod-bench --release --bin tables
//! ```
//!
//! Unlike the wall-clock benches (`benches/`), these tables use
//! deterministic counters (interpreter steps, checker fuel, μ-unrolls)
//! so the numbers are machine-independent and exactly reproducible.

use recmod::kernel::{Ctx, RecMode, Tc};
use recmod::syntax::ast::Kind;
use recmod_bench as bench;

fn main() {
    table_e1();
    table_p1();
    table_e8();
    table_p2();
}

/// E1: opaque vs transparent list — interpreter steps at run time,
/// kernel fuel and μ-unrolls at compile time.
fn table_e1() {
    println!("Table E1 — build+sum an n-list: interpreter steps / checker counters");
    println!(
        "{:>6} {:>12} {:>12} {:>7} {:>11} {:>10} {:>11} {:>11}",
        "n", "opaque", "transp", "ratio", "opaque/n^2", "transp/n", "fuel(op)", "fuel(tr)"
    );
    for n in [10usize, 20, 40, 80, 160] {
        let (oe, ok) = bench::list_run_stats(true, n);
        let (te, tk) = bench::list_run_stats(false, n);
        println!(
            "{:>6} {:>12} {:>12} {:>6.1}x {:>11.2} {:>10.2} {:>11} {:>11}",
            n,
            oe.steps,
            te.steps,
            oe.steps as f64 / te.steps as f64,
            oe.steps as f64 / (n * n) as f64,
            te.steps as f64 / n as f64,
            ok.fuel_used(),
            tk.fuel_used(),
        );
    }
    // Compile-time μ-unroll counts are size-independent; report once.
    let (_, ok) = bench::list_run_stats(true, 10);
    let (_, tk) = bench::list_run_stats(false, 10);
    println!(
        "  (compile-time μ-unrolls: opaque {}, transparent {})",
        ok.mu_unrolls, tk.mu_unrolls
    );
    println!();
}

/// P1: equivalence-checker fuel and μ-unrolls, by workload size and mode.
fn table_p1() {
    println!("Table P1 — definitional equality: checker fuel burned (μ-unrolls)");
    println!(
        "{:>6} {:>18} {:>18} {:>18} {:>8}",
        "size", "μ vs unroll", "nested≃collapse", "iso+Shao μ=μ'", "hwm"
    );
    // Fuel burned plus the stats snapshot for one equivalence query.
    let profile = |mode: RecMode,
                   pair: &(recmod::syntax::ast::Con, recmod::syntax::ast::Con)|
     -> (u64, recmod::kernel::KernelStats) {
        let tc = Tc::with_mode(mode);
        let before = tc.fuel();
        let mut ctx = Ctx::new();
        tc.con_equiv(&mut ctx, &pair.0, &pair.1, &Kind::Type)
            .unwrap();
        (before - tc.fuel(), tc.stats())
    };
    for size in [8usize, 16, 32, 64, 128] {
        let (uf, us) = profile(RecMode::Equi, &bench::gen_unrolled_pair(size, 42));
        let (nf, ns) = profile(RecMode::Equi, &bench::gen_nested_pair(size, 42));
        let (sf, ss) = profile(RecMode::IsoShao, &bench::gen_shao_pair(size, 42));
        println!(
            "{size:>6} {:>18} {:>18} {:>18} {:>8}",
            format!("{uf} ({})", us.mu_unrolls),
            format!("{nf} ({})", ns.mu_unrolls),
            format!("{sf} ({})", ss.mu_unrolls),
            ns.assumption_hwm,
        );
    }
    println!();
}

/// E8: which equalities hold in which theory.
fn table_e8() {
    use recmod::syntax::ast::Con;
    use recmod::syntax::dsl::*;
    use recmod::syntax::subst::shift_con;
    println!("Table E8 — §5 equality theories (✓ = provable)");
    let m = mu(tkind(), carrow(Con::Int, cvar(0)));
    let shao = mu(tkind(), carrow(Con::Int, shift_con(&m, 1, 0)));
    let unrolled = carrow(Con::Int, m.clone());
    let nested = mu(tkind(), mu(tkind(), carrow(cvar(1), cvar(0))));
    let flat = recmod::phase::iso::collapse_mu(&nested).unwrap();
    let rows: Vec<(&str, &Con, &Con)> = vec![
        ("Shao's equation  μc = μc(μc)", &m, &shao),
        ("μ vs unrolling", &m, &unrolled),
        ("nested-μ collapse", &nested, &flat),
    ];
    println!(
        "{:<32} {:>6} {:>6} {:>9}",
        "equation", "equi", "iso", "iso+Shao"
    );
    for (name, a, b) in rows {
        let mut row = format!("{name:<32}");
        for mode in [RecMode::Equi, RecMode::Iso, RecMode::IsoShao] {
            let tc = Tc::with_mode(mode);
            let mut ctx = Ctx::new();
            let ok = tc.con_equiv(&mut ctx, a, b, &Kind::Type).is_ok();
            let w = match mode {
                RecMode::Equi => 6,
                RecMode::Iso => 6,
                RecMode::IsoShao => 9,
            };
            row.push_str(&format!(" {:>w$}", if ok { "✓" } else { "✗" }, w = w));
        }
        println!("{row}");
    }
    println!();
}

/// P2: elaboration fuel, μ-unrolls, and whnf steps, by program size.
fn table_p2() {
    println!("Table P2 — front-end cost (kernel counters burned during compile)");
    println!(
        "{:>24} {:>10} {:>14} {:>12} {:>12}",
        "workload", "size", "fuel", "μ-unrolls", "whnf steps"
    );
    let row = |workload: &str, size: usize, src: &str| {
        let elab = recmod::surface::Elaborator::new();
        let before = elab.tc.fuel();
        let c = recmod::compile_with(elab, src).unwrap();
        let burned = before - c.elab.tc.fuel();
        let stats = c.elab.tc.stats();
        println!(
            "{workload:>24} {size:>10} {burned:>14} {:>12} {:>12}",
            stats.mu_unrolls, stats.whnf_steps
        );
    };
    for n in [4usize, 16, 64] {
        row("module_chain", n, &bench::gen_module_chain(n));
    }
    for k in [1usize, 2, 4, 8] {
        row("rec_datatypes", k, &bench::gen_rec_datatypes(k));
    }
    println!();
}
