//! # recmod-bench
//!
//! Workload generators and measurement helpers for the benchmark
//! harness. Every table and figure of `EXPERIMENTS.md` is regenerated
//! either by a wall-clock bench binary (`benches/`, built on
//! [`harness`]) or by the `tables` binary (`src/bin/tables.rs`), both
//! of which build their inputs here.
//!
//! Generators are deterministic (seeded [`rng::Rng`], a SplitMix64) so
//! runs are reproducible without any external crates.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod costs;
pub mod harness;
pub mod rng;

use recmod::kernel::{Ctx, RecMode, Tc};
use recmod::syntax::ast::{Con, Kind};
use recmod::syntax::dsl::*;
use recmod::syntax::intern::hc;
use rng::Rng;

/// Re-export of the paper corpus for the benches.
pub use recmod::corpus;

// ---------------------------------------------------------------------
// E1 — list workload
// ---------------------------------------------------------------------

/// Interpreter steps to build and sum an `n`-element list with the
/// opaque (§3) or transparent (§4) recursive `List` module.
pub fn list_steps(opaque: bool, n: usize) -> u64 {
    recmod::eval::run_big_stack(512, move || {
        let program = corpus::list_program(opaque, n);
        let out = recmod::run(&program).expect("list program runs");
        assert_eq!(out.value_int(), Some((n * (n + 1) / 2) as i64));
        out.steps
    })
}

/// Compiles a list program and returns the closed term plus the number
/// of top-level bindings (used by wall-clock benches).
pub fn list_term(opaque: bool, n: usize) -> recmod::syntax::ast::Term {
    let program = corpus::list_program(opaque, n);
    recmod::compile(&program)
        .expect("list program compiles")
        .program()
}

/// Full counter profile of one list run: evaluator counters plus the
/// kernel judgement counters burned compiling the program. Used by the
/// `tables` binary and the E1 asymptotic-counters test.
pub fn list_run_stats(
    opaque: bool,
    n: usize,
) -> (recmod::eval::EvalStats, recmod::kernel::KernelStats) {
    recmod::eval::run_big_stack(512, move || {
        // Pin interned nodes for the duration: id-keyed kernel memo hit
        // counts are a pure function of the source only when re-interned
        // nodes keep their ids (see `costs::measure_in_thread`) —
        // without this, the first-ever compile in a process reports
        // slightly different whnf hit/miss/fuel splits than later ones.
        let _pin = recmod::syntax::intern::pin_thread();
        let program = corpus::list_program(opaque, n);
        let compiled = recmod::compile(&program).expect("list program compiles");
        let kernel = compiled.elab.tc.stats();
        let term = compiled.program();
        let mut interp = recmod::eval::Interp::new();
        let v = interp.run(&term).expect("list program runs");
        assert_eq!(v.as_int().ok(), Some((n * (n + 1) / 2) as i64));
        (interp.stats(), kernel)
    })
}

// ---------------------------------------------------------------------
// P1 — equivalence workloads
// ---------------------------------------------------------------------

/// A deterministic random regular recursive monotype with roughly
/// `size` constructor nodes. The μ-bound variable appears guarded, so
/// the constructor is contractive.
pub fn gen_regular_mu(size: usize, seed: u64) -> Con {
    let mut rng = Rng::new(seed);
    let body = gen_body(&mut rng, size, 1);
    mu(tkind(), body)
}

fn gen_body(rng: &mut Rng, size: usize, depth_vars: usize) -> Con {
    if size <= 1 {
        return match rng.below(4) {
            0 => Con::Int,
            1 => Con::Bool,
            2 => Con::UnitTy,
            // A guarded occurrence of an enclosing μ variable.
            _ => carrow(Con::Int, cvar(rng.range(0, depth_vars))),
        };
    }
    let left = size / 2;
    let right = size - 1 - left;
    match rng.below(3) {
        0 => carrow(
            gen_body(rng, left, depth_vars),
            gen_body(rng, right, depth_vars),
        ),
        1 => cprod(
            gen_body(rng, left, depth_vars),
            gen_body(rng, right, depth_vars),
        ),
        _ => csum([
            gen_body(rng, left, depth_vars),
            gen_body(rng, right, depth_vars),
        ]),
    }
}

/// A pair of bisimilar but syntactically distinct μ constructors: `m`
/// and the "Shao form" `μβ. body[m/α]` (the unrolling re-wrapped in a
/// vacuous μ). Equal in equi mode and in iso+Shao mode; distinguishes
/// plain iso.
pub fn gen_shao_pair(size: usize, seed: u64) -> (Con, Con) {
    use recmod::syntax::subst::{shift_con, subst_con_con};
    let m = gen_regular_mu(size, seed);
    let Con::Mu(_, body) = &m else {
        unreachable!("gen_regular_mu returns μ")
    };
    let unrolled = subst_con_con(body, &m);
    let rewrapped = mu(tkind(), shift_con(&unrolled, 1, 0));
    (m, rewrapped)
}

/// A μ paired with its one-step unrolling (equal only in equi mode).
pub fn gen_unrolled_pair(size: usize, seed: u64) -> (Con, Con) {
    let m = gen_regular_mu(size, seed);
    let u = recmod::kernel::whnf::unroll_mu(&m).expect("generated constructor is a μ");
    (m, u)
}

/// A nested two-variable tower `μα.μβ.c(α,β)` paired with its §5
/// collapse `μβ.c(β,β)`. The two sides are structurally different
/// everywhere, so the coinductive engine does work proportional to the
/// body size (no syntactic fast path).
pub fn gen_nested_pair(size: usize, seed: u64) -> (Con, Con) {
    let mut rng = Rng::new(seed);
    let body = gen_body(&mut rng, size, 2);
    let nested = mu(tkind(), mu(tkind(), body));
    let flat = recmod::phase::iso::collapse_mu(&nested).expect("nested towers collapse");
    (nested, flat)
}

/// Times (in nanoseconds) one equivalence check of a μ against its
/// unrolling, in the given mode. Returns `None` when the check fails
/// (e.g. plain iso mode, by design).
pub fn time_equiv(mode: RecMode, a: &Con, b: &Con) -> Option<u64> {
    let tc = Tc::with_mode(mode);
    let mut ctx = Ctx::new();
    let start = std::time::Instant::now();
    let r = tc.con_equiv(&mut ctx, a, b, &Kind::Type);
    let ns = start.elapsed().as_nanos() as u64;
    r.ok().map(|_| ns)
}

/// A deep singleton chain context: `α₀:Q(int), α₁:Q(α₀), …` — and the
/// constructor `α_{n-1}`, whose weak-head normalization walks the chain.
pub fn singleton_chain(n: usize) -> (Ctx, Con) {
    let mut ctx = Ctx::new();
    ctx.push(recmod::kernel::Entry::Con(q(Con::Int)));
    for _ in 1..n {
        ctx.push(recmod::kernel::Entry::Con(q(cvar(0))));
    }
    (ctx, cvar(0))
}

// ---------------------------------------------------------------------
// P2 — elaboration workloads
// ---------------------------------------------------------------------

/// A surface program with `n` chained plain structures (each using the
/// previous one) plus a main expression touching the last.
pub fn gen_module_chain(n: usize) -> String {
    let mut src = String::from(
        "structure S0 = struct type t = int val x = 0 fun bump (a : t) : t = a + 1 end\n",
    );
    for i in 1..n {
        let p = i - 1;
        src.push_str(&format!(
            "structure S{i} = struct type t = S{p}.t val x = S{p}.bump S{p}.x \
             fun bump (a : t) : t = S{p}.bump a end\n"
        ));
    }
    src.push_str(&format!(";\nS{}.x\n", n.saturating_sub(1)));
    src
}

/// A recursive structure whose signature declares `k` mutually recursive
/// datatypes (each constructor refers to the *next* datatype through the
/// recursive structure variable) — stresses rds resolution and the
/// coinductive equivalence checker.
pub fn gen_rec_datatypes(k: usize) -> String {
    let mut sig = String::new();
    let mut body = String::new();
    for i in 0..k {
        let next = (i + 1) % k;
        let line = format!("datatype t{i} = Z{i} | S{i} of int * M.t{next}\n");
        sig.push_str(&line);
        body.push_str(&line);
    }
    // A value using the first datatype.
    body.push_str("val start = Z0\n");
    sig.push_str("val start : t0\n");
    format!(
        "structure rec M : sig\n{sig}end = struct\n{body}end\n;\n\
         case M.start of M.Z0 => 1 | M.S0 p => 0\n"
    )
}

/// Compiles a program, asserting success, and returns elapsed time.
pub fn time_compile(src: &str) -> std::time::Duration {
    let start = std::time::Instant::now();
    let c = recmod::compile(src).expect("generated program compiles");
    std::hint::black_box(&c);
    start.elapsed()
}

// ---------------------------------------------------------------------
// F4/F5 — phase-splitting workloads
// ---------------------------------------------------------------------

/// A recursive module (internal language) with a `width`-ary static
/// tuple of mutually recursive types and a unit dynamic part — input
/// for the Figure-4 splitting bench.
pub fn gen_internal_fix(width: usize) -> recmod::syntax::ast::Module {
    use recmod::syntax::ast::Ty;
    let kind = kind_of_width(width);
    // Static body: ⟨int ⇀ π_{i+1 mod w}(Fst s), …⟩
    let parts: Vec<Con> = (0..width)
        .map(|i| {
            let next = (i + 1) % width;
            carrow(Con::Int, crate::proj_n(Con::Fst(0), next, width))
        })
        .collect();
    let body = strct(tuple_con(parts), recmod::syntax::ast::Term::Star);
    mfix(sig(kind, Ty::Unit), body)
}

fn kind_of_width(width: usize) -> Kind {
    let mut parts = vec![tkind(); width];
    let mut k = parts.pop().expect("width >= 1");
    while let Some(p) = parts.pop() {
        k = Kind::Sigma(hc(p), hc(k));
    }
    k
}

fn tuple_con(mut parts: Vec<Con>) -> Con {
    match parts.len() {
        0 => Con::Star,
        1 => parts.pop().expect("len checked"),
        _ => {
            let first = parts.remove(0);
            Con::Pair(hc(first), hc(tuple_con(parts)))
        }
    }
}

/// Right-nested tuple projection (mirrors the elaborator's layout).
pub fn proj_n(base: Con, slot: usize, arity: usize) -> Con {
    let mut cur = base;
    if arity <= 1 {
        return cur;
    }
    for _ in 0..slot {
        cur = Con::Proj2(hc(cur));
    }
    if slot < arity - 1 {
        Con::Proj1(hc(cur))
    } else {
        cur
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_mu_is_wellkinded_and_contractive() {
        let tc = Tc::new();
        let mut ctx = Ctx::new();
        for seed in 0..20 {
            let c = gen_regular_mu(16, seed);
            tc.check_con(&mut ctx, &c, &Kind::Type).unwrap();
            assert!(recmod::kernel::whnf::is_contractive(&c));
        }
    }

    #[test]
    fn unrolled_pairs_are_equi_equal() {
        let tc = Tc::new();
        let mut ctx = Ctx::new();
        for seed in 0..10 {
            let (a, b) = gen_unrolled_pair(12, seed);
            tc.con_equiv(&mut ctx, &a, &b, &Kind::Type).unwrap();
            let (a, b) = gen_shao_pair(12, seed);
            tc.con_equiv(&mut ctx, &a, &b, &Kind::Type).unwrap();
            // The Shao pair is also provable without full equi-recursion.
            Tc::with_mode(RecMode::IsoShao)
                .con_equiv(&mut ctx, &a, &b, &Kind::Type)
                .unwrap();
        }
    }

    #[test]
    fn module_chain_compiles_and_runs() {
        let src = gen_module_chain(5);
        let out = recmod::run(&src).unwrap();
        assert_eq!(out.value_int(), Some(4));
    }

    #[test]
    fn rec_datatypes_compile_and_run() {
        for k in [1usize, 2, 4] {
            let src = gen_rec_datatypes(k);
            let out = recmod::run(&src).unwrap_or_else(|e| panic!("k={k}: {e}"));
            assert_eq!(out.value_int(), Some(1), "k={k}");
        }
    }

    #[test]
    fn internal_fix_splits_and_verifies() {
        let tc = Tc::new();
        let mut ctx = Ctx::new();
        for width in [1usize, 2, 8] {
            let m = gen_internal_fix(width);
            recmod::phase::check_split(&tc, &mut ctx, &m)
                .unwrap_or_else(|e| panic!("width={width}: {e}"));
        }
    }

    #[test]
    fn singleton_chain_normalizes_to_int() {
        let tc = Tc::new();
        let (mut ctx, c) = singleton_chain(50);
        assert_eq!(tc.whnf(&mut ctx, &c).unwrap(), Con::Int);
    }

    #[test]
    fn list_steps_smoke() {
        assert!(list_steps(false, 5) > 0);
    }
}
