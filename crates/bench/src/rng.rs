//! A tiny deterministic PRNG (SplitMix64) so workload generation needs
//! no external crates. Streams are fully determined by the seed, and
//! the algorithm is fixed, so generated workloads are stable across
//! platforms and toolchain updates.

/// SplitMix64: passes BigCrush, one u64 of state, two multiplies per
/// output. Plenty for workload generation (not for cryptography).
#[derive(Debug, Clone)]
pub struct Rng(u64);

impl Rng {
    /// A generator seeded with `seed`.
    pub fn new(seed: u64) -> Self {
        Rng(seed)
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform value in `0..n` (`n > 0`). Uses Lemire-style widening
    /// multiplication with a rejection pass, so the result is unbiased.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "Rng::below(0)");
        let mut x = self.next_u64();
        let mut m = (x as u128) * (n as u128);
        let mut lo = m as u64;
        if lo < n {
            let threshold = n.wrapping_neg() % n;
            while lo < threshold {
                x = self.next_u64();
                m = (x as u128) * (n as u128);
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// A uniform `usize` in `lo..hi` (`lo < hi`).
    pub fn range(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "Rng::range empty");
        lo + self.below((hi - lo) as u64) as usize
    }

    /// A uniform `i64` in `lo..=hi`.
    pub fn range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo <= hi, "Rng::range_i64 empty");
        lo.wrapping_add(self.below((hi - lo) as u64 + 1) as i64)
    }

    /// A coin flip with probability `num/den` of `true`.
    pub fn chance(&mut self, num: u64, den: u64) -> bool {
        self.below(den) < num
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let a: Vec<u64> = {
            let mut r = Rng::new(7);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = Rng::new(7);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        let c: Vec<u64> = {
            let mut r = Rng::new(8);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_ne!(a, c);
    }

    #[test]
    fn below_in_range_and_covers() {
        let mut r = Rng::new(42);
        let mut seen = [false; 5];
        for _ in 0..200 {
            let v = r.below(5);
            assert!(v < 5);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues hit in 200 draws");
    }

    #[test]
    fn range_bounds() {
        let mut r = Rng::new(1);
        for _ in 0..100 {
            let v = r.range(3, 9);
            assert!((3..9).contains(&v));
            let w = r.range_i64(-2, 2);
            assert!((-2..=2).contains(&w));
        }
    }
}
