//! Experiment P2: front-end throughput — parse + elaborate + typecheck
//! + split, on generated programs.
//!
//! * `module_chain`: n chained plain structures.
//! * `rec_datatypes`: one recursive structure with k mutually recursive
//!   datatypes (stresses rds resolution and coinductive equivalence).

use recmod_bench::harness::{bench, group, sink};
use recmod_bench::{gen_module_chain, gen_rec_datatypes};

fn main() {
    group("p2_elaboration");
    for n in [4usize, 16, 64] {
        let src = gen_module_chain(n);
        bench(&format!("module_chain/{n}"), || {
            sink(recmod::compile(&src).unwrap());
        });
    }
    for k in [1usize, 2, 4, 8] {
        let src = gen_rec_datatypes(k);
        bench(&format!("rec_datatypes/{k}"), || {
            sink(recmod::compile(&src).unwrap());
        });
    }
}
