//! Experiment P2: front-end throughput — parse + elaborate + typecheck
//! + split, on generated programs.
//!
//! * `module_chain`: n chained plain structures.
//! * `rec_datatypes`: one recursive structure with k mutually recursive
//!   datatypes (stresses rds resolution and coinductive equivalence).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use recmod_bench::{gen_module_chain, gen_rec_datatypes};

fn bench_elab(c: &mut Criterion) {
    let mut group = c.benchmark_group("p2_elaboration");
    group.sample_size(10);
    for n in [4usize, 16, 64] {
        let src = gen_module_chain(n);
        group.bench_with_input(BenchmarkId::new("module_chain", n), &src, |b, src| {
            b.iter(|| recmod::compile(src).unwrap())
        });
    }
    for k in [1usize, 2, 4, 8] {
        let src = gen_rec_datatypes(k);
        group.bench_with_input(BenchmarkId::new("rec_datatypes", k), &src, |b, src| {
            b.iter(|| recmod::compile(src).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_elab);
criterion_main!(benches);
