//! Experiment E1 (paper §3.1/§4): opaque vs transparent recursive
//! `List` — wall-clock time to build and sum an n-element list.
//!
//! The paper's claim: the opaque module's `cons`/`uncons` "must traverse
//! the entire list, leading to poor behavior in practice", while the
//! transparent (rds) module has constant-time operations. Expect the
//! opaque series to grow quadratically and the transparent one linearly.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use recmod_bench::list_term;

fn bench_lists(c: &mut Criterion) {
    let mut group = c.benchmark_group("e1_list_build_sum");
    group.sample_size(10);
    for n in [10usize, 20, 40, 80] {
        for (label, opaque) in [("transparent", false), ("opaque", true)] {
            let term = list_term(opaque, n);
            group.bench_with_input(BenchmarkId::new(label, n), &term, |b, term| {
                b.iter(|| {
                    let mut interp = recmod::eval::Interp::new();
                    let v = interp.run(term).expect("runs");
                    assert!(v.as_int().is_ok());
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_lists);
criterion_main!(benches);
