//! Experiment E1 (paper §3.1/§4): opaque vs transparent recursive
//! `List` — wall-clock time to build and sum an n-element list.
//!
//! The paper's claim: the opaque module's `cons`/`uncons` "must traverse
//! the entire list, leading to poor behavior in practice", while the
//! transparent (rds) module has constant-time operations. Expect the
//! opaque series to grow quadratically and the transparent one linearly.

use recmod_bench::harness::{bench, group, sink};
use recmod_bench::list_term;

fn main() {
    group("e1_list_build_sum");
    for n in [10usize, 20, 40, 80] {
        for (label, opaque) in [("transparent", false), ("opaque", true)] {
            let term = list_term(opaque, n);
            bench(&format!("{label}/{n}"), || {
                let mut interp = recmod::eval::Interp::new();
                let v = interp.run(&term).expect("runs");
                assert!(sink(v).as_int().is_ok());
            });
        }
    }
}
