//! Experiments P1/E8: the cost of definitional equality.
//!
//! * `mu_vs_unrolling`: equi-recursive equivalence of a random regular
//!   μ against its unrolling, by body size (the coinductive engine).
//! * `shao_pair`: the same comparison in iso+Shao mode (both sides μ).
//! * `singleton_chain`: weak-head normalization through n chained
//!   singleton kinds (the sharing-propagation cost).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use recmod::kernel::{Ctx, RecMode, Tc};
use recmod_bench::{gen_shao_pair, gen_unrolled_pair, singleton_chain};

use recmod::syntax::ast::Kind as K;

fn bench_equiv(c: &mut Criterion) {
    let mut group = c.benchmark_group("p1_equivalence");
    for size in [8usize, 16, 32, 64] {
        let (a, b) = gen_unrolled_pair(size, 42);
        group.bench_with_input(
            BenchmarkId::new("equi_mu_vs_unrolling", size),
            &(a, b),
            |bench, (a, b)| {
                bench.iter(|| {
                    let tc = Tc::new();
                    let mut ctx = Ctx::new();
                    tc.con_equiv(&mut ctx, a, b, &K::Type).unwrap();
                })
            },
        );
        let (a, b) = recmod_bench::gen_nested_pair(size, 42);
        group.bench_with_input(
            BenchmarkId::new("equi_nested_collapse", size),
            &(a, b),
            |bench, (a, b)| {
                bench.iter(|| {
                    let tc = Tc::new();
                    let mut ctx = Ctx::new();
                    tc.con_equiv(&mut ctx, a, b, &K::Type).unwrap();
                })
            },
        );
        let (a, b) = gen_shao_pair(size, 42);
        group.bench_with_input(
            BenchmarkId::new("iso_shao_pair", size),
            &(a, b),
            |bench, (a, b)| {
                bench.iter(|| {
                    let tc = Tc::with_mode(RecMode::IsoShao);
                    let mut ctx = Ctx::new();
                    tc.con_equiv(&mut ctx, a, b, &K::Type).unwrap();
                })
            },
        );
    }
    group.finish();

    let mut group = c.benchmark_group("singleton_chain_whnf");
    for n in [10usize, 100, 1000] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, &n| {
            let (mut ctx, con) = singleton_chain(n);
            let tc = Tc::new();
            bench.iter(|| {
                // The checker is reused across Criterion iterations; reset
                // its fuel so the budget bounds one query, not the batch.
                tc.set_fuel(recmod::kernel::DEFAULT_FUEL);
                let w = tc.whnf(&mut ctx, &con).unwrap();
                assert!(matches!(w, recmod::syntax::ast::Con::Int));
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_equiv);
criterion_main!(benches);
