//! Experiments P1/E8: the cost of definitional equality.
//!
//! * `mu_vs_unrolling`: equi-recursive equivalence of a random regular
//!   μ against its unrolling, by body size (the coinductive engine).
//! * `shao_pair`: the same comparison in iso+Shao mode (both sides μ).
//! * `singleton_chain`: weak-head normalization through n chained
//!   singleton kinds (the sharing-propagation cost).

use recmod::kernel::{Ctx, RecMode, Tc};
use recmod::syntax::ast::Kind as K;
use recmod_bench::harness::{bench, group};
use recmod_bench::{gen_nested_pair, gen_shao_pair, gen_unrolled_pair, singleton_chain};

fn main() {
    group("p1_equivalence");
    for size in [8usize, 16, 32, 64] {
        let (a, b) = gen_unrolled_pair(size, 42);
        bench(&format!("equi_mu_vs_unrolling/{size}"), || {
            let tc = Tc::new();
            let mut ctx = Ctx::new();
            tc.con_equiv(&mut ctx, &a, &b, &K::Type).unwrap();
        });
        let (a, b) = gen_nested_pair(size, 42);
        bench(&format!("equi_nested_collapse/{size}"), || {
            let tc = Tc::new();
            let mut ctx = Ctx::new();
            tc.con_equiv(&mut ctx, &a, &b, &K::Type).unwrap();
        });
        let (a, b) = gen_shao_pair(size, 42);
        bench(&format!("iso_shao_pair/{size}"), || {
            let tc = Tc::with_mode(RecMode::IsoShao);
            let mut ctx = Ctx::new();
            tc.con_equiv(&mut ctx, &a, &b, &K::Type).unwrap();
        });
    }

    group("singleton_chain_whnf");
    for n in [10usize, 100, 1000] {
        let (mut ctx, con) = singleton_chain(n);
        let tc = Tc::new();
        bench(&format!("chain/{n}"), || {
            // The checker is reused across iterations; reset its fuel
            // so the budget bounds one query, not the batch.
            tc.set_fuel(recmod::kernel::DEFAULT_FUEL);
            let w = tc.whnf(&mut ctx, &con).unwrap();
            assert!(matches!(w, recmod::syntax::ast::Con::Int));
        });
    }
}
