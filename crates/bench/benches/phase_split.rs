//! Figures 4 and 5 as translations: throughput of phase-splitting
//! recursive modules (by static width) and of resolving
//! recursively-dependent signatures.

use recmod::kernel::{Ctx, Tc};
use recmod::phase::split_module;
use recmod::syntax::ast::{Con, Sig, Ty};
use recmod::syntax::dsl::*;
use recmod_bench::gen_internal_fix;
use recmod_bench::harness::{bench, group};

fn main() {
    group("fig4_split_module");
    for width in [1usize, 4, 16, 64] {
        let m = gen_internal_fix(width);
        let tc = Tc::new();
        let mut ctx = Ctx::new();
        bench(&format!("width/{width}"), || {
            tc.set_fuel(recmod::kernel::DEFAULT_FUEL);
            split_module(&tc, &mut ctx, &m).unwrap();
        });
    }

    group("fig5_resolve_rds");
    for width in [1usize, 4, 16, 32] {
        // ρs.[α : Σᵢ Q(int ⇀ πᵢ₊₁(Fst s)) . 1]
        // Slot i sits under i Σ binders, so its Fst(s) reference shifts.
        let kinds: Vec<_> = (0..width)
            .map(|i| {
                let next = (i + 1) % width;
                q(carrow(
                    Con::Int,
                    recmod_bench::proj_n(Con::Fst(i), next, width),
                ))
            })
            .collect();
        let kind = kinds
            .into_iter()
            .rev()
            .reduce(|acc, k| {
                recmod::syntax::ast::Kind::Sigma(
                    recmod::syntax::intern::hc(k),
                    recmod::syntax::intern::hc(acc),
                )
            })
            .unwrap();
        let s = rds(Sig::Struct(
            recmod::syntax::intern::hc(kind),
            Box::new(Ty::Unit),
        ));
        let tc = Tc::new();
        let mut ctx = Ctx::new();
        bench(&format!("width/{width}"), || {
            tc.set_fuel(recmod::kernel::DEFAULT_FUEL);
            tc.resolve_sig(&mut ctx, &s).unwrap();
        });
    }
}
