//! The call-by-value big-step interpreter.
//!
//! Evaluates *phase-split* terms: the structure calculus has been
//! translated away (see `recmod-phase`), so the only recursion left is
//! the core calculus's `fix(x:σ.e)`, which is implemented by
//! *backpatching*: a fresh promise is bound to `x`, the body is evaluated
//! (the value restriction guarantees the promise is only captured under
//! λs, never demanded), and the promise is then filled with the result.
//!
//! The interpreter counts evaluation steps; the benchmark harness uses
//! the counter to measure the paper's §3.1 claim about the asymptotic
//! cost of opaque recursive modules.

use std::cell::RefCell;
use std::rc::Rc;

use recmod_syntax::ast::{PrimOp, Term};

use crate::error::{EvalError, EvalResult};
use crate::value::{Env, Value};

/// The default evaluation step budget.
pub const DEFAULT_EVAL_FUEL: u64 = 500_000_000;

/// The default recursion-depth limit. Each object-level recursive call
/// consumes host stack (the interpreter is itself recursive), so the
/// limit is what turns runaway recursion into [`EvalError::DepthExceeded`]
/// instead of a host stack overflow. At roughly 50 000 frames the
/// interpreter fits comfortably in a [`run_big_stack`] thread even in
/// debug builds.
pub const DEFAULT_MAX_DEPTH: u64 = 50_000;

/// Counters accumulated during evaluation. Plain data (`Copy`, `Send`),
/// so a [`run_big_stack`] closure can ship them back across the thread
/// boundary alongside the result.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EvalStats {
    /// Evaluation steps (one per `eval` entry).
    pub steps: u64,
    /// Function and type-function closures allocated.
    pub closures: u64,
    /// `fix` promises created and backpatched.
    pub backpatches: u64,
    /// Deepest environment extended during the run.
    pub max_env_depth: u64,
}

/// An instrumented evaluator.
#[derive(Debug)]
pub struct Interp {
    stats: EvalStats,
    fuel: u64,
    depth: u64,
    max_depth: u64,
    limits: recmod_telemetry::Limits,
}

impl Default for Interp {
    fn default() -> Self {
        Self::new()
    }
}

impl Interp {
    /// A fresh evaluator with the default fuel budget.
    pub fn new() -> Self {
        Self::with_fuel(DEFAULT_EVAL_FUEL)
    }

    /// A fresh evaluator with an explicit fuel budget.
    pub fn with_fuel(fuel: u64) -> Self {
        Self::with_limits(fuel, DEFAULT_MAX_DEPTH)
    }

    /// A fresh evaluator with explicit fuel and recursion-depth limits.
    pub fn with_limits(fuel: u64, max_depth: u64) -> Self {
        let limits = recmod_telemetry::Limits::default();
        Interp {
            stats: EvalStats::default(),
            fuel,
            depth: 0,
            max_depth,
            limits,
        }
    }

    /// A fresh evaluator honoring a pipeline-wide
    /// [`Limits`](recmod_telemetry::Limits) value: `eval_fuel`,
    /// `eval_depth`, and the wall-clock deadline (checked every 4096
    /// steps).
    pub fn with_pipeline_limits(limits: &recmod_telemetry::Limits) -> Self {
        Interp {
            stats: EvalStats::default(),
            fuel: limits.eval_fuel,
            depth: 0,
            max_depth: limits.eval_depth,
            limits: *limits,
        }
    }

    /// Steps taken so far.
    pub fn steps(&self) -> u64 {
        self.stats.steps
    }

    /// All counters accumulated so far.
    pub fn stats(&self) -> EvalStats {
        self.stats
    }

    /// Resets the step counter (fuel is unaffected).
    pub fn reset_steps(&mut self) {
        self.stats = EvalStats::default();
    }

    /// Evaluates a closed term in the empty environment.
    pub fn run(&mut self, e: &Term) -> EvalResult<Rc<Value>> {
        self.eval(&Env::new(), e)
    }

    /// Evaluates `e` under `env`.
    pub fn eval(&mut self, env: &Env, e: &Term) -> EvalResult<Rc<Value>> {
        self.depth += 1;
        if self.depth > self.max_depth {
            self.depth -= 1;
            return Err(EvalError::DepthExceeded);
        }
        let out = self.eval_inner(env, e);
        self.depth -= 1;
        out
    }

    fn eval_inner(&mut self, env: &Env, e: &Term) -> EvalResult<Rc<Value>> {
        self.stats.steps += 1;
        if self.stats.steps > self.fuel {
            return Err(EvalError::FuelExhausted);
        }
        // Deadlines are wall-clock; amortize the clock read over many
        // steps (4096 steps run in a few microseconds).
        if self.stats.steps.is_multiple_of(4096) && self.limits.deadline_passed() {
            return Err(EvalError::Limit(self.limits.deadline_error("eval")));
        }
        match e {
            Term::Var(i) => env.lookup(*i)?.force(),
            Term::Snd(_) => Err(EvalError::OpenTerm),
            Term::Star => Ok(Rc::new(Value::Unit)),
            Term::Lam(_, body) => {
                self.stats.closures += 1;
                Ok(Rc::new(Value::Closure {
                    env: env.clone(),
                    body: Rc::new((**body).clone()),
                }))
            }
            Term::App(f, a) => {
                let fv = self.eval(env, f)?;
                let av = self.eval(env, a)?;
                self.apply(&fv, av)
            }
            Term::Pair(a, b) => {
                let av = self.eval(env, a)?;
                let bv = self.eval(env, b)?;
                Ok(Rc::new(Value::Pair(av, bv)))
            }
            Term::Proj1(p) => match &*self.eval(env, p)?.force()? {
                Value::Pair(a, _) => Ok(a.clone()),
                _ => Err(EvalError::Stuck("a pair")),
            },
            Term::Proj2(p) => match &*self.eval(env, p)?.force()? {
                Value::Pair(_, b) => Ok(b.clone()),
                _ => Err(EvalError::Stuck("a pair")),
            },
            Term::TLam(_, body) => {
                self.stats.closures += 1;
                Ok(Rc::new(Value::TClosure {
                    env: env.clone(),
                    body: Rc::new((**body).clone()),
                }))
            }
            Term::TApp(f, _) => {
                let fv = self.eval(env, f)?.force()?;
                match &*fv {
                    Value::TClosure { env: cenv, body } => {
                        // The constructor argument is erased; bind a dummy
                        // so de Bruijn indices line up.
                        let inner = self.extend(cenv, Rc::new(Value::Unit));
                        self.eval(&inner, body)
                    }
                    _ => Err(EvalError::Stuck("a type function")),
                }
            }
            Term::Fix(_, body) => {
                let cell = Rc::new(RefCell::new(None));
                let promise = Rc::new(Value::Promise(cell.clone()));
                let inner = self.extend(env, promise);
                let v = self.eval(&inner, body)?;
                *cell.borrow_mut() = Some(v.clone());
                self.stats.backpatches += 1;
                Ok(v)
            }
            Term::IntLit(n) => Ok(Rc::new(Value::Int(*n))),
            Term::BoolLit(b) => Ok(Rc::new(Value::Bool(*b))),
            Term::Prim(op, args) => {
                let a = self.eval(env, &args[0])?.as_int()?;
                let b = self.eval(env, &args[1])?.as_int()?;
                Ok(Rc::new(match op {
                    PrimOp::Add => Value::Int(a.wrapping_add(b)),
                    PrimOp::Sub => Value::Int(a.wrapping_sub(b)),
                    PrimOp::Mul => Value::Int(a.wrapping_mul(b)),
                    PrimOp::Eq => Value::Bool(a == b),
                    PrimOp::Lt => Value::Bool(a < b),
                }))
            }
            Term::If(c, t, f) => {
                if self.eval(env, c)?.as_bool()? {
                    self.eval(env, t)
                } else {
                    self.eval(env, f)
                }
            }
            Term::Inj(i, _, body) => {
                let v = self.eval(env, body)?;
                Ok(Rc::new(Value::Inj(*i, v)))
            }
            Term::Case(scrut, branches) => {
                let sv = self.eval(env, scrut)?.force()?;
                match &*sv {
                    Value::Inj(i, payload) => match branches.get(*i) {
                        Some(branch) => {
                            let inner = self.extend(env, payload.clone());
                            self.eval(&inner, branch)
                        }
                        None => Err(EvalError::Stuck("a branch for this injection")),
                    },
                    _ => Err(EvalError::Stuck("a sum value")),
                }
            }
            Term::Roll(_, body) => self.eval(env, body),
            Term::Unroll(body) => self.eval(env, body),
            Term::Fail(_) => Err(EvalError::Failure),
            Term::Let(bound, body) => {
                let v = self.eval(env, bound)?;
                let inner = self.extend(env, v);
                self.eval(&inner, body)
            }
        }
    }

    /// `env.push` plus max-env-depth bookkeeping (O(1): `Env::len` is
    /// cached on each node).
    fn extend(&mut self, env: &Env, v: Rc<Value>) -> Env {
        let inner = env.push(v);
        self.stats.max_env_depth = self.stats.max_env_depth.max(inner.len() as u64);
        inner
    }

    fn apply(&mut self, f: &Rc<Value>, arg: Rc<Value>) -> EvalResult<Rc<Value>> {
        match &*f.force()? {
            Value::Closure { env, body } => {
                let inner = self.extend(env, arg);
                self.eval(&inner, body)
            }
            _ => Err(EvalError::Stuck("a function")),
        }
    }
}

/// Runs `f` on a dedicated thread with a large stack (`stack_mb`
/// megabytes) and returns its result.
///
/// The interpreter is a recursive big-step evaluator, so deeply recursive
/// object programs need proportionally deep host stacks. Values are not
/// `Send` (they share `Rc` structure), so the whole evaluation — building
/// the term, running it, extracting a `Send` summary — must happen inside
/// the closure.
///
/// # Panics
///
/// Panics if the worker thread cannot be spawned or itself panics.
pub fn run_big_stack<T, F>(stack_mb: usize, f: F) -> T
where
    T: Send + 'static,
    F: FnOnce() -> T + Send + 'static,
{
    std::thread::Builder::new()
        .stack_size(stack_mb * 1024 * 1024)
        .spawn(f)
        .expect("failed to spawn evaluation thread")
        .join()
        .expect("evaluation thread panicked")
}

#[cfg(test)]
mod tests {
    use super::*;
    use recmod_syntax::ast::{Con, PrimOp, Ty};
    use recmod_syntax::dsl::*;

    fn run(e: &Term) -> EvalResult<Rc<Value>> {
        Interp::new().run(e)
    }

    #[test]
    fn arithmetic() {
        let e = prim(PrimOp::Add, int(2), prim(PrimOp::Mul, int(3), int(4)));
        assert_eq!(run(&e).unwrap().as_int().unwrap(), 14);
    }

    #[test]
    fn beta_reduction() {
        let e = app(
            lam(tcon(Con::Int), prim(PrimOp::Add, var(0), int(1))),
            int(41),
        );
        assert_eq!(run(&e).unwrap().as_int().unwrap(), 42);
    }

    #[test]
    fn recursive_factorial() {
        // fix(f: int⇀int. λn. if n = 0 then 1 else n * f (n-1)) 6 = 720
        let fact = fix(
            partial(tcon(Con::Int), tcon(Con::Int)),
            lam(
                tcon(Con::Int),
                ite(
                    prim(PrimOp::Eq, var(0), int(0)),
                    int(1),
                    prim(
                        PrimOp::Mul,
                        var(0),
                        app(var(1), prim(PrimOp::Sub, var(0), int(1))),
                    ),
                ),
            ),
        );
        let e = app(fact, int(6));
        assert_eq!(run(&e).unwrap().as_int().unwrap(), 720);
    }

    #[test]
    fn mutual_recursion_via_pair_fix() {
        // fix(p : (int⇀bool) × (int⇀bool).
        //   (λn. if n=0 then true  else (π₂p)(n-1),
        //    λn. if n=0 then false else (π₁p)(n-1)))
        // — even/odd; even 10 = true, odd 10 = false.
        let fun_ty = partial(tcon(Con::Int), tcon(Con::Bool));
        let even = lam(
            tcon(Con::Int),
            ite(
                prim(PrimOp::Eq, var(0), int(0)),
                boolean(true),
                app(proj2(var(1)), prim(PrimOp::Sub, var(0), int(1))),
            ),
        );
        let odd = lam(
            tcon(Con::Int),
            ite(
                prim(PrimOp::Eq, var(0), int(0)),
                boolean(false),
                app(proj1(var(1)), prim(PrimOp::Sub, var(0), int(1))),
            ),
        );
        let p = fix(tprod(fun_ty.clone(), fun_ty), pair(even, odd));
        assert!(run(&app(proj1(p.clone()), int(10)))
            .unwrap()
            .as_bool()
            .unwrap());
        assert!(!run(&app(proj2(p), int(10))).unwrap().as_bool().unwrap());
    }

    #[test]
    fn datatype_round_trip() {
        // cons 1 nil, then uncons the head back out.
        let listc = mu(tkind(), csum([Con::UnitTy, cprod(Con::Int, cvar(0))]));
        let unrolled = csum([Con::UnitTy, cprod(Con::Int, listc.clone())]);
        let nil = roll(listc.clone(), inj(0, unrolled.clone(), Term::Star));
        let one = roll(listc.clone(), inj(1, unrolled, pair(int(1), nil)));
        let head = case(unroll(one), [fail(tcon(Con::Int)), proj1(var(0))]);
        assert_eq!(run(&head).unwrap().as_int().unwrap(), 1);
    }

    #[test]
    fn failure_propagates() {
        let e = app(lam(tcon(Con::Int), var(0)), fail(tcon(Con::Int)));
        assert!(matches!(run(&e), Err(EvalError::Failure)));
    }

    #[test]
    fn divergence_hits_fuel() {
        // fix(f: 1⇀1. λu. f u) * — loops; must stop with FuelExhausted.
        // Run on a big stack: the big-step interpreter recurses once per
        // object-level call.
        let outcome = run_big_stack(64, || {
            let loop_ = fix(
                partial(Ty::Unit, Ty::Unit),
                lam(Ty::Unit, app(var(1), var(0))),
            );
            let e = app(loop_, Term::Star);
            let mut interp = Interp::with_fuel(5_000);
            interp.eval(&Env::new(), &e).err()
        });
        assert!(matches!(outcome, Some(EvalError::FuelExhausted)));
    }

    #[test]
    fn step_counter_counts() {
        let mut interp = Interp::new();
        interp.run(&int(1)).unwrap();
        assert_eq!(interp.steps(), 1);
        interp.reset_steps();
        assert_eq!(interp.steps(), 0);
    }

    #[test]
    fn type_application_erases() {
        let id = tlam(tkind(), lam(tcon(cvar(0)), var(0)));
        let e = app(tapp(id, Con::Int), int(5));
        assert_eq!(run(&e).unwrap().as_int().unwrap(), 5);
    }

    #[test]
    fn let_binds() {
        let e = let_(int(10), prim(PrimOp::Mul, var(0), var(0)));
        assert_eq!(run(&e).unwrap().as_int().unwrap(), 100);
    }

    #[test]
    fn case_selects_branch() {
        let sum = csum([Con::Int, Con::Bool]);
        let e = case(inj(1, sum, boolean(true)), [boolean(false), var(0)]);
        assert!(run(&e).unwrap().as_bool().unwrap());
    }
}
