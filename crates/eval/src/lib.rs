//! # recmod-eval
//!
//! A call-by-value evaluator for *phase-split* programs of the
//! recursive-module calculus: after `recmod-phase` has translated
//! recursive modules into core-calculus `μ` and `fix` (paper Figure 4),
//! the dynamic part is an ordinary term, and this crate runs it.
//!
//! Recursive values (`fix`) are implemented by backpatching; the value
//! restriction enforced by `recmod-kernel` guarantees the recursive
//! binding is never demanded before it is constructed. The interpreter
//! counts steps, which the benchmark harness uses to reproduce the
//! paper's §3.1 claim that the *opaque* recursive-module implementation
//! of lists "leads to poor behavior in practice" (each `cons`/`uncons`
//! traverses the whole list) while the §4 transparent implementation has
//! constant-time operations.
//!
//! # Example
//!
//! ```
//! use recmod_eval::Interp;
//! use recmod_syntax::ast::{Con, PrimOp};
//! use recmod_syntax::dsl::*;
//!
//! let mut interp = Interp::new();
//! let program = app(lam(tcon(Con::Int), prim(PrimOp::Add, var(0), int(1))), int(41));
//! let v = interp.run(&program).unwrap();
//! assert_eq!(v.as_int().unwrap(), 42);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod error;
pub mod interp;
pub mod value;

pub use error::{EvalError, EvalResult};
pub use interp::{run_big_stack, EvalStats, Interp, DEFAULT_EVAL_FUEL};
pub use value::{Env, Value};
