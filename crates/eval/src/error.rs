//! Evaluation errors.

use std::error::Error;
use std::fmt;

/// Why evaluation stopped without producing a value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EvalError {
    /// The program executed `fail[σ]` (the paper's `raise Fail`).
    Failure,
    /// A recursive binding was demanded before it was constructed — a
    /// "black hole". The kernel's value restriction makes this
    /// unreachable for well-typed programs; reaching it indicates an
    /// unchecked term was evaluated.
    BlackHole,
    /// The term mentions a structure variable (`Fst`/`snd`); evaluate
    /// only *phase-split, closed* programs.
    OpenTerm,
    /// A value had the wrong shape for the operation applied to it —
    /// impossible for kernel-checked terms; indicates an unchecked term.
    Stuck(&'static str),
    /// The step budget was exhausted (the term may diverge).
    FuelExhausted,
    /// The recursion-depth limit was exceeded. The interpreter is a
    /// recursive big-step evaluator, so object-level recursion consumes
    /// host stack; this limit turns an impending stack overflow into an
    /// error. Raise it (and run on a bigger stack via
    /// [`run_big_stack`](crate::interp::run_big_stack)) for genuinely
    /// deep programs.
    DepthExceeded,
    /// A pipeline-wide resource limit (wall-clock deadline) was hit.
    Limit(recmod_telemetry::LimitExceeded),
}

impl EvalError {
    /// Is this a resource-bound verdict (fuel, depth, deadline) rather
    /// than a semantic evaluation outcome?
    pub fn is_limit(&self) -> bool {
        matches!(
            self,
            EvalError::FuelExhausted | EvalError::DepthExceeded | EvalError::Limit(_)
        )
    }
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::Failure => f.write_str("uncaught failure (raise Fail)"),
            EvalError::BlackHole => {
                f.write_str("recursive value demanded before its definition completed")
            }
            EvalError::OpenTerm => {
                f.write_str("cannot evaluate a term with free structure variables")
            }
            EvalError::Stuck(what) => write!(f, "stuck evaluation: expected {what}"),
            EvalError::FuelExhausted => f.write_str("evaluation step budget exhausted"),
            EvalError::DepthExceeded => {
                f.write_str("recursion depth limit exceeded (deep or divergent recursion)")
            }
            EvalError::Limit(e) => write!(f, "{e}"),
        }
    }
}

impl Error for EvalError {}

/// The result type for evaluation.
pub type EvalResult<T> = Result<T, EvalError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_lowercase() {
        assert!(EvalError::Failure.to_string().starts_with("uncaught"));
        assert!(EvalError::Stuck("a pair").to_string().contains("a pair"));
    }
}
