//! Run-time values and environments.

use std::cell::RefCell;
use std::fmt;
use std::rc::Rc;

use recmod_syntax::ast::Term;

use crate::error::{EvalError, EvalResult};

/// A run-time value. Types are erased: `roll`/`unroll` vanish, `Λ`
/// becomes a (dummy-taking) closure, and structures never reach the
/// evaluator (phase splitting eliminates them first).
#[derive(Debug, Clone)]
pub enum Value {
    /// The trivial value `*`.
    Unit,
    /// An integer.
    Int(i64),
    /// A boolean.
    Bool(bool),
    /// A pair.
    Pair(Rc<Value>, Rc<Value>),
    /// A sum injection, tagged with its branch index.
    Inj(usize, Rc<Value>),
    /// A function closure.
    Closure {
        /// The captured environment.
        env: Env,
        /// The body (under one binder).
        body: Rc<Term>,
    },
    /// A type-function closure (`Λ`); applied with a dummy binding.
    TClosure {
        /// The captured environment.
        env: Env,
        /// The body (under one binder).
        body: Rc<Term>,
    },
    /// A promise created by `fix` and backpatched when the right-hand
    /// side finishes evaluating. Reading an unfilled promise is a
    /// "black hole" (ruled out by the value restriction).
    Promise(Rc<RefCell<Option<Rc<Value>>>>),
}

impl Value {
    /// Follows promise indirections, failing on an unfilled promise.
    pub fn force(self: &Rc<Self>) -> EvalResult<Rc<Value>> {
        match &**self {
            Value::Promise(cell) => match &*cell.borrow() {
                Some(v) => v.force(),
                None => Err(EvalError::BlackHole),
            },
            _ => Ok(self.clone()),
        }
    }

    /// The integer payload, or a stuck error.
    pub fn as_int(self: &Rc<Self>) -> EvalResult<i64> {
        match &*self.force()? {
            Value::Int(n) => Ok(*n),
            _ => Err(EvalError::Stuck("an integer")),
        }
    }

    /// The boolean payload, or a stuck error.
    pub fn as_bool(self: &Rc<Self>) -> EvalResult<bool> {
        match &*self.force()? {
            Value::Bool(b) => Ok(*b),
            _ => Err(EvalError::Stuck("a boolean")),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Unit => f.write_str("*"),
            Value::Int(n) => write!(f, "{n}"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Pair(a, b) => write!(f, "({a}, {b})"),
            Value::Inj(i, v) => write!(f, "inj{i} {v}"),
            Value::Closure { .. } => f.write_str("<fn>"),
            Value::TClosure { .. } => f.write_str("<tfn>"),
            Value::Promise(cell) => match &*cell.borrow() {
                Some(v) => write!(f, "{v}"),
                None => f.write_str("<blackhole>"),
            },
        }
    }
}

/// A persistent (structure-shared) evaluation environment indexed by the
/// unified de Bruijn indices of `recmod-syntax`.
#[derive(Debug, Clone, Default)]
pub struct Env(Option<Rc<Node>>);

#[derive(Debug)]
struct Node {
    value: Rc<Value>,
    len: usize,
    next: Env,
}

impl Env {
    /// The empty environment.
    pub fn new() -> Self {
        Env(None)
    }

    /// Extends the environment with one binding (index 0 of the result).
    pub fn push(&self, value: Rc<Value>) -> Env {
        Env(Some(Rc::new(Node {
            value,
            len: self.len() + 1,
            next: self.clone(),
        })))
    }

    /// Looks up a de Bruijn index.
    pub fn lookup(&self, index: usize) -> EvalResult<Rc<Value>> {
        let mut cur = self;
        for _ in 0..index {
            match &cur.0 {
                Some(node) => cur = &node.next,
                None => return Err(EvalError::OpenTerm),
            }
        }
        match &cur.0 {
            Some(node) => Ok(node.value.clone()),
            None => Err(EvalError::OpenTerm),
        }
    }

    /// Number of bindings (O(1); cached on each node).
    pub fn len(&self) -> usize {
        match &self.0 {
            Some(node) => node.len,
            None => 0,
        }
    }

    /// True when no bindings are present.
    pub fn is_empty(&self) -> bool {
        self.0.is_none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_lookup_is_lifo() {
        let env = Env::new()
            .push(Rc::new(Value::Int(1)))
            .push(Rc::new(Value::Int(2)));
        assert_eq!(env.lookup(0).unwrap().as_int().unwrap(), 2);
        assert_eq!(env.lookup(1).unwrap().as_int().unwrap(), 1);
        assert!(env.lookup(2).is_err());
        assert_eq!(env.len(), 2);
    }

    #[test]
    fn unfilled_promise_is_a_black_hole() {
        let v: Rc<Value> = Rc::new(Value::Promise(Rc::new(RefCell::new(None))));
        assert!(matches!(v.force(), Err(EvalError::BlackHole)));
    }

    #[test]
    fn filled_promise_forces_through() {
        let cell = Rc::new(RefCell::new(Some(Rc::new(Value::Int(9)))));
        let v: Rc<Value> = Rc::new(Value::Promise(cell));
        assert_eq!(v.as_int().unwrap(), 9);
    }

    #[test]
    fn display_values() {
        let v = Value::Pair(Rc::new(Value::Int(1)), Rc::new(Value::Bool(true)));
        assert_eq!(v.to_string(), "(1, true)");
        assert_eq!(Value::Unit.to_string(), "*");
    }
}
