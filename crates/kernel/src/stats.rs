//! Always-on judgement counters for the kernel.
//!
//! [`Tc`](crate::Tc) carries a [`TcStats`] of plain `Cell<u64>`s: every
//! fuel tick is attributed to the [`FuelOp`] that burned it, and the
//! equivalence/normalization engines record μ-unrolls, weak-head steps,
//! coinductive-assumption churn, and singleton short-circuits. The
//! counters cost one `Cell` add per event (they are *not* gated on the
//! telemetry sink), which keeps [`crate::TypeError::FuelExhausted`]
//! able to report where fuel went even when no sink is installed.

use std::cell::Cell;

/// The kernel operations that consume fuel — one variant per judgement
/// family with a `burn` site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FuelOp {
    /// Kind-directed constructor equivalence steps (`con_equiv`).
    ConEquiv,
    /// Structural monotype comparison steps at kind `T`.
    MonoEquiv,
    /// Stuck-path spine comparison steps.
    PathEquiv,
    /// Weak-head normalization loop iterations.
    Whnf,
    /// Constructor kind synthesis steps.
    ConKinding,
    /// Term type synthesis steps.
    TermTyping,
    /// Term equality steps (singleton-kind term comparison).
    TermEq,
    /// Term normalization steps.
    TermNorm,
    /// Deep type exposure steps (singleton expansion inside types).
    TypeExpose,
    /// Type equivalence steps.
    TypeEquiv,
    /// Subtyping steps.
    Subtype,
    /// Module typing steps.
    ModuleTyping,
}

impl FuelOp {
    /// Every operation, in a fixed reporting order.
    pub const ALL: [FuelOp; 12] = [
        FuelOp::ConEquiv,
        FuelOp::MonoEquiv,
        FuelOp::PathEquiv,
        FuelOp::Whnf,
        FuelOp::ConKinding,
        FuelOp::TermTyping,
        FuelOp::TermEq,
        FuelOp::TermNorm,
        FuelOp::TypeExpose,
        FuelOp::TypeEquiv,
        FuelOp::Subtype,
        FuelOp::ModuleTyping,
    ];

    /// The human-readable name used in error messages and traces.
    pub fn name(self) -> &'static str {
        match self {
            FuelOp::ConEquiv => "constructor equivalence",
            FuelOp::MonoEquiv => "monotype equivalence",
            FuelOp::PathEquiv => "path equivalence",
            FuelOp::Whnf => "weak-head normalization",
            FuelOp::ConKinding => "constructor kinding",
            FuelOp::TermTyping => "term typing",
            FuelOp::TermEq => "term equality",
            FuelOp::TermNorm => "term normalization",
            FuelOp::TypeExpose => "deep type exposure",
            FuelOp::TypeEquiv => "type equivalence",
            FuelOp::Subtype => "subtyping",
            FuelOp::ModuleTyping => "module typing",
        }
    }

    /// A stable machine-readable key (used in `--stats=json`).
    pub fn key(self) -> &'static str {
        match self {
            FuelOp::ConEquiv => "con_equiv",
            FuelOp::MonoEquiv => "mono_equiv",
            FuelOp::PathEquiv => "path_equiv",
            FuelOp::Whnf => "whnf",
            FuelOp::ConKinding => "con_kinding",
            FuelOp::TermTyping => "term_typing",
            FuelOp::TermEq => "term_eq",
            FuelOp::TermNorm => "term_norm",
            FuelOp::TypeExpose => "type_expose",
            FuelOp::TypeEquiv => "type_equiv",
            FuelOp::Subtype => "subtype",
            FuelOp::ModuleTyping => "module_typing",
        }
    }

    // `ALL` lists the variants in declaration order (checked by the
    // `all_is_in_declaration_order` test), so the discriminant is the
    // reporting index.
    fn index(self) -> usize {
        self as usize
    }
}

/// Interior-mutable counters carried by [`crate::Tc`].
#[derive(Debug, Default)]
pub struct TcStats {
    fuel_by_op: [Cell<u64>; 12],
    pub(crate) mu_unrolls: Cell<u64>,
    pub(crate) whnf_steps: Cell<u64>,
    pub(crate) assumption_inserts: Cell<u64>,
    pub(crate) assumption_hwm: Cell<u64>,
    pub(crate) singleton_shortcuts: Cell<u64>,
    pub(crate) whnf_cache_hits: Cell<u64>,
    pub(crate) whnf_cache_misses: Cell<u64>,
    pub(crate) equiv_ptr_eqs: Cell<u64>,
    pub(crate) equiv_cache_hits: Cell<u64>,
    pub(crate) eval_steps: Cell<u64>,
    pub(crate) quote_nodes: Cell<u64>,
    pub(crate) env_allocs: Cell<u64>,
    pub(crate) synth_cache_hits: Cell<u64>,
    pub(crate) synth_cache_misses: Cell<u64>,
}

impl TcStats {
    pub(crate) fn record_fuel(&self, op: FuelOp) {
        let cell = &self.fuel_by_op[op.index()];
        cell.set(cell.get() + 1);
    }

    pub(crate) fn bump(cell: &Cell<u64>) {
        cell.set(cell.get() + 1);
    }

    pub(crate) fn raise(cell: &Cell<u64>, v: u64) {
        cell.set(cell.get().max(v));
    }

    /// The `n` operations that burned the most fuel, descending,
    /// zero-count operations omitted.
    pub fn top_fuel(&self, n: usize) -> Vec<(&'static str, u64)> {
        let mut all: Vec<(&'static str, u64)> = FuelOp::ALL
            .iter()
            .map(|&op| (op.name(), self.fuel_by_op[op.index()].get()))
            .filter(|&(_, c)| c > 0)
            .collect();
        all.sort_by_key(|p| std::cmp::Reverse(p.1));
        all.truncate(n);
        all
    }

    /// An owned snapshot of every counter.
    pub fn snapshot(&self) -> KernelStats {
        KernelStats {
            fuel_by_op: FuelOp::ALL.map(|op| self.fuel_by_op[op.index()].get()),
            mu_unrolls: self.mu_unrolls.get(),
            whnf_steps: self.whnf_steps.get(),
            assumption_inserts: self.assumption_inserts.get(),
            assumption_hwm: self.assumption_hwm.get(),
            singleton_shortcuts: self.singleton_shortcuts.get(),
            whnf_cache_hits: self.whnf_cache_hits.get(),
            whnf_cache_misses: self.whnf_cache_misses.get(),
            equiv_ptr_eqs: self.equiv_ptr_eqs.get(),
            equiv_cache_hits: self.equiv_cache_hits.get(),
            eval_steps: self.eval_steps.get(),
            quote_nodes: self.quote_nodes.get(),
            env_allocs: self.env_allocs.get(),
            synth_cache_hits: self.synth_cache_hits.get(),
            synth_cache_misses: self.synth_cache_misses.get(),
        }
    }

    /// Zeroes every counter (e.g. between top-level declarations).
    pub fn reset(&self) {
        for c in &self.fuel_by_op {
            c.set(0);
        }
        self.mu_unrolls.set(0);
        self.whnf_steps.set(0);
        self.assumption_inserts.set(0);
        self.assumption_hwm.set(0);
        self.singleton_shortcuts.set(0);
        self.whnf_cache_hits.set(0);
        self.whnf_cache_misses.set(0);
        self.equiv_ptr_eqs.set(0);
        self.equiv_cache_hits.set(0);
        self.eval_steps.set(0);
        self.quote_nodes.set(0);
        self.env_allocs.set(0);
        self.synth_cache_hits.set(0);
        self.synth_cache_misses.set(0);
    }
}

/// A plain-data snapshot of the kernel counters (`Copy`, `Send`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KernelStats {
    /// Fuel burned per operation, indexed parallel to [`FuelOp::ALL`].
    pub fuel_by_op: [u64; 12],
    /// Coinductive μ-unrolls performed by the equivalence engine.
    pub mu_unrolls: u64,
    /// Weak-head reduction steps.
    pub whnf_steps: u64,
    /// Pairs added to the coinductive assumption set.
    pub assumption_inserts: u64,
    /// High-water mark of the assumption set's size.
    pub assumption_hwm: u64,
    /// Comparisons discharged instantly at a singleton kind.
    pub singleton_shortcuts: u64,
    /// Weak-head normalizations answered from the memo table.
    pub whnf_cache_hits: u64,
    /// Weak-head normalizations that ran the reduction loop.
    pub whnf_cache_misses: u64,
    /// Equivalence queries discharged by interned-id equality (the
    /// pointer-equality fast path).
    pub equiv_ptr_eqs: u64,
    /// Kind-`T` equivalence queries answered from the proven-pair table.
    pub equiv_cache_hits: u64,
    /// NbE machine transitions (the environment-machine analogue of
    /// `whnf_steps`, which counts only the substitution engine's loop).
    pub eval_steps: u64,
    /// Readback (quote) operations performed by the NbE machine.
    pub quote_nodes: u64,
    /// Environment nodes allocated in the NbE bump arena.
    pub env_allocs: u64,
    /// Kind syntheses answered from the memo table (NbE engine only).
    pub synth_cache_hits: u64,
    /// Kind syntheses that ran the synthesis rules (NbE engine only).
    pub synth_cache_misses: u64,
}

impl KernelStats {
    /// Total fuel burned across all operations.
    pub fn fuel_used(&self) -> u64 {
        self.fuel_by_op.iter().sum()
    }

    /// `(operation, fuel)` pairs in reporting order, zero counts kept.
    pub fn fuel_pairs(&self) -> impl Iterator<Item = (FuelOp, u64)> + '_ {
        FuelOp::ALL
            .iter()
            .zip(self.fuel_by_op.iter())
            .map(|(&op, &c)| (op, c))
    }

    /// The change from `earlier` to `self` (monotone counters subtract;
    /// the high-water mark keeps the later value).
    pub fn delta_since(&self, earlier: &KernelStats) -> KernelStats {
        let mut fuel_by_op = [0u64; 12];
        for (i, slot) in fuel_by_op.iter_mut().enumerate() {
            *slot = self.fuel_by_op[i].saturating_sub(earlier.fuel_by_op[i]);
        }
        KernelStats {
            fuel_by_op,
            mu_unrolls: self.mu_unrolls.saturating_sub(earlier.mu_unrolls),
            whnf_steps: self.whnf_steps.saturating_sub(earlier.whnf_steps),
            assumption_inserts: self
                .assumption_inserts
                .saturating_sub(earlier.assumption_inserts),
            assumption_hwm: self.assumption_hwm,
            singleton_shortcuts: self
                .singleton_shortcuts
                .saturating_sub(earlier.singleton_shortcuts),
            whnf_cache_hits: self.whnf_cache_hits.saturating_sub(earlier.whnf_cache_hits),
            whnf_cache_misses: self
                .whnf_cache_misses
                .saturating_sub(earlier.whnf_cache_misses),
            equiv_ptr_eqs: self.equiv_ptr_eqs.saturating_sub(earlier.equiv_ptr_eqs),
            equiv_cache_hits: self
                .equiv_cache_hits
                .saturating_sub(earlier.equiv_cache_hits),
            eval_steps: self.eval_steps.saturating_sub(earlier.eval_steps),
            quote_nodes: self.quote_nodes.saturating_sub(earlier.quote_nodes),
            env_allocs: self.env_allocs.saturating_sub(earlier.env_allocs),
            synth_cache_hits: self
                .synth_cache_hits
                .saturating_sub(earlier.synth_cache_hits),
            synth_cache_misses: self
                .synth_cache_misses
                .saturating_sub(earlier.synth_cache_misses),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_names_and_keys_are_distinct() {
        let names: std::collections::HashSet<_> = FuelOp::ALL.iter().map(|op| op.name()).collect();
        let keys: std::collections::HashSet<_> = FuelOp::ALL.iter().map(|op| op.key()).collect();
        assert_eq!(names.len(), FuelOp::ALL.len());
        assert_eq!(keys.len(), FuelOp::ALL.len());
    }

    #[test]
    fn top_fuel_sorts_and_truncates() {
        let stats = TcStats::default();
        stats.record_fuel(FuelOp::Whnf);
        stats.record_fuel(FuelOp::Whnf);
        stats.record_fuel(FuelOp::ConEquiv);
        let top = stats.top_fuel(1);
        assert_eq!(top, vec![("weak-head normalization", 2)]);
        assert_eq!(stats.snapshot().fuel_used(), 3);
    }

    #[test]
    fn delta_subtracts_and_keeps_hwm() {
        let stats = TcStats::default();
        stats.record_fuel(FuelOp::Whnf);
        TcStats::raise(&stats.assumption_hwm, 5);
        let before = stats.snapshot();
        stats.record_fuel(FuelOp::Whnf);
        TcStats::raise(&stats.assumption_hwm, 9);
        let d = stats.snapshot().delta_since(&before);
        assert_eq!(d.fuel_used(), 1);
        assert_eq!(d.assumption_hwm, 9);
    }

    #[test]
    fn all_is_in_declaration_order() {
        for (i, op) in FuelOp::ALL.into_iter().enumerate() {
            assert_eq!(op.index(), i, "{}", op.name());
        }
    }

    #[test]
    fn reset_zeroes_everything() {
        let stats = TcStats::default();
        stats.record_fuel(FuelOp::Subtype);
        TcStats::bump(&stats.mu_unrolls);
        stats.reset();
        assert_eq!(stats.snapshot(), KernelStats::default());
    }
}
