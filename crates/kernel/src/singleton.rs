//! Singleton-kind machinery.
//!
//! * [`selfify`] — the higher-order singleton `Q(c : κ)` of paper
//!   Figure 2, extended to `Σ` kinds in the standard (Stone–Harper) way.
//!   The paper's footnote restricts `Q(c:κ)` to non-`Σ` kinds to keep the
//!   construct *definable*; selfification is the algorithmic counterpart
//!   and extends to `Σ` without difficulty.
//! * [`strip_kind`] — erases the singleton information (used by the rds
//!   formation rule: "`S'` is obtained from `S` by stripping out the
//!   singleton kinds specifying the identity of the static component").
//! * [`fully_transparent`] — is every type component of the kind given by
//!   an explicit definition? (The rds formation precondition, §4.1.)
//! * [`kind_definition`] — the canonical inhabitant of a fully
//!   transparent kind (the constructor `c` such that `κ = Q(c : strip κ)`).

use recmod_syntax::ast::{Con, Kind};
use recmod_syntax::dsl::{capp, clam, cpair, cproj1, cproj2, q};
use recmod_syntax::intern::hc;
use recmod_syntax::subst::{shift_con, subst_con_kind};

/// Computes the principal (most transparent) kind `Q(c : κ)` of a
/// constructor `c` already known to have kind `κ`.
///
/// ```
/// use recmod_syntax::ast::{Con, Kind};
/// use recmod_kernel::singleton::selfify;
///
/// // Q(int : T) = Q(int)
/// assert_eq!(
///     selfify(&Con::Int, &Kind::Type),
///     Kind::Singleton(recmod_syntax::intern::hc(Con::Int))
/// );
/// ```
pub fn selfify(c: &Con, k: &Kind) -> Kind {
    match k {
        Kind::Type => q(c.clone()),
        Kind::Unit => Kind::Unit,
        Kind::Singleton(c0) => Kind::Singleton(c0.clone()),
        Kind::Pi(k1, k2) => {
            // Q(c : Πα:κ₁.κ₂) = Πα:κ₁.Q(c α : κ₂)    (paper Figure 2)
            let app = capp(shift_con(c, 1, 0), Con::Var(0));
            Kind::Pi(k1.clone(), hc(selfify(&app, k2)))
        }
        Kind::Sigma(k1, k2) => {
            // Q(c : Σα:κ₁.κ₂) = Q(π₁c : κ₁) × Q(π₂c : κ₂[π₁c/α])
            let l = selfify(&cproj1(c.clone()), k1);
            let k2i = subst_con_kind(k2, &cproj1(c.clone()));
            let r = selfify(&cproj2(c.clone()), &k2i);
            Kind::times(l, r)
        }
    }
}

/// Erases singleton information: `strip(Q(c)) = T`, congruently elsewhere.
/// Domains of `Π` kinds are left intact (they classify *inputs*, not the
/// static component being defined).
pub fn strip_kind(k: &Kind) -> Kind {
    match k {
        Kind::Type => Kind::Type,
        Kind::Unit => Kind::Unit,
        Kind::Singleton(_) => Kind::Type,
        Kind::Pi(k1, k2) => Kind::Pi(k1.clone(), hc(strip_kind(k2))),
        Kind::Sigma(k1, k2) => Kind::Sigma(hc(strip_kind(k1)), hc(strip_kind(k2))),
    }
}

/// Is every type component of `k` specified by an explicit definition?
///
/// This is the precondition for rds formation (paper §4.1): "we require
/// that the static component of `S` be fully transparent, that is, that it
/// completely specify the identity of its static component using singleton
/// kinds."
pub fn fully_transparent(k: &Kind) -> bool {
    match k {
        Kind::Type => false,
        Kind::Unit => true,
        Kind::Singleton(_) => true,
        Kind::Pi(_, k2) => fully_transparent(k2),
        Kind::Sigma(k1, k2) => fully_transparent(k1) && fully_transparent(k2),
    }
}

/// The canonical inhabitant of a fully transparent kind: the `c` with
/// `κ = Q(c : strip κ)`. Returns `None` when `k` has an opaque (`T`)
/// component.
pub fn kind_definition(k: &Kind) -> Option<Con> {
    match k {
        Kind::Type => None,
        Kind::Unit => Some(Con::Star),
        Kind::Singleton(c) => Some(c.take()),
        Kind::Pi(k1, k2) => Some(clam((**k1).clone(), kind_definition(k2)?)),
        Kind::Sigma(k1, k2) => {
            let d1 = kind_definition(k1)?;
            let k2i = subst_con_kind(k2, &d1);
            let d2 = kind_definition(&k2i)?;
            Some(cpair(d1, d2))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use recmod_syntax::dsl::{cvar, pi, sigma, tkind};

    #[test]
    fn selfify_at_type_is_singleton() {
        assert_eq!(selfify(&Con::Bool, &tkind()), q(Con::Bool));
    }

    #[test]
    fn selfify_at_singleton_keeps_definition() {
        // Q(c : Q(int)) = Q(int) — the declared identity wins.
        assert_eq!(selfify(&cvar(0), &q(Con::Int)), q(Con::Int));
    }

    #[test]
    fn selfify_pi_is_figure_2() {
        // Q(c : Πα:T.T) = Πα:T.Q(c α)
        let k = pi(tkind(), tkind());
        let out = selfify(&cvar(3), &k);
        assert_eq!(out, pi(tkind(), q(capp(cvar(4), cvar(0)))));
    }

    #[test]
    fn selfify_sigma_projects() {
        // Q(c : T×T) = Q(π₁c) × Q(π₂c)
        let k = sigma(tkind(), tkind());
        let out = selfify(&cvar(0), &k);
        assert_eq!(out, Kind::times(q(cproj1(cvar(0))), q(cproj2(cvar(0)))));
    }

    #[test]
    fn strip_inverts_selfify_shape() {
        let k = sigma(q(Con::Int), pi(tkind(), q(Con::Bool)));
        assert_eq!(strip_kind(&k), sigma(tkind(), pi(tkind(), tkind())));
    }

    #[test]
    fn transparency() {
        assert!(fully_transparent(&q(Con::Int)));
        assert!(fully_transparent(&sigma(q(Con::Int), q(Con::Bool))));
        assert!(fully_transparent(&pi(tkind(), q(cvar(0)))));
        assert!(!fully_transparent(&tkind()));
        assert!(!fully_transparent(&sigma(q(Con::Int), tkind())));
    }

    #[test]
    fn definition_of_sigma_of_singletons() {
        let k = sigma(q(Con::Int), q(Con::Bool));
        assert_eq!(kind_definition(&k), Some(cpair(Con::Int, Con::Bool)));
    }

    #[test]
    fn definition_of_dependent_sigma_substitutes() {
        // Σα:Q(int).Q(α ⇀ α): definition is ⟨int, int ⇀ int⟩.
        let k = sigma(q(Con::Int), q(Con::Arrow(hc(cvar(0)), hc(cvar(0)))));
        assert_eq!(
            kind_definition(&k),
            Some(cpair(Con::Int, Con::Arrow(hc(Con::Int), hc(Con::Int))))
        );
    }

    #[test]
    fn definition_of_pi_is_lambda() {
        let k = pi(tkind(), q(cvar(0)));
        assert_eq!(kind_definition(&k), Some(clam(tkind(), cvar(0))));
    }

    #[test]
    fn opaque_kind_has_no_definition() {
        assert_eq!(kind_definition(&tkind()), None);
        assert_eq!(kind_definition(&sigma(tkind(), q(Con::Int))), None);
    }
}
