//! Constructor equivalence.
//!
//! Equivalence is *kind-directed* (Stone–Harper): at kind `1` and at
//! singleton kinds every pair of well-kinded constructors is equal; at
//! `Π` and `Σ` kinds comparison is extensional; at kind `T` the
//! constructors are weak-head normalized and compared structurally.
//!
//! Equi-recursive constructors are handled coinductively in the style of
//! Amadio–Cardelli / Brandt–Henglein: when a `μ` appears at the head, the
//! pair under comparison is added to a set of assumptions and the `μ` is
//! unrolled; if the same pair recurs the comparison succeeds. For regular
//! (first-order) recursive monotypes this is a decision procedure; at
//! higher kinds (whose decidability the paper leaves open, §5) the fuel
//! bound turns potential divergence into an explicit error.
//!
//! The [`crate::RecMode`] in force changes only the `μ` cases:
//!
//! * `Equi` — a `μ` is equal to its unrolling (either side may unroll);
//! * `Iso` — `μ`s are compared by congruence only;
//! * `IsoShao` — two `μ`s are compared by unrolling both under an
//!   assumption (validating Shao's equation, paper §5), but a `μ` is
//!   never equal to a non-`μ`.

use recmod_syntax::ast::{Con, Kind};
use recmod_syntax::intern::{hc, NodeId};
use recmod_syntax::subst::{shift_con, shift_kind, subst_con_kind};

use crate::ctx::Ctx;
use crate::error::{raise, TcResult, TypeError};
use crate::show;
use crate::{RecMode, Tc};

/// The set of constructor pairs currently assumed equal (coinduction),
/// keyed by interned node ids: id equality is structural equality, so
/// membership costs two id reads instead of a deep hash of both trees.
/// The de Bruijn caveat still applies — ids name *syntax*, and the same
/// syntax under a new binder denotes different variables — so every
/// comparison that descends under a binder starts a fresh set (see the
/// `Pi` and iso-`μ` cases).
type Seen = recmod_syntax::fxhash::FxHashSet<(NodeId, NodeId)>;

/// The interned id of a constructor (a shallow clone plus one table
/// probe — children are already interned).
fn con_id(c: &Con) -> NodeId {
    hc(c.clone()).id()
}

impl Tc {
    /// `Γ ⊢ c₁ = c₂ : κ` — constructor equivalence at kind `κ`.
    ///
    /// Both constructors are assumed well-kinded at `κ`; the algorithm is
    /// sound and complete for well-kinded inputs within the fuel budget.
    /// On success at kind `T`, the pair — and every coinductive
    /// assumption the run relied on — is promoted to the persistent
    /// proven-pair table, so the next query over the same ids is O(1).
    pub fn con_equiv(&self, ctx: &mut Ctx, c1: &Con, c2: &Con, k: &Kind) -> TcResult<()> {
        let mut seen = Seen::default();
        self.con_equiv_at(ctx, c1, c2, k, &mut seen)?;
        // The run closed, so its assumptions form a valid bisimulation
        // (Brandt–Henglein): record them as facts. Everything in `seen`
        // was compared at kind `T` in *this* context — binder-crossing
        // comparisons use fresh sets that never reach this point.
        let stamp = ctx.stamp();
        for (a, b) in seen.drain() {
            self.equiv_remember(stamp, a, b);
        }
        if matches!(k, Kind::Type) {
            self.equiv_remember(stamp, con_id(c1), con_id(c2));
        }
        Ok(())
    }

    fn con_equiv_at(
        &self,
        ctx: &mut Ctx,
        c1: &Con,
        c2: &Con,
        k: &Kind,
        seen: &mut Seen,
    ) -> TcResult<()> {
        let _j = recmod_telemetry::judgement_span("kernel.con_equiv");
        let _depth = self.descend("con_equiv")?;
        self.burn(crate::stats::FuelOp::ConEquiv)?;
        let _trace = recmod_telemetry::trace_span(|| {
            format!("{} = {} : {}", show::con(c1), show::con(c2), show::kind(k))
        });
        // Interned-id ("pointer") equality: equivalence is reflexive at
        // every kind, and with hash-consing the structural check is one
        // integer comparison per constructor level — `==` on `Con` is
        // shallow (variant tag plus child ids).
        if c1 == c2 {
            crate::stats::TcStats::bump(&self.stat_cells().equiv_ptr_eqs);
            recmod_telemetry::count("kernel.equiv_ptr_eq", 1);
            return Ok(());
        }
        match k {
            // At kind 1 the only inhabitant is *, so anything equals anything.
            Kind::Unit => Ok(()),
            // At a singleton kind both sides equal the (same) definition.
            Kind::Singleton(_) => {
                crate::stats::TcStats::bump(&self.stat_cells().singleton_shortcuts);
                Ok(())
            }
            Kind::Pi(k1, k2) => ctx.with_con((**k1).clone(), |ctx| {
                let a1 = Con::App(hc(shift_con(c1, 1, 0)), hc(Con::Var(0)));
                let a2 = Con::App(hc(shift_con(c2, 1, 0)), hc(Con::Var(0)));
                // Coinductive assumptions are de Bruijn syntax; under a new
                // binder the same syntax denotes different variables, so
                // start a fresh set rather than shift the old one.
                step(
                    self.con_equiv_at(ctx, &a1, &a2, k2, &mut Seen::default()),
                    "apply",
                )
            }),
            Kind::Sigma(k1, k2) => {
                let p1 = Con::Proj1(hc(c1.clone()));
                let p2 = Con::Proj1(hc(c2.clone()));
                step(self.con_equiv_at(ctx, &p1, &p2, k1, seen), "fst")?;
                let k2i = subst_con_kind(k2, &p1);
                step(
                    self.con_equiv_at(
                        ctx,
                        &Con::Proj2(hc(c1.clone())),
                        &Con::Proj2(hc(c2.clone())),
                        &k2i,
                        seen,
                    ),
                    "snd",
                )
            }
            Kind::Type => self.con_eq_type(ctx, c1, c2, seen),
        }
    }

    /// Structural comparison at kind `T`, after weak-head normalization,
    /// under the coinductive assumption set.
    fn con_eq_type(&self, ctx: &mut Ctx, c1: &Con, c2: &Con, seen: &mut Seen) -> TcResult<()> {
        let _j = recmod_telemetry::judgement_span("kernel.con_equiv");
        let _depth = self.descend("con_equiv")?;
        self.burn(crate::stats::FuelOp::MonoEquiv)?;
        let a = self.whnf(ctx, c1)?;
        let b = self.whnf(ctx, c2)?;
        if a == b {
            crate::stats::TcStats::bump(&self.stat_cells().equiv_ptr_eqs);
            recmod_telemetry::count("kernel.equiv_ptr_eq", 1);
            return Ok(());
        }
        let key = (con_id(&a), con_id(&b));
        if seen.contains(&key) {
            return Ok(());
        }
        if self.equiv_cached((ctx.stamp(), key.0, key.1)) {
            crate::stats::TcStats::bump(&self.stat_cells().equiv_cache_hits);
            recmod_telemetry::count("kernel.equiv_cache_hit", 1);
            return Ok(());
        }
        match (&a, &b) {
            // Only *contractive* μs participate in coinductive unrolling;
            // vacuous constructors like μα:T.α are inert (equal only to
            // themselves, which the syntactic fast path already handled).
            (Con::Mu(ka, ba), Con::Mu(kb, bb)) => match self.mode() {
                RecMode::Equi | RecMode::IsoShao
                    if self.is_contractive_cached(&a) && self.is_contractive_cached(&b) =>
                {
                    self.note_assumption(seen, key);
                    let st = self.stat_cells();
                    st.mu_unrolls.set(st.mu_unrolls.get() + 2);
                    let ua = self.unroll_mu_cached(&a)?;
                    let ub = self.unroll_mu_cached(&b)?;
                    step(self.con_eq_type(ctx, &ua, &ub, seen), "unroll")
                }
                RecMode::Iso => {
                    step(self.kind_eq(ctx, ka, kb), "μ kind")?;
                    ctx.with_con((**ka).clone(), |ctx| {
                        let kin = shift_kind(ka, 1, 0);
                        // Fresh assumptions under the binder (see Pi case).
                        step(
                            self.con_equiv_at(ctx, ba, bb, &kin, &mut Seen::default()),
                            "μ body",
                        )
                    })
                }
                _ => raise(TypeError::ConMismatch {
                    left: show::con(&a),
                    right: show::con(&b),
                    at: "T".to_string(),
                }),
            },
            (Con::Mu(_, _), _)
                if self.mode() == RecMode::Equi && self.is_contractive_cached(&a) =>
            {
                self.note_assumption(seen, key);
                crate::stats::TcStats::bump(&self.stat_cells().mu_unrolls);
                let ua = self.unroll_mu_cached(&a)?;
                step(self.con_eq_type(ctx, &ua, &b, seen), "unroll")
            }
            (_, Con::Mu(_, _))
                if self.mode() == RecMode::Equi && self.is_contractive_cached(&b) =>
            {
                self.note_assumption(seen, key);
                crate::stats::TcStats::bump(&self.stat_cells().mu_unrolls);
                let ub = self.unroll_mu_cached(&b)?;
                step(self.con_eq_type(ctx, &a, &ub, seen), "unroll")
            }
            (Con::Arrow(a1, a2), Con::Arrow(b1, b2)) => {
                step(self.con_eq_type(ctx, a1, b1, seen), "domain")?;
                step(self.con_eq_type(ctx, a2, b2, seen), "codomain")
            }
            (Con::Prod(a1, a2), Con::Prod(b1, b2)) => {
                step(self.con_eq_type(ctx, a1, b1, seen), "fst")?;
                step(self.con_eq_type(ctx, a2, b2, seen), "snd")
            }
            (Con::Sum(xs), Con::Sum(ys)) if xs.len() == ys.len() => {
                for (x, y) in xs.iter().zip(ys) {
                    step(self.con_eq_type(ctx, x, y, seen), "summand")?;
                }
                Ok(())
            }
            (Con::Int, Con::Int) | (Con::Bool, Con::Bool) | (Con::UnitTy, Con::UnitTy) => Ok(()),
            _ if is_path(&a) && is_path(&b) => self.path_equiv(ctx, &a, &b, seen).map(|_| ()),
            _ => raise(TypeError::ConMismatch {
                left: show::con(&a),
                right: show::con(&b),
                at: "T".to_string(),
            }),
        }
    }

    /// Adds a pair to the coinductive assumption set, recording the
    /// insert and the set's high-water mark.
    fn note_assumption(&self, seen: &mut Seen, key: (NodeId, NodeId)) {
        seen.insert(key);
        let st = self.stat_cells();
        crate::stats::TcStats::bump(&st.assumption_inserts);
        crate::stats::TcStats::raise(&st.assumption_hwm, seen.len() as u64);
    }

    /// Structural equivalence of stuck paths, returning their common
    /// natural kind (used to compare spine arguments at the right kind).
    fn path_equiv(&self, ctx: &mut Ctx, p1: &Con, p2: &Con, seen: &mut Seen) -> TcResult<Kind> {
        self.burn(crate::stats::FuelOp::PathEquiv)?;
        match (p1, p2) {
            (Con::Var(i), Con::Var(j)) if i == j => ctx.lookup_con(*i),
            (Con::Fst(i), Con::Fst(j)) if i == j => match self.natural_kind(ctx, p1)? {
                Some(k) => Ok(k),
                None => raise(TypeError::Internal(
                    "natural_kind returned None for a Fst path".to_string(),
                )),
            },
            (Con::App(f1, a1), Con::App(f2, a2)) => {
                let fk = step(self.path_equiv(ctx, f1, f2, seen), "spine function")?;
                let (k1, k2) = self.expect_pi(&fk)?;
                step(self.con_equiv_at(ctx, a1, a2, &k1, seen), "spine argument")?;
                Ok(subst_con_kind(&k2, a1))
            }
            (Con::Proj1(q1), Con::Proj1(q2)) => {
                let qk = step(self.path_equiv(ctx, q1, q2, seen), "fst")?;
                let (k1, _) = self.expect_sigma(&qk)?;
                Ok(k1)
            }
            (Con::Proj2(q1), Con::Proj2(q2)) => {
                let qk = step(self.path_equiv(ctx, q1, q2, seen), "snd")?;
                let (_, k2) = self.expect_sigma(&qk)?;
                Ok(subst_con_kind(&k2, &Con::Proj1(q1.clone())))
            }
            _ => raise(TypeError::ConMismatch {
                left: show::con(p1),
                right: show::con(p2),
                at: "T".to_string(),
            }),
        }
    }
}

/// Tags a failing recursive equivalence check with the structural step
/// it descended through (`domain`, `unroll`, `snd`, …). Steps accumulate
/// innermost-first on the pending failure snapshot, giving diagnostics
/// the path from the failing equation back to the equation the user
/// asked about.
#[inline]
fn step<T>(r: TcResult<T>, s: &'static str) -> TcResult<T> {
    if r.is_err() {
        recmod_telemetry::diag::note_step(s);
    }
    r
}

fn is_path(c: &Con) -> bool {
    matches!(
        c,
        Con::Var(_) | Con::Fst(_) | Con::App(_, _) | Con::Proj1(_) | Con::Proj2(_)
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use recmod_syntax::dsl::*;

    fn equi() -> Tc {
        Tc::new()
    }

    #[test]
    fn mu_equals_unrolling_in_equi_mode() {
        // μα:T.int ⇀ α  =  int ⇀ μα:T.int ⇀ α
        let tc = equi();
        let mut ctx = Ctx::new();
        let m = mu(tkind(), carrow(Con::Int, cvar(0)));
        let u = carrow(Con::Int, m.clone());
        tc.con_equiv(&mut ctx, &m, &u, &tkind()).unwrap();
    }

    #[test]
    fn mu_not_unrolled_in_iso_mode() {
        let tc = Tc::with_mode(RecMode::Iso);
        let mut ctx = Ctx::new();
        let m = mu(tkind(), carrow(Con::Int, cvar(0)));
        let u = carrow(Con::Int, m.clone());
        assert!(tc.con_equiv(&mut ctx, &m, &u, &tkind()).is_err());
        // ...but a μ is still equal to itself.
        tc.con_equiv(&mut ctx, &m, &m, &tkind()).unwrap();
    }

    #[test]
    fn shao_equation_holds_in_iso_shao_mode() {
        // μα.c(α) ≡ μα.c(μα.c(α))  with c(α) = int ⇀ α    (paper §5)
        let tc = Tc::with_mode(RecMode::IsoShao);
        let mut ctx = Ctx::new();
        let m = mu(tkind(), carrow(Con::Int, cvar(0)));
        let m2 = mu(
            tkind(),
            carrow(Con::Int, recmod_syntax::subst::shift_con(&m, 1, 0)),
        );
        tc.con_equiv(&mut ctx, &m, &m2, &tkind()).unwrap();
    }

    #[test]
    fn shao_mode_still_distinguishes_mu_from_unrolling() {
        let tc = Tc::with_mode(RecMode::IsoShao);
        let mut ctx = Ctx::new();
        let m = mu(tkind(), carrow(Con::Int, cvar(0)));
        let u = carrow(Con::Int, m.clone());
        assert!(tc.con_equiv(&mut ctx, &m, &u, &tkind()).is_err());
    }

    #[test]
    fn distinct_recursive_types_are_distinguished() {
        // μα.int ⇀ α  ≠  μα.bool ⇀ α
        let tc = equi();
        let mut ctx = Ctx::new();
        let m1 = mu(tkind(), carrow(Con::Int, cvar(0)));
        let m2 = mu(tkind(), carrow(Con::Bool, cvar(0)));
        assert!(tc.con_equiv(&mut ctx, &m1, &m2, &tkind()).is_err());
    }

    #[test]
    fn bisimilar_but_syntactically_distinct_mus_are_equal() {
        // μα.int ⇀ (int ⇀ α)  =  μα.int ⇀ α unrolled two ways:
        // compare μα.int⇀α with μα.int⇀(int⇀α).
        let tc = equi();
        let mut ctx = Ctx::new();
        let m1 = mu(tkind(), carrow(Con::Int, cvar(0)));
        let m2 = mu(tkind(), carrow(Con::Int, carrow(Con::Int, cvar(0))));
        tc.con_equiv(&mut ctx, &m1, &m2, &tkind()).unwrap();
    }

    #[test]
    fn everything_equal_at_unit_kind() {
        let tc = equi();
        let mut ctx = Ctx::new();
        tc.con_equiv(
            &mut ctx,
            &Con::Star,
            &cproj1(cpair(Con::Star, Con::Star)),
            &unit_kind(),
        )
        .unwrap();
    }

    #[test]
    fn everything_equal_at_singleton_kind() {
        // Both sides of kind Q(int) are equal without looking at them.
        let tc = equi();
        let mut ctx = Ctx::new();
        ctx.with_con(q(Con::Int), |ctx| {
            tc.con_equiv(ctx, &cvar(0), &Con::Int, &q(Con::Int))
                .unwrap();
        });
    }

    #[test]
    fn extensionality_at_pi_kind() {
        // λα:T.α  =  λβ:T.β applied pointwise; also a variable f of kind
        // Πα:T.Q(int) equals λα:T.int.
        let tc = equi();
        let mut ctx = Ctx::new();
        let k = pi(tkind(), q(Con::Int));
        ctx.with_con(k.clone(), |ctx| {
            let f = cvar(0);
            let g = clam(tkind(), Con::Int);
            tc.con_equiv(ctx, &f, &g, &k).unwrap();
        });
    }

    #[test]
    fn extensionality_at_sigma_kind() {
        // p : Q(int)×Q(bool) equals ⟨int, bool⟩.
        let tc = equi();
        let mut ctx = Ctx::new();
        let k = Kind::times(q(Con::Int), q(Con::Bool));
        ctx.with_con(k.clone(), |ctx| {
            let p = cvar(0);
            let lit = cpair(Con::Int, Con::Bool);
            tc.con_equiv(ctx, &p, &lit, &k).unwrap();
        });
    }

    #[test]
    fn path_spines_compare_argumentwise() {
        // f : T → T (opaque); f int = f int but f int ≠ f bool.
        let tc = equi();
        let mut ctx = Ctx::new();
        let k = pi(tkind(), tkind());
        ctx.with_con(k, |ctx| {
            let fi = capp(cvar(0), Con::Int);
            let fb = capp(cvar(0), Con::Bool);
            tc.con_equiv(ctx, &fi, &fi.clone(), &tkind()).unwrap();
            assert!(tc.con_equiv(ctx, &fi, &fb, &tkind()).is_err());
        });
    }

    #[test]
    fn singleton_sharing_propagates_through_variables() {
        // α:Q(int ⇀ int) ⊢ α = int ⇀ int : T
        let tc = equi();
        let mut ctx = Ctx::new();
        let def = carrow(Con::Int, Con::Int);
        ctx.with_con(q(def.clone()), |ctx| {
            tc.con_equiv(ctx, &cvar(0), &def, &tkind()).unwrap();
        });
    }

    #[test]
    fn mu_mu_collapse_of_section_5() {
        // μα.μβ.c(α,β) ≃ μβ.c(β,β)  with c(α,β) = α ⇀ β  — the paper's §5
        // observation justifying the elimination of equi-recursive types.
        let tc = equi();
        let mut ctx = Ctx::new();
        // μα:T.μβ:T. α ⇀ β   (inside: α is index 1, β is index 0)
        let nested = mu(tkind(), mu(tkind(), carrow(cvar(1), cvar(0))));
        // μβ:T. β ⇀ β
        let flat = mu(tkind(), carrow(cvar(0), cvar(0)));
        tc.con_equiv(&mut ctx, &nested, &flat, &tkind()).unwrap();
    }

    #[test]
    fn seen_set_does_not_leak_across_binders() {
        // Regression (review finding): in ctx [d:Q(int)], comparing the
        // pairs ⟨m1, λb:T.m1⟩ and ⟨m2, λb:T.m2⟩ at Σ(T, Πb:T.T) — where
        // the λ bodies were built WITHOUT shifting, so inside the λ the
        // index that meant `d` now means the opaque `b` — must fail: the
        // coinductive assumption recorded for the first components (where
        // Var(1) = d = int) must not leak into the λ comparison (where the
        // same syntax denotes b).
        let tc = equi();
        let mut ctx = Ctx::new();
        ctx.with_con(q(Con::Int), |ctx| {
            let m1 = mu(tkind(), carrow(cvar(1), cvar(0))); // μa. d ⇀ a (at depth 0)
            let m2 = mu(tkind(), carrow(Con::Int, cvar(0))); // μa. int ⇀ a
            let p1 = cpair(m1.clone(), clam(tkind(), m1.clone()));
            let p2 = cpair(m2.clone(), clam(tkind(), m2.clone()));
            let k = Kind::times(tkind(), pi(tkind(), tkind()));
            // The λ components alone are inequivalent…
            assert!(tc
                .con_equiv(
                    ctx,
                    &clam(tkind(), m1),
                    &clam(tkind(), m2),
                    &pi(tkind(), tkind())
                )
                .is_err());
            // …so the pairs must be too, regardless of comparison order.
            assert!(tc.con_equiv(ctx, &p1, &p2, &k).is_err());
        });
    }

    #[test]
    fn vacuous_mu_distinct_from_int_but_equal_to_itself() {
        let tc = equi();
        let mut ctx = Ctx::new();
        let bot = mu(tkind(), cvar(0));
        tc.con_equiv(&mut ctx, &bot, &bot, &tkind()).unwrap();
        assert!(tc.con_equiv(&mut ctx, &bot, &Con::Int, &tkind()).is_err());
    }
}
