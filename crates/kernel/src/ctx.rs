//! Typing contexts.
//!
//! A context `Γ` is a stack of declarations over the unified de Bruijn
//! space of `recmod-syntax`: constructor variables `α:κ`, term variables
//! `x:σ` (valuable) or `x↑σ` (typeable but not valuable — the paper's
//! notation for recursively-bound variables inside their own definition),
//! and structure variables `s:S` / `s↑S`.
//!
//! Stored classifiers are expressed in the *prefix* of the context strictly
//! before the entry; lookups shift them by `index + 1` so they make sense
//! at the use site.
//!
//! Invariant: structure-variable entries always carry a *flat* signature
//! (`Sig::Struct`); recursively-dependent signatures are resolved to their
//! Figure-5 interpretation before being pushed.

use std::cell::Cell;

use recmod_syntax::ast::{Kind, Sig, Ty};
use recmod_syntax::subst::{shift_kind, shift_sig, shift_ty};

use crate::error::{raise, TcResult, TypeError};

thread_local! {
    /// Source of fresh context stamps; `0` is reserved for the empty
    /// context, so the counter starts at 1.
    static NEXT_STAMP: Cell<u64> = const { Cell::new(1) };
}

fn fresh_stamp() -> u64 {
    NEXT_STAMP.with(|c| {
        let s = c.get();
        c.set(s + 1);
        s
    })
}

/// One context declaration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Entry {
    /// `α : κ` — a constructor variable.
    Con(Kind),
    /// `x : σ` (valuable = `true`) or `x ↑ σ` (valuable = `false`).
    Term(Ty, bool),
    /// `s : S` (valuable = `true`) or `s ↑ S` (valuable = `false`).
    Struct(Sig, bool),
}

/// A typing context.
///
/// Besides the declaration stack itself, the context carries a parallel
/// stack of *stamps*: every [`Ctx::push`] draws a fresh stamp from a
/// thread-local counter, and popping restores the previous one. Because
/// pushes are the only way to grow a context and stamps are never
/// reused, **equal stamps imply identical declaration stacks** (within
/// one thread) — the property the kernel's memo tables key on. The
/// empty context always has stamp `0`.
#[derive(Debug, Clone, Default)]
pub struct Ctx {
    entries: Vec<Entry>,
    stamps: Vec<u64>,
}

impl PartialEq for Ctx {
    fn eq(&self, other: &Self) -> bool {
        // Stamps are identity bookkeeping, not part of the context's
        // mathematical content.
        self.entries == other.entries
    }
}
impl Eq for Ctx {}

impl Ctx {
    /// The empty context.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of declarations.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the context is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The stamp identifying this exact declaration stack (see the type
    /// docs): `0` for the empty context, otherwise the stamp drawn when
    /// the innermost entry was pushed.
    pub fn stamp(&self) -> u64 {
        self.stamps.last().copied().unwrap_or(0)
    }

    /// Raw access to an entry by de Bruijn index (0 = innermost).
    pub fn entry(&self, index: usize) -> TcResult<&Entry> {
        let len = self.entries.len();
        if index < len {
            Ok(&self.entries[len - 1 - index])
        } else {
            raise(TypeError::Unbound {
                what: "variable",
                index,
            })
        }
    }

    /// Looks up a constructor variable, shifting its kind to the use site.
    pub fn lookup_con(&self, index: usize) -> TcResult<Kind> {
        match self.entry(index)? {
            Entry::Con(k) => Ok(shift_kind(k, (index + 1) as isize, 0)),
            _ => raise(TypeError::Unbound {
                what: "constructor variable",
                index,
            }),
        }
    }

    /// Looks up a term variable, shifting its type to the use site.
    /// Returns the type and the valuability of the variable.
    pub fn lookup_term(&self, index: usize) -> TcResult<(Ty, bool)> {
        match self.entry(index)? {
            Entry::Term(t, v) => Ok((shift_ty(t, (index + 1) as isize, 0), *v)),
            _ => raise(TypeError::Unbound {
                what: "term variable",
                index,
            }),
        }
    }

    /// Looks up a structure variable, shifting its signature to the use
    /// site. Returns the signature and the valuability of the variable.
    pub fn lookup_struct(&self, index: usize) -> TcResult<(Sig, bool)> {
        match self.entry(index)? {
            Entry::Struct(s, v) => Ok((shift_sig(s, (index + 1) as isize, 0), *v)),
            _ => raise(TypeError::Unbound {
                what: "structure variable",
                index,
            }),
        }
    }

    /// Pushes a declaration. Callers that interleave pushes with other
    /// work (e.g. the elaborator, which mirrors surface scopes) must
    /// restore the context with [`Ctx::truncate`]; prefer [`Ctx::with`]
    /// when the extent is lexical.
    pub fn push(&mut self, entry: Entry) {
        self.entries.push(entry);
        self.stamps.push(fresh_stamp());
    }

    /// Drops entries until only `len` remain.
    ///
    /// # Panics
    ///
    /// Panics if the context is already shorter than `len`.
    pub fn truncate(&mut self, len: usize) {
        assert!(
            self.entries.len() >= len,
            "context shorter than truncation target"
        );
        self.entries.truncate(len);
        self.stamps.truncate(len);
    }

    /// Runs `f` with `entry` pushed, popping it afterwards (also on error).
    pub fn with<T>(&mut self, entry: Entry, f: impl FnOnce(&mut Ctx) -> T) -> T {
        self.push(entry);
        let out = f(self);
        self.entries.pop();
        self.stamps.pop();
        out
    }

    /// Convenience: `with` for a constructor declaration `α:κ`.
    pub fn with_con<T>(&mut self, k: Kind, f: impl FnOnce(&mut Ctx) -> T) -> T {
        self.with(Entry::Con(k), f)
    }

    /// Convenience: `with` for a term declaration.
    pub fn with_term<T>(&mut self, t: Ty, valuable: bool, f: impl FnOnce(&mut Ctx) -> T) -> T {
        self.with(Entry::Term(t, valuable), f)
    }

    /// Convenience: `with` for a structure declaration.
    ///
    /// # Panics
    ///
    /// Debug-asserts the invariant that pushed signatures are flat (rds
    /// must be resolved first).
    pub fn with_struct<T>(&mut self, s: Sig, valuable: bool, f: impl FnOnce(&mut Ctx) -> T) -> T {
        debug_assert!(
            matches!(s, Sig::Struct(_, _)),
            "context invariant: structure entries carry flat signatures"
        );
        self.with(Entry::Struct(s, valuable), f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use recmod_syntax::ast::Con;

    #[test]
    fn lookup_shifts_to_use_site() {
        let mut ctx = Ctx::new();
        // Γ = α:T, β:Q(α)
        ctx.with_con(Kind::Type, |ctx| {
            ctx.with_con(
                Kind::Singleton(recmod_syntax::intern::hc(Con::Var(0))),
                |ctx| {
                    // β is index 0; its kind mentions α, which from here is index 1.
                    assert_eq!(
                        ctx.lookup_con(0).unwrap(),
                        Kind::Singleton(recmod_syntax::intern::hc(Con::Var(1)))
                    );
                    assert_eq!(ctx.lookup_con(1).unwrap(), Kind::Type);
                },
            )
        });
    }

    #[test]
    fn lookup_wrong_sort_fails() {
        let mut ctx = Ctx::new();
        ctx.with_term(Ty::Unit, true, |ctx| {
            assert!(ctx.lookup_con(0).is_err());
            assert!(ctx.lookup_struct(0).is_err());
            assert!(ctx.lookup_term(0).is_ok());
        });
    }

    #[test]
    fn lookup_out_of_range_fails() {
        let ctx = Ctx::new();
        assert_eq!(
            ctx.lookup_con(0),
            raise(TypeError::Unbound {
                what: "variable",
                index: 0
            })
        );
    }

    #[test]
    fn with_pops_after_use() {
        let mut ctx = Ctx::new();
        ctx.with_con(Kind::Type, |_| ());
        assert!(ctx.is_empty());
    }

    #[test]
    fn stamps_identify_declaration_stacks() {
        let mut ctx = Ctx::new();
        assert_eq!(ctx.stamp(), 0);
        let s1 = ctx.with_con(Kind::Type, |ctx| {
            let s = ctx.stamp();
            assert_ne!(s, 0);
            s
        });
        // Back to empty, and a re-push gets a *fresh* stamp: the old one
        // is retired with the stack it named.
        assert_eq!(ctx.stamp(), 0);
        let s2 = ctx.with_con(Kind::Type, |ctx| ctx.stamp());
        assert_ne!(s1, s2);
    }

    #[test]
    fn valuability_flag_round_trips() {
        let mut ctx = Ctx::new();
        ctx.with_term(Ty::Unit, false, |ctx| {
            let (_, v) = ctx.lookup_term(0).unwrap();
            assert!(!v);
        });
    }
}
