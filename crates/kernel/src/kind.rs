//! Kind formation, equivalence, and subkinding (paper appendix A.1).

use recmod_syntax::ast::{Con, Kind};

use crate::ctx::Ctx;
use crate::error::{raise, TcResult, TypeError};
use crate::show;
use crate::Tc;

impl Tc {
    /// `Γ ⊢ κ kind` — kind formation.
    pub fn wf_kind(&self, ctx: &mut Ctx, k: &Kind) -> TcResult<()> {
        let _j = recmod_telemetry::judgement_span("kernel.wf_kind");
        let _depth = self.descend("wf_kind")?;
        match k {
            Kind::Type | Kind::Unit => Ok(()),
            Kind::Singleton(c) => self.check_con(ctx, c, &Kind::Type),
            Kind::Pi(k1, k2) | Kind::Sigma(k1, k2) => {
                self.wf_kind(ctx, k1)?;
                ctx.with_con((**k1).clone(), |ctx| self.wf_kind(ctx, k2))
            }
        }
    }

    /// `Γ ⊢ κ₁ = κ₂ kind` — kind equivalence.
    pub fn kind_eq(&self, ctx: &mut Ctx, k1: &Kind, k2: &Kind) -> TcResult<()> {
        let _j = recmod_telemetry::judgement_span("kernel.kind_eq");
        let _depth = self.descend("kind_eq")?;
        match (k1, k2) {
            (Kind::Type, Kind::Type) | (Kind::Unit, Kind::Unit) => Ok(()),
            (Kind::Singleton(c1), Kind::Singleton(c2)) => self.con_equiv(ctx, c1, c2, &Kind::Type),
            (Kind::Pi(a1, b1), Kind::Pi(a2, b2)) | (Kind::Sigma(a1, b1), Kind::Sigma(a2, b2)) => {
                self.kind_eq(ctx, a1, a2)?;
                ctx.with_con((**a1).clone(), |ctx| self.kind_eq(ctx, b1, b2))
            }
            _ => raise(TypeError::KindMismatch {
                expected: show::kind(k1),
                found: show::kind(k2),
            }),
        }
    }

    /// `Γ ⊢ κ₁ ≤ κ₂ kind` — subkinding. The key axiom is `Q(c) ≤ T`
    /// (forgetting a definition); `Π` is contravariant in its domain and
    /// `Σ` is covariant in both components.
    pub fn subkind(&self, ctx: &mut Ctx, k1: &Kind, k2: &Kind) -> TcResult<()> {
        let _j = recmod_telemetry::judgement_span("kernel.subkind");
        let _depth = self.descend("subkind")?;
        match (k1, k2) {
            (Kind::Type, Kind::Type) | (Kind::Unit, Kind::Unit) => Ok(()),
            (Kind::Singleton(_), Kind::Type) => Ok(()),
            (Kind::Singleton(c1), Kind::Singleton(c2)) => self.con_equiv(ctx, c1, c2, &Kind::Type),
            (Kind::Pi(a1, b1), Kind::Pi(a2, b2)) => {
                self.subkind(ctx, a2, a1)?;
                // The common context uses the smaller domain (a2).
                ctx.with_con((**a2).clone(), |ctx| self.subkind(ctx, b1, b2))
            }
            (Kind::Sigma(a1, b1), Kind::Sigma(a2, b2)) => {
                self.subkind(ctx, a1, a2)?;
                ctx.with_con((**a1).clone(), |ctx| self.subkind(ctx, b1, b2))
            }
            _ => raise(TypeError::NotASubkind {
                expected: show::kind(k2),
                found: show::kind(k1),
            }),
        }
    }

    /// Checks that `k` has the shape `Πα:κ₁.κ₂`, returning the pieces.
    pub(crate) fn expect_pi(&self, k: &Kind) -> TcResult<(Kind, Kind)> {
        match k {
            Kind::Pi(k1, k2) => Ok(((**k1).clone(), (**k2).clone())),
            _ => raise(TypeError::NotAPiKind(show::kind(k))),
        }
    }

    /// Checks that `k` has the shape `Σα:κ₁.κ₂`, returning the pieces.
    pub(crate) fn expect_sigma(&self, k: &Kind) -> TcResult<(Kind, Kind)> {
        match k {
            Kind::Sigma(k1, k2) => Ok(((**k1).clone(), (**k2).clone())),
            _ => raise(TypeError::NotASigmaKind(show::kind(k))),
        }
    }
}

/// Does the kind `k` mention the variable bound at absolute index
/// `target` (counting binders inside `k`)? Used to enforce that the
/// *stripped* static kind of an rds does not itself depend on the
/// recursive structure variable.
pub fn kind_mentions(k: &Kind, target: usize) -> bool {
    struct Probe {
        target: usize,
        hit: bool,
    }
    impl recmod_syntax::map::VarMap for Probe {
        fn cvar(&mut self, d: usize, i: usize) -> Con {
            if i == self.target + d {
                self.hit = true;
            }
            Con::Var(i)
        }
        fn tvar(&mut self, d: usize, i: usize) -> recmod_syntax::ast::Term {
            if i == self.target + d {
                self.hit = true;
            }
            recmod_syntax::ast::Term::Var(i)
        }
        fn fst(&mut self, d: usize, i: usize) -> Con {
            if i == self.target + d {
                self.hit = true;
            }
            Con::Fst(i)
        }
        fn snd(&mut self, d: usize, i: usize) -> recmod_syntax::ast::Term {
            if i == self.target + d {
                self.hit = true;
            }
            recmod_syntax::ast::Term::Snd(i)
        }
        fn mvar(&mut self, d: usize, i: usize) -> recmod_syntax::ast::Module {
            if i == self.target + d {
                self.hit = true;
            }
            recmod_syntax::ast::Module::Var(i)
        }
    }
    let mut probe = Probe { target, hit: false };
    let _ = recmod_syntax::map::map_kind(k, 0, &mut probe);
    probe.hit
}

#[cfg(test)]
mod tests {
    use super::*;
    use recmod_syntax::dsl::*;

    #[test]
    fn singleton_below_type() {
        let tc = Tc::new();
        let mut ctx = Ctx::new();
        tc.subkind(&mut ctx, &q(Con::Int), &Kind::Type).unwrap();
        assert!(tc.subkind(&mut ctx, &Kind::Type, &q(Con::Int)).is_err());
    }

    #[test]
    fn pi_contravariant_domain() {
        // Πα:T.T ≤ Πα:Q(int).T  (a function on all types is a function on int)
        let tc = Tc::new();
        let mut ctx = Ctx::new();
        let gen = pi(tkind(), tkind());
        let spec = pi(q(Con::Int), tkind());
        tc.subkind(&mut ctx, &gen, &spec).unwrap();
        assert!(tc.subkind(&mut ctx, &spec, &gen).is_err());
    }

    #[test]
    fn sigma_covariant() {
        let tc = Tc::new();
        let mut ctx = Ctx::new();
        let transparent = sigma(q(Con::Int), q(Con::Bool));
        let opaque = sigma(tkind(), tkind());
        tc.subkind(&mut ctx, &transparent, &opaque).unwrap();
        assert!(tc.subkind(&mut ctx, &opaque, &transparent).is_err());
    }

    #[test]
    fn singleton_kinds_equal_iff_definitions_equal() {
        let tc = Tc::new();
        let mut ctx = Ctx::new();
        tc.kind_eq(&mut ctx, &q(Con::Int), &q(Con::Int)).unwrap();
        assert!(tc.kind_eq(&mut ctx, &q(Con::Int), &q(Con::Bool)).is_err());
    }

    #[test]
    fn wf_rejects_non_monotype_singleton() {
        // Q(λα:T.α) is ill-formed: the lambda has kind Π, not T.
        let tc = Tc::new();
        let mut ctx = Ctx::new();
        let k = q(clam(tkind(), cvar(0)));
        assert!(tc.wf_kind(&mut ctx, &k).is_err());
    }

    #[test]
    fn kind_mentions_detects_fst() {
        let k = q(carrow(Con::Int, fst(0)));
        assert!(kind_mentions(&k, 0));
        assert!(!kind_mentions(&k, 1));
    }

    #[test]
    fn kind_mentions_counts_binders() {
        // Πα:T.Q(Fst(s)) with s at outer index 0: inside the Π, s is index 1.
        let k = pi(tkind(), q(fst(1)));
        assert!(kind_mentions(&k, 0));
    }
}
