//! # recmod-kernel
//!
//! The typechecker for the internal language of Crary, Harper, and Puri's
//! *"What is a Recursive Module?"* (PLDI 1999): the phase-distinction
//! calculus (a predicative variant of Fω with singleton kinds) extended
//! with equi-recursive constructors, a valuability-restricted term-level
//! fixed point, the structure calculus, recursive modules `fix(s:S.M)`,
//! and recursively-dependent signatures `ρs.S`.
//!
//! The entry point is [`Tc`], which carries the recursion mode and a fuel
//! budget and exposes one method per judgement of the paper's appendix:
//!
//! | Paper judgement | Method |
//! |---|---|
//! | `Γ ⊢ κ kind` | [`Tc::wf_kind`] |
//! | `Γ ⊢ κ₁ = κ₂` | [`Tc::kind_eq`] |
//! | `Γ ⊢ κ₁ ≤ κ₂` | [`Tc::subkind`] |
//! | `Γ ⊢ c : κ` | [`Tc::synth_con`] / [`Tc::check_con`] |
//! | `Γ ⊢ c₁ = c₂ : κ` | [`Tc::con_equiv`] |
//! | `Γ ⊢ σ type` | [`Tc::wf_ty`] |
//! | `Γ ⊢ σ₁ = σ₂ type` | [`Tc::ty_eq`] |
//! | `Γ ⊢ e : σ` and `Γ ⊢ e ⇓ σ` | [`Tc::synth_term`] (returns valuability) |
//! | `Γ ⊢ S sig`, `Γ ⊢ S₁ ≤ S₂` | [`Tc::wf_sig`], [`Tc::sig_sub`] |
//! | `Γ ⊢ M : S` and `Γ ⊢ M ⇓ S` | [`Tc::synth_module`] |
//!
//! # Example
//!
//! The paper's §2.1 observation that `μα:Q(int).α` is equal to `int`:
//!
//! ```
//! use recmod_kernel::{Tc, Ctx};
//! use recmod_syntax::ast::{Con, Kind};
//! use recmod_syntax::dsl::{mu, q, cvar};
//!
//! let tc = Tc::new();
//! let mut ctx = Ctx::new();
//! let c = mu(q(Con::Int), cvar(0));
//! tc.con_equiv(&mut ctx, &c, &Con::Int, &Kind::Type).unwrap();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod con;
pub mod ctx;
pub mod equiv;
pub mod error;
pub mod kind;
pub mod module;
pub mod sig;
pub mod singleton;
pub mod stats;
pub mod term;
pub mod termeq;
pub mod ty;
pub mod whnf;

use std::cell::{Cell, RefCell};
use std::collections::{HashMap, HashSet};

use recmod_syntax::ast::Con;
use recmod_syntax::intern::NodeId;

pub use ctx::{Ctx, Entry};
pub use error::{raise, TcResult, TypeError};
pub use recmod_telemetry::{LimitExceeded, LimitKind, Limits};
pub use stats::{FuelOp, KernelStats, TcStats};

/// How recursive constructors are treated by definitional equality.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RecMode {
    /// Equi-recursive (the paper's primary system, §2.1): `μα:κ.c` is
    /// definitionally equal to its unrolling.
    #[default]
    Equi,
    /// Iso-recursive without Shao's equation: `μ` constructors are equal
    /// only by congruence; `roll`/`unroll` are required coercions.
    Iso,
    /// Iso-recursive *with* Shao's equation (paper §5):
    /// `μα.c(α) ≡ μα.c(μα.c(α))`, realized by a bisimulation that
    /// compares the unrollings of two `μ` constructors — but never
    /// equates a `μ` with a non-`μ`.
    IsoShao,
}

/// The default fuel budget for normalization and equivalence checking.
pub const DEFAULT_FUEL: u64 = 5_000_000;

/// The typechecker: recursion mode plus a fuel budget.
///
/// Fuel bounds the total number of weak-head steps and coinductive
/// equivalence expansions across a checking run; exhausting it yields
/// [`TypeError::FuelExhausted`] rather than divergence. (Decidability of
/// equi-recursive equivalence at higher kinds is open — paper §5.)
#[derive(Debug)]
pub struct Tc {
    mode: RecMode,
    fuel: Cell<u64>,
    budget: Cell<u64>,
    limits: Limits,
    depth: Cell<usize>,
    deadline_tick: Cell<u32>,
    stats: stats::TcStats,
    /// Weak-head normal forms, keyed by (context stamp, constructor id).
    /// Sound because a stamp names one exact declaration stack and
    /// interned ids name one exact constructor (see [`Ctx::stamp`]).
    whnf_cache: RefCell<HashMap<(u64, NodeId), Con>>,
    /// Proven kind-`T` equalities, keyed by (context stamp, lhs id,
    /// rhs id). Only populated from *successful* root equivalence runs
    /// (a coinductive assumption is a fact once the run it served in
    /// closes — Brandt–Henglein), and only at kind `T`: at `1` and
    /// singleton kinds everything is equal, so caching there would be
    /// vacuous, and `Π`/`Σ` comparisons decompose before reaching the
    /// table.
    equiv_cache: RefCell<HashSet<(u64, NodeId, NodeId)>>,
}

/// Caches are cleared once they pass this many entries — a crude bound
/// that keeps a long-lived [`Tc`] from growing without limit while
/// leaving the steady-state hit rate intact for realistic sessions.
const CACHE_CAP: usize = 1 << 16;

impl Default for Tc {
    fn default() -> Self {
        Self::new()
    }
}

impl Tc {
    /// A checker in equi-recursive mode with the default fuel budget.
    pub fn new() -> Self {
        Self::with_mode(RecMode::Equi)
    }

    /// A checker with an explicit recursion mode.
    pub fn with_mode(mode: RecMode) -> Self {
        Self::with_mode_and_fuel(mode, DEFAULT_FUEL)
    }

    /// A checker in equi-recursive mode with an explicit fuel budget.
    pub fn with_fuel(fuel: u64) -> Self {
        Self::with_mode_and_fuel(RecMode::Equi, fuel)
    }

    /// A checker with both an explicit mode and an explicit fuel budget.
    pub fn with_mode_and_fuel(mode: RecMode, fuel: u64) -> Self {
        Self::with_mode_and_limits(mode, Limits::default().with_fuel(fuel))
    }

    /// A checker in equi-recursive mode with explicit [`Limits`].
    pub fn with_limits(limits: Limits) -> Self {
        Self::with_mode_and_limits(RecMode::Equi, limits)
    }

    /// A checker with an explicit mode and explicit [`Limits`]. The
    /// kernel honors the fuel, recursion-depth, and deadline bounds.
    pub fn with_mode_and_limits(mode: RecMode, limits: Limits) -> Self {
        Tc {
            mode,
            fuel: Cell::new(limits.fuel),
            budget: Cell::new(limits.fuel),
            limits,
            depth: Cell::new(0),
            deadline_tick: Cell::new(0),
            stats: stats::TcStats::default(),
            whnf_cache: RefCell::new(HashMap::new()),
            equiv_cache: RefCell::new(HashSet::new()),
        }
    }

    /// The recursion mode in force.
    pub fn mode(&self) -> RecMode {
        self.mode
    }

    /// The resource limits in force.
    pub fn limits(&self) -> &Limits {
        &self.limits
    }

    /// Remaining fuel.
    pub fn fuel(&self) -> u64 {
        self.fuel.get()
    }

    /// The budget fuel was last reset to (reported on exhaustion).
    pub fn fuel_budget(&self) -> u64 {
        self.budget.get()
    }

    /// Resets the fuel budget (e.g. between top-level declarations).
    pub fn set_fuel(&self, fuel: u64) {
        self.fuel.set(fuel);
        self.budget.set(fuel);
    }

    /// A snapshot of the judgement counters accumulated so far.
    pub fn stats(&self) -> stats::KernelStats {
        self.stats.snapshot()
    }

    /// Zeroes the judgement counters (fuel itself is left alone).
    pub fn reset_stats(&self) {
        self.stats.reset();
    }

    pub(crate) fn burn(&self, op: stats::FuelOp) -> TcResult<()> {
        self.stats.record_fuel(op);
        let f = self.fuel.get();
        if f == 0 {
            return raise(TypeError::FuelExhausted {
                op: op.name(),
                budget: self.budget.get(),
                top: self.stats.top_fuel(3),
            });
        }
        self.fuel.set(f - 1);
        // Deadlines are wall-clock, so amortize the clock read over many
        // fuel units; 1024 keeps the added latency under a millisecond
        // even for very short deadlines.
        let tick = self.deadline_tick.get().wrapping_add(1);
        self.deadline_tick.set(tick);
        if tick.is_multiple_of(1024) && self.limits.deadline_passed() {
            return raise(TypeError::Limit(self.limits.deadline_error("kernel")));
        }
        Ok(())
    }

    /// Enters one level of structural recursion in judgement `stage`,
    /// returning a guard that leaves it again on drop. Every recursive
    /// judgement of the kernel calls this, so arbitrarily deep input
    /// syntax produces [`TypeError::Limit`] instead of exhausting the
    /// host stack.
    ///
    /// # Errors
    ///
    /// Fails with [`TypeError::Limit`] once `max_depth` levels are live.
    pub fn descend(&self, stage: &'static str) -> TcResult<DepthGuard<'_>> {
        let d = self.depth.get();
        if d >= self.limits.max_depth {
            return raise(TypeError::Limit(self.limits.depth_error(stage)));
        }
        self.depth.set(d + 1);
        Ok(DepthGuard { depth: &self.depth })
    }

    pub(crate) fn stat_cells(&self) -> &stats::TcStats {
        &self.stats
    }

    /// Looks up a memoized weak-head normal form.
    pub(crate) fn whnf_cached(&self, key: (u64, NodeId)) -> Option<Con> {
        self.whnf_cache.borrow().get(&key).cloned()
    }

    /// Records a weak-head normal form (clearing the table first when it
    /// has outgrown [`CACHE_CAP`]).
    pub(crate) fn whnf_remember(&self, key: (u64, NodeId), value: Con) {
        let mut t = self.whnf_cache.borrow_mut();
        if t.len() >= CACHE_CAP {
            t.clear();
        }
        t.insert(key, value);
    }

    /// Has this kind-`T` equality already been proven?
    pub(crate) fn equiv_cached(&self, key: (u64, NodeId, NodeId)) -> bool {
        self.equiv_cache.borrow().contains(&key)
    }

    /// Records proven kind-`T` equalities (both orientations — the
    /// judgement is symmetric).
    pub(crate) fn equiv_remember(&self, stamp: u64, a: NodeId, b: NodeId) {
        let mut t = self.equiv_cache.borrow_mut();
        if t.len() >= CACHE_CAP {
            t.clear();
        }
        t.insert((stamp, a, b));
        t.insert((stamp, b, a));
    }

    /// Drops every memoized whnf/equivalence entry (the interning tables
    /// in `recmod-syntax` are untouched).
    pub fn clear_caches(&self) {
        self.whnf_cache.borrow_mut().clear();
        self.equiv_cache.borrow_mut().clear();
    }

    /// Re-arms the checker for a fresh run under new [`Limits`] while
    /// keeping its memo tables **warm**: fuel and the live recursion
    /// depth reset, the deadline is the new one, but the whnf and
    /// equivalence caches (and the judgement counters) carry over.
    ///
    /// This is the batch driver's per-file reset. Reuse is sound
    /// because both caches are keyed by context stamps: the empty
    /// context is always stamp `0` (the same context in every file),
    /// and non-empty stamps are drawn from a thread-local counter that
    /// never repeats, so entries recorded under a previous file's
    /// non-empty contexts can never be looked up again.
    pub fn renew(&mut self, limits: Limits) {
        self.fuel.set(limits.fuel);
        self.budget.set(limits.fuel);
        self.depth.set(0);
        self.deadline_tick.set(0);
        self.limits = limits;
    }
}

/// RAII token for one level of kernel recursion (see [`Tc::descend`]).
#[derive(Debug)]
pub struct DepthGuard<'a> {
    depth: &'a Cell<usize>,
}

impl Drop for DepthGuard<'_> {
    fn drop(&mut self) {
        self.depth.set(self.depth.get().saturating_sub(1));
    }
}

pub(crate) mod show {
    //! Pretty-printing helpers for error payloads.
    use recmod_syntax::ast::{Con, Kind, Module, Sig, Term, Ty};
    use recmod_syntax::pretty;

    pub fn kind(k: &Kind) -> String {
        pretty::kind_to_string(k, &mut pretty::Names::new())
    }
    pub fn con(c: &Con) -> String {
        pretty::con_to_string(c, &mut pretty::Names::new())
    }
    pub fn ty(t: &Ty) -> String {
        pretty::ty_to_string(t, &mut pretty::Names::new())
    }
    pub fn term(e: &Term) -> String {
        pretty::term_to_string(e, &mut pretty::Names::new())
    }
    pub fn sig(s: &Sig) -> String {
        pretty::sig_to_string(s, &mut pretty::Names::new())
    }
    pub fn module(m: &Module) -> String {
        pretty::module_to_string(m, &mut pretty::Names::new())
    }
}

#[cfg(test)]
mod renew_tests {
    use super::*;
    use recmod_syntax::ast::Kind;
    use recmod_syntax::dsl::{cvar, mu, q};

    #[test]
    fn renew_resets_budget_but_keeps_caches_warm() {
        let mut tc = Tc::new();
        let mut ctx = Ctx::new();
        let c = mu(q(Con::Int), cvar(0));
        tc.con_equiv(&mut ctx, &c, &Con::Int, &Kind::Type).unwrap();
        let spent = DEFAULT_FUEL - tc.fuel();
        assert!(spent > 0, "the check must burn fuel");

        tc.renew(Limits::default().with_fuel(1_000));
        assert_eq!(tc.fuel(), 1_000);
        assert_eq!(tc.fuel_budget(), 1_000);

        // The same empty-context query again: the warm caches answer it
        // with a cache hit rather than re-deriving.
        let before = tc.stats();
        tc.con_equiv(&mut ctx, &c, &Con::Int, &Kind::Type).unwrap();
        let delta = tc.stats().delta_since(&before);
        assert!(
            delta.equiv_cache_hits > 0 || delta.whnf_cache_hits > 0,
            "renew must not clear the memo tables: {delta:?}"
        );
    }

    #[test]
    fn renew_resets_live_depth() {
        let mut tc = Tc::new();
        {
            // Simulates a worker abandoning an aborted file mid-guard:
            // leak the guards so the live depth stays raised.
            let g1 = tc.descend("test").unwrap();
            let g2 = tc.descend("test").unwrap();
            std::mem::forget((g1, g2));
        }
        assert_eq!(tc.depth.get(), 2);
        tc.renew(Limits::default());
        assert_eq!(tc.depth.get(), 0);
        assert!(tc.descend("test").is_ok());
    }
}
