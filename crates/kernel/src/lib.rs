//! # recmod-kernel
//!
//! The typechecker for the internal language of Crary, Harper, and Puri's
//! *"What is a Recursive Module?"* (PLDI 1999): the phase-distinction
//! calculus (a predicative variant of Fω with singleton kinds) extended
//! with equi-recursive constructors, a valuability-restricted term-level
//! fixed point, the structure calculus, recursive modules `fix(s:S.M)`,
//! and recursively-dependent signatures `ρs.S`.
//!
//! The entry point is [`Tc`], which carries the recursion mode and a fuel
//! budget and exposes one method per judgement of the paper's appendix:
//!
//! | Paper judgement | Method |
//! |---|---|
//! | `Γ ⊢ κ kind` | [`Tc::wf_kind`] |
//! | `Γ ⊢ κ₁ = κ₂` | [`Tc::kind_eq`] |
//! | `Γ ⊢ κ₁ ≤ κ₂` | [`Tc::subkind`] |
//! | `Γ ⊢ c : κ` | [`Tc::synth_con`] / [`Tc::check_con`] |
//! | `Γ ⊢ c₁ = c₂ : κ` | [`Tc::con_equiv`] |
//! | `Γ ⊢ σ type` | [`Tc::wf_ty`] |
//! | `Γ ⊢ σ₁ = σ₂ type` | [`Tc::ty_eq`] |
//! | `Γ ⊢ e : σ` and `Γ ⊢ e ⇓ σ` | [`Tc::synth_term`] (returns valuability) |
//! | `Γ ⊢ S sig`, `Γ ⊢ S₁ ≤ S₂` | [`Tc::wf_sig`], [`Tc::sig_sub`] |
//! | `Γ ⊢ M : S` and `Γ ⊢ M ⇓ S` | [`Tc::synth_module`] |
//!
//! # Example
//!
//! The paper's §2.1 observation that `μα:Q(int).α` is equal to `int`:
//!
//! ```
//! use recmod_kernel::{Tc, Ctx};
//! use recmod_syntax::ast::{Con, Kind};
//! use recmod_syntax::dsl::{mu, q, cvar};
//!
//! let tc = Tc::new();
//! let mut ctx = Ctx::new();
//! let c = mu(q(Con::Int), cvar(0));
//! tc.con_equiv(&mut ctx, &c, &Con::Int, &Kind::Type).unwrap();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod con;
pub mod ctx;
pub mod equiv;
pub mod error;
pub mod kind;
pub mod module;
pub mod nbe;
pub mod sig;
pub mod singleton;
pub mod stats;
pub mod term;
pub mod termeq;
pub mod ty;
pub mod whnf;

use recmod_syntax::fxhash::{FxHashMap, FxHashSet};
use std::cell::{Cell, RefCell};
use std::sync::OnceLock;

use recmod_syntax::ast::{Con, Kind};
use recmod_syntax::intern::NodeId;

pub use ctx::{Ctx, Entry};
pub use error::{raise, TcResult, TypeError};
pub use recmod_telemetry::{LimitExceeded, LimitKind, Limits};
pub use stats::{FuelOp, KernelStats, TcStats};

/// How recursive constructors are treated by definitional equality.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RecMode {
    /// Equi-recursive (the paper's primary system, §2.1): `μα:κ.c` is
    /// definitionally equal to its unrolling.
    #[default]
    Equi,
    /// Iso-recursive without Shao's equation: `μ` constructors are equal
    /// only by congruence; `roll`/`unroll` are required coercions.
    Iso,
    /// Iso-recursive *with* Shao's equation (paper §5):
    /// `μα.c(α) ≡ μα.c(μα.c(α))`, realized by a bisimulation that
    /// compares the unrollings of two `μ` constructors — but never
    /// equates a `μ` with a non-`μ`.
    IsoShao,
}

/// Which weak-head normalization engine drives equivalence checking.
///
/// Both engines implement the same reduction relation and are held to
/// identical verdicts, error codes, and diagnostics by the
/// `nbe-differential` fuzz class; they differ only in *how* they reduce
/// (and therefore in fuel and counter accounting).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EquivEngine {
    /// The NbE-style environment machine ([`nbe`], S17): β never
    /// substitutes, arguments are suspended as closures in a per-`Tc`
    /// bump arena, and syntax is quoted back only at stuck points.
    /// Also enables the kind-synthesis memo. The default.
    #[default]
    Nbe,
    /// The substitution-driven reference engine (pre-S17), kept alive
    /// behind `RECMOD_EQUIV=subst` for differential testing.
    Subst,
}

impl EquivEngine {
    /// The engine's stable name, as reported in `--stats` output.
    pub fn name(self) -> &'static str {
        match self {
            EquivEngine::Nbe => "nbe",
            EquivEngine::Subst => "subst",
        }
    }
}

thread_local! {
    static ENGINE_OVERRIDE: Cell<Option<EquivEngine>> = const { Cell::new(None) };
}

/// Forces every subsequently constructed [`Tc`] **on this thread** to
/// use `engine`; pass `None` to restore the `RECMOD_EQUIV` / default
/// resolution. Used by the differential fuzzer and the benchmark
/// harness, which must run both engines in one process.
pub fn set_thread_engine(engine: Option<EquivEngine>) {
    ENGINE_OVERRIDE.with(|c| c.set(engine));
}

fn env_default_engine() -> EquivEngine {
    static FROM_ENV: OnceLock<EquivEngine> = OnceLock::new();
    *FROM_ENV.get_or_init(|| match std::env::var("RECMOD_EQUIV") {
        Ok(v) if v.eq_ignore_ascii_case("subst") => EquivEngine::Subst,
        _ => EquivEngine::Nbe,
    })
}

/// The engine a fresh [`Tc`] would use right now: the thread override
/// if set, else `RECMOD_EQUIV` (read once per process), else
/// [`EquivEngine::Nbe`].
pub fn resolve_engine() -> EquivEngine {
    ENGINE_OVERRIDE
        .with(Cell::get)
        .unwrap_or_else(env_default_engine)
}

/// The default fuel budget for normalization and equivalence checking.
pub const DEFAULT_FUEL: u64 = 5_000_000;

/// The typechecker: recursion mode plus a fuel budget.
///
/// Fuel bounds the total number of weak-head steps and coinductive
/// equivalence expansions across a checking run; exhausting it yields
/// [`TypeError::FuelExhausted`] rather than divergence. (Decidability of
/// equi-recursive equivalence at higher kinds is open — paper §5.)
#[derive(Debug)]
pub struct Tc {
    mode: RecMode,
    engine: EquivEngine,
    fuel: Cell<u64>,
    budget: Cell<u64>,
    limits: Limits,
    depth: Cell<usize>,
    deadline_tick: Cell<u32>,
    stats: stats::TcStats,
    /// Transient environment nodes for the NbE machine — recycled
    /// between runs, never interned (see [`nbe`]).
    nbe: nbe::Arena,
    /// Weak-head normal forms, keyed by (context stamp, constructor id).
    /// Sound because a stamp names one exact declaration stack and
    /// interned ids name one exact constructor (see [`Ctx::stamp`]).
    whnf_cache: RefCell<FxHashMap<(u64, NodeId), Con>>,
    /// Proven kind-`T` equalities, keyed by (context stamp, lhs id,
    /// rhs id). Only populated from *successful* root equivalence runs
    /// (a coinductive assumption is a fact once the run it served in
    /// closes — Brandt–Henglein), and only at kind `T`: at `1` and
    /// singleton kinds everything is equal, so caching there would be
    /// vacuous, and `Π`/`Σ` comparisons decompose before reaching the
    /// table.
    equiv_cache: RefCell<FxHashSet<(u64, NodeId, NodeId)>>,
    /// Memoized kind synthesis, keyed like the whnf cache. Only
    /// consulted under [`EquivEngine::Nbe`] (the substitution engine
    /// stays byte-for-byte the pre-S17 reference): synthesis is
    /// deterministic and a stamp names one exact declaration stack, so
    /// a cached kind is always the kind synthesis would recompute.
    /// Errors are never cached.
    synth_cache: RefCell<FxHashMap<(u64, NodeId), Kind>>,
    /// Memoized contractiveness verdicts, keyed by μ constructor id
    /// alone — [`whnf::is_contractive`] is a pure function of the node,
    /// independent of context, mode, and engine. Brandt–Henglein
    /// re-tests the same μ on every coinductive step, and each raw test
    /// rebuilds the body's deferral graph, so this single bit per node
    /// is one of the larger S17 wins on μ-heavy programs.
    mu_contractive: RefCell<FxHashMap<NodeId, bool>>,
    /// Memoized one-step μ-unrollings (`μα:κ.c ↦ c[μα:κ.c/α]`), keyed
    /// by μ constructor id. Also context-free. Interned ids are never
    /// reused, so an id that hits always names the identical live node;
    /// both tables therefore stay warm across [`Tc::renew`] (bounded by
    /// [`CACHE_CAP`]) — exactly what a serve worker re-checking the
    /// same recursive signatures wants.
    mu_unroll: RefCell<FxHashMap<NodeId, Con>>,
}

/// Caches are cleared once they pass this many entries — a crude bound
/// that keeps a long-lived [`Tc`] from growing without limit while
/// leaving the steady-state hit rate intact for realistic sessions.
const CACHE_CAP: usize = 1 << 16;

impl Default for Tc {
    fn default() -> Self {
        Self::new()
    }
}

impl Tc {
    /// A checker in equi-recursive mode with the default fuel budget.
    pub fn new() -> Self {
        Self::with_mode(RecMode::Equi)
    }

    /// A checker with an explicit recursion mode.
    pub fn with_mode(mode: RecMode) -> Self {
        Self::with_mode_and_fuel(mode, DEFAULT_FUEL)
    }

    /// A checker in equi-recursive mode with an explicit fuel budget.
    pub fn with_fuel(fuel: u64) -> Self {
        Self::with_mode_and_fuel(RecMode::Equi, fuel)
    }

    /// A checker with both an explicit mode and an explicit fuel budget.
    pub fn with_mode_and_fuel(mode: RecMode, fuel: u64) -> Self {
        Self::with_mode_and_limits(mode, Limits::default().with_fuel(fuel))
    }

    /// A checker in equi-recursive mode with explicit [`Limits`].
    pub fn with_limits(limits: Limits) -> Self {
        Self::with_mode_and_limits(RecMode::Equi, limits)
    }

    /// A checker with an explicit mode and explicit [`Limits`]. The
    /// kernel honors the fuel, recursion-depth, and deadline bounds.
    /// The equivalence engine comes from [`resolve_engine`].
    pub fn with_mode_and_limits(mode: RecMode, limits: Limits) -> Self {
        Self::with_engine(resolve_engine(), mode, limits)
    }

    /// A checker with every knob explicit, forcing a particular
    /// [`EquivEngine`] regardless of `RECMOD_EQUIV` or the thread
    /// override (used by the differential rigs).
    pub fn with_engine(engine: EquivEngine, mode: RecMode, limits: Limits) -> Self {
        Tc {
            mode,
            engine,
            fuel: Cell::new(limits.fuel),
            budget: Cell::new(limits.fuel),
            limits,
            depth: Cell::new(0),
            deadline_tick: Cell::new(0),
            stats: stats::TcStats::default(),
            nbe: nbe::Arena::default(),
            whnf_cache: RefCell::new(FxHashMap::default()),
            equiv_cache: RefCell::new(FxHashSet::default()),
            synth_cache: RefCell::new(FxHashMap::default()),
            mu_contractive: RefCell::new(FxHashMap::default()),
            mu_unroll: RefCell::new(FxHashMap::default()),
        }
    }

    /// The recursion mode in force.
    pub fn mode(&self) -> RecMode {
        self.mode
    }

    /// The equivalence engine in force (fixed at construction).
    pub fn engine(&self) -> EquivEngine {
        self.engine
    }

    /// The resource limits in force.
    pub fn limits(&self) -> &Limits {
        &self.limits
    }

    /// Remaining fuel.
    pub fn fuel(&self) -> u64 {
        self.fuel.get()
    }

    /// The budget fuel was last reset to (reported on exhaustion).
    pub fn fuel_budget(&self) -> u64 {
        self.budget.get()
    }

    /// Resets the fuel budget (e.g. between top-level declarations).
    pub fn set_fuel(&self, fuel: u64) {
        self.fuel.set(fuel);
        self.budget.set(fuel);
    }

    /// A snapshot of the judgement counters accumulated so far.
    pub fn stats(&self) -> stats::KernelStats {
        self.stats.snapshot()
    }

    /// Zeroes the judgement counters (fuel itself is left alone).
    pub fn reset_stats(&self) {
        self.stats.reset();
    }

    pub(crate) fn burn(&self, op: stats::FuelOp) -> TcResult<()> {
        self.stats.record_fuel(op);
        let f = self.fuel.get();
        if f == 0 {
            return raise(TypeError::FuelExhausted {
                op: op.name(),
                budget: self.budget.get(),
                top: self.stats.top_fuel(3),
            });
        }
        self.fuel.set(f - 1);
        // Deadlines are wall-clock, so amortize the clock read over many
        // fuel units; 1024 keeps the added latency under a millisecond
        // even for very short deadlines.
        let tick = self.deadline_tick.get().wrapping_add(1);
        self.deadline_tick.set(tick);
        if tick.is_multiple_of(1024) && self.limits.deadline_passed() {
            return raise(TypeError::Limit(self.limits.deadline_error("kernel")));
        }
        Ok(())
    }

    /// Enters one level of structural recursion in judgement `stage`,
    /// returning a guard that leaves it again on drop. Every recursive
    /// judgement of the kernel calls this, so arbitrarily deep input
    /// syntax produces [`TypeError::Limit`] instead of exhausting the
    /// host stack.
    ///
    /// # Errors
    ///
    /// Fails with [`TypeError::Limit`] once `max_depth` levels are live.
    pub fn descend(&self, stage: &'static str) -> TcResult<DepthGuard<'_>> {
        let d = self.depth.get();
        if d >= self.limits.max_depth {
            return raise(TypeError::Limit(self.limits.depth_error(stage)));
        }
        self.depth.set(d + 1);
        Ok(DepthGuard { depth: &self.depth })
    }

    pub(crate) fn stat_cells(&self) -> &stats::TcStats {
        &self.stats
    }

    pub(crate) fn nbe_arena(&self) -> &nbe::Arena {
        &self.nbe
    }

    /// Looks up a memoized synthesized kind (NbE engine only).
    pub(crate) fn synth_cached(&self, key: (u64, NodeId)) -> Option<Kind> {
        if self.engine != EquivEngine::Nbe {
            return None;
        }
        self.synth_cache.borrow().get(&key).cloned()
    }

    /// Records a synthesized kind (NbE engine only; clearing the table
    /// first when it has outgrown [`CACHE_CAP`]).
    pub(crate) fn synth_remember(&self, key: (u64, NodeId), value: Kind) {
        if self.engine != EquivEngine::Nbe {
            return;
        }
        let mut t = self.synth_cache.borrow_mut();
        if t.len() >= CACHE_CAP {
            t.clear();
        }
        t.insert(key, value);
    }

    /// Looks up a memoized weak-head normal form.
    pub(crate) fn whnf_cached(&self, key: (u64, NodeId)) -> Option<Con> {
        self.whnf_cache.borrow().get(&key).cloned()
    }

    /// Records a weak-head normal form (clearing the table first when it
    /// has outgrown [`CACHE_CAP`]).
    pub(crate) fn whnf_remember(&self, key: (u64, NodeId), value: Con) {
        let mut t = self.whnf_cache.borrow_mut();
        if t.len() >= CACHE_CAP {
            t.clear();
        }
        t.insert(key, value);
    }

    /// [`whnf::is_contractive`], memoized per interned node. The raw
    /// test walks the μ body to build its deferral graph; every
    /// equivalence step and every elimination-position unroll re-asks,
    /// so the answer is cached under the node's id (contractiveness is
    /// a pure function of the node — no context, mode, or engine in
    /// play). A non-μ answers `false` without touching the table.
    pub(crate) fn is_contractive_cached(&self, c: &Con) -> bool {
        if !matches!(c, Con::Mu(_, _)) {
            return false;
        }
        let id = recmod_syntax::intern::hc(c.clone()).id();
        if let Some(&v) = self.mu_contractive.borrow().get(&id) {
            return v;
        }
        let v = whnf::is_contractive(c);
        let mut t = self.mu_contractive.borrow_mut();
        if t.len() >= CACHE_CAP {
            t.clear();
        }
        t.insert(id, v);
        v
    }

    /// [`whnf::unroll_mu`], memoized per interned node — the unrolling
    /// substitution is likewise context-free, and Brandt–Henglein
    /// unrolls the same μ once per coinductive assumption that involves
    /// it.
    ///
    /// # Errors
    ///
    /// As for [`whnf::unroll_mu`]: `c` must be a μ (errors are not
    /// cached; the non-μ case is a caller bug surfaced as a
    /// diagnostic).
    pub(crate) fn unroll_mu_cached(&self, c: &Con) -> error::TcResult<Con> {
        let id = recmod_syntax::intern::hc(c.clone()).id();
        if let Some(u) = self.mu_unroll.borrow().get(&id) {
            return Ok(u.clone());
        }
        let u = whnf::unroll_mu(c)?;
        let mut t = self.mu_unroll.borrow_mut();
        if t.len() >= CACHE_CAP {
            t.clear();
        }
        t.insert(id, u.clone());
        Ok(u)
    }

    /// Has this kind-`T` equality already been proven?
    pub(crate) fn equiv_cached(&self, key: (u64, NodeId, NodeId)) -> bool {
        self.equiv_cache.borrow().contains(&key)
    }

    /// Records proven kind-`T` equalities (both orientations — the
    /// judgement is symmetric).
    pub(crate) fn equiv_remember(&self, stamp: u64, a: NodeId, b: NodeId) {
        let mut t = self.equiv_cache.borrow_mut();
        if t.len() >= CACHE_CAP {
            t.clear();
        }
        t.insert((stamp, a, b));
        t.insert((stamp, b, a));
    }

    /// Drops every memoized whnf/equivalence/synthesis entry and the
    /// NbE transient arena (the interning tables in `recmod-syntax`
    /// are untouched).
    pub fn clear_caches(&self) {
        self.whnf_cache.borrow_mut().clear();
        self.equiv_cache.borrow_mut().clear();
        self.synth_cache.borrow_mut().clear();
        self.mu_contractive.borrow_mut().clear();
        self.mu_unroll.borrow_mut().clear();
        self.nbe.reset();
    }

    /// Re-arms the checker for a fresh run under new [`Limits`] while
    /// keeping its memo tables **warm**: fuel and the live recursion
    /// depth reset, the deadline is the new one, but the whnf,
    /// equivalence, and kind-synthesis caches (and the judgement
    /// counters) carry over. The NbE environment arena, by contrast,
    /// is *reset* — environments are transients of a single machine
    /// run and must never survive a re-arm (a run abandoned by a
    /// worker panic could otherwise leave nodes behind).
    ///
    /// This is the batch driver's per-file reset. Reuse is sound
    /// because all three caches are keyed by context stamps: the empty
    /// context is always stamp `0` (the same context in every file),
    /// and non-empty stamps are drawn from a thread-local counter that
    /// never repeats, so entries recorded under a previous file's
    /// non-empty contexts can never be looked up again.
    ///
    /// Because those non-zero-stamp entries are unreachable, `renew`
    /// *prunes* them: every surviving hit a warm run could ever see is
    /// on a stamp-`0` entry, and the dead entries' `HC` pointers would
    /// otherwise pin interned nodes forever — a long-lived serve
    /// worker's tables would ratchet upward with every request even
    /// though its live working set is flat.
    /// The μ-memo tables (contractiveness, unrollings) are keyed by
    /// node id alone — context-free facts — so they carry over without
    /// pruning; [`CACHE_CAP`] bounds them instead.
    pub fn renew(&mut self, limits: Limits) {
        self.fuel.set(limits.fuel);
        self.budget.set(limits.fuel);
        self.depth.set(0);
        self.deadline_tick.set(0);
        self.limits = limits;
        self.nbe.reset();
        self.whnf_cache.borrow_mut().retain(|(s, _), _| *s == 0);
        self.equiv_cache.borrow_mut().retain(|(s, _, _)| *s == 0);
        self.synth_cache.borrow_mut().retain(|(s, _), _| *s == 0);
    }
}

/// RAII token for one level of kernel recursion (see [`Tc::descend`]).
#[derive(Debug)]
pub struct DepthGuard<'a> {
    depth: &'a Cell<usize>,
}

impl Drop for DepthGuard<'_> {
    fn drop(&mut self) {
        self.depth.set(self.depth.get().saturating_sub(1));
    }
}

pub(crate) mod show {
    //! Pretty-printing helpers for error payloads.
    use recmod_syntax::ast::{Con, Kind, Module, Sig, Term, Ty};
    use recmod_syntax::pretty;

    pub fn kind(k: &Kind) -> String {
        pretty::kind_to_string(k, &mut pretty::Names::new())
    }
    pub fn con(c: &Con) -> String {
        pretty::con_to_string(c, &mut pretty::Names::new())
    }
    pub fn ty(t: &Ty) -> String {
        pretty::ty_to_string(t, &mut pretty::Names::new())
    }
    pub fn term(e: &Term) -> String {
        pretty::term_to_string(e, &mut pretty::Names::new())
    }
    pub fn sig(s: &Sig) -> String {
        pretty::sig_to_string(s, &mut pretty::Names::new())
    }
    pub fn module(m: &Module) -> String {
        pretty::module_to_string(m, &mut pretty::Names::new())
    }
}

#[cfg(test)]
mod renew_tests {
    use super::*;
    use recmod_syntax::ast::Kind;
    use recmod_syntax::dsl::{cvar, mu, q};

    #[test]
    fn renew_resets_budget_but_keeps_caches_warm() {
        let mut tc = Tc::new();
        let mut ctx = Ctx::new();
        let c = mu(q(Con::Int), cvar(0));
        tc.con_equiv(&mut ctx, &c, &Con::Int, &Kind::Type).unwrap();
        let spent = DEFAULT_FUEL - tc.fuel();
        assert!(spent > 0, "the check must burn fuel");

        tc.renew(Limits::default().with_fuel(1_000));
        assert_eq!(tc.fuel(), 1_000);
        assert_eq!(tc.fuel_budget(), 1_000);

        // The same empty-context query again: the warm caches answer it
        // with a cache hit rather than re-deriving.
        let before = tc.stats();
        tc.con_equiv(&mut ctx, &c, &Con::Int, &Kind::Type).unwrap();
        let delta = tc.stats().delta_since(&before);
        assert!(
            delta.equiv_cache_hits > 0 || delta.whnf_cache_hits > 0,
            "renew must not clear the memo tables: {delta:?}"
        );
    }

    #[test]
    fn renew_prunes_dead_stamp_entries_but_keeps_the_empty_context_warm() {
        let mut tc = Tc::new();
        let mut ctx = Ctx::new();
        // Empty-context work populates stamp-0 entries …
        let c = mu(q(Con::Int), cvar(0));
        tc.con_equiv(&mut ctx, &c, &Con::Int, &Kind::Type).unwrap();
        // … and work under a binder records dead-stamp entries.
        ctx.with_con(q(Con::Bool), |ctx| {
            tc.con_equiv(ctx, &cvar(0), &Con::Bool, &Kind::Type)
                .unwrap();
        });
        let dead = tc.whnf_cache.borrow().keys().any(|(s, _)| *s != 0)
            || tc.synth_cache.borrow().keys().any(|(s, _)| *s != 0)
            || tc.equiv_cache.borrow().iter().any(|(s, _, _)| *s != 0);
        assert!(dead, "a binder-scoped query must record non-zero stamps");

        tc.renew(Limits::default());
        assert!(tc.whnf_cache.borrow().keys().all(|(s, _)| *s == 0));
        assert!(tc.synth_cache.borrow().keys().all(|(s, _)| *s == 0));
        assert!(tc.equiv_cache.borrow().iter().all(|(s, _, _)| *s == 0));
        let warm = !tc.whnf_cache.borrow().is_empty()
            || !tc.equiv_cache.borrow().is_empty()
            || !tc.synth_cache.borrow().is_empty();
        assert!(warm, "stamp-0 entries must survive the pruning");
    }

    #[test]
    fn renewed_checker_does_not_reuse_entries_from_a_previous_run_context() {
        let mut tc = Tc::new();
        let mut ctx = Ctx::new();
        // Run 1: under α : Q(int), α ≡ int holds and is memoized.
        ctx.with_con(q(Con::Int), |ctx| {
            tc.con_equiv(ctx, &cvar(0), &Con::Int, &Kind::Type).unwrap();
        });
        tc.renew(Limits::default());
        // Run 2: the same query *shape* under α : Q(bool) must fail. A
        // memo entry surviving renew in a form the new run can hit
        // (e.g. keyed without a fresh context stamp) would accept it.
        let mut ctx2 = Ctx::new();
        ctx2.with_con(q(Con::Bool), |ctx| {
            assert!(
                tc.con_equiv(ctx, &cvar(0), &Con::Int, &Kind::Type).is_err(),
                "stale equivalence survived Tc::renew"
            );
        });
    }

    #[test]
    fn renew_resets_live_depth() {
        let mut tc = Tc::new();
        {
            // Simulates a worker abandoning an aborted file mid-guard:
            // leak the guards so the live depth stays raised.
            let g1 = tc.descend("test").unwrap();
            let g2 = tc.descend("test").unwrap();
            std::mem::forget((g1, g2));
        }
        assert_eq!(tc.depth.get(), 2);
        tc.renew(Limits::default());
        assert_eq!(tc.depth.get(), 0);
        assert!(tc.descend("test").is_ok());
    }
}
