//! Term equality (paper appendix A.1, `Γ ⊢ e₁ = e₂ : σ`).
//!
//! The appendix axiomatizes a βη equational theory over terms (with a
//! `fix`-unrolling rule). Full equality is undecidable, so this module
//! provides a **sound, incomplete** decision procedure adequate for the
//! equations the paper actually uses (the definitional extensions of
//! Figures 4 and 5, and the β/η axioms):
//!
//! * weak-head β-reduction: `(λx.e)v`, `π((e₁,e₂))`, `(Λα.e)[c]`,
//!   `let`, `if` and `case` on literal scrutinees, primops on literals,
//!   `unroll (roll e)`;
//! * η for functions, pairs, and constructor abstractions;
//! * congruence elsewhere; `fix` is compared by congruence only (no
//!   unrolling — that rule is the undecidable one);
//! * embedded constructors are compared with the kind-directed
//!   equivalence of [`crate::equiv`] **at kind `T`** (annotations in
//!   checking positions are compared as types).
//!
//! A failure verdict means "not provably equal by this procedure", not
//! a semantic inequality.

use recmod_syntax::ast::{Con, Term, Ty};
use recmod_syntax::subst::{shift_term, subst_con_term, subst_term_term};

use crate::ctx::Ctx;
use crate::error::{raise, TcResult, TypeError};
use crate::show;
use crate::Tc;

impl Tc {
    /// `Γ ⊢ e₁ = e₂` — bounded βη equality (see module docs). The terms
    /// are assumed well-typed at a common type.
    pub fn term_eq(&self, ctx: &mut Ctx, e1: &Term, e2: &Term) -> TcResult<()> {
        let _j = recmod_telemetry::judgement_span("kernel.term_eq");
        let _depth = self.descend("term_eq")?;
        self.burn(crate::stats::FuelOp::TermEq)?;
        let a = self.term_whnf(e1)?;
        let b = self.term_whnf(e2)?;
        match (&a, &b) {
            _ if a == b => Ok(()),
            (Term::Var(i), Term::Var(j)) | (Term::Snd(i), Term::Snd(j)) if i == j => Ok(()),
            (Term::Lam(t1, b1), Term::Lam(t2, b2)) => {
                self.ty_eq(ctx, t1, t2)?;
                ctx.with_term((**t1).clone(), true, |ctx| self.term_eq(ctx, b1, b2))
            }
            // η: λx. e x = e
            (Term::Lam(t, body), other) | (other, Term::Lam(t, body)) => {
                let expanded = Term::App(Box::new(shift_term(other, 1, 0)), Box::new(Term::Var(0)));
                ctx.with_term((**t).clone(), true, |ctx| {
                    self.term_eq(ctx, body, &expanded)
                })
            }
            (Term::TLam(k1, b1), Term::TLam(k2, b2)) => {
                self.kind_eq(ctx, k1, k2)?;
                ctx.with_con((**k1).clone(), |ctx| self.term_eq(ctx, b1, b2))
            }
            (Term::Pair(a1, b1), Term::Pair(a2, b2)) => {
                self.term_eq(ctx, a1, a2)?;
                self.term_eq(ctx, b1, b2)
            }
            // η: (π₁ e, π₂ e) = e
            (Term::Pair(l, r), other) | (other, Term::Pair(l, r)) => {
                self.term_eq(ctx, l, &Term::Proj1(Box::new(other.clone())))?;
                self.term_eq(ctx, r, &Term::Proj2(Box::new(other.clone())))
            }
            (Term::App(f1, a1), Term::App(f2, a2)) => {
                self.term_eq(ctx, f1, f2)?;
                self.term_eq(ctx, a1, a2)
            }
            (Term::Proj1(x), Term::Proj1(y)) | (Term::Proj2(x), Term::Proj2(y)) => {
                self.term_eq(ctx, x, y)
            }
            (Term::TApp(f1, c1), Term::TApp(f2, c2)) => {
                self.term_eq(ctx, f1, f2)?;
                self.con_equiv(ctx, c1, c2, &recmod_syntax::ast::Kind::Type)
            }
            (Term::Fix(t1, b1), Term::Fix(t2, b2)) => {
                self.ty_eq(ctx, t1, t2)?;
                ctx.with_term((**t1).clone(), false, |ctx| self.term_eq(ctx, b1, b2))
            }
            (Term::Prim(o1, xs), Term::Prim(o2, ys)) if o1 == o2 && xs.len() == ys.len() => {
                for (x, y) in xs.iter().zip(ys) {
                    self.term_eq(ctx, x, y)?;
                }
                Ok(())
            }
            (Term::If(c1, t1, f1), Term::If(c2, t2, f2)) => {
                self.term_eq(ctx, c1, c2)?;
                self.term_eq(ctx, t1, t2)?;
                self.term_eq(ctx, f1, f2)
            }
            (Term::Inj(i, c1, x), Term::Inj(j, c2, y)) if i == j => {
                self.con_equiv(ctx, c1, c2, &recmod_syntax::ast::Kind::Type)?;
                self.term_eq(ctx, x, y)
            }
            (Term::Case(s1, bs1), Term::Case(s2, bs2)) if bs1.len() == bs2.len() => {
                self.term_eq(ctx, s1, s2)?;
                for (x, y) in bs1.iter().zip(bs2) {
                    // Branch payload types are not tracked here; compare
                    // under an uninformative binder.
                    ctx.with_term(Ty::Unit, true, |ctx| self.term_eq(ctx, x, y))?;
                }
                Ok(())
            }
            (Term::Roll(c1, x), Term::Roll(c2, y)) => {
                self.con_equiv(ctx, c1, c2, &recmod_syntax::ast::Kind::Type)?;
                self.term_eq(ctx, x, y)
            }
            (Term::Unroll(x), Term::Unroll(y)) => self.term_eq(ctx, x, y),
            (Term::Fail(t1), Term::Fail(t2)) => self.ty_eq(ctx, t1, t2),
            (Term::Let(x1, b1), Term::Let(x2, b2)) => {
                self.term_eq(ctx, x1, x2)?;
                ctx.with_term(Ty::Unit, true, |ctx| self.term_eq(ctx, b1, b2))
            }
            _ => raise(TypeError::Other(format!(
                "terms are not provably equal: {} vs {}",
                show::term(&a),
                show::term(&b)
            ))),
        }
    }

    /// Weak-head β-reduction on terms (no `fix` unrolling).
    pub fn term_whnf(&self, e: &Term) -> TcResult<Term> {
        let mut cur = e.clone();
        loop {
            self.burn(crate::stats::FuelOp::TermNorm)?;
            match cur {
                Term::App(f, a) => {
                    let f = self.term_whnf(&f)?;
                    match f {
                        Term::Lam(_, body) if is_value(&a) => {
                            cur = subst_term_term(&body, &a);
                        }
                        other => return Ok(Term::App(Box::new(other), a)),
                    }
                }
                Term::Proj1(p) => {
                    let p = self.term_whnf(&p)?;
                    match p {
                        Term::Pair(l, _) => cur = *l,
                        other => return Ok(Term::Proj1(Box::new(other))),
                    }
                }
                Term::Proj2(p) => {
                    let p = self.term_whnf(&p)?;
                    match p {
                        Term::Pair(_, r) => cur = *r,
                        other => return Ok(Term::Proj2(Box::new(other))),
                    }
                }
                Term::TApp(f, c) => {
                    let f = self.term_whnf(&f)?;
                    match f {
                        Term::TLam(_, body) => cur = subst_con_term(&body, &c),
                        other => return Ok(Term::TApp(Box::new(other), c)),
                    }
                }
                Term::Let(x, body) => {
                    if is_value(&x) {
                        cur = subst_term_term(&body, &x);
                    } else {
                        return Ok(Term::Let(x, body));
                    }
                }
                Term::If(c, t, f) => {
                    let c = self.term_whnf(&c)?;
                    match c {
                        Term::BoolLit(true) => cur = *t,
                        Term::BoolLit(false) => cur = *f,
                        other => return Ok(Term::If(Box::new(other), t, f)),
                    }
                }
                Term::Case(s, branches) => {
                    let s = self.term_whnf(&s)?;
                    match s {
                        Term::Inj(i, _, payload) if is_value(&payload) => {
                            let Some(branch) = branches.get(i) else {
                                return raise(TypeError::Other(
                                    "case branch index out of range".to_string(),
                                ));
                            };
                            cur = subst_term_term(branch, &payload);
                        }
                        other => return Ok(Term::Case(Box::new(other), branches)),
                    }
                }
                Term::Unroll(x) => {
                    let x = self.term_whnf(&x)?;
                    match x {
                        Term::Roll(_, inner) => cur = *inner,
                        other => return Ok(Term::Unroll(Box::new(other))),
                    }
                }
                Term::Prim(op, args) => {
                    let xs: Vec<Term> = args
                        .iter()
                        .map(|a| self.term_whnf(a))
                        .collect::<TcResult<_>>()?;
                    if let [Term::IntLit(a), Term::IntLit(b)] = xs.as_slice() {
                        use recmod_syntax::ast::PrimOp;
                        cur = match op {
                            PrimOp::Add => Term::IntLit(a.wrapping_add(*b)),
                            PrimOp::Sub => Term::IntLit(a.wrapping_sub(*b)),
                            PrimOp::Mul => Term::IntLit(a.wrapping_mul(*b)),
                            PrimOp::Eq => Term::BoolLit(a == b),
                            PrimOp::Lt => Term::BoolLit(a < b),
                        };
                    } else {
                        return Ok(Term::Prim(op, xs));
                    }
                }
                other => return Ok(other),
            }
        }
    }
}

/// Syntactic values (for the β-value discipline: the appendix β rule
/// requires `Γ ⊢ e₁ ⇓`; syntactic valuehood is the sound approximation).
fn is_value(e: &Term) -> bool {
    match e {
        Term::Var(_)
        | Term::Star
        | Term::Lam(_, _)
        | Term::TLam(_, _)
        | Term::IntLit(_)
        | Term::BoolLit(_) => true,
        Term::Pair(a, b) => is_value(a) && is_value(b),
        Term::Inj(_, _, x) | Term::Roll(_, x) => is_value(x),
        _ => false,
    }
}

/// Module equality `Γ ⊢ M₁ = M₂ : S` (appendix A.2/A.3): compile-time
/// parts equal as constructors, run-time parts equal as terms — with
/// the non-standard Figure-4 equation built in by comparing the
/// *phase-split* dynamic parts. Lives here (not in the phase crate) in
/// spirit, but the splitting itself is provided by the caller to avoid
/// a dependency cycle; see `recmod-phase`'s `module_eq`.
pub fn parts_eq(
    tc: &Tc,
    ctx: &mut Ctx,
    (c1, e1): (&Con, &Term),
    (c2, e2): (&Con, &Term),
) -> TcResult<()> {
    tc.con_equiv(ctx, c1, c2, &recmod_syntax::ast::Kind::Type)
        .or_else(|_| {
            // Static parts need not be monotypes; fall back to kind
            // synthesis plus kind-directed comparison.
            let k = tc.synth_con(ctx, c1)?;
            tc.con_equiv(ctx, c1, c2, &k)
        })?;
    tc.term_eq(ctx, e1, e2)
}

#[cfg(test)]
mod tests {
    use super::*;
    use recmod_syntax::dsl::*;

    fn tc() -> Tc {
        Tc::new()
    }

    #[test]
    fn beta_for_functions() {
        // (λx:int. x + 1) 2 = 3
        let lhs = app(
            lam(
                tcon(Con::Int),
                prim(recmod_syntax::ast::PrimOp::Add, var(0), int(1)),
            ),
            int(2),
        );
        let mut ctx = Ctx::new();
        tc().term_eq(&mut ctx, &lhs, &int(3)).unwrap();
    }

    #[test]
    fn beta_for_pairs_and_projections() {
        let mut ctx = Ctx::new();
        tc().term_eq(&mut ctx, &proj1(pair(int(1), int(2))), &int(1))
            .unwrap();
        tc().term_eq(&mut ctx, &proj2(pair(int(1), int(2))), &int(2))
            .unwrap();
    }

    #[test]
    fn eta_for_functions() {
        // λx:int. f x = f   (f free)
        let mut ctx = Ctx::new();
        ctx.with_term(partial(tcon(Con::Int), tcon(Con::Int)), true, |ctx| {
            let eta = lam(tcon(Con::Int), app(var(1), var(0)));
            tc().term_eq(ctx, &eta, &var(0)).unwrap();
        });
    }

    #[test]
    fn eta_for_pairs() {
        let mut ctx = Ctx::new();
        ctx.with_term(tprod(tcon(Con::Int), tcon(Con::Int)), true, |ctx| {
            let eta = pair(proj1(var(0)), proj2(var(0)));
            tc().term_eq(ctx, &eta, &var(0)).unwrap();
        });
    }

    #[test]
    fn unroll_roll_cancels() {
        let m = mu(tkind(), csum([Con::UnitTy, cvar(0)]));
        let sum = csum([Con::UnitTy, m.clone()]);
        let e = unroll(roll(m, inj(0, sum.clone(), Term::Star)));
        let mut ctx = Ctx::new();
        tc().term_eq(&mut ctx, &e, &inj(0, sum, Term::Star))
            .unwrap();
    }

    #[test]
    fn fix_compared_by_congruence() {
        let body = lam(
            tcon(Con::Int),
            ite(
                prim(recmod_syntax::ast::PrimOp::Eq, var(0), int(0)),
                int(0),
                app(
                    var(1),
                    prim(recmod_syntax::ast::PrimOp::Sub, var(0), int(1)),
                ),
            ),
        );
        let f = fix(partial(tcon(Con::Int), tcon(Con::Int)), body.clone());
        let mut ctx = Ctx::new();
        tc().term_eq(&mut ctx, &f, &f.clone()).unwrap();
        // η alone proves λx. f x = f …
        let eta = lam(tcon(Con::Int), app(shift_term(&f, 1, 0), var(0)));
        tc().term_eq(&mut ctx, &f, &eta).unwrap();
        // … but the genuine *unrolling* (substituting f into its own
        // body) is not proven: that rule is the undecidable one and is
        // deliberately omitted.
        let unrolled = subst_term_term(&body, &f);
        assert!(tc().term_eq(&mut ctx, &f, &unrolled).is_err());
    }

    #[test]
    fn distinct_literals_differ() {
        let mut ctx = Ctx::new();
        assert!(tc().term_eq(&mut ctx, &int(1), &int(2)).is_err());
        assert!(tc().term_eq(&mut ctx, &boolean(true), &int(1)).is_err());
    }

    #[test]
    fn case_on_literal_scrutinee_reduces() {
        let sum = csum([Con::Int, Con::Bool]);
        let e = case(inj(0, sum, int(5)), [var(0), int(0)]);
        let mut ctx = Ctx::new();
        tc().term_eq(&mut ctx, &e, &int(5)).unwrap();
    }

    #[test]
    fn annotations_compared_up_to_equivalence() {
        // fail[Con(μα.int⇀α)] = fail[Con(int ⇀ μα.int⇀α)] — equal types.
        let m = mu(tkind(), carrow(Con::Int, cvar(0)));
        let u = carrow(Con::Int, m.clone());
        let mut ctx = Ctx::new();
        tc().term_eq(&mut ctx, &fail(tcon(m)), &fail(tcon(u)))
            .unwrap();
    }
}
