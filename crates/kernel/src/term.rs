//! Term typing and valuability (paper appendix A.1).
//!
//! [`Tc::synth_term`] computes both judgements of the paper at once: it
//! returns the principal type of the term *and* whether the term is
//! valuable (`Γ ⊢ e ⇓ σ`). The valuability discipline follows §2.1:
//!
//! * λ-abstractions are always valuable, "regardless of the state of
//!   their free variables";
//! * a λ whose *body* is valuable receives the **total** arrow type
//!   `σ → σ'`; otherwise the partial arrow `σ ⇀ σ'`;
//! * an application is valuable only when the function part is a valuable
//!   *total* function and the argument is valuable;
//! * the variable bound by `fix(x:σ.e)` is typeable but **not** valuable
//!   within `e` (`x ↑ σ`), and the body must be valuable — the value
//!   restriction that rules out cyclic data such as
//!   `fix(x:int list. 1 :: x)`;
//! * `fail` (the paper's `raise Fail`) is never valuable.

use recmod_syntax::ast::{Con, Kind, PrimOp, Sig, Term, Ty};
use recmod_syntax::subst::{shift_ty, subst_con_ty};

use crate::ctx::Ctx;
use crate::error::{raise, TcResult, TypeError};
use crate::show;
use crate::Tc;

/// The result of typechecking a term: its principal type and whether it
/// is valuable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Typing {
    /// The synthesized type.
    pub ty: Ty,
    /// `true` iff `Γ ⊢ e ⇓ σ` holds (terminating, effect-free).
    pub valuable: bool,
}

impl Typing {
    fn new(ty: Ty, valuable: bool) -> Self {
        Typing { ty, valuable }
    }
}

/// Removes the innermost binder from a type that cannot mention it
/// (types never depend on term or structure variables introduced by
/// `λ`/`let`/`case`).
fn strengthen_ty(t: &Ty) -> Ty {
    shift_ty(t, -1, 0)
}

impl Tc {
    /// `Γ ⊢ e : σ` and `Γ ⊢ e ⇓ σ` — synthesizes the principal type and
    /// valuability of `e`.
    pub fn synth_term(&self, ctx: &mut Ctx, e: &Term) -> TcResult<Typing> {
        let _j = recmod_telemetry::judgement_span("kernel.synth_term");
        let _depth = self.descend("synth_term")?;
        self.burn(crate::stats::FuelOp::TermTyping)?;
        let _trace = recmod_telemetry::trace_span(|| format!("{} : ?", crate::show::term(e)));
        match e {
            Term::Var(i) => {
                let (ty, valuable) = ctx.lookup_term(*i)?;
                Ok(Typing::new(ty, valuable))
            }
            Term::Snd(i) => {
                let (sig, valuable) = ctx.lookup_struct(*i)?;
                match sig {
                    Sig::Struct(_, t) => Ok(Typing::new(subst_con_ty(&t, &Con::Fst(*i)), valuable)),
                    s => raise(TypeError::Other(format!(
                        "structure variable with unresolved signature {}",
                        show::sig(&s)
                    ))),
                }
            }
            Term::Star => Ok(Typing::new(Ty::Unit, true)),
            Term::Lam(t, body) => {
                self.wf_ty(ctx, t)?;
                let b = ctx.with_term((**t).clone(), true, |ctx| self.synth_term(ctx, body))?;
                let cod = strengthen_ty(&b.ty);
                let ty = if b.valuable {
                    Ty::Total(t.clone(), Box::new(cod))
                } else {
                    Ty::Partial(t.clone(), Box::new(cod))
                };
                Ok(Typing::new(ty, true))
            }
            Term::App(f, a) => {
                let ft = self.synth_term(ctx, f)?;
                let exposed = self.expose_deep(ctx, &ft.ty)?;
                let (dom, cod, total) = match exposed {
                    Ty::Total(d, c) => (*d, *c, true),
                    Ty::Partial(d, c) => (*d, *c, false),
                    other => return raise(TypeError::NotAFunction(show::ty(&other))),
                };
                let at = self.synth_term(ctx, a)?;
                self.ty_sub(ctx, &at.ty, &dom)?;
                Ok(Typing::new(cod, total && ft.valuable && at.valuable))
            }
            Term::Pair(a, b) => {
                let at = self.synth_term(ctx, a)?;
                let bt = self.synth_term(ctx, b)?;
                Ok(Typing::new(
                    Ty::Prod(Box::new(at.ty), Box::new(bt.ty)),
                    at.valuable && bt.valuable,
                ))
            }
            Term::Proj1(p) | Term::Proj2(p) => {
                let pt = self.synth_term(ctx, p)?;
                let exposed = self.expose_deep(ctx, &pt.ty)?;
                match exposed {
                    Ty::Prod(l, r) => {
                        let ty = if matches!(e, Term::Proj1(_)) { *l } else { *r };
                        Ok(Typing::new(ty, pt.valuable))
                    }
                    other => raise(TypeError::NotAProduct(show::ty(&other))),
                }
            }
            Term::TLam(k, body) => {
                self.wf_kind(ctx, k)?;
                let b = ctx.with_con((**k).clone(), |ctx| self.synth_term(ctx, body))?;
                if !b.valuable {
                    // Λα:κ.e requires Γ[α:κ] ⊢ e ⇓ σ.
                    return raise(TypeError::ValueRestriction(show::term(body)));
                }
                Ok(Typing::new(Ty::Forall(k.clone(), Box::new(b.ty)), true))
            }
            Term::TApp(f, c) => {
                let ft = self.synth_term(ctx, f)?;
                match self.expose(ctx, &ft.ty)? {
                    Ty::Forall(k, body) => {
                        self.check_con(ctx, c, &k)?;
                        Ok(Typing::new(subst_con_ty(&body, c), ft.valuable))
                    }
                    other => raise(TypeError::NotPolymorphic(show::ty(&other))),
                }
            }
            Term::Fix(t, body) => {
                // Γ ⊢ σ type   Γ[x↑σ] ⊢ e ⇓ σ   ⟹   Γ ⊢ fix(x:σ.e) ⇓ σ
                self.wf_ty(ctx, t)?;
                let b = ctx.with_term((**t).clone(), false, |ctx| self.synth_term(ctx, body))?;
                if !b.valuable {
                    return raise(TypeError::ValueRestriction(show::term(body)));
                }
                let found = strengthen_ty(&b.ty);
                self.ty_sub(ctx, &found, t)?;
                Ok(Typing::new((**t).clone(), true))
            }
            Term::IntLit(_) => Ok(Typing::new(Ty::Con(Con::Int), true)),
            Term::BoolLit(_) => Ok(Typing::new(Ty::Con(Con::Bool), true)),
            Term::Prim(op, args) => {
                if args.len() != op.arity() {
                    return raise(TypeError::PrimArity {
                        op: op.name(),
                        expected: op.arity(),
                        found: args.len(),
                    });
                }
                let mut valuable = true;
                for a in args {
                    let at = self.synth_term(ctx, a)?;
                    self.ty_sub(ctx, &at.ty, &Ty::Con(Con::Int))?;
                    valuable &= at.valuable;
                }
                let out = match op {
                    PrimOp::Add | PrimOp::Sub | PrimOp::Mul => Con::Int,
                    PrimOp::Eq | PrimOp::Lt => Con::Bool,
                };
                Ok(Typing::new(Ty::Con(out), valuable))
            }
            Term::If(c, t, f) => {
                let ct = self.synth_term(ctx, c)?;
                self.ty_sub(ctx, &ct.ty, &Ty::Con(Con::Bool))?;
                let tt = self.synth_term(ctx, t)?;
                let ft = self.synth_term(ctx, f)?;
                let ty = self.join(ctx, &tt.ty, &ft.ty)?;
                Ok(Typing::new(ty, ct.valuable && tt.valuable && ft.valuable))
            }
            Term::Inj(i, sum, body) => {
                self.check_con(ctx, sum, &Kind::Type)?;
                let w = self.whnf(ctx, sum)?;
                let Con::Sum(cs) = &w else {
                    return raise(TypeError::NotASum(show::con(&w)));
                };
                if *i >= cs.len() {
                    return raise(TypeError::InjIndex {
                        index: *i,
                        summands: cs.len(),
                    });
                }
                let bt = self.synth_term(ctx, body)?;
                self.ty_sub(ctx, &bt.ty, &Ty::Con(cs[*i].take()))?;
                Ok(Typing::new(Ty::Con(sum.clone()), bt.valuable))
            }
            Term::Case(scrut, branches) => {
                let st = self.synth_term(ctx, scrut)?;
                let exposed = self.expose_deep(ctx, &st.ty)?;
                let Ty::Con(w) = exposed else {
                    return raise(TypeError::NotASum(show::ty(&exposed)));
                };
                let Con::Sum(cs) = self.whnf(ctx, &w)? else {
                    return raise(TypeError::NotASum(show::con(&w)));
                };
                if cs.len() != branches.len() {
                    return raise(TypeError::BranchCount {
                        summands: cs.len(),
                        branches: branches.len(),
                    });
                }
                let mut result: Option<Ty> = None;
                let mut valuable = st.valuable;
                for (summand, branch) in cs.iter().zip(branches) {
                    let bt = ctx.with_term(Ty::Con(summand.take()), true, |ctx| {
                        self.synth_term(ctx, branch)
                    })?;
                    valuable &= bt.valuable;
                    let bty = strengthen_ty(&bt.ty);
                    result = Some(match result {
                        None => bty,
                        Some(acc) => self.join(ctx, &acc, &bty)?,
                    });
                }
                match result {
                    Some(ty) => Ok(Typing::new(ty, valuable)),
                    // An empty case eliminates the void type; it may be
                    // given any type, but we have no annotation — reject.
                    None => raise(TypeError::Other(
                        "case on the empty sum requires a type annotation".to_string(),
                    )),
                }
            }
            Term::Roll(muc, body) => {
                self.check_con(ctx, muc, &Kind::Type)?;
                let unrolled = self.whnf_unroll(ctx, muc)?;
                let bt = self.synth_term(ctx, body)?;
                self.ty_sub(ctx, &bt.ty, &Ty::Con(unrolled))?;
                Ok(Typing::new(Ty::Con(muc.clone()), bt.valuable))
            }
            Term::Unroll(body) => {
                let bt = self.synth_term(ctx, body)?;
                let exposed = self.expose(ctx, &bt.ty)?;
                let Ty::Con(w) = exposed else {
                    return raise(TypeError::NotAMu(show::ty(&exposed)));
                };
                let unrolled = self.whnf_unroll(ctx, &w)?;
                Ok(Typing::new(Ty::Con(unrolled), bt.valuable))
            }
            Term::Fail(t) => {
                self.wf_ty(ctx, t)?;
                Ok(Typing::new((**t).clone(), false))
            }
            Term::Let(bound, body) => {
                let et = self.synth_term(ctx, bound)?;
                let bt =
                    ctx.with_term(et.ty.clone(), et.valuable, |ctx| self.synth_term(ctx, body))?;
                Ok(Typing::new(
                    strengthen_ty(&bt.ty),
                    et.valuable && bt.valuable,
                ))
            }
        }
    }

    /// `Γ ⊢ e : σ` — checks a term against an expected type.
    pub fn check_term(&self, ctx: &mut Ctx, e: &Term, t: &Ty) -> TcResult<Typing> {
        let _j = recmod_telemetry::judgement_span("kernel.check_term");
        let _depth = self.descend("check_term")?;
        let typing = self.synth_term(ctx, e)?;
        self.ty_sub(ctx, &typing.ty, t)?;
        Ok(Typing::new(t.clone(), typing.valuable))
    }

    /// The least common supertype of two types under `→ ≤ ⇀`, used to
    /// merge the arms of `if`/`case`.
    fn join(&self, ctx: &mut Ctx, a: &Ty, b: &Ty) -> TcResult<Ty> {
        if self.ty_sub(ctx, a, b).is_ok() {
            Ok(b.clone())
        } else if self.ty_sub(ctx, b, a).is_ok() {
            Ok(a.clone())
        } else {
            raise(TypeError::TyMismatch {
                expected: show::ty(a),
                found: show::ty(b),
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use recmod_syntax::dsl::*;

    fn synth(e: &Term) -> TcResult<Typing> {
        let tc = Tc::new();
        let mut ctx = Ctx::new();
        tc.synth_term(&mut ctx, e)
    }

    #[test]
    fn literals_are_valuable() {
        let t = synth(&int(42)).unwrap();
        assert_eq!(t.ty, tcon(Con::Int));
        assert!(t.valuable);
    }

    #[test]
    fn lambda_with_valuable_body_is_total() {
        let f = lam(tcon(Con::Int), var(0));
        let t = synth(&f).unwrap();
        assert_eq!(t.ty, total(tcon(Con::Int), tcon(Con::Int)));
        assert!(t.valuable);
    }

    #[test]
    fn lambda_with_failing_body_is_partial() {
        let f = lam(tcon(Con::Int), fail(tcon(Con::Int)));
        let t = synth(&f).unwrap();
        assert_eq!(t.ty, partial(tcon(Con::Int), tcon(Con::Int)));
        assert!(t.valuable, "λ is valuable even with a non-valuable body");
    }

    #[test]
    fn total_application_is_valuable_partial_is_not() {
        let tot = app(lam(tcon(Con::Int), var(0)), int(1));
        assert!(synth(&tot).unwrap().valuable);
        let par = app(lam(tcon(Con::Int), fail(tcon(Con::Int))), int(1));
        assert!(!synth(&par).unwrap().valuable);
    }

    #[test]
    fn value_restriction_rejects_cyclic_list() {
        // fix(x : μt.1 + int×t . roll(inj₂ (1, x))) — the unguarded x makes
        // the body non-valuable... actually inj/pair of a non-valuable
        // variable is non-valuable, exactly the paper's 1 :: x example.
        let listc = mu(tkind(), csum([Con::UnitTy, cprod(Con::Int, cvar(0))]));
        let body = roll(
            listc.clone(),
            inj(
                1,
                csum([Con::UnitTy, cprod(Con::Int, listc.clone())]),
                pair(int(1), var(0)),
            ),
        );
        let e = fix(tcon(listc), body);
        assert!(matches!(synth(&e), Err(TypeError::ValueRestriction(_))));
    }

    #[test]
    fn value_restriction_accepts_guarded_recursion() {
        // fix(f : int ⇀ int. λx:int. f x) — the recursive variable is
        // guarded by the λ, so the fix is well-typed.
        let e = fix(
            partial(tcon(Con::Int), tcon(Con::Int)),
            lam(tcon(Con::Int), app(var(1), var(0))),
        );
        let t = synth(&e).unwrap();
        assert_eq!(t.ty, partial(tcon(Con::Int), tcon(Con::Int)));
        assert!(t.valuable, "fix itself is valuable (⇓ rule)");
    }

    #[test]
    fn fix_variable_not_valuable_inside_body() {
        // fix(x:int. x) — body is the recursive variable itself: typeable
        // at int but not valuable, so the fix is rejected.
        let e = fix(tcon(Con::Int), var(0));
        assert!(matches!(synth(&e), Err(TypeError::ValueRestriction(_))));
    }

    #[test]
    fn tlam_requires_valuable_body() {
        let bad = tlam(tkind(), fail(Ty::Unit));
        assert!(matches!(synth(&bad), Err(TypeError::ValueRestriction(_))));
        let good = tlam(tkind(), lam(tcon(cvar(0)), var(0)));
        let t = synth(&good).unwrap();
        assert_eq!(t.ty, forall(tkind(), total(tcon(cvar(0)), tcon(cvar(0)))));
    }

    #[test]
    fn tapp_instantiates() {
        let id = tlam(tkind(), lam(tcon(cvar(0)), var(0)));
        let t = synth(&tapp(id, Con::Bool)).unwrap();
        assert_eq!(t.ty, total(tcon(Con::Bool), tcon(Con::Bool)));
    }

    #[test]
    fn roll_unroll_round_trip() {
        let listc = mu(tkind(), csum([Con::UnitTy, cprod(Con::Int, cvar(0))]));
        let sum_unrolled = csum([Con::UnitTy, cprod(Con::Int, listc.clone())]);
        let nil = roll(listc.clone(), inj(0, sum_unrolled, Term::Star));
        let t = synth(&nil).unwrap();
        assert_eq!(t.ty, tcon(listc.clone()));
        assert!(t.valuable);
        let u = synth(&unroll(nil)).unwrap();
        assert!(u.valuable);
    }

    #[test]
    fn case_joins_branch_types() {
        let sum = csum([Con::Int, Con::Int]);
        let scrut = inj(0, sum.clone(), int(1));
        let e = case(scrut, [var(0), fail(tcon(Con::Int))]);
        let t = synth(&e).unwrap();
        assert_eq!(t.ty, tcon(Con::Int));
        assert!(!t.valuable, "a failing branch poisons valuability");
    }

    #[test]
    fn case_branch_count_checked() {
        let sum = csum([Con::Int, Con::Int]);
        let e = case(inj(0, sum, int(1)), [var(0)]);
        assert!(matches!(synth(&e), Err(TypeError::BranchCount { .. })));
    }

    #[test]
    fn primops_type_and_propagate_valuability() {
        let t = synth(&prim(recmod_syntax::ast::PrimOp::Add, int(1), int(2))).unwrap();
        assert_eq!(t.ty, tcon(Con::Int));
        assert!(t.valuable);
        let t = synth(&prim(
            recmod_syntax::ast::PrimOp::Lt,
            int(1),
            fail(tcon(Con::Int)),
        ))
        .unwrap();
        assert_eq!(t.ty, tcon(Con::Bool));
        assert!(!t.valuable);
    }

    #[test]
    fn if_requires_bool() {
        let e = ite(int(1), int(2), int(3));
        assert!(synth(&e).is_err());
        let e = ite(boolean(true), int(2), int(3));
        assert_eq!(synth(&e).unwrap().ty, tcon(Con::Int));
    }

    #[test]
    fn let_propagates_valuability() {
        let e = let_(
            int(1),
            prim(recmod_syntax::ast::PrimOp::Add, var(0), int(1)),
        );
        let t = synth(&e).unwrap();
        assert_eq!(t.ty, tcon(Con::Int));
        assert!(t.valuable);
        let e = let_(fail(tcon(Con::Int)), var(0));
        assert!(!synth(&e).unwrap().valuable);
    }

    #[test]
    fn equirecursive_application_through_mu() {
        // x : μt.int ⇀ t  can be applied directly in equi mode.
        let tc = Tc::new();
        let mut ctx = Ctx::new();
        let m = mu(tkind(), carrow(Con::Int, cvar(0)));
        ctx.with_term(tcon(m), true, |ctx| {
            let t = tc.synth_term(ctx, &app(var(0), int(3))).unwrap();
            // Result is the μ again.
            let exposed = tc.expose(ctx, &t.ty).unwrap();
            assert!(matches!(exposed, Ty::Con(Con::Mu(_, _))));
        });
    }
}
