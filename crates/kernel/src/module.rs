//! Structure and recursive-module typing (paper appendix A.2/A.3).
//!
//! Recursive modules follow the §3 rule
//!
//! ```text
//! Γ[s↑S] ⊢ M ⇓ S
//! ─────────────────────
//! Γ ⊢ fix(s:S.M) : S
//! ```
//!
//! with the annotation `S` first *resolved* (rds → Figure 5) so that the
//! recursive type equations it records are available — through the
//! singleton kind of `Fst(s)` — while checking the body. This is the
//! "one-pass algorithm" of §4: the static recursion equations are solved
//! before the dynamic typing conditions are checked.

use recmod_syntax::ast::{Con, Module, Sig};
use recmod_syntax::intern::hc;
use recmod_syntax::subst::{shift_sig, shift_ty};

use crate::ctx::{Ctx, Entry};
use crate::error::{raise, TcResult, TypeError};
use crate::show;
use crate::sig::{retarget_fst_to_cvar, selfify_sig};
use crate::singleton::{kind_definition, strip_kind};
use crate::Tc;

/// The result of typechecking a module: its principal signature and
/// whether it is valuable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModTyping {
    /// The synthesized (most transparent) signature.
    pub sig: Sig,
    /// `true` iff `Γ ⊢ M ⇓ S` holds.
    pub valuable: bool,
}

impl Tc {
    /// `Γ ⊢ M : S` and `Γ ⊢ M ⇓ S` — synthesizes the principal signature
    /// and valuability of `M`.
    pub fn synth_module(&self, ctx: &mut Ctx, m: &Module) -> TcResult<ModTyping> {
        let _j = recmod_telemetry::judgement_span("kernel.synth_module");
        let _depth = self.descend("synth_module")?;
        self.burn(crate::stats::FuelOp::ModuleTyping)?;
        let _trace = recmod_telemetry::trace_span(|| format!("{} : ?", crate::show::module(m)));
        match m {
            Module::Var(i) => {
                let (s, valuable) = ctx.lookup_struct(*i)?;
                Ok(ModTyping {
                    sig: selfify_sig(*i, &s),
                    valuable,
                })
            }
            Module::Struct(c, e) => {
                let k = self.synth_con(ctx, c)?;
                let te = self.synth_term(ctx, e)?;
                let sig = Sig::Struct(hc(k), Box::new(shift_ty(&te.ty, 1, 0)));
                Ok(ModTyping {
                    sig,
                    valuable: te.valuable,
                })
            }
            Module::Seal(body, s) => {
                self.wf_sig(ctx, s)?;
                let target = self.resolve_sig(ctx, s)?;
                let bt = self.synth_module(ctx, body)?;
                self.sig_sub(ctx, &bt.sig, &target)?;
                // Sealing forgets extra transparency: the result is the
                // ascribed signature, not the principal one.
                Ok(ModTyping {
                    sig: target,
                    valuable: bt.valuable,
                })
            }
            Module::Fix(ann, body) => {
                self.wf_sig(ctx, ann)?;
                let target = self.resolve_sig(ctx, ann)?;
                let bt = ctx.with(Entry::Struct(target.clone(), false), |ctx| {
                    let inner = self.synth_module(ctx, body)?;
                    if !inner.valuable {
                        return raise(TypeError::ValueRestriction(show::module(body)));
                    }
                    // The body must match the annotation *under* the
                    // recursive assumption s↑S.
                    let shifted = shift_sig(&target, 1, 0);
                    self.sig_sub(ctx, &inner.sig, &shifted)?;
                    Ok(inner)
                })?;
                let _ = bt;
                Ok(ModTyping {
                    sig: target,
                    valuable: true,
                })
            }
        }
    }

    /// `Γ ⊢ M : S` — checks `M` against an expected signature.
    pub fn check_module(&self, ctx: &mut Ctx, m: &Module, s: &Sig) -> TcResult<ModTyping> {
        let _j = recmod_telemetry::judgement_span("kernel.check_module");
        let _depth = self.descend("check_module")?;
        let target = self.resolve_sig(ctx, s)?;
        let mt = self.synth_module(ctx, m)?;
        self.sig_sub(ctx, &mt.sig, &target)?;
        Ok(ModTyping {
            sig: target,
            valuable: mt.valuable,
        })
    }

    /// The compile-time part of a module, as a constructor — the `Fst`
    /// half of the phase-splitting interpretation.
    ///
    /// # Errors
    ///
    /// Fails with [`TypeError::OpaqueStaticPart`] for modules sealed with
    /// a signature whose static part has no definition.
    pub fn static_part(&self, ctx: &mut Ctx, m: &Module) -> TcResult<Con> {
        let _j = recmod_telemetry::judgement_span("kernel.static_part");
        let _depth = self.descend("static_part")?;
        match m {
            Module::Var(i) => Ok(Con::Fst(*i)),
            Module::Struct(c, _) => Ok(c.clone()),
            Module::Seal(_, s) => {
                let target = self.resolve_sig(ctx, s)?;
                let Sig::Struct(k, _) = &target else {
                    return raise(TypeError::Internal(
                        "resolve_sig returned an unresolved rds".to_string(),
                    ));
                };
                kind_definition(k)
                    .ok_or_else(|| TypeError::OpaqueStaticPart(show::module(m)).noted())
            }
            Module::Fix(ann, body) => {
                // Fig. 4: Fst(fix(s:S.M)) = μα:κ. (Fst of M)[α/Fst(s)]
                let target = self.resolve_sig(ctx, ann)?;
                let Sig::Struct(k, _) = &target else {
                    return raise(TypeError::Internal(
                        "resolve_sig returned an unresolved rds".to_string(),
                    ));
                };
                let base = strip_kind(k);
                let inner = ctx.with(Entry::Struct(target.clone(), false), |ctx| {
                    self.static_part(ctx, body)
                })?;
                let mu_body = retarget_fst_to_cvar(&inner, 0);
                Ok(Con::Mu(hc(base), hc(mu_body)))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use recmod_syntax::ast::{Kind, Term, Ty};
    use recmod_syntax::dsl::*;

    #[test]
    fn flat_structure_synthesizes_transparent_sig() {
        let tc = Tc::new();
        let mut ctx = Ctx::new();
        let m = strct(Con::Int, int(42));
        let mt = tc.synth_module(&mut ctx, &m).unwrap();
        assert_eq!(mt.sig, sig(q(Con::Int), tcon(Con::Int)));
        assert!(mt.valuable);
    }

    #[test]
    fn structure_variable_is_selfified() {
        let tc = Tc::new();
        let mut ctx = Ctx::new();
        let s = sig(tkind(), tcon(cvar(0)));
        ctx.with(Entry::Struct(s, true), |ctx| {
            let mt = tc.synth_module(ctx, &mvar(0)).unwrap();
            assert_eq!(mt.sig, sig(q(fst(0)), tcon(cvar(0))));
        });
    }

    #[test]
    fn sealing_forgets_transparency() {
        let tc = Tc::new();
        let mut ctx = Ctx::new();
        let m = seal(strct(Con::Int, int(1)), sig(tkind(), tcon(cvar(0))));
        let mt = tc.synth_module(&mut ctx, &m).unwrap();
        assert_eq!(mt.sig, sig(tkind(), tcon(cvar(0))));
    }

    #[test]
    fn sealing_checks_the_body() {
        let tc = Tc::new();
        let mut ctx = Ctx::new();
        // [int, true] sealed at [α:T.Con(α)] — the term has type bool ≠ α=int.
        let bad = seal(strct(Con::Int, boolean(true)), sig(tkind(), tcon(cvar(0))));
        assert!(tc.synth_module(&mut ctx, &bad).is_err());
    }

    /// The opaque recursive module of paper §3:
    /// `fix(s : [α:T. int ⇀ Con(α)] . [int ⇀ Fst(s), λx:int.fail])` —
    /// a recursive type of "streams" whose value component is a function.
    #[test]
    fn opaque_recursive_module_typechecks() {
        let tc = Tc::new();
        let mut ctx = Ctx::new();
        let ann = sig(tkind(), partial(tcon(Con::Int), tcon(cvar(0))));
        let body = strct(
            carrow(Con::Int, fst(0)),
            lam(tcon(Con::Int), fail(tcon(carrow(Con::Int, fst(1))))),
        );
        let m = mfix(ann.clone(), body);
        let mt = tc.synth_module(&mut ctx, &m).unwrap();
        assert_eq!(mt.sig, ann);
        assert!(mt.valuable);
    }

    #[test]
    fn value_restriction_on_recursive_modules() {
        // fix(s:[α:T.1]. [int, snd(s)]) — the body's term is the recursive
        // variable's own dynamic part: not valuable.
        let tc = Tc::new();
        let mut ctx = Ctx::new();
        let ann = sig(tkind(), Ty::Unit);
        let m = mfix(ann, strct(Con::Int, Term::Snd(0)));
        assert!(matches!(
            tc.synth_module(&mut ctx, &m),
            Err(TypeError::ValueRestriction(_))
        ));
    }

    /// The transparent recursive module: the annotation is an rds, so
    /// inside the body `Fst(s)` *equals* the recursive type, and a value
    /// of the underlying implementation type can be returned directly.
    #[test]
    fn transparent_recursive_module_exploits_rds_equation() {
        let tc = Tc::new();
        let mut ctx = Ctx::new();
        // ρs.[α : Q(int ⇀ Fst(s)) . Con(α)]
        let ann = rds(Sig::Struct(
            hc(q(carrow(Con::Int, fst(0)))),
            Box::new(tcon(cvar(0))),
        ));
        // Body: [int ⇀ Fst(s), λx:int. snd(s) — wait, must be valuable and
        // of type int ⇀ Fst(s)]. Use λx:int.fail[Fst(s)] : int ⇀ Fst(s).
        let body = strct(
            carrow(Con::Int, fst(0)),
            lam(tcon(Con::Int), fail(tcon(fst(1)))),
        );
        let m = mfix(ann, body);
        let mt = tc.synth_module(&mut ctx, &m).unwrap();
        // The resulting signature's static part is the μ type.
        let Sig::Struct(k, _) = &mt.sig else { panic!() };
        let expected_mu = mu(tkind(), carrow(Con::Int, cvar(0)));
        assert_eq!(**k, q(expected_mu));
    }

    #[test]
    fn static_part_of_fix_is_figure_4_mu() {
        let tc = Tc::new();
        let mut ctx = Ctx::new();
        let ann = sig(tkind(), Ty::Unit);
        let m = mfix(ann, strct(carrow(Con::Int, fst(0)), Term::Star));
        let sp = tc.static_part(&mut ctx, &m).unwrap();
        assert_eq!(sp, mu(tkind(), carrow(Con::Int, cvar(0))));
    }

    #[test]
    fn static_part_of_opaque_seal_fails() {
        let tc = Tc::new();
        let mut ctx = Ctx::new();
        let m = seal(strct(Con::Int, int(1)), sig(tkind(), tcon(cvar(0))));
        assert!(matches!(
            tc.static_part(&mut ctx, &m),
            Err(TypeError::OpaqueStaticPart(_))
        ));
    }

    #[test]
    fn static_part_of_transparent_seal_succeeds() {
        let tc = Tc::new();
        let mut ctx = Ctx::new();
        let m = seal(strct(Con::Int, int(1)), sig(q(Con::Int), tcon(cvar(0))));
        assert_eq!(tc.static_part(&mut ctx, &m).unwrap(), Con::Int);
    }

    #[test]
    fn fix_body_must_match_annotation() {
        let tc = Tc::new();
        let mut ctx = Ctx::new();
        let ann = sig(tkind(), tcon(Con::Bool));
        let m = mfix(ann, strct(Con::Int, int(7)));
        assert!(tc.synth_module(&mut ctx, &m).is_err());
    }

    #[test]
    fn check_module_against_rds_uses_resolution() {
        // [μα.int⇀α, λx:int.fail] : ρs.[α:Q(int ⇀ Fst s). Con(α)]
        let tc = Tc::new();
        let mut ctx = Ctx::new();
        let the_mu = mu(tkind(), carrow(Con::Int, cvar(0)));
        let ann = rds(Sig::Struct(
            hc(q(carrow(Con::Int, fst(0)))),
            Box::new(tcon(cvar(0))),
        ));
        let m = strct(the_mu.clone(), lam(tcon(Con::Int), fail(tcon(the_mu))));
        let mt = tc.check_module(&mut ctx, &m, &ann).unwrap();
        assert!(matches!(mt.sig, Sig::Struct(_, _)));
    }

    #[test]
    fn mutually_recursive_static_parts_via_sigma() {
        // fix(s : [α:T×T . 1] . [⟨int ⇀ π₂(Fst s), bool ⇀ π₁(Fst s)⟩, *])
        let tc = Tc::new();
        let mut ctx = Ctx::new();
        let ann = sig(Kind::times(tkind(), tkind()), Ty::Unit);
        let body = strct(
            cpair(
                carrow(Con::Int, cproj2(fst(0))),
                carrow(Con::Bool, cproj1(fst(0))),
            ),
            Term::Star,
        );
        let m = mfix(ann, body);
        let mt = tc.synth_module(&mut ctx, &m).unwrap();
        assert!(mt.valuable);
        let sp = tc.static_part(&mut ctx, &m).unwrap();
        // μp:T×T.⟨int ⇀ π₂p, bool ⇀ π₁p⟩
        assert_eq!(
            sp,
            mu(
                Kind::times(tkind(), tkind()),
                cpair(
                    carrow(Con::Int, cproj2(cvar(0))),
                    carrow(Con::Bool, cproj1(cvar(0)))
                )
            )
        );
    }
}
