//! Typechecking errors.

use std::error::Error;
use std::fmt;

/// The reason a judgement failed to hold.
///
/// Payload strings are pretty-printed syntax (in the paper's notation),
/// rendered at the point of failure so errors are self-contained.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TypeError {
    /// A de Bruijn index pointed past the end of the context, or at an
    /// entry of the wrong sort.
    Unbound {
        /// What was being looked up (e.g. `"constructor variable"`).
        what: &'static str,
        /// The offending index.
        index: usize,
    },
    /// A constructor was used at a `Π` kind but does not have one.
    NotAPiKind(String),
    /// A constructor was used at a `Σ` kind but does not have one.
    NotASigmaKind(String),
    /// A term was applied but has no (total or partial) arrow type.
    NotAFunction(String),
    /// A term was projected from but has no product type.
    NotAProduct(String),
    /// A term was instantiated but has no `∀` type.
    NotPolymorphic(String),
    /// A `case` scrutinee (or `inj` annotation) is not a sum monotype.
    NotASum(String),
    /// A `roll`/`unroll` subject is not a `μ` monotype.
    NotAMu(String),
    /// Two kinds failed to be equivalent.
    KindMismatch {
        /// The expected kind.
        expected: String,
        /// The kind actually found.
        found: String,
    },
    /// Subkinding `found ≤ expected` failed.
    NotASubkind {
        /// The required superkind.
        expected: String,
        /// The kind actually found.
        found: String,
    },
    /// Two constructors failed to be equivalent at the given kind.
    ConMismatch {
        /// The left-hand constructor.
        left: String,
        /// The right-hand constructor.
        right: String,
        /// The kind at which they were compared.
        at: String,
    },
    /// Two types failed to be equivalent.
    TyMismatch {
        /// The expected type.
        expected: String,
        /// The type actually found.
        found: String,
    },
    /// Subtyping `found ≤ expected` failed.
    NotASubtype {
        /// The required supertype.
        expected: String,
        /// The type actually found.
        found: String,
    },
    /// Signature subtyping failed.
    NotASubsignature {
        /// The required supersignature.
        expected: String,
        /// The signature actually found.
        found: String,
    },
    /// The value restriction (paper §2.1/§3): the body of a `fix` (or of a
    /// `Λ`) is not valuable.
    ValueRestriction(String),
    /// An rds whose static part is not fully transparent (paper §4.1
    /// formation rule), or whose stripped kind still depends on the
    /// recursive structure variable.
    RdsNotTransparent(String),
    /// A `case` has the wrong number of branches for its scrutinee's sum.
    BranchCount {
        /// Number of summands in the scrutinee's type.
        summands: usize,
        /// Number of branches supplied.
        branches: usize,
    },
    /// A primop was applied to the wrong number of arguments.
    PrimArity {
        /// The operator's name.
        op: &'static str,
        /// Expected argument count.
        expected: usize,
        /// Found argument count.
        found: usize,
    },
    /// An `inj` index is out of range for its sum annotation.
    InjIndex {
        /// The injection index.
        index: usize,
        /// Number of summands.
        summands: usize,
    },
    /// The module has no statically-computable compile-time part (e.g. a
    /// module sealed with an opaque signature used where an rds requires
    /// inspecting its static part).
    OpaqueStaticPart(String),
    /// The equivalence/normalization engine ran out of fuel. This is a
    /// resource bound, not a semantic verdict; see `DESIGN.md` §2 on the
    /// (open) decidability of equi-recursive equivalence at higher kinds.
    FuelExhausted {
        /// The operation that burned the final unit of fuel.
        op: &'static str,
        /// The budget the run started from.
        budget: u64,
        /// The top fuel-consuming operations, descending by count.
        top: Vec<(&'static str, u64)>,
    },
    /// A resource limit (recursion depth, node budget, deadline) was
    /// hit. Like [`TypeError::FuelExhausted`], a resource verdict, not a
    /// semantic one.
    Limit(recmod_telemetry::LimitExceeded),
    /// An internal invariant was violated — a bug in the checker, never
    /// the user's fault. Replaces what used to be reachable panics
    /// (`unroll_mu` on a non-μ, a non-flat `resolve_sig` result, …) so
    /// the pipeline degrades to a diagnostic instead of unwinding.
    Internal(String),
    /// Anything else, with a human-readable explanation.
    Other(String),
}

impl TypeError {
    /// Is this a resource-bound verdict (fuel, depth, nodes, deadline)
    /// rather than a semantic type error?
    pub fn is_limit(&self) -> bool {
        matches!(self, TypeError::FuelExhausted { .. } | TypeError::Limit(_))
    }

    /// Is this an internal-invariant failure (a checker bug)?
    pub fn is_internal(&self) -> bool {
        matches!(self, TypeError::Internal(_))
    }

    /// The stable error code for this failure class. Kernel judgement
    /// failures are `K0xx`, resource limits `L0xx`, internal invariant
    /// violations `I0xx`; codes never change meaning once assigned
    /// (retired codes are not reused).
    pub fn code(&self) -> &'static str {
        match self {
            TypeError::Unbound { .. } => "K001",
            TypeError::NotAPiKind(_) => "K002",
            TypeError::NotASigmaKind(_) => "K003",
            TypeError::NotAFunction(_) => "K004",
            TypeError::NotAProduct(_) => "K005",
            TypeError::NotPolymorphic(_) => "K006",
            TypeError::NotASum(_) => "K007",
            TypeError::NotAMu(_) => "K008",
            TypeError::KindMismatch { .. } => "K009",
            TypeError::NotASubkind { .. } => "K010",
            TypeError::ConMismatch { .. } => "K011",
            TypeError::TyMismatch { .. } => "K012",
            TypeError::NotASubtype { .. } => "K013",
            TypeError::NotASubsignature { .. } => "K014",
            TypeError::ValueRestriction(_) => "K015",
            TypeError::RdsNotTransparent(_) => "K016",
            TypeError::BranchCount { .. } => "K017",
            TypeError::PrimArity { .. } => "K018",
            TypeError::InjIndex { .. } => "K019",
            TypeError::OpaqueStaticPart(_) => "K020",
            TypeError::FuelExhausted { .. } => "L003",
            TypeError::Limit(e) => e.kind.code(),
            TypeError::Internal(_) => "I001",
            TypeError::Other(_) => "K099",
        }
    }

    /// The `expected`/`found` pair for mismatch-shaped failures
    /// (pretty-printed in the paper's notation), if this error has one.
    /// For [`TypeError::ConMismatch`] the pair is (left, right).
    pub fn expected_found(&self) -> Option<(&str, &str)> {
        match self {
            TypeError::KindMismatch { expected, found }
            | TypeError::NotASubkind { expected, found }
            | TypeError::TyMismatch { expected, found }
            | TypeError::NotASubtype { expected, found }
            | TypeError::NotASubsignature { expected, found } => Some((expected, found)),
            TypeError::ConMismatch { left, right, .. } => Some((left, right)),
            _ => None,
        }
    }

    /// Snapshots the active judgement-frame stack as this error's
    /// derivation provenance (see `recmod_telemetry::diag`). Must be
    /// called at construction time — by the time the error has
    /// propagated out of the kernel the frames are gone.
    #[inline]
    pub fn noted(self) -> Self {
        recmod_telemetry::diag::record_failure();
        self
    }
}

/// Constructs a failing [`TcResult`], snapshotting the active judgement
/// frames as the error's derivation provenance. Every kernel error
/// construction site goes through here (or [`TypeError::noted`]) so
/// diagnostics can report the judgement stack that produced them.
#[inline]
pub fn raise<T>(e: TypeError) -> TcResult<T> {
    Err(e.noted())
}

impl From<recmod_telemetry::LimitExceeded> for TypeError {
    fn from(e: recmod_telemetry::LimitExceeded) -> Self {
        TypeError::Limit(e).noted()
    }
}

impl fmt::Display for TypeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TypeError::Unbound { what, index } => {
                write!(f, "unbound {what} (de Bruijn index {index})")
            }
            TypeError::NotAPiKind(k) => write!(f, "expected a \u{03a0} kind, found {k}"),
            TypeError::NotASigmaKind(k) => write!(f, "expected a \u{03a3} kind, found {k}"),
            TypeError::NotAFunction(t) => write!(f, "expected a function type, found {t}"),
            TypeError::NotAProduct(t) => write!(f, "expected a product type, found {t}"),
            TypeError::NotPolymorphic(t) => write!(f, "expected a \u{2200} type, found {t}"),
            TypeError::NotASum(t) => write!(f, "expected a sum monotype, found {t}"),
            TypeError::NotAMu(t) => write!(f, "expected a \u{03bc} monotype, found {t}"),
            TypeError::KindMismatch { expected, found } => {
                write!(f, "kind mismatch: expected {expected}, found {found}")
            }
            TypeError::NotASubkind { expected, found } => {
                write!(f, "kind {found} is not a subkind of {expected}")
            }
            TypeError::ConMismatch { left, right, at } => {
                write!(
                    f,
                    "constructors are not equivalent at kind {at}: {left} vs {right}"
                )
            }
            TypeError::TyMismatch { expected, found } => {
                write!(f, "type mismatch: expected {expected}, found {found}")
            }
            TypeError::NotASubtype { expected, found } => {
                write!(f, "type {found} is not a subtype of {expected}")
            }
            TypeError::NotASubsignature { expected, found } => {
                write!(f, "signature {found} does not match {expected}")
            }
            TypeError::ValueRestriction(e) => {
                write!(f, "value restriction violated: {e} is not valuable")
            }
            TypeError::RdsNotTransparent(s) => write!(
                f,
                "recursively-dependent signature does not have a fully transparent static part: {s}"
            ),
            TypeError::BranchCount { summands, branches } => write!(
                f,
                "case has {branches} branch(es) but the scrutinee has {summands} summand(s)"
            ),
            TypeError::PrimArity {
                op,
                expected,
                found,
            } => {
                write!(
                    f,
                    "primop `{op}` expects {expected} argument(s), found {found}"
                )
            }
            TypeError::InjIndex { index, summands } => {
                write!(
                    f,
                    "injection index {index} out of range for a {summands}-ary sum"
                )
            }
            TypeError::OpaqueStaticPart(m) => {
                write!(f, "cannot compute the static part of an opaque module: {m}")
            }
            TypeError::FuelExhausted { op, budget, top } => {
                write!(
                    f,
                    "normalization/equivalence fuel exhausted during {op} (budget {budget}"
                )?;
                if !top.is_empty() {
                    let list: Vec<String> = top
                        .iter()
                        .map(|(name, n)| format!("{name} \u{00d7}{n}"))
                        .collect();
                    write!(f, "; top consumers: {}", list.join(", "))?;
                }
                write!(f, ")")
            }
            TypeError::Limit(e) => write!(f, "{e}"),
            TypeError::Internal(msg) => write!(f, "internal error: {msg}"),
            TypeError::Other(msg) => f.write_str(msg),
        }
    }
}

impl Error for TypeError {}

/// The result type used throughout the kernel.
pub type TcResult<T> = Result<T, TypeError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_concise() {
        let e = TypeError::Unbound {
            what: "constructor variable",
            index: 3,
        };
        assert_eq!(
            e.to_string(),
            "unbound constructor variable (de Bruijn index 3)"
        );
    }

    #[test]
    fn error_trait_is_implemented() {
        fn assert_err<E: Error>() {}
        assert_err::<TypeError>();
    }

    #[test]
    fn send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TypeError>();
    }
}
